"""Ablation — cache associativity vs. the data transformation
(Section 1.1: "This problem exists even if the caches are
set-associative, given that existing caches usually only have a small
degree of associativity").

LU's 32-processor pathology puts a processor's cyclic columns AND the
current pivot column into the same cache sets.  A 2-way cache absorbs
part of the conflict; the data transformation removes it outright, with
no hardware help.  This ablation compares the three.
"""

from dataclasses import replace

from _common import save_experiment
from repro.apps import lu
from repro.codegen.spmd import Scheme
from repro.compiler import compile_program
from repro.machine import scaled_dash
from repro.machine.cache import CacheConfig
from repro.machine.simulate import simulate

N = 32  # small enough for the event-at-a-time LRU path
P = 24  # cache/column = 2KB/256B = 8 columns, and 8 | 24: the cliff


def _machine(assoc):
    m = scaled_dash(P, scale=32, word_bytes=8)
    return replace(
        m,
        cache=CacheConfig(
            size_bytes=m.cache.size_bytes,
            line_bytes=m.cache.line_bytes,
            assoc=assoc,
        ),
    )


def test_ablation_associativity(benchmark):
    def run():
        prog = lu.build(n=N)
        cd = compile_program(prog, Scheme.COMP_DECOMP, P)
        cdd = compile_program(prog, Scheme.COMP_DECOMP_DATA, P)
        out = {
            "cd direct-mapped": simulate(cd, _machine(1)),
            "cd 2-way": simulate(cd, _machine(2)),
            "cdd direct-mapped": simulate(cdd, _machine(1)),
        }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"LU N={N}, P={P}: conflict misses vs associativity"]
    for label, res in out.items():
        lines.append(
            f"  {label:20s} time={res.total_time:.3e} "
            f"replacement={res.miss_breakdown['replacement']}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    save_experiment("ablation_assoc", text)

    t_cd1 = out["cd direct-mapped"].total_time
    t_cd2 = out["cd 2-way"].total_time
    t_cdd = out["cdd direct-mapped"].total_time
    r_cd1 = out["cd direct-mapped"].miss_breakdown["replacement"]
    r_cdd = out["cdd direct-mapped"].miss_breakdown["replacement"]
    # associativity helps the scattered layout...
    assert t_cd2 <= t_cd1
    # ...but the restructured layout beats the scattered one even on the
    # direct-mapped cache, with far fewer conflict misses.
    assert t_cdd <= t_cd1
    assert r_cdd < r_cd1
