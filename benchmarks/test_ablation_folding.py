"""Ablation — folding choice (Section 3.2 step 3).

The paper chooses CYCLIC "if the computation of an iteration in a
parallelized loop either decreases or increases with the iteration
number" — LU's trailing submatrix shrinks every step, so block-ordered
columns would leave the low-numbered processors idle.  This ablation
forces BLOCK folding onto LU's decomposition and measures the load
imbalance the heuristic avoids.
"""

from copy import deepcopy

import numpy as np

from _common import save_experiment
from repro.apps import lu
from repro.codegen.spmd import Scheme, generate_spmd
from repro.compiler import restructure_program
from repro.decomp.greedy import decompose_program
from repro.decomp.model import FoldKind, Folding
from repro.machine import scaled_dash
from repro.machine.simulate import simulate

N = 64
P = 16


def _simulate_with_folding(kind):
    prog = restructure_program(lu.build(n=N))
    decomp = decompose_program(prog, P)
    decomp = deepcopy(decomp)
    decomp.foldings = [Folding(kind)]
    spmd = generate_spmd(prog, Scheme.COMP_DECOMP_DATA, P, decomp=decomp)
    machine = scaled_dash(P, scale=16, word_bytes=8)
    res = simulate(spmd, machine)
    # load imbalance: slowest / average processor cycles over the run
    cyc = np.zeros(P)
    for pc in res.phase_costs:
        cyc += pc.per_proc_cycles
    imbalance = float(cyc.max() / max(cyc.mean(), 1e-9))
    return res.total_time, imbalance


def test_ablation_lu_folding(benchmark):
    def run():
        return {
            "CYCLIC": _simulate_with_folding(FoldKind.CYCLIC),
            "BLOCK": _simulate_with_folding(FoldKind.BLOCK),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    (t_cyc, imb_cyc) = out["CYCLIC"]
    (t_blk, imb_blk) = out["BLOCK"]
    text = (
        f"LU N={N}, P={P} (comp decomp + data transform)\n"
        f"  CYCLIC folding: time={t_cyc:.3e}, imbalance={imb_cyc:.2f}\n"
        f"  BLOCK  folding: time={t_blk:.3e}, imbalance={imb_blk:.2f}\n"
        f"  heuristic advantage: {t_blk / t_cyc:.2f}x"
    )
    print("\n" + text)
    save_experiment("ablation_folding", text)
    # the triangular workload makes BLOCK markedly less balanced
    assert imb_blk > imb_cyc
    assert t_blk > t_cyc
