"""Figure 1 — the paper's motivating example.

Paper content: the two-nest relaxation code, its original data mapping
(1b: block-of-rows computation over column-major arrays, with false
sharing and conflict misses) and the optimized mapping (1c: each
processor's rows contiguous).

Reproduction: speedup curves for the three compiler configurations,
plus a check that the derived layout literally is Figure 1(c): every
processor's partition contiguous in the shared address space.

Scaling: N=64 (paper 1024), REAL*4; cache 4KB (64KB/16) keeps the
array/cache ratio at the paper's 64x.
"""

from _common import BASE, CD, CDD, record, run_speedups, series
from repro.apps import simple
from repro.codegen.spmd import Scheme
from repro.compiler import compile_program


def test_fig01_speedups(benchmark):
    prog = simple.build(n=64, time_steps=4)
    curves = benchmark.pedantic(
        run_speedups,
        args=(prog, dict(scale=16, word_bytes=4)),
        rounds=1,
        iterations=1,
    )
    record("fig01_example", "Figure 1 example (N=64, scaled DASH /16)",
           curves)
    base = series(curves, BASE)
    cdd = series(curves, CDD)
    # The optimized mapping scales; the data transformation is what
    # delivers it at high processor counts.
    assert cdd[32] > base[32] * 0.9
    assert cdd[32] > series(curves, CD)[32]
    assert cdd[32] > cdd[8] > cdd[1]


def test_fig01_optimized_mapping_contiguous(benchmark):
    """Figure 1(c): after the data transformation each processor's data
    is one contiguous block."""

    def derive():
        prog = simple.build(n=32, time_steps=2)
        return compile_program(prog, Scheme.COMP_DECOMP_DATA, 4)

    spmd = benchmark.pedantic(derive, rounds=1, iterations=1)
    ta = spmd.transformed["A"]
    assert ta.restructured
    per = {}
    for i in range(32):
        for j in range(32):
            o = ta.owner_coords((i, j))
            per.setdefault(o, []).append(ta.layout.linearize((i, j)))
    for o, addrs in per.items():
        s = sorted(addrs)
        assert s[-1] - s[0] == len(s) - 1, f"processor {o} not contiguous"
