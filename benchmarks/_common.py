"""Shared helpers for the experiment benchmarks.

Every file in this directory regenerates one table or figure from the
paper's Section 6 (see DESIGN.md's experiment index and EXPERIMENTS.md
for the recorded paper-vs-measured comparison).  The speedup series are
printed AND saved under ``results/`` because pytest captures stdout.

Problem sizes are scaled down from the paper's (the simulator is pure
Python); each benchmark documents its scaling and preserves the ratios
that drive the memory-system effects being measured (array/cache size,
line/element size, page/partition size).
"""

import pytest

from repro.codegen.spmd import Scheme
from repro.machine import scaled_dash
from repro.machine.simulate import speedup_curve
from repro.pipeline import CompileSession
from repro.report import format_speedup_table, save_experiment

ALL_SCHEMES = [Scheme.BASE, Scheme.COMP_DECOMP, Scheme.COMP_DECOMP_DATA]
PROCS = [1, 2, 4, 8, 16, 32]

BASE = Scheme.BASE.value
CD = Scheme.COMP_DECOMP.value
CDD = Scheme.COMP_DECOMP_DATA.value

# One pipeline session for the whole benchmark run: experiments that
# sweep the same program at several machine scales recompile nothing.
SESSION = CompileSession()


def run_speedups(prog, machine_kwargs, procs=PROCS, schemes=None):
    """Compile + simulate a program across schemes and processor counts."""
    factory = lambda p: scaled_dash(p, **machine_kwargs)
    return speedup_curve(prog, schemes or ALL_SCHEMES, factory, procs,
                         session=SESSION)


def record(name, title, curves):
    from repro.obs.bench import append_series

    series_payload = {
        scheme: [[p, s] for p, s in srs]
        for scheme, srs in curves.items()
    }
    text = format_speedup_table(curves, title=title)
    print("\n" + text)
    save_experiment(
        name, text,
        metrics={"title": title, "series": series_payload},
    )
    # Snapshot series: every benchmark run also appends its measured
    # curves to results/bench/series.jsonl, building a timestamped
    # history alongside the `python -m repro bench` grid snapshots.
    append_series(name, {"title": title, "series": series_payload})
    return text


def series(curves, scheme):
    return dict(curves[scheme])
