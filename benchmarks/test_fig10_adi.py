"""Figure 10 — ADI integration speedups, two data-set sizes.

Paper: base parallelizes each sweep on its own terms, so processors
touch completely different data in the two phases (8x at 32).  The
global decomposition keeps a static block-column distribution — doall
in the column sweep, tiled doacross pipeline in the row sweep — and
reaches 22.9.  "Since each processor's data are already contiguous, no
data transformations are needed": the DATA curve must coincide with
COMP DECOMP.

Reproduction: N=80 and N=48 (paper 1024 and 256), DOUBLE, cache 4KB.
"""

import pytest

from _common import BASE, CD, CDD, record, run_speedups, series
from repro.apps import adi


def _run(n):
    prog = adi.build(n=n, time_steps=4)
    return run_speedups(prog, dict(scale=16, word_bytes=8))


def test_fig10_adi_large(benchmark):
    curves = benchmark.pedantic(_run, args=(80,), rounds=1, iterations=1)
    record("fig10_adi_large",
           "Figure 10 (right): ADI 1Kx1K -> N=80, scaled DASH /16", curves)
    base = series(curves, BASE)
    cd = series(curves, CD)
    cdd = series(curves, CDD)
    # comp decomp is the critical technique...
    assert cd[32] > 1.2 * base[32]
    # ...and the data transformation is a no-op (Table 1: only the
    # Comp Decomp column is checked for ADI).
    for p in cd:
        assert cdd[p] == pytest.approx(cd[p], rel=1e-9)


def test_fig10_adi_small(benchmark):
    curves = benchmark.pedantic(_run, args=(48,), rounds=1, iterations=1)
    record("fig10_adi_small",
           "Figure 10 (left): ADI 256x256 -> N=48, scaled DASH /16", curves)
    base = series(curves, BASE)
    cd = series(curves, CD)
    assert cd[32] > base[32]
