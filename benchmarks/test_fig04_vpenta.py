"""Figure 4 — Vpenta speedups.

Paper: base 4.2x at 32 processors; computation decomposition adds a
little (barrier elimination); the data transformation of the 3-D array
delivers the jump to 14.3x.  A dip appears toward 32 processors from
intra-processor conflicts.

Reproduction: N=64 (paper 128), DOUBLE; cache 16KB (64KB/4) keeps the
paper's plane-stride aliasing (N^2*8 = 32KB = 2 caches, so all arrays'
columns alias pairwise, exactly like 128KB vs 64KB).

Shape criteria: base == comp-decomp up to synchronization; comp-decomp +
data-transform clearly best at 32 (the restructured 3-D array stops
aliasing the coefficient columns).  Our absolute base speedup runs much
higher than the paper's (see EXPERIMENTS.md for the recorded deviation:
the model's sequential baseline pays the same aliasing penalty, which
cancels in the ratio).
"""

from _common import BASE, CD, CDD, record, run_speedups, series
from repro.apps import vpenta


def test_fig04_vpenta(benchmark):
    prog = vpenta.build(n=64, time_steps=2)
    curves = benchmark.pedantic(
        run_speedups,
        args=(prog, dict(scale=4, word_bytes=8)),
        rounds=1,
        iterations=1,
    )
    record("fig04_vpenta", "Figure 4: vpenta (N=64, scaled DASH /4)", curves)
    base = series(curves, BASE)
    cd = series(curves, CD)
    cdd = series(curves, CDD)
    # data transformation is the decisive technique (Table 1: both
    # checkmarks, but the jump comes from the layout change)
    assert cdd[32] > 1.3 * base[32]
    assert cdd[32] > 1.3 * cd[32]
    # comp-decomp alone is only a modest change over base (the paper:
    # same parallelization, barriers become cheaper synchronization)
    assert 0.8 * base[32] < cd[32] < 1.3 * base[32]
