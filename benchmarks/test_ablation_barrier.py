"""Ablation — barrier elimination (Section 6.2.1).

For vpenta, "since the compiler can determine that each processor
accesses exactly the same partition of the arrays across the loops, the
code generator can eliminate barriers between some of the loops.  This
accounts for the slight increase in performance of the computation
decomposition version over the base compiler."

This ablation takes the decomposed vpenta, forces a barrier after every
phase, and measures the synchronization the proof of locality removes.
"""

from copy import copy

from _common import save_experiment
from repro.apps import vpenta
from repro.codegen.spmd import Scheme, SyncKind
from repro.compiler import compile_program
from repro.machine import scaled_dash
from repro.machine.simulate import simulate

N = 64
P = 32


def _with_forced_barriers(spmd):
    clone = copy(spmd)
    clone.phases = [copy(p) for p in spmd.phases]
    for p in clone.phases:
        if p.sync_after is SyncKind.NONE:
            p.sync_after = SyncKind.BARRIER
    return clone


def test_ablation_barrier_elimination(benchmark):
    def run():
        prog = vpenta.build(n=N, time_steps=2)
        spmd = compile_program(prog, Scheme.COMP_DECOMP, P)
        machine = scaled_dash(P, scale=4, word_bytes=8)
        optimized = simulate(spmd, machine)
        forced = simulate(_with_forced_barriers(spmd), machine)
        return optimized, forced, spmd

    optimized, forced, spmd = benchmark.pedantic(run, rounds=1, iterations=1)
    eliminated = sum(
        1 for p in spmd.phases if p.sync_after is SyncKind.NONE
    )
    text = (
        f"vpenta N={N}, P={P} (comp decomp)\n"
        f"  barriers eliminated by locality proof: {eliminated} per step\n"
        f"  time with elimination:    {optimized.total_time:.3e}\n"
        f"  time with forced barriers:{forced.total_time:.3e}\n"
        f"  improvement: {forced.total_time / optimized.total_time:.3f}x"
    )
    print("\n" + text)
    save_experiment("ablation_barrier", text)
    # all four phases access processor-local partitions
    assert eliminated == len(spmd.phases)
    # the paper calls the effect a "slight increase": real but modest
    assert forced.total_time > optimized.total_time
    assert forced.total_time < 2.0 * optimized.total_time
