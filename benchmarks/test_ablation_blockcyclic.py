"""Ablation — BLOCK-CYCLIC folding (Section 3.2: "we choose a
block-cyclic scheme only when pipelining is used in parallelizing a
loop and load balance is an issue").

LU is the program where both conditions meet: the doacross needs
coarse blocks for cheap pipelining, while the shrinking trailing
submatrix needs cyclic spreading for balance.  This ablation sweeps the
three foldings on LU and records the trade-off the heuristic navigates:
CYCLIC balances best, BLOCK pipelines cheapest, BLOCK-CYCLIC sits
between.
"""

from copy import deepcopy

import numpy as np

from _common import save_experiment
from repro.apps import lu
from repro.codegen.spmd import Scheme, generate_spmd
from repro.compiler import restructure_program
from repro.decomp.greedy import decompose_program
from repro.decomp.model import FoldKind, Folding
from repro.machine import scaled_dash
from repro.machine.simulate import simulate

N = 64
P = 16


def _run(folding):
    prog = restructure_program(lu.build(n=N))
    decomp = deepcopy(decompose_program(prog, P))
    decomp.foldings = [folding]
    spmd = generate_spmd(prog, Scheme.COMP_DECOMP_DATA, P, decomp=decomp)
    res = simulate(spmd, scaled_dash(P, scale=16, word_bytes=8))
    cyc = np.zeros(P)
    for pc in res.phase_costs:
        cyc += pc.per_proc_cycles
    imbalance = float(cyc.max() / max(cyc.mean(), 1e-9))
    return res.total_time, imbalance


def test_ablation_block_cyclic(benchmark):
    def run():
        return {
            "BLOCK": _run(Folding(FoldKind.BLOCK)),
            "CYCLIC": _run(Folding(FoldKind.CYCLIC)),
            # block=2 gives 32 blocks wrapping twice around 16 procs
            "BLOCK_CYCLIC(2)": _run(Folding(FoldKind.BLOCK_CYCLIC, 2)),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"LU N={N}, P={P}: folding trade-off"]
    for label, (t, imb) in out.items():
        lines.append(f"  {label:16s} time={t:.3e} imbalance={imb:.2f}")
    text = "\n".join(lines)
    print("\n" + text)
    save_experiment("ablation_blockcyclic", text)

    t_b, i_b = out["BLOCK"]
    t_c, i_c = out["CYCLIC"]
    t_bc, i_bc = out["BLOCK_CYCLIC(2)"]
    # balance ordering: cyclic <= block-cyclic <= block
    assert i_c <= i_bc + 0.05
    assert i_bc <= i_b + 0.05
    # block-cyclic must not be the worst choice overall
    assert t_bc <= t_b * 1.05 or t_bc <= t_c * 1.05
