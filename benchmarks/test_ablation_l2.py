"""Ablation — second-level cache sensitivity.

DASH had a 256KB direct-mapped L2 behind the 64KB L1 (both 16B lines);
the headline experiments here run L1-only.  This ablation turns the
(scaled) L2 on for the stencil and records what changes.

Measured finding: at the scaled problem size the per-processor
footprint at P=32 (~2KB) fits inside the scaled L2 (8KB), so steady
state becomes cache-resident for every scheme and the differences
compress — base and comp-decomp converge, with the data transformation
still on top.  This is exactly why the headline experiments are run
L1-only: the paper's full-size working sets (64KB/processor vs 64KB L1)
kept the first level under pressure, and scaling the problem without
scaling the L2's *relative* capacity would change the regime being
measured.  The invariant that survives every cache configuration is
that the transformed layout is never worse and the scattered one never
better.
"""

from _common import ALL_SCHEMES, BASE, CD, CDD, record, series
from repro.apps import stencil5
from repro.machine import scaled_dash
from repro.machine.simulate import speedup_curve

N = 96
PROCS = [1, 8, 32]


def _curves(with_l2):
    prog = stencil5.build(n=N, time_steps=4)

    def factory(p):
        m = scaled_dash(p, scale=32, word_bytes=4, page_bytes=512)
        return m.with_l2() if with_l2 else m

    return speedup_curve(prog, ALL_SCHEMES, factory, PROCS)


def test_ablation_l2(benchmark):
    def run():
        return {"L1 only": _curves(False), "L1+L2": _curves(True)}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, curves in out.items():
        record(f"ablation_l2_{label.replace(' ', '_').replace('+', '')}",
               f"stencil N={N} — {label}", curves)
    # L1-only: the strict Figure-8 ordering.
    l1 = out["L1 only"]
    assert series(l1, CD)[32] < series(l1, BASE)[32]
    assert series(l1, CDD)[32] > series(l1, CD)[32]
    # With the scaled L2 the schemes compress (everything becomes
    # cache-resident at this size), but the transformed layout is still
    # the best and the scattered one still the worst.
    l2 = out["L1+L2"]
    assert series(l2, CDD)[32] >= series(l2, CD)[32]
    assert series(l2, CD)[32] <= series(l2, BASE)[32] * 1.05
    # and the L2 does make everything faster in absolute terms —
    # speedups are relative, so check compression instead:
    spread_l1 = series(l1, BASE)[32] / series(l1, CD)[32]
    spread_l2 = series(l2, BASE)[32] / max(series(l2, CD)[32], 1e-9)
    assert spread_l2 < spread_l1
