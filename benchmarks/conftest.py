"""Pytest configuration for the experiment benchmarks.

Run with ``pytest benchmarks/ --benchmark-only``.  Helpers live in
``_common.py``; results are printed and saved under ``results/``.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
