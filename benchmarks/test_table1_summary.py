"""Table 1 — summary of experimental results.

For each program: the 32-processor speedup of BASE vs. the fully
optimized configuration, which techniques are critical, and the data
decompositions found for the major arrays.  The decomposition column is
checked VERBATIM against the paper; the speedups are checked for the
paper's orderings (see EXPERIMENTS.md for measured-vs-paper values).
"""

from _common import ALL_SCHEMES, BASE, CD, CDD, run_speedups, series
from repro.apps import ALL_APPS
from repro.compiler import restructure_program
from repro.decomp.greedy import decompose_program
from repro.decomp.hpf import distribute_string
from repro.report import (
    Table1Row,
    classify_critical,
    format_table1,
    save_experiment,
)

# (app, build kwargs, machine kwargs, paper's decomposition strings)
CONFIGS = [
    ("vpenta", dict(n=64, time_steps=2), dict(scale=4, word_bytes=8),
     {"F": "(*, BLOCK, *)", "A": "(*, BLOCK)"}),
    ("lu", dict(n=64), dict(scale=16, word_bytes=8),
     {"A": "(*, CYCLIC)"}),
    ("stencil5", dict(n=96, time_steps=4),
     dict(scale=32, word_bytes=4, page_bytes=512),
     {"A": "(BLOCK, BLOCK)"}),
    ("adi", dict(n=80, time_steps=4), dict(scale=16, word_bytes=8),
     {"X": "(*, BLOCK)"}),
    ("erlebacher", dict(n=20, time_steps=2), dict(scale=16, word_bytes=8),
     {"DUX": "(*, *, BLOCK)", "DUY": "(*, *, BLOCK)",
      "DUZ": "(*, BLOCK, *)"}),
    ("swm", dict(n=96, time_steps=3),
     dict(scale=32, word_bytes=4, page_bytes=512),
     {"P": "(BLOCK, BLOCK)"}),
    ("tomcatv", dict(n=64, time_steps=4), dict(scale=16, word_bytes=8),
     {"AA": "(BLOCK, *)"}),
]


def _run_table():
    rows = []
    for name, bkw, mkw, paper_dists in CONFIGS:
        prog = ALL_APPS[name].build(**bkw)
        decomp = decompose_program(restructure_program(prog), 32)
        dists = []
        for arr, expected in paper_dists.items():
            dd = decomp.data_for(arr)
            got = (
                "REPLICATED" if dd.replicated
                else distribute_string(dd, decomp.foldings)
            )
            assert got == expected, (name, arr, got, expected)
            dists.append(f"{arr}{got}")
        curves = run_speedups(prog, mkw, procs=[1, 32])
        base = series(curves, BASE)[32]
        cd = series(curves, CD)[32]
        cdd = series(curves, CDD)[32]
        comp_crit, data_crit = classify_critical(base, cd, cdd)
        rows.append(
            Table1Row(name, base, cdd, comp_crit, data_crit, dists)
        )
    return rows


def test_table1(benchmark):
    rows = benchmark.pedantic(_run_table, rounds=1, iterations=1)
    text = format_table1(rows)
    print("\n" + text)
    save_experiment("table1_summary", text)
    # Paper ordering: every program improves with full optimization.
    for r in rows:
        assert r.optimized_speedup > r.base_speedup * 0.95, r.program
    # The paper marks Data Transform critical for every program but ADI.
    by_name = {r.program: r for r in rows}
    assert not by_name["adi"].data_transform_critical
    for name in ("vpenta", "lu", "stencil5", "tomcatv"):
        assert by_name[name].data_transform_critical, name
