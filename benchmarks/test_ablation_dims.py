"""Ablation — 1-D vs 2-D decomposition for the stencil (Section 3.2:
"parallelizing as many dimensions of loops as possible tends to
decrease the communication to computation ratio").

With the data transformation applied in both cases, the 2-D blocked
decomposition exchanges less boundary data per processor than 1-D
strips (perimeter scales with 2N/sqrt(P) instead of 2N), showing up as
fewer sharing misses/upgrades.
"""

import numpy as np

from _common import save_experiment
from repro.apps import stencil5
from repro.codegen.spmd import Scheme, generate_spmd
from repro.compiler import restructure_program
from repro.decomp.greedy import decompose_program
from repro.machine import scaled_dash
from repro.machine.simulate import simulate

N = 96
P = 16


def _run(max_dims):
    prog = restructure_program(stencil5.build(n=N, time_steps=4))
    decomp = decompose_program(prog, P, max_dims=max_dims)
    spmd = generate_spmd(prog, Scheme.COMP_DECOMP_DATA, P, decomp=decomp)
    machine = scaled_dash(P, scale=32, word_bytes=4, page_bytes=512)
    res = simulate(spmd, machine)
    sharing = (
        res.miss_breakdown["true_sharing"]
        + res.miss_breakdown["false_sharing"]
        + res.miss_breakdown["upgrade"]
    )
    return res.total_time, sharing, decomp.rank


def test_ablation_stencil_dims(benchmark):
    def run():
        return {1: _run(1), 2: _run(2)}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    t1, share1, rank1 = out[1]
    t2, share2, rank2 = out[2]
    assert rank1 == 1 and rank2 == 2
    text = (
        f"stencil N={N}, P={P} (comp decomp + data transform)\n"
        f"  1-D strips: time={t1:.3e}, boundary sharing events={share1}\n"
        f"  2-D blocks: time={t2:.3e}, boundary sharing events={share2}"
    )
    print("\n" + text)
    save_experiment("ablation_dims", text)
    # 2-D must not be worse, and the boundary traffic shrinks.
    assert t2 <= t1 * 1.05
    assert share2 <= share1
