"""Figure 6 — LU decomposition speedups, two data-set sizes.

Paper: base degrades (19.5 at best, with dips); comp-decomp (cyclic
columns, locks instead of barriers) is good but *erratic* — for the
1Kx1K size every 8th column maps to the same 64KB-cache location, and
with 32 processors each processor's cyclic columns alias perfectly:
"the speedup for 31 processors is 5 times better than for 32".  The
data transformation packs each processor's columns contiguously:
"performance stabilizes and is consistently high" (33.5).

Reproduction:
* large size N=64, cache 4KB (aliasing period = cache/column = 8
  columns; cyclic stride 32 = 0 mod 8 reproduces the 32-processor
  cliff; 31 is coprime and spreads),
* small size N=48, same machine (no power-of-two pathology, matching
  the better-behaved 256x256 curve).
"""

from _common import BASE, CD, CDD, record, run_speedups, series
from repro.apps import lu

PROCS = [1, 2, 4, 8, 16, 31, 32]


def test_fig06_lu_large(benchmark):
    prog = lu.build(n=64)
    curves = benchmark.pedantic(
        run_speedups,
        args=(prog, dict(scale=16, word_bytes=8)),
        kwargs=dict(procs=PROCS),
        rounds=1,
        iterations=1,
    )
    record("fig06_lu_large",
           "Figure 6 (right): LU 1Kx1K -> N=64, scaled DASH /16", curves)
    base = series(curves, BASE)
    cd = series(curves, CD)
    cdd = series(curves, CDD)
    # the 31-vs-32 conflict cliff exists for comp-decomp...
    assert cd[31] > 1.2 * cd[32]
    # ...and the data transformation removes it
    assert cdd[32] > 0.8 * cdd[31]
    # fully optimized beats base and is the best at 32
    assert cdd[32] > base[32]
    assert cdd[32] >= cd[32]


def test_fig06_lu_small(benchmark):
    prog = lu.build(n=48)
    curves = benchmark.pedantic(
        run_speedups,
        args=(prog, dict(scale=16, word_bytes=8)),
        kwargs=dict(procs=[1, 2, 4, 8, 16, 32]),
        rounds=1,
        iterations=1,
    )
    record("fig06_lu_small",
           "Figure 6 (left): LU 256x256 -> N=48, scaled DASH /16", curves)
    base = series(curves, BASE)
    cdd = series(curves, CDD)
    assert cdd[32] > base[32]
    # the small size plateaus (pipeline fill dominates a small matrix),
    # as the paper's 256x256 curve also flattens near its peak
    assert cdd[32] > 0.85 * cdd[8]
