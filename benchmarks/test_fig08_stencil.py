"""Figure 8 — five-point stencil speedups (512x512 in the paper).

Paper: the decomposition phase picks two-dimensional blocks (better
communication-to-computation ratio) — but with FORTRAN layouts each
processor's 2-D block is scattered, and comp-decomp performs *worse
than base*.  With the data transformation the program reaches 28.5 on
32 processors, the best of the three.

Reproduction: N=96 (paper 512), REAL*4, cache 2KB (64KB/32), page 512B.
The page/partition-run ratio drives the first-touch NUMA penalty of the
scattered blocks: a 512B page spans several processors' row segments
(48B each at P=32), exactly as the paper's 4KB pages spanned several
64-row segments.
"""

from _common import BASE, CD, CDD, record, run_speedups, series
from repro.apps import stencil5


def test_fig08_stencil(benchmark):
    prog = stencil5.build(n=96, time_steps=4)
    curves = benchmark.pedantic(
        run_speedups,
        args=(prog, dict(scale=32, word_bytes=4, page_bytes=512)),
        rounds=1,
        iterations=1,
    )
    record("fig08_stencil",
           "Figure 8: 5-pt stencil (N=96, scaled DASH /32)", curves)
    base = series(curves, BASE)
    cd = series(curves, CD)
    cdd = series(curves, CDD)
    # THE Figure-8 result: computation decomposition alone is WORSE
    # than base; adding the data transformation makes it best.
    assert cd[32] < base[32]
    assert cdd[32] > cd[32] * 1.5
    assert cdd[32] >= base[32] * 0.95
