"""Figure 13 — tomcatv (mesh generation) speedups.

Paper: base parallelizes each nest's outermost loop, so column-block
nests and row-block nests alternate — little cross-nest re-use, max
speedup ~5.  The global decomposition fixes a block-of-rows assignment
(good temporal locality, but rows non-contiguous: still poor);
restructuring the arrays lifts it to 18.

Reproduction: N=64 (paper 257), DOUBLE, cache 4KB (64KB/16).
"""

from _common import BASE, CD, CDD, record, run_speedups, series
from repro.apps import tomcatv


def test_fig13_tomcatv(benchmark):
    prog = tomcatv.build(n=64, time_steps=4)
    curves = benchmark.pedantic(
        run_speedups,
        args=(prog, dict(scale=16, word_bytes=8)),
        rounds=1,
        iterations=1,
    )
    record("fig13_tomcatv",
           "Figure 13: tomcatv (N=64, scaled DASH /16)", curves)
    base = series(curves, BASE)
    cd = series(curves, CD)
    cdd = series(curves, CDD)
    # both techniques needed (Table 1: both checkmarks): the full
    # pipeline clearly beats base, comp-decomp alone does not get there.
    assert cdd[32] > 1.3 * base[32]
    assert cdd[32] > 1.5 * cd[32]
