"""Figures 2 and 3 — the data-transformation primitives, element by
element.

Figure 2: a 12-element array strip-mined with strip size 3, then
transposed, making every third element contiguous.

Figure 3: an 8x4 array restructured for (BLOCK,*), (CYCLIC,*) and
(BLOCK-CYCLIC(2),*) over P=2, with the new index tuples, new array
bounds, and new linearized addresses.

These are exact-value reproductions (no simulation): the tables printed
here are the paper's figures.
"""

from _common import record, save_experiment
from repro.datatrans.layout import Layout
from repro.datatrans.primitives import index_table, strip_mine, transpose
from repro.datatrans.transform import derive_layout
from repro.decomp.hpf import parse_distribute
from repro.ir.arrays import ArrayDecl


def _figure2_tables():
    original = Layout.identity((12,))
    stripped = strip_mine(original, 0, 3)
    final = transpose(stripped)
    return original, stripped, final


def test_fig02_strip_mine_and_permute(benchmark):
    original, stripped, final = benchmark.pedantic(
        _figure2_tables, rounds=1, iterations=1
    )
    # (b) strip-mined indices: element i -> (i mod 3, i div 3), same addr
    for i in range(12):
        assert stripped.map_index((i,)) == (i % 3, i // 3)
        assert stripped.linearize((i,)) == i
    # (c) transposed: every third element contiguous
    lines = ["Figure 2: i -> (b) strip-mined index/addr -> (c) final"]
    for i in range(12):
        lines.append(
            f"  {i:2d} -> {stripped.map_index((i,))}/{stripped.linearize((i,)):2d}"
            f" -> {final.map_index((i,))}/{final.linearize((i,)):2d}"
        )
        assert final.linearize((i,)) == i // 3 + 4 * (i % 3)
    save_experiment("fig02_stripmine", "\n".join(lines))


def _figure3(dist):
    decl = ArrayDecl("A", (8, 4), 4)
    dd, folds = parse_distribute(dist, "A", 2)
    return derive_layout(decl, dd, folds, grid=[2])


def test_fig03_block(benchmark):
    ta = benchmark.pedantic(_figure3, args=("(BLOCK,*)",), rounds=1,
                            iterations=1)
    # Figure 3(d): new bounds (b, d2, P) = (4, 4, 2)
    assert ta.layout.dims == (4, 4, 2)
    # spot values from Figure 3(c)
    assert ta.layout.map_index((4, 0)) == (0, 0, 1)
    assert ta.layout.linearize((4, 0)) == 16
    assert ta.layout.map_index((7, 3)) == (3, 3, 1)
    assert ta.layout.linearize((7, 3)) == 31
    _save_fig3_table("fig03_block", ta)


def test_fig03_cyclic(benchmark):
    ta = benchmark.pedantic(_figure3, args=("(CYCLIC,*)",), rounds=1,
                            iterations=1)
    assert ta.layout.dims == (4, 4, 2)
    assert ta.layout.map_index((1, 0)) == (0, 0, 1)
    assert ta.layout.linearize((1, 0)) == 16
    assert ta.layout.map_index((6, 0)) == (3, 0, 0)
    _save_fig3_table("fig03_cyclic", ta)


def test_fig03_block_cyclic(benchmark):
    ta = benchmark.pedantic(_figure3, args=("(CYCLIC(2),*)",), rounds=1,
                            iterations=1)
    # Figure 3(d): (b, d1/(b P), d2, P) = (2, 2, 4, 2)
    assert ta.layout.dims == (2, 2, 4, 2)
    # processor = middle strip dim = (i1 div b) mod P
    for i1 in range(8):
        assert ta.owner_coords((i1, 0)) == ((i1 // 2) % 2,)
    _save_fig3_table("fig03_block_cyclic", ta)


def _save_fig3_table(name, ta):
    lines = [f"layout dims {ta.layout.dims}"]
    for (orig, new, addr) in index_table(ta.layout):
        lines.append(f"  {orig} -> {new} @ {addr}")
    # The defining property: each processor's share is contiguous.
    per = {}
    for i in range(8):
        for j in range(4):
            per.setdefault(ta.owner_coords((i, j)), []).append(
                ta.layout.linearize((i, j))
            )
    for o, addrs in per.items():
        s = sorted(addrs)
        assert s[-1] - s[0] == len(s) - 1
        lines.append(f"  proc {o}: addresses {s[0]}..{s[-1]} (contiguous)")
    save_experiment(name, "\n".join(lines))
