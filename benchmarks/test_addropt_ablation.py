"""Section 4.3 ablation — the address optimizations.

The paper: "if these operations are performed on every array access,
the overhead will be much greater than any performance gained by
improved cache behavior ... The optimizations have proved to be
important and effective."

This benchmark measures the dynamic division/modulo counts of the
transformed-address code with and without the three optimizations, for
the two layouts the paper's examples use:

* the (BLOCK, *) SPMD loop of Section 4.3 (strip-invariant elimination:
  the whole inner range sits in one strip -> zero div/mod per
  iteration);
* a CYCLIC layout traversed sequentially (strength reduction: the
  carry fires once per P iterations).
"""

from _common import save_experiment
from repro.codegen.addrexpr import build_address_expr, count_divmod
from repro.codegen.optimize import optimize_ref_address
from repro.datatrans.transform import derive_layout
from repro.decomp.hpf import parse_distribute
from repro.ir.arrays import ArrayDecl
from repro.ir.expr import Var


def _block_case(n=128, p=8):
    """Per-processor loop over its strip of a (BLOCK,*) array."""
    decl = ArrayDecl("A", (n, n))
    dd, folds = parse_distribute("(BLOCK, *)", "A", 2)
    ta = derive_layout(decl, dd, folds, [p])
    addr = build_address_expr(ta.layout, (Var("I"), Var("J")))
    b = -(-n // p)
    # processor 3's strip: I in [3b, 4b)
    rep = optimize_ref_address(addr, "I", (3 * b, 4 * b - 1),
                               {"J": (0, n - 1)})
    trips = b
    entries = n  # the I loop runs once per J
    return rep, trips, entries


def _cyclic_case(n=128, p=8):
    """Sequential traversal of a (CYCLIC,*) array (strength reduction)."""
    decl = ArrayDecl("A", (n, n))
    dd, folds = parse_distribute("(CYCLIC, *)", "A", 2)
    ta = derive_layout(decl, dd, folds, [p])
    addr = build_address_expr(ta.layout, (Var("I"), Var("J")))
    rep = optimize_ref_address(addr, "I", (0, n - 1), {"J": (0, n - 1)})
    return rep, n, n


def test_addropt_block_invariant(benchmark):
    rep, trips, entries = benchmark.pedantic(
        _block_case, rounds=1, iterations=1
    )
    naive, opt = rep.dynamic_counts(trips, entries)
    assert rep.optimized_per_iter == 0.0
    assert opt <= naive / trips * 2  # per-entry only
    save_experiment(
        "addropt_block",
        f"(BLOCK,*) strip loop: naive div/mod = {naive:.0f}, "
        f"optimized = {opt:.0f}  ({naive / max(opt, 1):.0f}x fewer)",
    )


def test_addropt_cyclic_strength(benchmark):
    rep, trips, entries = benchmark.pedantic(
        _cyclic_case, rounds=1, iterations=1
    )
    naive, opt = rep.dynamic_counts(trips, entries)
    assert opt < naive / 4
    save_experiment(
        "addropt_cyclic",
        f"(CYCLIC,*) sequential loop: naive div/mod = {naive:.0f}, "
        f"optimized = {opt:.0f}  ({naive / max(opt, 1):.1f}x fewer)",
    )


def test_addropt_summary_table(benchmark):
    def run():
        rows = []
        for label, case in [("(BLOCK,*) strip", _block_case),
                            ("(CYCLIC,*) sweep", _cyclic_case)]:
            rep, trips, entries = case()
            naive, opt = rep.dynamic_counts(trips, entries)
            strategies = ",".join(sorted({p.strategy for p in rep.plans}))
            rows.append((label, naive, opt, strategies))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'case':20s} {'naive':>10s} {'optimized':>10s}  strategies"]
    for label, naive, opt, strategies in rows:
        lines.append(f"{label:20s} {naive:10.0f} {opt:10.1f}  {strategies}")
    text = "\n".join(lines)
    print("\n" + text)
    save_experiment("addropt_ablation", text)
    for _, naive, opt, _ in rows:
        assert opt < naive
