"""Figure 12 — swm256 (shallow water) speedups.

Paper: highly data-parallel; base already achieves good speedups
(15.6).  The decomposition phase goes two-dimensional to cut the
communication-to-computation ratio — which scatters each processor's
data and LOSES without the layout change; with it, the program ends
slightly ahead of base (17.9).

Reproduction: N=96 (paper 256), REAL*4, cache 2KB, page 512B (same
page/partition-run regime as the stencil).
"""

from _common import BASE, CD, CDD, record, run_speedups, series
from repro.apps import swm


def test_fig12_swm(benchmark):
    prog = swm.build(n=96, time_steps=3)
    curves = benchmark.pedantic(
        run_speedups,
        args=(prog, dict(scale=32, word_bytes=4, page_bytes=512)),
        rounds=1,
        iterations=1,
    )
    record("fig12_swm", "Figure 12: swm256 (N=96, scaled DASH /32)", curves)
    base = series(curves, BASE)
    cd = series(curves, CD)
    cdd = series(curves, CDD)
    # base is already good; comp-decomp alone loses; the data transform
    # "regains the performance lost" (paper: slightly better than base).
    assert cd[32] < base[32]
    assert cdd[32] > cd[32]
    assert cdd[32] > 0.85 * base[32]
