"""Figure 11 — Erlebacher (3-D tridiagonal solves) speedups.

Paper: base 11.6 at 32 (X and Y phases local, Z phase non-local);
comp-decomp improves slightly (no non-local Z accesses; the read-only
input array is replicated); restructuring DUZ makes the Z phase's local
references contiguous, reaching 20.2 — a modest gain because two-thirds
of the program is already perfectly parallel and local.

Reproduction: N=20^3 (paper 64^3), DOUBLE, cache 4KB (64KB/16).
"""

from _common import BASE, CD, CDD, record, run_speedups, series
from repro.apps import erlebacher


def test_fig11_erlebacher(benchmark):
    prog = erlebacher.build(n=20, time_steps=2)
    curves = benchmark.pedantic(
        run_speedups,
        args=(prog, dict(scale=16, word_bytes=8)),
        rounds=1,
        iterations=1,
    )
    record("fig11_erlebacher",
           "Figure 11: Erlebacher (N=20^3, scaled DASH /16)", curves)
    base = series(curves, BASE)
    cd = series(curves, CD)
    cdd = series(curves, CDD)
    # full optimization wins, but only modestly (the paper: 12.23 -> 20.2)
    assert cdd[32] > base[32]
    assert cdd[32] < 2.5 * base[32]
    # data transformation adds over comp-decomp (DUZ restructuring)
    assert cdd[32] > cd[32]
