"""Ablation — partition padding (related-work extension).

The paper's related work (Jeremiassen & Eggers) pads data structures to
cache-line boundaries to kill residual false sharing.  After the data
transformation each processor's partition is contiguous, but when its
size is not a line multiple, neighbouring processors still share one
line at each partition boundary.  The ``line_pad_elements`` extension
pads partitions to line multiples; this ablation measures the false
sharing it removes.
"""

from _common import save_experiment
from repro.apps import simple
from repro.codegen.spmd import Scheme, generate_spmd
from repro.compiler import restructure_program
from repro.decomp.greedy import decompose_program
from repro.machine import scaled_dash
from repro.machine.simulate import simulate

P = 4


def _run(pad):
    # N=25, P=4: b=7, partition = 7*25 = 175 elements * 4B = 700B, which
    # is NOT a 16B-line multiple: partitions end mid-line and neighbours
    # share one line at each boundary.
    n = 25
    prog = restructure_program(simple.build(n=n, time_steps=4))
    decomp = decompose_program(prog, P)
    machine = scaled_dash(P, scale=32, word_bytes=4)
    line_elems = machine.cache.line_bytes // 4
    spmd = generate_spmd(
        prog, Scheme.COMP_DECOMP_DATA, P, decomp=decomp,
        line_pad_elements=line_elems if pad else None,
    )
    res = simulate(spmd, machine)
    fs = res.miss_breakdown["false_sharing"] + res.miss_breakdown["upgrade"]
    return res.total_time, fs, spmd


def test_ablation_partition_padding(benchmark):
    def run():
        return {"unpadded": _run(False), "padded": _run(True)}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    t0, fs0, spmd0 = out["unpadded"]
    t1, fs1, spmd1 = out["padded"]
    a0 = spmd0.transformed["A"].layout.size
    a1 = spmd1.transformed["A"].layout.size
    text = (
        f"Figure-1 program N=25, P={P} (comp decomp + data transform)\n"
        f"  unpadded: A size={a0}, boundary sharing events={fs0}, "
        f"time={t0:.3e}\n"
        f"  padded:   A size={a1}, boundary sharing events={fs1}, "
        f"time={t1:.3e}"
    )
    print("\n" + text)
    save_experiment("ablation_padding", text)
    assert a1 > a0  # padding costs storage...
    assert fs1 <= fs0  # ...and removes boundary sharing
    # padded partitions are line multiples
    ta = spmd1.transformed["A"]
    data_elems = 1
    for atom in ta.layout.atoms[:-1]:
        data_elems *= atom.extent
    assert (data_elems * 4) % 16 == 0
