"""Tests for the address-expression IR."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.codegen.addrexpr import (
    AAdd,
    AAffine,
    AConst,
    ADiv,
    AMod,
    AScale,
    AVar,
    build_address_expr,
    count_divmod,
    divmod_nodes,
)
from repro.datatrans.transform import derive_layout
from repro.decomp.hpf import parse_distribute
from repro.ir.arrays import ArrayDecl
from repro.ir.expr import Var


class TestNodes:
    def test_const(self):
        assert AConst(5).eval({}) == 5
        assert AConst(5).to_c() == "5"

    def test_var(self):
        assert AVar("i").eval({"i": 7}) == 7

    def test_affine(self):
        e = AAffine(2 * Var("I") + 1)
        assert e.eval({"I": 3}) == 7

    def test_add_scale(self):
        e = AAdd((AConst(1), AScale(4, AVar("i"))))
        assert e.eval({"i": 2}) == 9
        assert "4*" in e.to_c()

    def test_div_mod_floor(self):
        assert ADiv(AConst(7), 3).eval({}) == 2
        assert AMod(AConst(7), 3).eval({}) == 1

    def test_counts(self):
        e = AAdd((ADiv(AMod(AVar("i"), 4), 2), AMod(AVar("j"), 8)))
        assert count_divmod(e) == (1, 2)
        assert len(divmod_nodes(e)) == 3


class TestBuildAddressExpr:
    def _check(self, dims, dist, grid):
        decl = ArrayDecl("A", dims)
        dd, folds = parse_distribute(dist, "A", len(dims))
        ta = derive_layout(decl, dd, folds, grid)
        exprs = tuple(Var(f"X{k}") for k in range(len(dims)))
        addr = build_address_expr(ta.layout, exprs)
        # compare against the layout for every element
        import itertools

        for idx in itertools.product(*(range(d) for d in dims)):
            env = {f"X{k}": v for k, v in enumerate(idx)}
            assert addr.eval(env) == ta.layout.linearize(idx)
        return addr

    def test_block(self):
        addr = self._check((8, 4), "(BLOCK, *)", [2])
        d, m = count_divmod(addr)
        assert d >= 1 and m >= 1

    def test_cyclic(self):
        self._check((8, 4), "(CYCLIC, *)", [2])

    def test_block_cyclic(self):
        self._check((16, 2), "(CYCLIC(2), *)", [2])

    def test_identity_has_no_divmod(self):
        decl = ArrayDecl("A", (8, 4))
        from repro.datatrans.transform import identity_transform

        ta = identity_transform(decl)
        addr = build_address_expr(ta.layout, (Var("I"), Var("J")))
        assert count_divmod(addr) == (0, 0)

    def test_to_c_renders(self):
        decl = ArrayDecl("A", (8, 4))
        dd, folds = parse_distribute("(BLOCK, *)", "A", 2)
        ta = derive_layout(decl, dd, folds, [2])
        addr = build_address_expr(ta.layout, (Var("I"), Var("J")))
        c = addr.to_c()
        assert "%" in c and "/" in c

    @given(st.integers(0, 7), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_affine_subscripts(self, i, j):
        decl = ArrayDecl("A", (10, 6))
        dd, folds = parse_distribute("(CYCLIC, *)", "A", 2)
        ta = derive_layout(decl, dd, folds, [2])
        # subscripts A(I+1, J+2)
        addr = build_address_expr(
            ta.layout, (Var("I") + 1, Var("J") + 2)
        )
        env = {"I": i, "J": j}
        assert addr.eval(env) == ta.layout.linearize((i + 1, j + 2))
