"""End-to-end integration tests: compile + simulate at small scale and
check the paper's qualitative orderings hold."""

import numpy as np
import pytest

from repro.apps import adi, lu, simple, stencil5, tomcatv
from repro.codegen.spmd import Scheme
from repro.compiler import compile_all, compile_program
from repro.machine import scaled_dash
from repro.machine.simulate import simulate, speedup_curve

ALL = [Scheme.BASE, Scheme.COMP_DECOMP, Scheme.COMP_DECOMP_DATA]


class TestFigure1Pipeline:
    """The running example, end to end."""

    @pytest.fixture(scope="class")
    def curves(self):
        prog = simple.build(n=64, time_steps=4)
        factory = lambda p: scaled_dash(p, scale=16, word_bytes=4)
        return speedup_curve(prog, ALL, factory, [1, 8, 32])

    def test_baseline_one(self, curves):
        for series in curves.values():
            assert series[0][1] == pytest.approx(1.0, abs=0.05)

    def test_data_transform_beats_comp_decomp(self, curves):
        cd = dict(curves[Scheme.COMP_DECOMP.value])
        cdd = dict(curves[Scheme.COMP_DECOMP_DATA.value])
        assert cdd[32] > cd[32]

    def test_data_transform_scales(self, curves):
        cdd = dict(curves[Scheme.COMP_DECOMP_DATA.value])
        assert cdd[32] > cdd[8] > 1.0


class TestLuConflictCliff:
    """Figure 6's 32-processor conflict cliff: comp-decomp's cyclic
    columns alias pathologically when P divides the cache-aliasing
    period; the data transformation removes the effect."""

    @pytest.fixture(scope="class")
    def results(self):
        prog = lu.build(n=64)
        factory = lambda p: scaled_dash(p, scale=16, word_bytes=8)
        out = {}
        for scheme in (Scheme.COMP_DECOMP, Scheme.COMP_DECOMP_DATA):
            for p in (31, 32):
                spmd = compile_program(prog, scheme, p)
                out[(scheme, p)] = simulate(spmd, factory(p)).total_time
        return out

    def test_cliff_in_comp_decomp(self, results):
        t31 = results[(Scheme.COMP_DECOMP, 31)]
        t32 = results[(Scheme.COMP_DECOMP, 32)]
        assert t32 > 1.2 * t31  # 32 procs noticeably worse than 31

    def test_data_transform_stabilizes(self, results):
        t31 = results[(Scheme.COMP_DECOMP_DATA, 31)]
        t32 = results[(Scheme.COMP_DECOMP_DATA, 32)]
        assert abs(t32 - t31) / t31 < 0.25


class TestStencilOrdering:
    """Figure 8: computation decomposition alone (scattered 2-D blocks)
    loses to BASE; adding the data transformation wins."""

    @pytest.fixture(scope="class")
    def at32(self):
        prog = stencil5.build(n=96, time_steps=4)
        factory = lambda p: scaled_dash(
            p, scale=32, word_bytes=4, page_bytes=512
        )
        curves = speedup_curve(prog, ALL, factory, [32])
        return {k: v[0][1] for k, v in curves.items()}

    def test_comp_decomp_loses(self, at32):
        assert at32[Scheme.COMP_DECOMP.value] < at32[Scheme.BASE.value]

    def test_data_transform_recovers(self, at32):
        assert (
            at32[Scheme.COMP_DECOMP_DATA.value]
            > at32[Scheme.COMP_DECOMP.value] * 1.5
        )


class TestAdiOrdering:
    """Figure 10: the global block-column decomposition (with a
    pipelined row sweep) beats BASE, and data transformation adds
    nothing because block columns are already contiguous."""

    @pytest.fixture(scope="class")
    def at32(self):
        prog = adi.build(n=64, time_steps=4)
        factory = lambda p: scaled_dash(p, scale=16, word_bytes=8)
        curves = speedup_curve(prog, ALL, factory, [32])
        return {k: v[0][1] for k, v in curves.items()}

    def test_comp_decomp_wins(self, at32):
        assert at32[Scheme.COMP_DECOMP.value] > at32[Scheme.BASE.value]

    def test_data_transform_is_noop(self, at32):
        assert at32[Scheme.COMP_DECOMP_DATA.value] == pytest.approx(
            at32[Scheme.COMP_DECOMP.value], rel=1e-6
        )


class TestTomcatvOrdering:
    """Figure 13: full optimization roughly doubles BASE."""

    def test_ordering(self):
        prog = tomcatv.build(n=64, time_steps=4)
        factory = lambda p: scaled_dash(p, scale=16, word_bytes=8)
        curves = speedup_curve(
            prog, [Scheme.BASE, Scheme.COMP_DECOMP_DATA], factory, [32]
        )
        base = curves[Scheme.BASE.value][0][1]
        cdd = curves[Scheme.COMP_DECOMP_DATA.value][0][1]
        assert cdd > 1.3 * base


class TestCompiledArtifactsConsistency:
    def test_compile_all_consistent_with_individual(self):
        prog = simple.build(n=16, time_steps=2)
        cp = compile_all(prog, 4)
        indiv = compile_program(prog, Scheme.COMP_DECOMP_DATA, 4)
        assert (
            cp.comp_decomp_data.transformed["A"].layout.dims
            == indiv.transformed["A"].layout.dims
        )

    def test_semantics_invariant_under_schemes(self):
        """The transformations never change program values — execute the
        original and restructured programs and compare."""
        from repro.codegen.executor import default_init, execute_program
        from repro.compiler import restructure_program

        prog = stencil5.build(n=10, time_steps=2)
        init = default_init(prog)
        a = execute_program(prog, init=init)
        b = execute_program(restructure_program(prog), init=init)
        for k in a:
            assert np.allclose(a[k], b[k])
