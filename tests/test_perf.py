"""Differential performance attribution (PR-10): the wall-time ledger
(build, reconciliation contract, anchor rollup), ``perf record``
payloads, and the ``perf diff`` noise matrix.

The load-bearing contracts:

* ledger rows (incl. ``<unattributed>``) sum back to the measured wall
  total on every point — the accounting is falsifiable;
* two same-config runs produce no significant diff rows, while an
  injected per-pass stall is ranked as the top culprit;
* deterministic structure (row sets, counts) gates exactly; self time
  gates only same-host and only past relative AND absolute thresholds.
"""

import copy
import json
import time

import pytest

from repro import faults, obs
from repro.__main__ import main
from repro.codegen.spmd import parse_scheme
from repro.obs import bench
from repro.obs import core as _obs_core
from repro.obs.perf import (
    UNATTRIBUTED,
    build_ledger,
    ledger_reconciles,
    perf_diff,
    record_point,
)
from repro.pipeline import reset_session
from repro.report import format_ledger_table, format_perf_diff_table


@pytest.fixture(autouse=True)
def _clean_state():
    obs.disable()
    obs.reset()
    faults.configure(None)
    reset_session()
    yield
    obs.disable()
    obs.reset()
    faults.configure(None)
    reset_session()


@pytest.fixture(scope="module")
def recorded():
    """One ``perf record`` payload, shared read-only (deep-copy before
    mutating)."""
    return record_point("simple", parse_scheme("data"), 2, n=8)


class TestBuildLedger:
    def test_rollup_attributes_descendants_to_anchor(self):
        # A non-anchor child span inside a pass span: its self time
        # rolls into the pass row, but only the pass itself counts.
        obs.enable(reset=True)
        with obs.span("pass.layout", cat="pipeline"):
            time.sleep(0.002)
            with obs.span("decomp.greedy", cat="decomp"):
                time.sleep(0.002)
        total = 0.02
        ledger = build_ledger(obs.collector(), total)
        rows = {(r["kind"], r["name"]): r for r in ledger["rows"]}
        assert ("pass", "layout") in rows
        assert ("other", "decomp.greedy") not in rows
        row = rows[("pass", "layout")]
        assert row["count"] == 1
        assert row["self_s"] >= 0.004 * 0.5  # both sleeps
        ok, _ = ledger_reconciles(ledger)
        assert ok

    def test_unanchored_span_gets_other_row(self):
        obs.enable(reset=True)
        with obs.span("compiler.compile", cat="compiler"):
            pass
        ledger = build_ledger(obs.collector(), 1.0)
        rows = {(r["kind"], r["name"]) for r in ledger["rows"]}
        assert ("other", "compiler.compile") in rows

    def test_residual_is_total_minus_span_sum(self):
        obs.enable(reset=True)
        with obs.span("sim.simulate", cat="machine"):
            time.sleep(0.001)
        ledger = build_ledger(obs.collector(), 10.0)
        assert ledger["rows"][-1]["name"] == UNATTRIBUTED
        assert ledger["unattributed_s"] == pytest.approx(
            10.0 - ledger["attributed_s"])
        ok, row_sum = ledger_reconciles(ledger)
        assert ok and row_sum == pytest.approx(10.0)

    def test_empty_recording_is_all_residual(self):
        obs.enable(reset=True)
        ledger = build_ledger(obs.collector(), 0.5)
        assert len(ledger["rows"]) == 1
        assert ledger["rows"][0]["self_s"] == 0.5

    def test_reconciles_on_every_bench_grid_point(self):
        # The acceptance property: exhaustive accounting on a real grid.
        snap = bench.run_bench(apps=["simple"], schemes=["base", "data"],
                               procs=[1, 2], n=8, repeats=1)
        for p in snap["points"]:
            ledger = p["perf"]["ledger"]
            ok, row_sum = ledger_reconciles(ledger)
            assert ok, (bench.point_key(p), row_sum, ledger["total_s"])
            assert ledger["unattributed_s"] >= -1e-9
            names = {r["name"] for r in ledger["rows"]}
            assert UNATTRIBUTED in names

    def test_obs_state_restored_by_measure(self, recorded):
        # record_point ran in the module fixture; the global obs state
        # must be back to disabled here.
        assert not obs.enabled()
        assert _obs_core._collector is None or not obs.enabled()


class TestRecordPoint:
    def test_payload_shape(self, recorded):
        assert recorded["kind"] == "perf"
        assert set(recorded["host"]) == {"platform", "machine", "python",
                                         "node", "cpu", "cores"}
        (point,) = recorded["points"]
        assert point["app"] == "simple" and point["nprocs"] == 2
        assert point["sim"]["n_accesses"] > 0
        ok, _ = ledger_reconciles(point["perf"]["ledger"])
        assert ok
        kinds = {r["kind"] for r in point["perf"]["ledger"]["rows"]}
        assert {"pass", "sim", "residual"} <= kinds

    def test_stacks_are_folded_lines(self, recorded):
        from repro.obs.flame import parse_collapsed

        stacks = recorded["points"][0]["perf"]["stacks"]
        assert stacks
        parsed = parse_collapsed(stacks)
        assert all(v > 0 for v in parsed.values())

    def test_payload_json_safe(self, recorded):
        assert json.loads(json.dumps(recorded)) == recorded

    def test_ledger_table_renders(self, recorded):
        table = format_ledger_table(recorded["points"][0]["perf"]["ledger"])
        assert "reconciliation: OK" in table
        assert UNATTRIBUTED in table


class TestPerfDiff:
    def test_identical_runs_quiet(self, recorded):
        pd = perf_diff(recorded, copy.deepcopy(recorded))
        assert not pd.significant
        assert pd.n_points == 1 and pd.rows == []
        assert "QUIET" in format_perf_diff_table(pd)

    def test_sub_threshold_drift_quiet(self, recorded):
        cur = copy.deepcopy(recorded)
        for r in cur["points"][0]["perf"]["ledger"]["rows"]:
            r["self_s"] *= 1.05  # +5%, under the 30% relative gate
        assert not perf_diff(recorded, cur).significant

    def test_sub_floor_jitter_quiet(self, recorded):
        # +200% relative but +2ms absolute: under the 10ms floor.
        base = copy.deepcopy(recorded)
        cur = copy.deepcopy(recorded)
        for br, cr in zip(base["points"][0]["perf"]["ledger"]["rows"],
                          cur["points"][0]["perf"]["ledger"]["rows"]):
            br["self_s"] = 0.001
            cr["self_s"] = 0.003
        assert not perf_diff(base, cur).significant
        assert perf_diff(base, cur, wall_abs_floor=0.0).significant

    def test_injected_slowdown_ranked_first(self, recorded):
        cur = copy.deepcopy(recorded)
        rows = cur["points"][0]["perf"]["ledger"]["rows"]
        target = next(r for r in rows if r["kind"] == "pass")
        target["self_s"] += 5.0
        pd = perf_diff(recorded, cur)
        assert pd.significant
        top = pd.culprits[0]
        assert top.row == f"pass/{target['name']}"
        assert top.status == "regressed"
        table = format_perf_diff_table(pd)
        assert f"pass/{target['name']}" in table and "#1" in table

    def test_count_drift_is_changed_even_cross_host(self, recorded):
        cur = copy.deepcopy(recorded)
        cur["host"] = dict(cur["host"], node="elsewhere")
        rows = cur["points"][0]["perf"]["ledger"]["rows"]
        next(r for r in rows if r["kind"] == "pass")["count"] += 1
        pd = perf_diff(recorded, cur)
        assert not pd.wall_gated
        assert pd.significant
        assert pd.culprits[0].status == "changed"
        assert "count drifted" in pd.culprits[0].note

    def test_wall_not_gated_cross_host_with_explanation(self, recorded):
        cur = copy.deepcopy(recorded)
        cur["host"] = dict(cur["host"], node="elsewhere")
        for r in cur["points"][0]["perf"]["ledger"]["rows"]:
            r["self_s"] += 10.0
        pd = perf_diff(recorded, cur)
        assert not pd.significant and not pd.wall_gated
        assert "node" in pd.host_note
        assert "node" in format_perf_diff_table(pd)

    def test_vanished_row_is_changed(self, recorded):
        cur = copy.deepcopy(recorded)
        led = cur["points"][0]["perf"]["ledger"]
        led["rows"] = [r for r in led["rows"] if r["kind"] != "phase"]
        pd = perf_diff(recorded, cur)
        assert pd.significant
        assert all(r.status == "changed" for r in pd.culprits)

    def test_run_without_ledger_skipped_with_note(self, recorded):
        old = copy.deepcopy(recorded)
        for p in old["points"]:
            p.pop("perf")
        pd = perf_diff(old, recorded)
        assert not pd.significant
        assert any("no ledger" in n for n in pd.notes)

    def test_diff_accepts_bench_snapshots(self):
        snap = bench.run_bench(apps=["simple"], schemes=["base"],
                               procs=[1], n=8, repeats=1)
        pd = perf_diff(snap, copy.deepcopy(snap))
        assert pd.n_points == 1 and not pd.significant

    def test_as_dict_json_safe(self, recorded):
        cur = copy.deepcopy(recorded)
        cur["points"][0]["perf"]["ledger"]["rows"][0]["self_s"] += 5.0
        d = perf_diff(recorded, cur).as_dict()
        assert json.loads(json.dumps(d)) == d
        assert d["significant"] is True


class TestPassStallFault:
    def test_stall_pass_parse_and_spec_round_trip(self):
        plan = faults.FaultPlan.parse(
            "seed=3,pass.stall=1.0,stall_s=0.25,stall_pass=layout")
        assert plan.rates["pass.stall"] == 1.0
        assert plan.stall_pass == "layout"
        assert faults.FaultPlan.parse(plan.spec()).stall_pass == "layout"

    def test_stall_narrowed_to_named_pass(self, monkeypatch):
        faults.configure("seed=1,pass.stall=1.0,stall_s=0.01,"
                         "stall_pass=layout")
        slept = []
        monkeypatch.setattr(time, "sleep", lambda s: slept.append(s))
        faults.maybe_pass_stall("decompose")
        assert slept == []
        faults.maybe_pass_stall("layout")
        assert slept == [0.01]

    def test_stall_books_against_pass_ledger_row(self):
        # End to end: the injected stall must land in that pass's
        # ledger row — the attribution the perf CI job asserts.
        base = record_point("simple", parse_scheme("data"), 2, n=8)
        faults.configure("seed=1,pass.stall=1.0,stall_s=0.05,"
                         "stall_pass=layout")
        try:
            stalled = record_point("simple", parse_scheme("data"), 2, n=8)
        finally:
            faults.configure(None)
        pd = perf_diff(base, stalled, wall_abs_floor=0.02)
        assert pd.significant
        assert pd.culprits[0].row == "pass/layout"


class TestPerfCLI:
    def test_record_json_stdout(self, capsys):
        rc = main(["perf", "record", "simple", "--scheme", "data",
                   "--procs", "2", "--n", "8", "--json", "-"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wall-time ledger: simple/data/P2" in out
        payload = json.loads(out[out.index('{\n  "config"'):])
        assert payload["kind"] == "perf"
        ok, _ = ledger_reconciles(payload["points"][0]["perf"]["ledger"])
        assert ok

    def test_record_artifacts(self, tmp_path, capsys):
        import xml.etree.ElementTree as ET

        flame = tmp_path / "flame.svg"
        stacks = tmp_path / "stacks.collapsed"
        rc = main(["perf", "record", "simple", "--scheme", "base",
                   "--procs", "1", "--n", "8",
                   "--flame", str(flame), "--stacks", str(stacks)])
        assert rc == 0
        ET.parse(flame)  # well-formed XML
        from repro.obs.flame import parse_collapsed

        assert parse_collapsed(stacks.read_text().splitlines())

    def test_record_unknown_app_rejected(self):
        with pytest.raises(SystemExit, match="unknown app"):
            main(["perf", "record", "bogus"])

    def test_diff_exit_codes(self, tmp_path, capsys):
        base = record_point("simple", parse_scheme("base"), 1, n=8)
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(base))
        doctored = copy.deepcopy(base)
        rows = doctored["points"][0]["perf"]["ledger"]["rows"]
        next(r for r in rows if r["kind"] == "pass")["self_s"] += 5.0
        b.write_text(json.dumps(doctored))
        assert main(["perf", "diff", str(a), str(a)]) == 0
        assert main(["perf", "diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "SIGNIFICANT" in out
        assert main(["perf", "diff", str(a),
                     str(tmp_path / "missing.json")]) == 2

    def test_diff_json_output(self, tmp_path, capsys):
        base = record_point("simple", parse_scheme("base"), 1, n=8)
        a = tmp_path / "a.json"
        a.write_text(json.dumps(base))
        rc = main(["perf", "diff", str(a), str(a), "--json"])
        assert rc == 0
        d = json.loads(capsys.readouterr().out)
        assert d["significant"] is False and d["n_points"] == 1
