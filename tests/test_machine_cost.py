"""Tests for NUMA homing, the cost model, and the DASH configs."""

import numpy as np
import pytest

from repro.machine.cost import CostParams, per_proc_cycles, phase_time
from repro.machine.dash import DashConfig, dash_machine, scaled_dash
from repro.machine.numa import NumaConfig, first_touch_homes, local_miss_mask


class TestNuma:
    def test_first_touch(self):
        cfg = NumaConfig(page_bytes=64, cluster_size=2)
        addr = np.array([0, 0, 64, 64])
        proc = np.array([0, 3, 3, 0])
        _, home = first_touch_homes(addr, proc, cfg)
        assert home.tolist() == [0, 0, 1, 1]

    def test_local_mask(self):
        cfg = NumaConfig(page_bytes=64, cluster_size=2)
        addr = np.array([0, 0, 0])
        proc = np.array([0, 1, 2])
        local = local_miss_mask(addr, proc, cfg)
        # proc 0 and 1 share cluster 0 (first toucher) -> local
        assert local.tolist() == [True, True, False]

    def test_empty(self):
        cfg = NumaConfig()
        page, home = first_touch_homes(
            np.zeros(0, dtype=int), np.zeros(0, dtype=int), cfg
        )
        assert len(page) == 0

    def test_cluster_of(self):
        cfg = NumaConfig(cluster_size=4)
        assert cfg.cluster_of(np.array([0, 3, 4, 31])).tolist() == [0, 0, 1, 7]


class TestCostParams:
    def test_barrier_scales_with_procs(self):
        p = CostParams()
        assert p.barrier_cost(1) == 0.0
        assert p.barrier_cost(32) > p.barrier_cost(2)

    def test_per_proc_cycles(self):
        p = CostParams(cpu_per_access=2.0, l1_hit=1.0, local_miss=30.0,
                       remote_miss=100.0, upgrade=50.0)
        proc = np.array([0, 0, 1, 1])
        hit = np.array([True, False, False, True])
        mloc = np.array([False, True, False, False])
        mrem = np.array([False, False, True, False])
        upg = np.array([False, False, False, True])
        out = per_proc_cycles(proc, hit, mloc, mrem, 2, p, upgrade=upg)
        assert out[0] == 2 * 2 + 1 + 30
        assert out[1] == 2 * 2 + 1 + 100 + 50

    def test_upgrades_free_on_uniprocessor(self):
        p = CostParams()
        proc = np.zeros(2, dtype=int)
        hit = np.ones(2, dtype=bool)
        z = np.zeros(2, dtype=bool)
        upg = np.ones(2, dtype=bool)
        a = per_proc_cycles(proc, hit, z, z, 1, p, upgrade=upg)
        b = per_proc_cycles(proc, hit, z, z, 1, p)
        assert np.allclose(a, b)


class TestPhaseTime:
    def test_barrier_phase(self):
        p = CostParams()
        cycles = np.array([100.0, 300.0])
        pc = phase_time("n", cycles, "barrier", barriers=2, pipelined=False,
                        seq_steps=1, nprocs=2, params=p)
        assert pc.compute_max == 300.0
        assert pc.sync == 2 * p.barrier_cost(2)
        assert pc.time == pc.compute_max + pc.sync

    def test_local_phase_no_sync(self):
        p = CostParams()
        pc = phase_time("n", np.array([50.0]), "none", 1, False, 1, 4, p)
        assert pc.sync == 0.0

    def test_neighbor(self):
        p = CostParams()
        pc = phase_time("n", np.array([50.0]), "neighbor", 1, False, 1, 4, p)
        assert pc.sync == p.neighbor_sync

    def test_uniprocessor_no_sync(self):
        p = CostParams()
        pc = phase_time("n", np.array([50.0]), "barrier", 5, False, 1, 1, p)
        assert pc.sync == 0.0

    def test_pipeline_fill_and_tiles(self):
        p = CostParams(lock_cost=10.0)
        compute = 1000.0
        pc = phase_time("n", np.array([compute]), "pipeline", 1, True,
                        seq_steps=100, nprocs=8, params=p)
        assert pc.sync > 0
        # the optimal tiling beats both extremes
        one_tile = (8 - 1) * compute / 1 + 1 * 10.0
        max_tiles = (8 - 1) * compute / 100 + 100 * 10.0
        assert pc.sync <= one_tile + 1e-9
        assert pc.sync <= max_tiles + 1e-9

    def test_pipeline_capped_by_seq_steps(self):
        p = CostParams(lock_cost=0.001)
        pc = phase_time("n", np.array([1000.0]), "pipeline", 1, True,
                        seq_steps=4, nprocs=8, params=p)
        # tiles cannot exceed seq_steps=4
        assert pc.sync >= (8 - 1) * 1000.0 / 4


class TestDashConfigs:
    def test_full_size(self):
        m = dash_machine(32)
        assert m.cache.size_bytes == 64 * 1024
        assert m.cache.line_bytes == 16
        assert m.numa.page_bytes == 4096
        assert m.numa.cluster_size == 4

    def test_scaled_keeps_line(self):
        m = scaled_dash(8, scale=16)
        assert m.cache.line_bytes == 16
        assert m.cache.size_bytes == 4096

    def test_page_override(self):
        m = scaled_dash(8, scale=16, page_bytes=1024)
        assert m.numa.page_bytes == 1024

    def test_with_procs(self):
        m = dash_machine(32).with_procs(8)
        assert m.nprocs == 8
        assert m.cache.size_bytes == 64 * 1024

    def test_floor_guard(self):
        m = scaled_dash(4, scale=10**9)
        assert m.cache.size_bytes >= m.cache.line_bytes * 16
