"""Tests for the Section 4.3 address optimizations."""

from repro.codegen.addrexpr import AAffine, ADiv, AMod, AAdd, AScale
from repro.codegen.optimize import optimize_ref_address
from repro.ir.expr import Var


def block_address(b, nstride):
    """The paper's SPMD example: A(mod(I-1,b), J, (I-1)/b) linearized:
    (I-1) mod b + b*J + b*N*((I-1)/b)."""
    i = Var("I")
    return AAdd((
        AMod(AAffine(i - 1), b),
        AScale(b, AAffine(Var("J"))),
        AScale(b * nstride, ADiv(AAffine(i - 1), b)),
    ))


class TestInvariant:
    def test_within_strip_hoists_everything(self):
        """The paper's first optimization: inside one processor's strip,
        (I-1)/b is constant (== myid) and mod is linear."""
        b = 13
        addr = block_address(b, 100)
        # processor 2's range: I in [b*2+1, b*3]
        rep = optimize_ref_address(addr, "I", (2 * b + 1, 3 * b),
                                   {"J": (1, 98)})
        assert rep.naive_per_iter == 2
        assert rep.optimized_per_iter == 0.0
        assert all(p.strategy == "invariant" for p in rep.plans)
        assert rep.per_entry == 2

    def test_loop_invariant_operand(self):
        addr = AMod(AAffine(Var("J")), 8)
        rep = optimize_ref_address(addr, "I", (0, 9), {"J": (0, 63)})
        assert rep.plans[0].strategy == "invariant"
        assert rep.optimized_per_iter == 0.0


class TestPeel:
    def test_one_boundary_crossing(self):
        """Second optimization: ranges crossing a strip boundary peel the
        few crossing iterations."""
        b = 8
        addr = block_address(b, 100)
        # range [5, 12] crosses the boundary at 8 once (for I-1 in [4,11])
        rep = optimize_ref_address(addr, "I", (5, 12), {"J": (0, 9)})
        assert rep.optimized_per_iter == 0.0
        assert all(p.strategy == "peel" for p in rep.plans)
        assert rep.per_entry == 4  # (1 + crossings) per div/mod node


class TestStrengthReduction:
    def test_papers_example(self):
        """x = mod(4J + c, 64), y = (4J + c)/64 over a long J range:
        strength-reduced with carry period 64/4 = 16."""
        j = Var("J")
        addr = AAdd((
            AMod(AAffine(4 * j + 3), 64),
            AScale(64, ADiv(AAffine(4 * j + 3), 64)),
        ))
        rep = optimize_ref_address(addr, "J", (0, 999), {})
        assert all(p.strategy == "strength" for p in rep.plans)
        for p in rep.plans:
            assert abs(p.per_iter - 1 / 16) < 1e-12

    def test_dynamic_counts(self):
        j = Var("J")
        addr = AMod(AAffine(4 * j), 64)
        rep = optimize_ref_address(addr, "J", (0, 999), {})
        naive, opt = rep.dynamic_counts(trips=1000, entries=10)
        assert naive == 10000
        assert opt < naive / 10  # order-of-magnitude reduction

    def test_short_trip_no_carries(self):
        """When the loop is shorter than the carry period, no carries
        fire at all."""
        j = Var("J")
        addr = AMod(AAffine(j), 1000)
        rep = optimize_ref_address(addr, "J", (0, 5), {})
        assert rep.optimized_per_iter == 0.0


class TestReporting:
    def test_plan_details_present(self):
        b = 4
        addr = block_address(b, 10)
        rep = optimize_ref_address(addr, "I", (1, 4), {"J": (0, 9)})
        assert all(p.detail for p in rep.plans)

    def test_unknown_variable_raises(self):
        import pytest

        addr = AMod(AAffine(Var("Q") + Var("I")), 8)
        with pytest.raises(ValueError):
            optimize_ref_address(addr, "I", (0, 3), {})
