"""Tests for optimized SPMD emission (Section 4.3's rewritten code)."""

import re

import pytest

from repro.apps import lu, simple, stencil5
from repro.codegen.emit_optimized import emit_optimized_program
from repro.codegen.spmd import Scheme
from repro.compiler import compile_program


@pytest.fixture(scope="module")
def simple_spmd():
    return compile_program(
        simple.build(n=16, time_steps=1), Scheme.COMP_DECOMP_DATA, 4
    )


class TestStructure:
    def test_no_divmod_inside_inner_loop_body(self, simple_spmd):
        """The defining property: after optimization the loop bodies
        contain no division or modulo on the loop variable."""
        src = emit_optimized_program(simple_spmd, proc=1)
        # statement lines are those with an assignment to f(...)
        for line in src.splitlines():
            if "= f(" in line:
                assert "/" not in line
                assert "%" not in line

    def test_counters_declared_and_incremented(self, simple_spmd):
        src = emit_optimized_program(simple_spmd, proc=1)
        assert re.search(r"int m\d+ = .* % 4;", src)
        assert re.search(r"int q\d+ = .* / 4;", src)
        assert re.search(r"m\d+ \+= 1;", src)

    def test_processor_bounds_specialized(self, simple_spmd):
        # N=16, P=4: processor 1's strip is rows 4..7
        src = emit_optimized_program(simple_spmd, proc=1)
        assert "I = 4; I <= 7" in src
        src0 = emit_optimized_program(simple_spmd, proc=0)
        assert "I = 0; I <= 3" in src0

    def test_strip_constant_matches_owner(self, simple_spmd):
        """The hoisted div seed for processor 1 is the constant 4/4 = 1
        — the paper's idiv = myid."""
        src = emit_optimized_program(simple_spmd, proc=1)
        assert "int q0 = (4) / 4;" in src


class TestFallbacks:
    def test_cyclic_falls_back_to_naive(self):
        spmd = compile_program(lu.build(8), Scheme.COMP_DECOMP_DATA, 4)
        src = emit_optimized_program(spmd, proc=0)
        assert "naive subscripts retained" in src

    def test_serial_program(self):
        spmd = compile_program(
            simple.build(n=8, time_steps=1), Scheme.COMP_DECOMP_DATA, 1
        )
        src = emit_optimized_program(spmd, proc=0)
        assert "I = 0; I <= 7" in src

    def test_2d_blocks(self):
        spmd = compile_program(
            stencil5.build(n=16, time_steps=1), Scheme.COMP_DECOMP_DATA, 4
        )
        src = emit_optimized_program(spmd, proc=3)
        # both grid dims specialized: last processor owns the high block
        assert "for (I1 = 8; I1 <= 14" in src or \
               "for (I2 = 8; I2 <= 14" in src


class TestSemantics:
    def test_counter_values_track_addresses(self, simple_spmd):
        """Replay the emitted 'add' loop for processor 1 in Python and
        check the computed addresses equal the layout's."""
        ta = simple_spmd.transformed["A"]
        b = 4
        for j in range(16):
            m = b * 1 % b  # seed: (4) % 4
            q = (b * 1) // b
            for i in range(4, 8):
                addr = m + 4 * j + 64 * q
                assert addr == ta.layout.linearize((i, j))
                m += 1
