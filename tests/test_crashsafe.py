"""Crash-safety chaos tests: a SIGKILL'd driver resumed from its
journal with zero re-execution and a bit-identical summary, two
concurrent drivers sharing one store, graceful SIGTERM drain, and
full-disk / torn-write chaos sweeps.

These drive the real CLI in real subprocesses — the journal's fsync
guarantees and the store's cross-process lock only mean anything
across actual process boundaries.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.pipeline.journal import JournalState, journal_dir, resolve_run_id

REPO = Path(__file__).resolve().parent.parent
GRID = ["--apps", "simple", "--schemes", "base,comp,data",
        "--procs-list", "1,4", "--n", "10"]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    for var in ("REPRO_FAULTS", "REPRO_CACHE", "REPRO_CACHE_DIR",
                "REPRO_STORE_DIR", "REPRO_OBS"):
        env.pop(var, None)
    return env


def _batch(extra, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro", "batch", *extra],
        capture_output=True, text=True, env=_env(), cwd=str(REPO),
        timeout=timeout,
    )


def _fsck(store, *extra):
    return subprocess.run(
        [sys.executable, "-m", "repro", "fsck", "--store-dir",
         str(store), *extra],
        capture_output=True, text=True, env=_env(), cwd=str(REPO),
        timeout=120,
    )


class TestKillResume:
    def test_sigkill_then_resume_is_bit_identical(self, tmp_path):
        store_a = tmp_path / "store-a"
        cache_a = tmp_path / "cache-a"
        # 1. driver.kill=1.0: SIGKILL the driver right after the first
        #    point's result is journaled.
        killed = _batch([*GRID, "--store-dir", str(store_a),
                         "--cache-dir", str(cache_a),
                         "--inject-faults", "seed=1,driver.kill=1.0"])
        assert killed.returncode == -signal.SIGKILL
        jdir = journal_dir(store_a)
        run_id = resolve_run_id(jdir, "latest")
        state = JournalState.load(jdir / f"{run_id}.jsonl")
        state.validate()
        assert not state.complete  # no end record: the crash window
        assert sorted(state.finished) == [0]

        # 2. Resume: exactly the 5 unjournaled points execute —
        #    --expect-executed makes the CLI itself the gate.
        out_a = tmp_path / "resumed.json"
        resumed = _batch(["--resume", "latest",
                          "--store-dir", str(store_a),
                          "--cache-dir", str(cache_a),
                          "--expect-executed", "5",
                          "--json", str(out_a)])
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        assert "resuming" in resumed.stdout

        # 3. An uninterrupted run from the same cold start.
        out_b = tmp_path / "uninterrupted.json"
        plain = _batch([*GRID,
                        "--store-dir", str(tmp_path / "store-b"),
                        "--cache-dir", str(tmp_path / "cache-b"),
                        "--json", str(out_b)])
        assert plain.returncode == 0, plain.stdout + plain.stderr

        a = json.loads(out_a.read_text())
        b = json.loads(out_b.read_text())
        # The resume contract: bit-identical summary.
        assert a["summary"] == b["summary"]
        # And identical simulation outcomes point by point (elapsed is
        # wall-clock, span ids are per-process obs artifacts).
        for ra, rb in zip(a["results"], b["results"]):
            for field in ("point", "ok", "total_time", "n_accesses",
                          "miss_breakdown", "pass_runs", "pass_hits",
                          "degraded", "attempts"):
                assert ra[field] == rb[field]
        # The journal knows the run finished this time.
        state = JournalState.load(jdir / f"{run_id}.jsonl")
        assert state.complete

        # 4. Nothing in the store was damaged along the way.
        assert _fsck(store_a, "--strict").returncode == 0

    def test_resume_of_complete_run_executes_nothing(self, tmp_path):
        store = tmp_path / "store"
        done = _batch([*GRID, "--store-dir", str(store),
                       "--cache-dir", str(tmp_path / "cache")])
        assert done.returncode == 0
        again = _batch(["--resume", "latest",
                        "--store-dir", str(store),
                        "--cache-dir", str(tmp_path / "cache"),
                        "--expect-executed", "0"])
        assert again.returncode == 0, again.stdout + again.stderr
        assert "already completed" in again.stdout

    def test_resume_refuses_unknown_run(self, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        proc = _batch(["--resume", "RUN_nope",
                       "--store-dir", str(store)])
        assert proc.returncode != 0
        assert "resume" in proc.stderr.lower()


class TestConcurrentDrivers:
    def test_two_drivers_share_one_store(self, tmp_path):
        """Two drivers race the same --store-dir; the store's lock must
        keep every entry and the index consistent (no lost updates, no
        corrupt entries)."""
        store = tmp_path / "store"
        procs = []
        for name in ("cache-1", "cache-2"):
            procs.append(subprocess.Popen(
                [sys.executable, "-m", "repro", "batch", *GRID,
                 "--store-dir", str(store),
                 "--cache-dir", str(tmp_path / name)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True, env=_env(), cwd=str(REPO),
            ))
        for p in procs:
            out, err = p.communicate(timeout=180)
            assert p.returncode == 0, out + err
        # Every coordinate present, every entry verifiable.
        assert _fsck(store, "--strict").returncode == 0
        warm = _batch([*GRID, "--store-dir", str(store),
                       "--cache-dir", str(tmp_path / "cache-3"),
                       "--incremental", "--expect-incremental", "0"])
        assert warm.returncode == 0, warm.stdout + warm.stderr


class TestGracefulShutdown:
    def test_sigterm_exits_130_with_resume_hint(self, tmp_path):
        store = tmp_path / "store"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "batch",
             "--apps", "simple,stencil5,lu",
             "--schemes", "base,comp,data",
             "--procs-list", "1,2,4,8", "--n", "64",
             "--store-dir", str(store),
             "--cache-dir", str(tmp_path / "cache")],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=_env(), cwd=str(REPO),
        )
        time.sleep(1.5)
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
        if proc.returncode == 0:
            pytest.skip("grid finished before the signal landed")
        assert proc.returncode == 130, out + err
        assert "resume with" in err
        resumed = _batch(["--resume", "latest",
                          "--store-dir", str(store),
                          "--cache-dir", str(tmp_path / "cache")],
                         timeout=300)
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        assert _fsck(store, "--strict").returncode == 0


class TestDiskChaos:
    def test_enospc_never_fails_the_run(self, tmp_path):
        store = tmp_path / "store"
        proc = _batch([*GRID, "--store-dir", str(store),
                       "--cache-dir", str(tmp_path / "cache"),
                       "--inject-faults", "seed=3,disk.enospc=0.3"])
        # Store/journal writes fail and are counted, points still
        # complete: durability degrades, correctness does not.
        assert proc.returncode == 0, proc.stdout + proc.stderr
        # A failed index write can leave entries the index never
        # learned; one repair pass reconciles, then strict is clean.
        _fsck(store)
        assert _fsck(store, "--strict").returncode == 0

    def test_torn_writes_are_caught_by_fsck(self, tmp_path):
        store = tmp_path / "store"
        proc = _batch([*GRID, "--store-dir", str(store),
                       "--cache-dir", str(tmp_path / "cache"),
                       "--inject-faults", "seed=5,disk.torn_write=0.5"])
        assert proc.returncode == 0, proc.stdout + proc.stderr
        # First fsck may find (and quarantine/repair) torn entries;
        # a second strict pass must come back clean.
        _fsck(store)
        assert _fsck(store, "--strict").returncode == 0
        # The store still serves whatever survived; the rest re-runs.
        warm = _batch([*GRID, "--store-dir", str(store),
                       "--cache-dir", str(tmp_path / "cache"),
                       "--incremental"])
        assert warm.returncode == 0, warm.stdout + warm.stderr
