"""The shared grid engine: enumeration, coordinate helpers, and the
incremental layer over the persistent result store."""

import types

import pytest

import repro.apps as apps_pkg
from repro.ir.builder import ProgramBuilder
from repro.pipeline import grid as grid_mod
from repro.pipeline.grid import (
    GridPoint,
    GridResult,
    GridSpec,
    make_grid,
    point_key,
    point_machine,
    point_program,
    run_grid,
    summarize,
)
from repro.pipeline.store import ResultStore


def _variant_app(coeff):
    """A tiny registrable app; changing ``coeff`` is the test's stand-in
    for editing the app's source (it changes the statement's closure,
    hence the program fingerprint)."""

    def build(n=8, time_steps=2):
        pb = ProgramBuilder("edited", params={"N": n},
                           time_steps=time_steps)
        a = pb.array("A", (n, n), element_size=4)
        b = pb.array("B", (n, n), element_size=4)
        i, j = pb.vars("I", "J")
        pb.nest(
            "add",
            [("J", 0, n - 1), ("I", 0, n - 1)],
            [pb.assign(a(i, j), [b(i, j)], lambda x: coeff * x)],
        )
        return pb.build()

    return types.SimpleNamespace(build=build, __doc__="test app")


GRID_KW = dict(n=8, time_steps=2)


class TestGridSpec:
    def test_points_order_matches_make_grid(self):
        spec = GridSpec(apps=("simple", "stencil5"),
                        schemes=("base", "comp"), procs=(1, 4), n=8)
        assert spec.points() == make_grid(
            ["simple", "stencil5"], ["base", "comp"], [1, 4], n=8)

    def test_pin_decomp(self):
        spec = GridSpec(apps=("simple",), schemes=("comp",),
                        procs=(2, 8), n=8, pin_decomp=True)
        assert all(p.decomp_procs == 8 for p in spec.points())

    def test_scheme_normalized(self):
        pt = GridPoint(app="simple", scheme="OPT", nprocs=2)
        assert pt.scheme == "data"
        assert GridPoint(app="simple", scheme="comp_decomp_data",
                         nprocs=2).scheme == "data"

    def test_coord_covers_all_knobs(self):
        a = GridPoint(app="simple", scheme="comp", nprocs=2, n=8)
        b = GridPoint(app="simple", scheme="comp", nprocs=2, n=16)
        assert a.coord() != b.coord()


class TestPointHelpers:
    def test_point_machine_word_bytes(self):
        pt = GridPoint(app="simple", scheme="base", nprocs=4, **GRID_KW)
        prog = point_program(pt)
        machine = point_machine(pt, prog)
        assert machine.word_bytes == min(
            d.element_size for d in prog.arrays.values())
        assert machine.nprocs == 4

    def test_point_key_stable(self):
        pt = GridPoint(app="simple", scheme="comp", nprocs=2, **GRID_KW)
        assert point_key(pt) == point_key(pt)

    @pytest.mark.parametrize("other", [
        GridPoint(app="simple", scheme="data", nprocs=2, **GRID_KW),
        GridPoint(app="simple", scheme="comp", nprocs=4, **GRID_KW),
        GridPoint(app="simple", scheme="comp", nprocs=2, n=16,
                  time_steps=2),
        GridPoint(app="simple", scheme="comp", nprocs=2, n=8,
                  time_steps=2, scale=32),
        GridPoint(app="simple", scheme="comp", nprocs=2,
                  decomp_procs=8, **GRID_KW),
        GridPoint(app="stencil5", scheme="comp", nprocs=2, **GRID_KW),
    ])
    def test_point_key_sensitive(self, other):
        base = GridPoint(app="simple", scheme="comp", nprocs=2, **GRID_KW)
        assert point_key(base) != point_key(other)

    def test_point_key_kind_namespaces(self):
        pt = GridPoint(app="simple", scheme="comp", nprocs=2, **GRID_KW)
        assert point_key(pt, kind="sim") != point_key(pt, kind="verify")


class TestRunGridIncremental:
    def _points(self):
        return make_grid(["simple"], ["base", "comp"], [1, 2], **GRID_KW)

    def test_cold_then_warm(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_grid(self._points(), store=store, incremental=True)
        agg = summarize(cold)
        assert agg["executed"] == 4 and agg["store_hits"] == 0
        assert store.stats.stores == 4

        warm_store = ResultStore(tmp_path)
        warm = run_grid(self._points(), store=warm_store,
                        incremental=True)
        agg = summarize(warm)
        assert agg["executed"] == 0 and agg["store_hits"] == 4
        # Zero compile/simulate work on the warm rerun.
        assert agg["total_pass_runs"] == 0
        assert all(r.store_hit and not r.pass_runs for r in warm)
        # Served results carry the identical simulation outcome.
        for a, b in zip(cold, warm):
            assert a.total_time == b.total_time
            assert a.n_accesses == b.n_accesses
            assert a.miss_breakdown == b.miss_breakdown
            assert a.store_key == b.store_key

    def test_write_back_without_incremental(self, tmp_path):
        store = ResultStore(tmp_path)
        run_grid(self._points(), store=store, incremental=False)
        assert store.stats.stores == 4
        assert store.stats.hits == store.stats.misses == 0

    def test_no_store_plain_execution(self):
        results = run_grid(self._points()[:1])
        assert len(results) == 1 and results[0].ok
        assert not results[0].store_hit

    def test_app_edit_reexecutes_only_that_app(self, tmp_path,
                                               monkeypatch):
        monkeypatch.setitem(apps_pkg.ALL_APPS, "edited",
                            _variant_app(0.5))
        points = make_grid(["simple", "edited"], ["base", "comp"],
                           [1, 2], **GRID_KW)
        store = ResultStore(tmp_path)
        run_grid(points, store=store, incremental=True)
        assert store.stats.stores == 8

        # "Edit" the app: new closure constant => new fingerprint.
        monkeypatch.setitem(apps_pkg.ALL_APPS, "edited",
                            _variant_app(0.6))
        store2 = ResultStore(tmp_path)
        rerun = run_grid(points, store=store2, incremental=True)
        agg = summarize(rerun)
        assert agg["store_hits"] == 4 and agg["executed"] == 4
        executed = {r.point.app for r in rerun if not r.store_hit}
        assert executed == {"edited"}
        # The stale entries were invalidated coordinate-by-coordinate.
        assert store2.stats.invalidations == 4

    def test_unbuildable_point_isolated(self, tmp_path, monkeypatch):
        # An app whose builder raises: the point gets no store key but
        # still flows to the executor, which isolates the failure.
        def boom(n=8, time_steps=2):
            raise RuntimeError("unbuildable")

        monkeypatch.setitem(apps_pkg.ALL_APPS, "boom",
                            types.SimpleNamespace(build=boom))
        pts = [
            GridPoint(app="simple", scheme="base", nprocs=1, **GRID_KW),
            GridPoint(app="boom", scheme="base", nprocs=1, **GRID_KW),
        ]
        store = ResultStore(tmp_path)
        results = run_grid(pts, store=store, incremental=True)
        assert results[0].ok
        assert not results[1].ok and "unbuildable" in results[1].error
        assert results[1].store_key == ""
        # Only the good point was stored.
        assert store.stats.stores == 1

    def test_failed_and_degraded_not_stored(self, tmp_path,
                                            monkeypatch):
        points = self._points()[:2]
        keys = [point_key(p, locality=False) for p in points]

        def fake_execute(pts, **kwargs):
            return [
                GridResult(point=pts[0], ok=True, degraded=True,
                           total_time=1.0),
                GridResult(point=pts[1], ok=False, error="boom"),
            ]

        monkeypatch.setattr(grid_mod, "execute_grid", fake_execute)
        store = ResultStore(tmp_path)
        run_grid(points, store=store, incremental=True)
        assert store.stats.stores == 0
        assert store.get(keys[0]) is None
        assert store.get(keys[1]) is None

    def test_summarize_backward_fields(self):
        results = run_grid(self._points()[:1])
        agg = summarize(results)
        for field in ("points", "ok", "errors", "degraded", "retried",
                      "pass_runs", "pass_hits", "total_pass_runs",
                      "fully_cached", "store_hits", "executed"):
            assert field in agg


class TestBatchFacade:
    def test_backcompat_aliases(self):
        from repro.pipeline.batch import (
            BatchPoint,
            BatchResult,
            run_batch,
        )

        assert BatchPoint is GridPoint
        assert BatchResult is GridResult
        results = run_batch(
            [BatchPoint(app="simple", scheme="base", nprocs=1,
                        **GRID_KW)])
        assert results[0].ok

    def test_run_batch_accepts_store(self, tmp_path):
        from repro.pipeline.batch import BatchPoint, run_batch

        store = ResultStore(tmp_path)
        pts = [BatchPoint(app="simple", scheme="base", nprocs=1,
                          **GRID_KW)]
        run_batch(pts, store=store, incremental=True)
        again = run_batch(pts, store=store, incremental=True)
        assert again[0].store_hit


class TestVerifyGridStore:
    def test_warm_verify_serves_verdicts(self, tmp_path):
        from repro.verify import grid_ok, verify_grid

        store = ResultStore(tmp_path)
        cold = verify_grid(["simple"], ["base", "comp"], [1, 2], n=8,
                           store=store)
        assert grid_ok(cold)
        assert store.stats.stores == 4

        store2 = ResultStore(tmp_path)
        warm = verify_grid(["simple"], ["base", "comp"], [1, 2], n=8,
                           store=store2)
        assert grid_ok(warm)
        assert store2.stats.hits == 4 and store2.stats.misses == 0
        for a, b in zip(cold, warm):
            assert (a.program, a.scheme, a.nprocs) == \
                (b.program, b.scheme, b.nprocs)
            assert a.phases_checked == b.phases_checked
            assert a.elements_checked == b.elements_checked


class TestJournalledRunGrid:
    """run_grid's journal/preset/shutdown layer, in-process."""

    def _points(self):
        return make_grid(["simple"], ["base", "comp", "data"], [1],
                         **GRID_KW)

    def test_preset_points_served_verbatim(self):
        points = self._points()
        first = run_grid(points)
        preset = {0: first[0], 2: first[2]}
        again = run_grid(points, preset=preset)
        # Served verbatim: the very same objects, in grid order, with
        # identical simulation outcomes.  (Pass-counter bit-identity
        # across a resume is a disk-cache property — covered by
        # test_resume_after_shutdown_completes_the_grid.)
        assert again[0] is preset[0]
        assert again[2] is preset[2]
        assert [r.point for r in again] == [r.point for r in first]
        for a, b in zip(again, first):
            assert a.total_time == b.total_time
            assert a.n_accesses == b.n_accesses
            assert a.miss_breakdown == b.miss_breakdown

    def test_journal_records_every_point(self, tmp_path):
        from dataclasses import asdict

        from repro.pipeline.journal import JournalState, JournalWriter

        points = self._points()
        spec = {"points": [asdict(p) for p in points]}
        journal = JournalWriter.create(tmp_path, spec)
        results = run_grid(points, journal=journal)
        journal.end("complete", executed=len(results))
        journal.close()
        state = JournalState.load(tmp_path / f"{journal.run_id}.jsonl")
        state.validate()
        assert state.complete
        assert state.points() == points
        finished = state.finished_results()
        assert sorted(finished) == list(range(len(points)))
        for i, r in enumerate(results):
            assert finished[i].as_dict() == r.as_dict()

    def test_store_served_points_are_journaled(self, tmp_path):
        from dataclasses import asdict

        from repro.pipeline.journal import JournalState, JournalWriter

        points = self._points()
        store = ResultStore(tmp_path / "store")
        run_grid(points, store=store)  # populate
        spec = {"points": [asdict(p) for p in points]}
        journal = JournalWriter.create(tmp_path / "journal", spec)
        warm = run_grid(points, store=store, incremental=True,
                        journal=journal)
        journal.close()
        assert all(r.store_hit for r in warm)
        state = JournalState.load(
            tmp_path / "journal" / f"{journal.run_id}.jsonl")
        assert sorted(state.finished_results()) == \
            list(range(len(points)))

    def test_triggered_shutdown_stops_serial_dispatch(self):
        from repro.pipeline.grid import GracefulShutdown

        points = self._points()
        shutdown = GracefulShutdown()
        seen = []

        class Hook:
            """Journal stand-in that pulls the plug mid-run."""
            def point_started(self, i, point):
                pass

            def wave(self, wave, pending):
                pass

            def point_done(self, i, result):
                seen.append(i)
                if len(seen) == 1:
                    shutdown.trigger(signum=15)

        results = run_grid(points, journal=Hook(), shutdown=shutdown)
        # First point finished and was journaled; the rest were never
        # dispatched (absent, not failed) — resume picks them up.
        assert len(results) == 1
        assert seen == [0]

    def test_resume_after_shutdown_completes_the_grid(self, tmp_path):
        from repro.pipeline.grid import GracefulShutdown

        points = self._points()
        shutdown = GracefulShutdown()

        class Hook:
            def __init__(self):
                self.done = {}

            def point_started(self, i, point):
                pass

            def wave(self, wave, pending):
                pass

            def point_done(self, i, result):
                self.done[i] = result
                if len(self.done) == 1:
                    shutdown.trigger(signum=15)

        hook = Hook()
        # The interrupted and resuming runs share one disk cache; the
        # reference run gets its own cold one (see DESIGN.md).
        disk = str(tmp_path / "cache-a")
        partial = run_grid(points, journal=hook, shutdown=shutdown,
                           disk_dir=disk)
        assert len(partial) == 1
        resumed = run_grid(points, preset=dict(hook.done),
                           disk_dir=disk)
        assert len(resumed) == len(points)
        reference = run_grid(points,
                             disk_dir=str(tmp_path / "cache-b"))
        assert summarize(resumed) == summarize(reference)

    def test_install_restores_signal_handlers(self):
        import signal as signal_mod

        from repro.pipeline.grid import GracefulShutdown

        before = signal_mod.getsignal(signal_mod.SIGTERM)
        shutdown = GracefulShutdown()
        with shutdown.install():
            assert signal_mod.getsignal(signal_mod.SIGTERM) != before
        assert signal_mod.getsignal(signal_mod.SIGTERM) == before

    def test_second_trigger_expires_drain(self):
        from repro.pipeline.grid import GracefulShutdown

        shutdown = GracefulShutdown(drain_seconds=3600.0)
        shutdown.trigger(signum=2)
        assert not shutdown.drain_expired()
        shutdown.trigger(signum=2)  # impatient second Ctrl-C
        assert shutdown.drain_expired()
