"""Tests for result formatting."""

import json

from repro.report import (
    Table1Row,
    at_procs,
    classify_critical,
    format_profile_table,
    format_speedup_table,
    format_table1,
    markdown_speedup_table,
    save_experiment,
)

CURVES = {
    "base": [(1, 1.0), (4, 3.5), (32, 10.0)],
    "comp decomp + data transform": [(1, 1.0), (4, 3.9), (32, 25.0)],
}


class TestFormatting:
    def test_fixed_width(self):
        text = format_speedup_table(CURVES, title="demo")
        assert "demo" in text
        assert "base" in text
        assert "25.00" in text

    def test_markdown(self):
        md = markdown_speedup_table(CURVES)
        assert md.startswith("| scheme |")
        assert "P=32" in md
        assert "| base |" in md

    def test_at_procs(self):
        assert at_procs(CURVES["base"], 4) == 3.5
        assert at_procs(CURVES["base"], 7) is None


class TestSaveExperiment:
    def test_writes_text_only_by_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = save_experiment("demo", "hello")
        assert open(path).read() == "hello\n"
        assert not (tmp_path / "demo.json").exists()

    def test_writes_json_sibling_with_metrics(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        save_experiment(
            "demo", "hello",
            metrics={"title": "t", "series": {
                "base": [[1, 1.0], [4, 3.5]],
            }},
        )
        data = json.loads((tmp_path / "demo.json").read_text())
        assert data["name"] == "demo"
        assert data["series"]["base"] == [[1, 1.0], [4, 3.5]]


class TestProfileTable:
    def test_renders_phase_and_array_detail(self):
        from repro.apps import simple
        from repro.compiler import Scheme, compile_program
        from repro.machine import scaled_dash
        from repro.machine.simulate import simulate

        prog = simple.build(n=16)
        spmd = compile_program(prog, Scheme.COMP_DECOMP_DATA, 4)
        res = simulate(spmd, scaled_dash(4, scale=32, word_bytes=8),
                       detail=True)
        text = format_profile_table(res)
        assert "profile:" in text
        for nest in ("add", "relax"):
            assert nest in text
        for arr in ("A", "B", "C"):
            assert f"\n{arr} " in text
        assert "numa:" in text
        assert "conflict sets:" in text


class TestTable1:
    def test_classify_critical(self):
        comp, data = classify_critical(base=4.2, cd=5.0, cdd=14.3)
        assert comp and data
        comp, data = classify_critical(base=8.0, cd=22.9, cdd=22.9)
        assert comp and not data
        # stencil-shaped: cd loses to base but the combination wins big
        comp, data = classify_critical(base=15.6, cd=10.0, cdd=28.5)
        assert comp and data
        # nothing helps much
        comp, data = classify_critical(base=10.0, cd=10.2, cdd=10.5)
        assert not comp and not data

    def test_format(self):
        rows = [
            Table1Row("lu", 19.5, 33.5, True, True, ["A: (*, CYCLIC)"]),
            Table1Row("adi", 8.0, 22.9, True, False, ["X: (*, BLOCK)"]),
        ]
        text = format_table1(rows)
        assert "lu" in text and "33.5" in text
        assert "(*, CYCLIC)" in text
        lines = text.splitlines()
        assert len(lines) == 4


class TestExplainTree:
    def test_empty_log_one_liner(self):
        from repro.obs.provenance import ProvenanceLog
        from repro.report import format_explain_tree

        text = format_explain_tree(ProvenanceLog(), title="x/opt/P4")
        assert text.splitlines()[-1] == "(no decisions recorded)"
        assert "x/opt/P4" in text

    def test_none_and_empty_list(self):
        from repro.report import format_explain_tree

        assert "(no decisions recorded)" in format_explain_tree(None)
        assert "(no decisions recorded)" in format_explain_tree([])

    def test_partial_record_dicts_fail_soft(self):
        from repro.report import format_explain_tree

        # Records missing most keys (e.g. hand-edited JSON) still render.
        text = format_explain_tree([{"stage": "layout"}, {}])
        assert "[layout]" in text
        assert "?" in text


class TestDiffTable:
    def test_identical_one_liner(self):
        from repro.obs.provenance import RunDiff
        from repro.report import format_diff_table

        diff = RunDiff()
        diff.n_compared = 3
        text = format_diff_table(diff)
        assert "(runs identical: 3 points compared, no deltas)" in text

    def test_no_overlap(self):
        from repro.obs.provenance import RunDiff
        from repro.report import format_diff_table

        diff = RunDiff()
        diff.missing_in_b = ["a/base/P1"]
        diff.missing_in_a = ["b/base/P1"]
        text = format_diff_table(diff)
        assert "present in A only" in text
        assert "present in B only" in text

    def test_diff_cli_bad_file_exits_2(self, tmp_path, capsys):
        from repro.__main__ import main

        missing = tmp_path / "nope.json"
        assert main(["diff", str(missing), str(missing)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("diff: ")
        assert len(err.strip().splitlines()) == 1

    def test_diff_cli_wrong_schema_exits_2(self, tmp_path, capsys):
        from repro.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"hello": 1}')
        assert main(["diff", str(bad), str(bad)]) == 2
        assert "points" in capsys.readouterr().err


class TestStatusText:
    def _status(self, **over):
        base = {
            "run_id": "RUN_x", "state": "running", "pid": 4242,
            "pid_alive": True, "total": 6, "finished": 3,
            "progress": 0.5, "ok": 3, "errors": 0, "degraded": 0,
            "retried": 1, "store_hits": 1, "waves": 1, "resumes": 0,
            "ewma_latency": 0.02, "eta": 0.03, "cache_hit_rate": 0.25,
            "heartbeat_age": 0.4, "rss": 50_000_000,
            "in_flight": [{"i": 4, "label": "simple/comp/P4"}],
            "scheme_matrix": {"simple": {"base": [2, 2],
                                         "comp": [1, 2],
                                         "data": [0, 2]}},
            "torn_tail": False, "bad_lines": 0,
        }
        base.update(over)
        return base

    def test_running_snapshot(self):
        from repro.report import format_status_text

        text = format_status_text(self._status())
        assert "run RUN_x  state=running  pid 4242 (alive)" in text
        assert "3/6 50%" in text
        assert "#" * 15 + "." * 15 in text  # half-full bar
        assert "ewma 0.02s/pt" in text and "eta 0.03s" in text
        assert "cache hit rate 25.0%" in text
        assert "rss 50 MB" in text
        assert "in flight (1): simple/comp/P4" in text
        assert "1/2" in text and "0/2" in text  # the scheme matrix
        assert "journal damage" not in text

    def test_in_flight_overflow_and_damage(self):
        from repro.report import format_status_text

        many = [{"i": i, "label": f"p{i}"} for i in range(12)]
        text = format_status_text(self._status(
            in_flight=many, torn_tail=True, bad_lines=2))
        assert "in flight (12):" in text and "+4 more" in text
        assert "journal damage: torn_tail=True bad_lines=2" in text

    def test_minimal_dict_renders(self):
        from repro.report import format_status_text

        text = format_status_text({"state": "interrupted"})
        assert "state=interrupted" in text
        assert "pid ?" in text


class TestSeriesTable:
    ROWS = [
        {"key": "simple/comp/P4", "unit": "wall p50 s", "runs": 3,
         "value": 0.03, "prev": 0.01, "misses": 101,
         "status": "regressed", "note": "wall p50 up 200%"},
        {"key": "fig:OPT@P8", "unit": "speedup", "runs": 2,
         "value": 5.0, "prev": 4.9, "misses": None, "status": "ok"},
    ]

    def test_flags_and_alignment(self):
        from repro.report import format_series_table

        text = format_series_table(self.ROWS)
        lines = text.splitlines()
        assert lines[2].startswith("! simple/comp/P4")
        assert "(wall p50 up 200%)" in lines[2]
        assert lines[3].startswith("  fig:OPT@P8")
        assert "-" in lines[3]  # None prev/misses render as dashes

    def test_limit_hides_tail(self):
        from repro.report import format_series_table

        text = format_series_table(self.ROWS, limit=1)
        assert "fig:OPT@P8" not in text
        assert "... 1 more rows" in text

    def test_empty_history_hint(self):
        from repro.report import format_series_table

        assert "series history is empty" in format_series_table([])


class TestRunReportHtml:
    def _payload(self):
        return {
            "schema": 1,
            "run_id": "RUN_x",
            "status": {"run_id": "RUN_x", "state": "interrupted",
                       "total": 2, "finished": 1, "ok": 1, "errors": 0,
                       "degraded": 0, "retried": 0, "store_hits": 0,
                       "waves": 1, "resumes": 0, "eta": None,
                       "in_flight": [{"i": 1, "label": "simple/comp/P4"}]},
            "header": {"schema": 3, "created": "2026-01-01T00:00:00Z"},
            "timeline": [
                {"t": 0.0, "type": "wave", "wave": 1, "pending": 2},
                {"t": 0.01, "type": "start", "i": 0,
                 "label": "simple/base/P1"},
                {"t": 0.5, "type": "heartbeat", "finished": 0},
                {"t": 1.0, "type": "done", "i": 0, "ok": True},
            ],
            "points": [{"i": 0, "label": "simple/base/P1", "ok": True,
                        "elapsed": 0.5, "total_time": 12.0,
                        "store_hit": False, "attempts": 1,
                        "degraded": False}],
            "degraded": [],
            "failures": [{"i": 1, "label": "simple/comp/P4",
                          "error": "<boom> & crash"}],
            "decisions": {"layout: A → (*, BLOCK)": 2},
            "series": {"samples": 3, "bad_lines": 0, "torn_tail": False,
                       "curves": {"finished": [[0.0, 0.0], [1.0, 1.0]],
                                  "rss_mb": [[0.0, 40.0], [1.0, 41.0]]}},
        }

    def test_report_is_self_contained_and_escaped(self):
        from repro.report import run_report_html

        html = run_report_html(self._payload())
        assert html.lstrip().lower().startswith("<!doctype html")
        assert "RUN_x" in html and "interrupted" in html
        assert "background:#fdd" in html  # interrupted state is tinted
        assert "in flight (1): simple/comp/P4" in html
        assert "<svg" in html and "finished" in html and "rss_mb" in html
        # Raw error text is escaped, never injected as markup.
        assert "<boom>" not in html
        assert "&lt;boom&gt; &amp; crash" in html
        # Heartbeats stay out of the rendered timeline.
        assert "heartbeat" not in html.split("timeline", 1)[1]
        body = html.split("</title>", 1)[1].lower()
        for needle in ("http://", "https://", "<script src",
                       "<link rel", "<img"):
            assert needle not in body

    def test_report_without_series_mentions_heartbeat_flag(self):
        from repro.report import run_report_html

        payload = self._payload()
        payload["series"] = {"samples": 0, "bad_lines": 0,
                             "torn_tail": False, "curves": {}}
        html = run_report_html(payload)
        assert "no time-series samples" in html
