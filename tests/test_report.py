"""Tests for result formatting."""

import json

from repro.report import (
    Table1Row,
    at_procs,
    classify_critical,
    format_profile_table,
    format_speedup_table,
    format_table1,
    markdown_speedup_table,
    save_experiment,
)

CURVES = {
    "base": [(1, 1.0), (4, 3.5), (32, 10.0)],
    "comp decomp + data transform": [(1, 1.0), (4, 3.9), (32, 25.0)],
}


class TestFormatting:
    def test_fixed_width(self):
        text = format_speedup_table(CURVES, title="demo")
        assert "demo" in text
        assert "base" in text
        assert "25.00" in text

    def test_markdown(self):
        md = markdown_speedup_table(CURVES)
        assert md.startswith("| scheme |")
        assert "P=32" in md
        assert "| base |" in md

    def test_at_procs(self):
        assert at_procs(CURVES["base"], 4) == 3.5
        assert at_procs(CURVES["base"], 7) is None


class TestSaveExperiment:
    def test_writes_text_only_by_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = save_experiment("demo", "hello")
        assert open(path).read() == "hello\n"
        assert not (tmp_path / "demo.json").exists()

    def test_writes_json_sibling_with_metrics(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        save_experiment(
            "demo", "hello",
            metrics={"title": "t", "series": {
                "base": [[1, 1.0], [4, 3.5]],
            }},
        )
        data = json.loads((tmp_path / "demo.json").read_text())
        assert data["name"] == "demo"
        assert data["series"]["base"] == [[1, 1.0], [4, 3.5]]


class TestProfileTable:
    def test_renders_phase_and_array_detail(self):
        from repro.apps import simple
        from repro.compiler import Scheme, compile_program
        from repro.machine import scaled_dash
        from repro.machine.simulate import simulate

        prog = simple.build(n=16)
        spmd = compile_program(prog, Scheme.COMP_DECOMP_DATA, 4)
        res = simulate(spmd, scaled_dash(4, scale=32, word_bytes=8),
                       detail=True)
        text = format_profile_table(res)
        assert "profile:" in text
        for nest in ("add", "relax"):
            assert nest in text
        for arr in ("A", "B", "C"):
            assert f"\n{arr} " in text
        assert "numa:" in text
        assert "conflict sets:" in text


class TestTable1:
    def test_classify_critical(self):
        comp, data = classify_critical(base=4.2, cd=5.0, cdd=14.3)
        assert comp and data
        comp, data = classify_critical(base=8.0, cd=22.9, cdd=22.9)
        assert comp and not data
        # stencil-shaped: cd loses to base but the combination wins big
        comp, data = classify_critical(base=15.6, cd=10.0, cdd=28.5)
        assert comp and data
        # nothing helps much
        comp, data = classify_critical(base=10.0, cd=10.2, cdd=10.5)
        assert not comp and not data

    def test_format(self):
        rows = [
            Table1Row("lu", 19.5, 33.5, True, True, ["A: (*, CYCLIC)"]),
            Table1Row("adi", 8.0, 22.9, True, False, ["X: (*, BLOCK)"]),
        ]
        text = format_table1(rows)
        assert "lu" in text and "33.5" in text
        assert "(*, CYCLIC)" in text
        lines = text.splitlines()
        assert len(lines) == 4


class TestExplainTree:
    def test_empty_log_one_liner(self):
        from repro.obs.provenance import ProvenanceLog
        from repro.report import format_explain_tree

        text = format_explain_tree(ProvenanceLog(), title="x/opt/P4")
        assert text.splitlines()[-1] == "(no decisions recorded)"
        assert "x/opt/P4" in text

    def test_none_and_empty_list(self):
        from repro.report import format_explain_tree

        assert "(no decisions recorded)" in format_explain_tree(None)
        assert "(no decisions recorded)" in format_explain_tree([])

    def test_partial_record_dicts_fail_soft(self):
        from repro.report import format_explain_tree

        # Records missing most keys (e.g. hand-edited JSON) still render.
        text = format_explain_tree([{"stage": "layout"}, {}])
        assert "[layout]" in text
        assert "?" in text


class TestDiffTable:
    def test_identical_one_liner(self):
        from repro.obs.provenance import RunDiff
        from repro.report import format_diff_table

        diff = RunDiff()
        diff.n_compared = 3
        text = format_diff_table(diff)
        assert "(runs identical: 3 points compared, no deltas)" in text

    def test_no_overlap(self):
        from repro.obs.provenance import RunDiff
        from repro.report import format_diff_table

        diff = RunDiff()
        diff.missing_in_b = ["a/base/P1"]
        diff.missing_in_a = ["b/base/P1"]
        text = format_diff_table(diff)
        assert "present in A only" in text
        assert "present in B only" in text

    def test_diff_cli_bad_file_exits_2(self, tmp_path, capsys):
        from repro.__main__ import main

        missing = tmp_path / "nope.json"
        assert main(["diff", str(missing), str(missing)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("diff: ")
        assert len(err.strip().splitlines()) == 1

    def test_diff_cli_wrong_schema_exits_2(self, tmp_path, capsys):
        from repro.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"hello": 1}')
        assert main(["diff", str(bad), str(bad)]) == 2
        assert "points" in capsys.readouterr().err
