"""Tests for result formatting."""

from repro.report import (
    Table1Row,
    at_procs,
    classify_critical,
    format_speedup_table,
    format_table1,
    markdown_speedup_table,
)

CURVES = {
    "base": [(1, 1.0), (4, 3.5), (32, 10.0)],
    "comp decomp + data transform": [(1, 1.0), (4, 3.9), (32, 25.0)],
}


class TestFormatting:
    def test_fixed_width(self):
        text = format_speedup_table(CURVES, title="demo")
        assert "demo" in text
        assert "base" in text
        assert "25.00" in text

    def test_markdown(self):
        md = markdown_speedup_table(CURVES)
        assert md.startswith("| scheme |")
        assert "P=32" in md
        assert "| base |" in md

    def test_at_procs(self):
        assert at_procs(CURVES["base"], 4) == 3.5
        assert at_procs(CURVES["base"], 7) is None


class TestTable1:
    def test_classify_critical(self):
        comp, data = classify_critical(base=4.2, cd=5.0, cdd=14.3)
        assert comp and data
        comp, data = classify_critical(base=8.0, cd=22.9, cdd=22.9)
        assert comp and not data
        # stencil-shaped: cd loses to base but the combination wins big
        comp, data = classify_critical(base=15.6, cd=10.0, cdd=28.5)
        assert comp and data
        # nothing helps much
        comp, data = classify_critical(base=10.0, cd=10.2, cdd=10.5)
        assert not comp and not data

    def test_format(self):
        rows = [
            Table1Row("lu", 19.5, 33.5, True, True, ["A: (*, CYCLIC)"]),
            Table1Row("adi", 8.0, 22.9, True, False, ["X: (*, BLOCK)"]),
        ]
        text = format_table1(rows)
        assert "lu" in text and "33.5" in text
        assert "(*, CYCLIC)" in text
        lines = text.splitlines()
        assert len(lines) == 4
