"""Tests for the Section 4.2 layout-derivation algorithm."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datatrans.transform import (
    OwnerSpec,
    TransformedArray,
    derive_layout,
    identity_transform,
)
from repro.decomp.hpf import parse_distribute
from repro.decomp.model import DataDecomp, FoldKind, Folding
from repro.ir.arrays import ArrayDecl


def derive(dims, dist, grid, restructure=True, element_size=8):
    dd, folds = parse_distribute(dist, "A", len(dims))
    return derive_layout(
        ArrayDecl("A", tuple(dims), element_size), dd, folds, grid,
        restructure=restructure,
    )


class TestOwnerSpec:
    def test_block(self):
        s = OwnerSpec(0, 0, div=3, mod=None, nproc=4)
        assert [s.owner(x) for x in (0, 2, 3, 11)] == [0, 0, 1, 3]

    def test_clamp_padding(self):
        s = OwnerSpec(0, 0, div=3, mod=None, nproc=3)
        assert s.owner(8) == 2  # 8//3 == 2, in range

    def test_cyclic(self):
        s = OwnerSpec(0, 0, div=1, mod=4, nproc=4)
        assert [s.owner(x) for x in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_vectorized(self):
        import numpy as np

        s = OwnerSpec(0, 0, div=2, mod=3, nproc=3)
        xs = np.arange(20)
        vec = s.owner_vec(xs)
        for x in xs:
            assert vec[x] == s.owner(int(x))


class TestDerive:
    def test_identity_for_none(self):
        decl = ArrayDecl("A", (4, 4))
        ta = derive_layout(decl, None, [], [])
        assert not ta.restructured
        assert ta.owner_specs == ()

    def test_replicated(self):
        decl = ArrayDecl("A", (4, 4))
        dd = DataDecomp("A", [[0, 0]], [0], replicated=True)
        ta = derive_layout(decl, dd, [Folding(FoldKind.BLOCK)], [4])
        assert ta.replicated
        assert not ta.restructured

    def test_local_optimization_highest_block(self):
        """(*, BLOCK) on a 2-D array: processor dim already rightmost,
        so no restructuring happens (Section 4.2's final note)."""
        ta = derive((8, 8), "(*, BLOCK)", [4])
        assert not ta.restructured
        assert ta.layout.dims == (8, 8)
        assert ta.owner_coords((0, 7)) == (3,)

    def test_first_dim_block_restructures(self):
        ta = derive((8, 8), "(BLOCK, *)", [4])
        assert ta.restructured
        assert ta.layout.dims == (2, 8, 4)

    def test_single_proc_no_restructure(self):
        ta = derive((8, 8), "(BLOCK, *)", [1])
        assert not ta.restructured

    def test_no_restructure_flag(self):
        ta = derive((8, 8), "(CYCLIC, *)", [4], restructure=False)
        assert not ta.restructured
        assert len(ta.owner_specs) == 1  # owners still computed

    def test_3d_middle_dim(self):
        """vpenta's F(*, BLOCK, *): the processor dim moves past the
        plane dimension, packing each processor's planes together."""
        ta = derive((8, 8, 3), "(*, BLOCK, *)", [4])
        assert ta.restructured
        assert ta.layout.dims == (8, 2, 3, 4)
        # owner's data contiguous
        per = {}
        for i in range(8):
            for j in range(8):
                for k in range(3):
                    o = ta.owner_coords((i, j, k))
                    per.setdefault(o, []).append(
                        ta.layout.linearize((i, j, k))
                    )
        for o, addrs in per.items():
            s = sorted(addrs)
            assert s[-1] - s[0] == len(s) - 1

    def test_two_distributed_dims(self):
        ta = derive((8, 8), "(BLOCK, BLOCK)", [2, 2])
        assert ta.restructured
        # dim 0 strip-mined; dim 1 (highest, BLOCK) keeps the local
        # optimization: its block structure already composes contiguously
        assert ta.layout.dims == (4, 8, 2)
        per = {}
        for i in range(8):
            for j in range(8):
                o = ta.owner_coords((i, j))
                per.setdefault(o, []).append(ta.layout.linearize((i, j)))
        for o, addrs in per.items():
            s = sorted(addrs)
            assert s[-1] - s[0] == len(s) - 1

    def test_cyclic_processor_dim_is_inner_strip(self):
        """CYCLIC: the first (mod) strip dimension identifies the
        processor (Section 4.2)."""
        ta = derive((8,), "(CYCLIC)", [4])
        assert ta.layout.map_index((5,)) == (1, 1)  # (x//P, x%P)
        assert ta.owner_coords((5,)) == (1,)

    def test_block_cyclic_middle(self):
        ta = derive((16,), "(CYCLIC(2))", [2])
        # (x mod b, x div bP, (x div b) mod P)
        assert ta.layout.map_index((6,)) == (0, 1, 1)
        assert ta.owner_coords((6,)) == (1,)

    @given(
        st.integers(2, 12), st.integers(2, 6), st.integers(2, 4),
        st.sampled_from(["(BLOCK, *)", "(CYCLIC, *)", "(*, BLOCK)",
                         "(BLOCK, BLOCK)"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_contiguity_property(self, d1, d2, p, dist):
        """THE paper invariant: after transformation every processor's
        elements occupy one contiguous address range."""
        grid = [p, 1] if dist == "(BLOCK, BLOCK)" else [p]
        if dist == "(BLOCK, BLOCK)":
            grid = [max(1, p // 2), 2]
        ta = derive((d1, d2), dist, grid)
        assert ta.layout.is_bijective()
        per = {}
        for i in range(d1):
            for j in range(d2):
                o = ta.owner_coords((i, j))
                per.setdefault(o, []).append(ta.layout.linearize((i, j)))
        for o, addrs in per.items():
            s = sorted(addrs)
            # contiguous up to strip padding: the span may exceed the
            # count only by padding elements that belong to no real index
            span = s[-1] - s[0] + 1
            assert span - len(s) < ta.layout.size - ta.decl.size + 1


class TestSizes:
    def test_padding_bound(self):
        # Section 4.3: padded size < d + b_max per strip-mined dim.
        ta = derive((10,), "(BLOCK)", [4])
        b = -(-10 // 4)
        assert 10 <= ta.layout.size < 10 + b

    def test_nbytes(self):
        ta = derive((8, 8), "(BLOCK, *)", [4], element_size=4)
        assert ta.nbytes == ta.layout.size * 4
