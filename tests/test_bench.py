"""Persistent perf-regression harness (PR-4): snapshot shape,
persistence + pointer files, and the noise-aware comparison gate.

The gate's contract: identical snapshots pass; any drift in a
deterministic simulated counter fails (exact match); wall time fails
only beyond the relative tolerance and only on the same host.
"""

import copy
import json

import pytest

from repro import obs
from repro.__main__ import main
from repro.obs import bench
from repro.obs.bench import (
    compare_snapshots,
    load_snapshot,
    run_bench,
    save_snapshot,
)
from repro.pipeline import reset_session
from repro.report import format_bench_table, format_regression_table


@pytest.fixture(autouse=True)
def _clean_state():
    obs.disable()
    obs.reset()
    reset_session()
    yield
    obs.disable()
    obs.reset()
    reset_session()


@pytest.fixture(scope="module")
def snap():
    """One tiny grid, shared by the read-only tests (deep-copy before
    mutating)."""
    return run_bench(apps=["simple"], schemes=["base", "comp"],
                     procs=[1, 2], n=8, repeats=2)


class TestRunBench:
    def test_snapshot_shape(self, snap):
        assert snap["schema"] == bench.SCHEMA_VERSION
        assert set(snap["host"]) == {"platform", "machine", "python",
                                     "node", "cpu", "cores"}
        assert snap["host"]["cpu"]
        assert snap["host"]["cores"] >= 1
        assert snap["config"]["apps"] == ["simple"]
        assert snap["config"]["schemes"] == ["base", "comp"]
        assert len(snap["points"]) == 4
        for p in snap["points"]:
            assert p["wall"]["repeats"] == 2
            assert len(p["wall"]["samples"]) == 2
            assert p["wall"]["min"] <= p["wall"]["p50"] <= p["wall"]["max"]
            assert p["sim"]["total_time"] > 0
            assert p["sim"]["n_accesses"] > 0
            assert "misses" in p["sim"]
            assert "numa" in p["sim"] and "conflict" in p["sim"]

    def test_points_carry_perf_ledger_and_stacks(self, snap):
        # Schema 3: every point stores the wall-time ledger and a
        # collapsed-stack blob next to the snapshot.
        for p in snap["points"]:
            ledger = p["perf"]["ledger"]
            kinds = {r["kind"] for r in ledger["rows"]}
            assert "pass" in kinds and "residual" in kinds
            assert p["perf"]["stacks"]  # folded "a;b value" lines
            assert all(" " in line for line in p["perf"]["stacks"])

    def test_addressing_counters_recorded(self, snap):
        # The optimized emitter's strength reduction fires somewhere in
        # the grid; its counters are part of the tracked surface.
        assert any(p["sim"]["addressing"] for p in snap["points"])

    def test_deterministic_sim_metrics(self, snap):
        again = run_bench(apps=["simple"], schemes=["base", "comp"],
                          procs=[1, 2], n=8, repeats=1)
        for a, b in zip(snap["points"], again["points"]):
            assert a["sim"] == b["sim"]

    def test_snapshot_is_json_safe(self, snap):
        assert json.loads(json.dumps(snap)) == snap

    def test_obs_state_restored(self):
        obs.enable(reset=True)
        keep = obs.collector()
        run_bench(apps=["simple"], schemes=["base"], procs=[1], n=8,
                  repeats=1)
        assert obs.enabled()
        assert obs.collector() is keep

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            run_bench(apps=["simple"], schemes=["base"], procs=[1],
                      repeats=0)


class TestPersistence:
    def test_save_and_load_via_pointer(self, snap, tmp_path):
        out = tmp_path / "bench"
        latest = tmp_path / "BENCH_latest.json"
        path, lpath = save_snapshot(snap, out_dir=out, latest=latest)
        assert json.load(open(lpath))["pointer"] == path
        assert load_snapshot(path) == snap
        assert load_snapshot(latest) == snap

    def test_relative_pointer_resolves_against_pointer_dir(self, snap,
                                                           tmp_path):
        out = tmp_path / "bench"
        path, _ = save_snapshot(snap, out_dir=out, latest=None)
        pointer = out / "latest.json"
        name = path.rsplit("/", 1)[-1]
        pointer.write_text(json.dumps({"schema": 1, "pointer": name}))
        assert load_snapshot(pointer) == snap

    def test_collision_gets_serial_suffix(self, snap, tmp_path):
        out = tmp_path / "bench"
        p1, _ = save_snapshot(snap, out_dir=out, latest=None)
        p2, _ = save_snapshot(snap, out_dir=out, latest=None)
        assert p1 != p2 and p2.endswith("-1.json")

    def test_pointer_cycle_bounded(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps({"pointer": str(b)}))
        b.write_text(json.dumps({"pointer": str(a)}))
        with pytest.raises(ValueError, match="pointer chain"):
            load_snapshot(a)


class TestCompare:
    def test_identical_snapshots_pass(self, snap):
        cmp = compare_snapshots(snap, copy.deepcopy(snap))
        assert cmp.ok
        assert cmp.wall_gated
        table = format_regression_table(cmp)
        assert "verdict: OK" in table

    def test_perturbed_sim_counter_fails_exactly(self, snap):
        cur = copy.deepcopy(snap)
        cur["points"][0]["sim"]["n_accesses"] += 1
        cmp = compare_snapshots(snap, cur)
        assert not cmp.ok
        bad = cmp.regressions
        assert [r.metric for r in bad] == ["sim.n_accesses"]
        assert bad[0].status == "changed"
        table = format_regression_table(cmp)
        assert "sim.n_accesses" in table and "REGRESSED" in table

    def test_wall_regression_same_host(self, snap):
        cur = copy.deepcopy(snap)
        for p in cur["points"]:
            p["wall"]["min"] = p["wall"]["min"] + 1.0  # way past both gates
        cmp = compare_snapshots(snap, cur, wall_tol=0.30)
        assert not cmp.ok
        assert all(r.metric == "wall.min" and r.status == "regressed"
                   for r in cmp.regressions)

    def test_wall_within_tolerance_passes(self, snap):
        cur = copy.deepcopy(snap)
        for p in cur["points"]:
            p["wall"]["min"] = p["wall"]["min"] * 1.1
        assert compare_snapshots(snap, cur, wall_tol=0.30).ok

    def test_sub_floor_jitter_never_regresses(self, snap):
        # Huge relative swing on a tiny measurement stays under the
        # absolute floor and must not trip the gate.
        base = copy.deepcopy(snap)
        cur = copy.deepcopy(snap)
        for bp, cp in zip(base["points"], cur["points"]):
            bp["wall"]["min"] = 0.001
            cp["wall"]["min"] = 0.003  # +200% relative, +2ms absolute
        assert compare_snapshots(base, cur, wall_tol=0.30,
                                 wall_abs_floor=0.010).ok
        assert not compare_snapshots(base, cur, wall_tol=0.30,
                                     wall_abs_floor=0.0).ok

    def test_different_host_skips_wall_gate(self, snap):
        cur = copy.deepcopy(snap)
        cur["host"] = dict(cur["host"], node="elsewhere")
        for p in cur["points"]:
            p["wall"]["min"] = p["wall"]["min"] * 100.0
        cmp = compare_snapshots(snap, cur)
        assert cmp.ok and not cmp.wall_gated
        assert any(r.status == "skipped" for r in cmp.rows)
        assert "wall gate off" in format_regression_table(cmp)

    def test_vanished_point_fails(self, snap):
        cur = copy.deepcopy(snap)
        cur["points"] = cur["points"][1:]
        cmp = compare_snapshots(snap, cur)
        assert not cmp.ok
        assert cmp.regressions[0].status == "missing"

    def test_new_point_reported_not_failing(self, snap):
        base = copy.deepcopy(snap)
        base["points"] = base["points"][1:]
        cmp = compare_snapshots(base, snap)
        assert cmp.ok
        assert any(r.status == "new" for r in cmp.rows)

    def test_config_mismatch_incomparable(self, snap):
        cur = copy.deepcopy(snap)
        cur["config"] = dict(cur["config"], n=99)
        cmp = compare_snapshots(snap, cur)
        assert not cmp.ok
        assert cmp.rows[0].status == "incomparable"

    def test_schema_mismatch_incomparable(self, snap):
        cur = copy.deepcopy(snap)
        cur["schema"] = 99
        cmp = compare_snapshots(snap, cur)
        assert not cmp.ok and cmp.rows[0].metric == "schema"

    def test_schema2_snapshot_loads_but_is_incomparable(self, snap,
                                                        tmp_path):
        # A committed schema-2 baseline (no "perf" key, old host shape)
        # must still load fine and fail the gate as incomparable — not
        # crash on the missing ledger.
        old = copy.deepcopy(snap)
        old["schema"] = 2
        old["host"] = {k: old["host"][k] for k in
                       ("platform", "machine", "python", "node")}
        for p in old["points"]:
            p.pop("perf")
        path = tmp_path / "old.json"
        path.write_text(json.dumps(old))
        loaded = load_snapshot(path)
        assert loaded["schema"] == 2
        cmp = compare_snapshots(loaded, snap)
        assert not cmp.ok and cmp.rows[0].status == "incomparable"

    def test_missing_ledger_in_baseline_not_compared(self, snap):
        # Same schema but a point without "perf" (defensive): the
        # ledger gate simply doesn't apply to that point.
        base = copy.deepcopy(snap)
        for p in base["points"]:
            p.pop("perf")
        assert compare_snapshots(base, snap).ok


class TestCompareLedger:
    """The schema-3 ledger gate: deterministic structure exact,
    self-time noise-gated like wall.min."""

    def test_ledger_count_drift_fails_exactly(self, snap):
        cur = copy.deepcopy(snap)
        row = cur["points"][0]["perf"]["ledger"]["rows"][0]
        row["count"] += 1
        cmp = compare_snapshots(snap, cur)
        assert not cmp.ok
        bad = cmp.regressions
        assert len(bad) == 1
        assert bad[0].metric.startswith("perf.") and \
            bad[0].metric.endswith(".count")
        assert bad[0].status == "changed"

    def test_ledger_row_vanished_fails(self, snap):
        cur = copy.deepcopy(snap)
        led = cur["points"][0]["perf"]["ledger"]
        led["rows"] = [r for r in led["rows"] if r["kind"] != "pass"]
        cmp = compare_snapshots(snap, cur)
        assert not cmp.ok
        assert all(r.note == "ledger row appeared/disappeared"
                   for r in cmp.regressions)

    def test_ledger_self_time_noise_gated(self, snap):
        # +200% relative but under the 10ms floor: quiet.  Past both
        # thresholds: regressed.
        base = copy.deepcopy(snap)
        cur = copy.deepcopy(snap)
        for bp, cp in zip(base["points"], cur["points"]):
            for br, cr in zip(bp["perf"]["ledger"]["rows"],
                              cp["perf"]["ledger"]["rows"]):
                br["self_s"] = 0.001
                cr["self_s"] = 0.003
        assert compare_snapshots(base, cur).ok
        cur["points"][0]["perf"]["ledger"]["rows"][0]["self_s"] = 1.0
        cmp = compare_snapshots(base, cur)
        assert not cmp.ok
        assert cmp.regressions[0].metric.endswith(".self_s")

    def test_ledger_self_time_not_gated_cross_host(self, snap):
        cur = copy.deepcopy(snap)
        cur["host"] = dict(cur["host"], node="elsewhere")
        for p in cur["points"]:
            for r in p["perf"]["ledger"]["rows"]:
                r["self_s"] += 10.0
        assert compare_snapshots(snap, cur).ok

    def test_host_mismatch_skip_message_names_fields(self, snap):
        cur = copy.deepcopy(snap)
        cur["host"] = dict(cur["host"], node="elsewhere", cores=9999)
        cmp = compare_snapshots(snap, cur)
        skipped = [r for r in cmp.rows if r.status == "skipped"]
        assert skipped
        assert "node" in skipped[0].note and "cores" in skipped[0].note
        assert "wall gate off" in skipped[0].note


class TestHostFingerprint:
    def test_fingerprint_fields(self):
        fp = bench.host_fingerprint()
        assert fp["cpu"] and isinstance(fp["cores"], int)
        assert fp["python"].count(".") >= 1

    def test_describe_host_mismatch(self):
        a = {"node": "a", "cpu": "x", "cores": 4}
        b = {"node": "b", "cpu": "x", "cores": 8}
        msg = bench.describe_host_mismatch(a, b)
        assert "node: 'a' vs 'b'" in msg
        assert "cores: 4 vs 8" in msg
        assert "cpu" not in msg
        assert bench.describe_host_mismatch(a, dict(a)) == ""


class TestBenchTable:
    def test_format_bench_table(self, snap):
        table = format_bench_table(snap)
        assert "simple" in table
        assert "wall min" in table and "sim time" in table
        assert len(table.splitlines()) == 3 + len(snap["points"])


class TestBenchCLI:
    def _run(self, tmp_path, *extra):
        argv = ["bench", "--apps", "simple", "--schemes", "base",
                "--procs-list", "1", "--n", "8", "--repeats", "2",
                "--out-dir", str(tmp_path / "bench"),
                "--latest", str(tmp_path / "BENCH_latest.json")]
        return main(argv + list(extra))

    def test_two_runs_then_compare_pass(self, tmp_path, capsys):
        assert self._run(tmp_path) == 0
        assert self._run(tmp_path) == 0
        rc = self._run(tmp_path, "--compare",
                       str(tmp_path / "BENCH_latest.json"))
        assert rc == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_compare_perturbed_baseline_exits_nonzero(self, tmp_path,
                                                      capsys):
        assert self._run(tmp_path) == 0
        latest = tmp_path / "BENCH_latest.json"
        baseline = load_snapshot(latest)
        baseline["points"][0]["sim"]["total_time"] += 1.0
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(baseline))
        rc = self._run(tmp_path, "--compare", str(doctored))
        assert rc == 1
        out = capsys.readouterr().out
        assert "sim.total_time" in out and "REGRESSED" in out

    def test_wall_gate_trip_prints_perf_culprits(self, tmp_path, capsys):
        # A tripped wall gate must auto-print the differential
        # attribution (perf culprit table) next to the provenance diff.
        assert self._run(tmp_path) == 0
        baseline = load_snapshot(tmp_path / "BENCH_latest.json")
        for p in baseline["points"]:
            p["wall"]["min"] = 1e-9
            for r in p["perf"]["ledger"]["rows"]:
                r["self_s"] *= 1e-6
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(baseline))
        capsys.readouterr()
        rc = self._run(tmp_path, "--compare", str(doctored),
                       "--wall-abs-floor", "0.0")
        assert rc == 1
        out = capsys.readouterr().out
        assert "perf culprits vs baseline" in out
        assert "SIGNIFICANT" in out

    def test_compare_resolves_baseline_before_save(self, tmp_path):
        # --compare against the pointer must mean the *previous* run.
        assert self._run(tmp_path) == 0
        first = json.load(open(tmp_path / "BENCH_latest.json"))["pointer"]
        assert self._run(tmp_path, "--compare",
                         str(tmp_path / "BENCH_latest.json")) == 0
        second = json.load(open(tmp_path / "BENCH_latest.json"))["pointer"]
        assert first != second  # pointer moved, gate used the old one

    def test_no_save_writes_nothing(self, tmp_path):
        assert self._run(tmp_path, "--no-save") == 0
        assert not (tmp_path / "bench").exists()
        assert not (tmp_path / "BENCH_latest.json").exists()

    def test_missing_baseline_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot load baseline"):
            self._run(tmp_path, "--compare", str(tmp_path / "nope.json"))

    def test_unknown_app_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown app"):
            main(["bench", "--apps", "bogus", "--no-save"])


class TestSeriesTrends:
    """The ``repro series`` rollup: bench digests and figure curves
    judged last-vs-previous."""

    def _bench_line(self, created, wall, misses):
        return {"schema": 2, "created": created, "name": "bench",
                "kind": "bench",
                "points": [{"point": "simple/comp/P4",
                            "wall_p50": wall, "misses": misses}]}

    def _figure_line(self, created, speedup):
        return {"schema": 2, "created": created, "name": "fig_speedup",
                "series": {"OPT": [[1, 1.0], [8, speedup]]}}

    def test_single_sample_is_new(self):
        rows = bench.series_trends([self._bench_line("t0", 0.01, 5)])
        assert [r["status"] for r in rows] == ["new"]
        assert rows[0]["prev"] is None and rows[0]["runs"] == 1

    def test_wall_regression_needs_relative_and_absolute(self):
        # +200% but only +0.002s absolute: under the floor, not flagged.
        rows = bench.series_trends([self._bench_line("t0", 0.001, 5),
                                    self._bench_line("t1", 0.003, 5)])
        assert rows[0]["status"] == "ok"
        # +200% and +0.02s absolute: regression.
        rows = bench.series_trends([self._bench_line("t0", 0.01, 5),
                                    self._bench_line("t1", 0.03, 5)])
        assert rows[0]["status"] == "regressed"

    def test_miss_drift_overrides_wall_verdict(self):
        rows = bench.series_trends([self._bench_line("t0", 0.01, 100),
                                    self._bench_line("t1", 0.01, 101)])
        assert rows[0]["status"] == "changed"
        assert "100 → 101" in rows[0]["note"]

    def test_figure_speedup_judged_at_max_procs(self):
        rows = bench.series_trends([self._figure_line("t0", 5.0),
                                    self._figure_line("t1", 3.0)])
        assert rows[0]["key"] == "fig_speedup:OPT@P8"
        assert rows[0]["unit"] == "speedup"
        assert rows[0]["status"] == "regressed"
        rows = bench.series_trends([self._figure_line("t0", 5.0),
                                    self._figure_line("t1", 5.1)])
        assert rows[0]["status"] == "ok"

    def test_garbled_and_unknown_lines_ignored(self):
        rows = bench.series_trends([
            {"kind": "bench", "points": [{"point": None, "wall_p50": 1}]},
            {"series": "not a dict"},
            {"unrelated": True},
            self._bench_line("t0", 0.01, 5),
        ])
        assert len(rows) == 1


class TestAppendBenchSeries:
    def test_digest_round_trip(self, snap, tmp_path):
        path = tmp_path / "series.jsonl"
        out = bench.append_bench_series(snap, path=path)
        assert out == str(path)
        lines = bench.load_series_lines(path)
        assert len(lines) == 1
        assert lines[0]["kind"] == "bench"
        digest = {p["point"]: p for p in lines[0]["points"]}
        for p in snap["points"]:
            key = bench.point_key(p)
            assert digest[key]["wall_p50"] == p["wall"]["p50"]
            assert digest[key]["misses"] == sum(p["sim"]["misses"].values())

    def test_load_series_lines_is_lenient(self, tmp_path):
        path = tmp_path / "series.jsonl"
        path.write_text('{"kind": "bench", "points": []}\n'
                        'garbage\n'
                        '[1, 2]\n'
                        '{"name": "ok"}\n')
        lines = bench.load_series_lines(path)
        assert len(lines) == 2
        assert bench.load_series_lines(tmp_path / "missing.jsonl") == []
