"""Structural tests for the benchmark applications."""

import pytest

from repro.apps import ALL_APPS
from repro.compiler import Scheme, compile_program

SMALL = {
    "simple": dict(n=12, time_steps=2),
    "vpenta": dict(n=10, time_steps=2),
    "lu": dict(n=8),
    "stencil5": dict(n=10, time_steps=2),
    "adi": dict(n=8, time_steps=2),
    "erlebacher": dict(n=6, time_steps=2),
    "swm": dict(n=10, time_steps=2),
    "tomcatv": dict(n=10, time_steps=2),
}


@pytest.mark.parametrize("name", sorted(ALL_APPS))
class TestEveryApp:
    def test_builds_and_validates(self, name):
        prog = ALL_APPS[name].build(**SMALL[name])
        prog.validate()
        assert prog.nests
        assert prog.arrays

    def test_compiles_under_all_schemes(self, name):
        prog = ALL_APPS[name].build(**SMALL[name])
        for scheme in Scheme:
            spmd = compile_program(prog, scheme, 4)
            assert len(spmd.phases) == len(prog.nests)

    def test_has_reference_model(self, name):
        mod = ALL_APPS[name]
        assert callable(mod.reference)

    def test_paper_constants_recorded(self, name):
        mod = ALL_APPS[name]
        names = dir(mod)
        assert any(n.startswith("PAPER_") for n in names)


class TestAppSpecifics:
    def test_lu_triangular(self):
        prog = ALL_APPS["lu"].build(n=8)
        nest = prog.nests[0]
        # imperfect: two statements at different depths
        depths = {st.depth for st in nest.body}
        assert depths == {2, 3}

    def test_vpenta_has_3d_array(self):
        prog = ALL_APPS["vpenta"].build(n=10)
        assert prog.arrays["F"].rank == 3

    def test_erlebacher_input_read_only(self):
        prog = ALL_APPS["erlebacher"].build(n=6)
        written = {st.write.array.name for nest in prog.nests
                   for st in nest.body}
        assert "U" not in written

    def test_adi_two_sweeps(self):
        prog = ALL_APPS["adi"].build(n=8)
        assert [n.name for n in prog.nests] == ["colsweep", "rowsweep"]

    def test_element_sizes_match_paper(self):
        assert ALL_APPS["stencil5"].build(10).arrays["A"].element_size == 4
        assert ALL_APPS["swm"].build(10).arrays["P"].element_size == 4
        assert ALL_APPS["lu"].build(8).arrays["A"].element_size == 8
