"""Tests for loops, statements, nests and iteration helpers."""

import pytest

from repro.ir.builder import ProgramBuilder
from repro.ir.expr import Var
from repro.ir.loops import Loop, LoopNest, Statement


def rect_nest(n=4, m=3):
    pb = ProgramBuilder("t", params={"N": n})
    a = pb.array("A", (max(n, m), max(n, m)))
    i, j = pb.vars("I", "J")
    nest = pb.nest("n", [("I", 0, n - 1), ("J", 0, m - 1)],
                   [pb.assign(a(i, j), [a(i, j)], lambda x: x)])
    return pb.build(), nest


def triangular_nest(n=6):
    pb = ProgramBuilder("t", params={"N": n})
    a = pb.array("A", (n, n))
    i, j = pb.vars("I", "J")
    nest = pb.nest("tri", [("I", 0, n - 1), ("J", i + 1, n - 1)],
                   [pb.assign(a(j, i), [a(j, i)], lambda x: x)])
    return pb.build(), nest


class TestLoop:
    def test_make_coerces(self):
        l = Loop.make("I", 0, 7)
        assert l.lower == 0
        assert l.upper == 7

    def test_repr(self):
        assert "DO I" in repr(Loop.make("I", 0, 7))


class TestIteration:
    def test_rectangular_order(self):
        prog, nest = rect_nest(2, 2)
        envs = list(nest.iterate(prog.params))
        coords = [(e["I"], e["J"]) for e in envs]
        assert coords == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_triangular(self):
        prog, nest = triangular_nest(4)
        coords = [(e["I"], e["J"]) for e in nest.iterate(prog.params)]
        assert coords == [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)
        ]

    def test_count_matches_enumeration(self):
        for maker in (rect_nest, triangular_nest):
            prog, nest = maker()
            assert nest.count_iterations(prog.params) == sum(
                1 for _ in nest.iterate(prog.params)
            )

    def test_count_empty(self):
        pb = ProgramBuilder("t", params={})
        a = pb.array("A", (4,))
        i = Var("I")
        nest = pb.nest("n", [("I", 3, 1)], [pb.assign(a(i), [a(i)], None)])
        assert nest.count_iterations({}) == 0

    def test_numeric_bounds_rect(self):
        prog, nest = rect_nest(5, 3)
        assert nest.numeric_bounds(prog.params) == [(0, 4), (0, 2)]

    def test_numeric_bounds_triangular(self):
        prog, nest = triangular_nest(6)
        bounds = nest.numeric_bounds(prog.params)
        assert bounds[0] == (0, 5)
        assert bounds[1] == (1, 5)

    def test_numeric_bounds_unbound_raises(self):
        nest = LoopNest("x", [Loop.make("I", Var("M"), 4)], [])
        with pytest.raises(ValueError):
            nest.numeric_bounds({})


class TestNestQueries:
    def test_array_sets(self):
        pb = ProgramBuilder("t", params={})
        a = pb.array("A", (4, 4))
        b = pb.array("B", (4, 4))
        i, j = pb.vars("I", "J")
        nest = pb.nest("n", [("I", 0, 3), ("J", 0, 3)],
                       [pb.assign(a(i, j), [b(i, j), a(i, j)], None)])
        assert [d.name for d in nest.arrays_written()] == ["A"]
        assert sorted(d.name for d in nest.arrays_read()) == ["A", "B"]
        assert sorted(d.name for d in nest.arrays_accessed()) == ["A", "B"]
        refs = nest.refs_to("A")
        assert sum(1 for _, w in refs if w) == 1
        assert sum(1 for _, w in refs if not w) == 1

    def test_statement_depth_default(self):
        st = Statement(
            write=None.__class__ if False else ProgramBuilder("x", {})
            .array("Z", (2, 2))(Var("I"), Var("J")),
            reads=(),
        )
        assert st.depth is None

    def test_loop_vars(self):
        prog, nest = rect_nest()
        assert nest.loop_vars == ("I", "J")
        assert nest.depth == 2
