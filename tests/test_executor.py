"""Semantic validation: the IR interpreter must match every app's
vectorized NumPy golden model."""

import numpy as np
import pytest

from repro.apps import adi, erlebacher, lu, simple, stencil5, swm, tomcatv, vpenta
from repro.codegen.executor import default_init, execute_program


def assert_matches(prog, ref, got):
    for name in ref:
        assert np.allclose(ref[name], got[name], rtol=1e-10, atol=1e-10), name


class TestApps:
    def test_simple(self):
        prog = simple.build(n=10, time_steps=3)
        init = default_init(prog)
        ref = simple.reference(init, 10, time_steps=3)
        assert_matches(prog, ref, execute_program(prog, init=init))

    def test_lu(self):
        prog = lu.build(n=8)
        init = lu.well_conditioned_init(8)
        ref = lu.reference(init, 8)
        got = execute_program(prog, init=init)
        assert_matches(prog, ref, got)
        # and it really factored: A = L@U reconstructs the input
        a0 = init["A"]
        f = got["A"]
        l = np.tril(f, -1) + np.eye(8)
        u = np.triu(f)
        assert np.allclose(l @ u, a0, rtol=1e-8, atol=1e-8)

    def test_stencil(self):
        prog = stencil5.build(n=10, time_steps=3)
        init = default_init(prog)
        ref = stencil5.reference(init, 10, time_steps=3)
        assert_matches(prog, ref, execute_program(prog, init=init))

    def test_adi(self):
        prog = adi.build(n=8, time_steps=2)
        init = adi.stable_init(8)
        ref = adi.reference(init, 8, time_steps=2)
        assert_matches(prog, ref, execute_program(prog, init=init))

    def test_vpenta(self):
        prog = vpenta.build(n=10, time_steps=2)
        init = default_init(prog)
        ref = vpenta.reference(init, 10, time_steps=2)
        assert_matches(prog, ref, execute_program(prog, init=init))

    def test_erlebacher(self):
        prog = erlebacher.build(n=6, time_steps=2)
        init = default_init(prog)
        ref = erlebacher.reference(init, 6, time_steps=2)
        assert_matches(prog, ref, execute_program(prog, init=init))

    def test_swm(self):
        prog = swm.build(n=10, time_steps=3)
        init = default_init(prog)
        ref = swm.reference(init, 10, time_steps=3)
        assert_matches(prog, ref, execute_program(prog, init=init))

    def test_tomcatv(self):
        prog = tomcatv.build(n=10, time_steps=3)
        init = default_init(prog)
        ref = tomcatv.reference(init, 10, time_steps=3)
        assert_matches(prog, ref, execute_program(prog, init=init))


class TestExecutorMechanics:
    def test_default_init_deterministic(self, figure1_program):
        a = default_init(figure1_program)
        b = default_init(figure1_program)
        for k in a:
            assert np.array_equal(a[k], b[k])

    def test_missing_init_zeros(self, figure1_program):
        got = execute_program(figure1_program, init={}, time_steps=1)
        # B and C default to zeros, so A ends at zero
        assert np.allclose(got["A"], 0.0)

    def test_shape_mismatch_rejected(self, figure1_program):
        with pytest.raises(ValueError):
            execute_program(
                figure1_program, init={"A": np.zeros((3, 3))}
            )

    def test_default_compute_sums_reads(self):
        from repro.ir.builder import ProgramBuilder

        pb = ProgramBuilder("t")
        a = pb.array("A", (4,))
        b = pb.array("B", (4,))
        (i,) = pb.vars("I")
        pb.nest("n", [("I", 0, 3)], [pb.assign(a(i), [b(i), b(i)], None)])
        got = execute_program(
            pb.build(), init={"B": np.ones(4)}, time_steps=1
        )
        assert np.allclose(got["A"], 2.0)

    def test_time_steps_override(self):
        prog = simple.build(n=8, time_steps=5)
        init = default_init(prog)
        one = execute_program(prog, init=init, time_steps=1)
        ref = simple.reference(init, 8, time_steps=1)
        assert np.allclose(one["A"], ref["A"])

    def test_statement_depth_ordering(self, lu_program):
        """The depth-2 scale statement must execute before the inner
        update loop for the same (I1, I2) — checked implicitly by LU
        matching its golden model, and explicitly here on a crafted
        case where the wrong order would differ."""
        from repro.ir.builder import ProgramBuilder
        from repro.ir.loops import Statement

        pb = ProgramBuilder("t", params={})
        a = pb.array("A", (4, 4))
        i, j = pb.vars("I", "J")
        nest = pb.nest("n", [("I", 0, 3), ("J", 0, 3)], [])
        s_outer = Statement(write=a(i, 0 * j), reads=(a(i, 0 * j),),
                            compute=lambda x: x + 1.0, depth=1)
        s_inner = Statement(write=a(i, j), reads=(a(i, 0 * j),),
                            compute=lambda x: x * 2.0, depth=2)
        nest.body = [s_outer, s_inner]
        got = execute_program(pb.build(), init={"A": np.zeros((4, 4))},
                              time_steps=1)
        # per row: outer statement bumps A[i,0] to 1 BEFORE inner doubles:
        # j=0: A[i,0] = 2*1 = 2; then j>0 read A[i,0]=2 -> 4.
        assert np.allclose(got["A"][:, 0], 2.0)
        assert np.allclose(got["A"][:, 1:], 4.0)
