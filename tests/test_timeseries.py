"""The per-run metrics time-series sink: header + sample layout,
lenient reading (torn tail, garbled interior, missing file), metric
snapshots gated on the obs switch, and the best-effort error
accounting that keeps monitoring from ever failing a run."""

import json

import pytest

from repro import obs
from repro.obs.timeseries import (
    TS_SCHEMA,
    TimeseriesSink,
    load_series,
    ts_path,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _progress(finished=1):
    return {"pid": 1234, "wave": 1, "jobs": 2, "total": 4,
            "dispatched": 2, "finished": finished, "retried": 0,
            "degraded": 0, "errors": 0, "store_hits": 0,
            "in_flight": [2], "rss": 10_000_000}


class TestSink:
    def test_path_prefix_keeps_series_out_of_run_glob(self, tmp_path):
        p = ts_path(tmp_path, "RUN_x")
        assert p.name == "TS_RUN_x.jsonl"
        assert p.parent == tmp_path

    def test_header_then_samples(self, tmp_path):
        path = ts_path(tmp_path, "RUN_x")
        with TimeseriesSink(path, "RUN_x") as sink:
            sink.sample(_progress(1))
            sink.sample(_progress(2))
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "header"
        assert lines[0]["schema"] == TS_SCHEMA
        assert lines[0]["run_id"] == "RUN_x"
        assert [l["type"] for l in lines[1:]] == ["sample", "sample"]
        assert lines[1]["progress"]["finished"] == 1
        assert lines[2]["progress"]["finished"] == 2
        assert sink.samples == 3  # header + 2 samples
        assert sink.errors == 0

    def test_metrics_empty_while_obs_disabled(self, tmp_path):
        path = ts_path(tmp_path, "RUN_x")
        with TimeseriesSink(path, "RUN_x") as sink:
            sink.sample(_progress())
        series = load_series(path)
        assert series["samples"][0]["metrics"] == {}

    def test_metrics_snapshot_included_when_enabled(self, tmp_path):
        obs.enable()
        obs.inc("some.counter", 3)
        path = ts_path(tmp_path, "RUN_x")
        with TimeseriesSink(path, "RUN_x") as sink:
            sink.sample(_progress())
        series = load_series(path)
        metrics = series["samples"][0]["metrics"]
        assert metrics["counters"]["some.counter"] == 3
        # The sink counts its own appends into the registry too.
        c = obs.collector().metrics.counters
        assert c["ts.samples"].value == sink.samples

    def test_unwritable_path_is_counted_not_raised(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("file blocks the mkdir")
        sink = TimeseriesSink(target / "TS_RUN_x.jsonl", "RUN_x")
        sink.sample(_progress())  # must not raise
        sink.close()
        assert sink.errors >= 1
        assert sink.samples == 0


class TestLoadSeries:
    def test_missing_file_yields_empty_series(self, tmp_path):
        series = load_series(tmp_path / "TS_RUN_gone.jsonl")
        assert series["header"] is None
        assert series["samples"] == []
        assert not series["torn_tail"] and series["bad_lines"] == 0

    def test_torn_tail_is_skipped(self, tmp_path):
        path = ts_path(tmp_path, "RUN_x")
        with TimeseriesSink(path, "RUN_x") as sink:
            sink.sample(_progress())
        with open(path, "a") as fh:
            fh.write('{"type": "sample", "t": 1.0, "prog')
        series = load_series(path)
        assert series["torn_tail"]
        assert len(series["samples"]) == 1

    def test_garbled_interior_line_loses_only_itself(self, tmp_path):
        path = ts_path(tmp_path, "RUN_x")
        with TimeseriesSink(path, "RUN_x") as sink:
            sink.sample(_progress(1))
            sink.sample(_progress(2))
        lines = path.read_text().splitlines(keepends=True)
        lines.insert(1, "garbage not json\n")
        path.write_text("".join(lines))
        series = load_series(path)
        assert series["bad_lines"] == 1
        assert not series["torn_tail"]
        assert [s["progress"]["finished"] for s in series["samples"]] == [1, 2]
        assert series["header"]["run_id"] == "RUN_x"
