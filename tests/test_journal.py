"""The crash-consistent run journal: append/replay round trips, torn
tails, spec-fingerprint validation, resume resolution, and the seeded
disk-fault behaviour of the append path."""

import json
import os
from dataclasses import asdict

import pytest

from repro import faults, obs
from repro.errors import JournalError
from repro.pipeline.grid import GridPoint, GridResult
from repro.pipeline.journal import (
    JournalState,
    JournalWriter,
    journal_dir,
    list_runs,
    new_run_id,
    resolve_run_id,
    spec_fingerprint,
)


@pytest.fixture(autouse=True)
def _clean_state():
    faults.configure(None)
    obs.disable()
    obs.reset()
    yield
    faults.configure(None)
    obs.disable()
    obs.reset()


def _points(n=3):
    return [
        GridPoint(app="simple", scheme="comp", nprocs=p, n=8,
                  time_steps=2)
        for p in (1, 2, 4)[:n]
    ]


def _spec(points):
    return {"points": [asdict(p) for p in points],
            "degrade": True, "locality": False}


def _result(point, t=123.0):
    return GridResult(point=point, ok=True, total_time=t,
                      n_accesses=42, miss_breakdown={"cold": 7},
                      elapsed=0.5, attempts=1)


class TestWriterReader:
    def test_round_trip(self, tmp_path):
        points = _points()
        writer = JournalWriter.create(tmp_path, _spec(points))
        writer.wave(1, 3)
        for i, p in enumerate(points):
            writer.point_started(i, p)
            writer.point_done(i, _result(p, t=100.0 + i))
        writer.end("complete", executed=3)
        writer.close()

        state = JournalState.load(tmp_path / f"{writer.run_id}.jsonl")
        state.validate()
        assert state.complete
        assert state.waves == 1
        assert state.started == 3
        assert not state.torn_tail and state.bad_lines == 0
        assert state.points() == points
        finished = state.finished_results()
        assert sorted(finished) == [0, 1, 2]
        for i, p in enumerate(points):
            # Bit-identical rehydration: the resume contract.
            assert finished[i].as_dict() == _result(p, t=100.0 + i).as_dict()
            assert not finished[i].store_hit

    def test_appends_are_fsynced_by_default(self, tmp_path):
        obs.enable(reset=True)
        writer = JournalWriter.create(tmp_path, _spec(_points()))
        writer.wave(1, 3)
        writer.close()
        c = obs.collector().metrics.counters
        assert c["journal.fsyncs"].value == c["journal.appends"].value

    def test_torn_tail_is_skipped(self, tmp_path):
        points = _points()
        writer = JournalWriter.create(tmp_path, _spec(points))
        writer.point_done(0, _result(points[0]))
        writer.close()
        path = tmp_path / f"{writer.run_id}.jsonl"
        with open(path, "a") as fh:
            fh.write('{"type": "done", "i": 1, "resu')  # the crash window
        state = JournalState.load(path)
        state.validate()
        assert state.torn_tail
        assert sorted(state.finished_results()) == [0]

    def test_garbled_interior_line_loses_only_that_record(self, tmp_path):
        points = _points()
        writer = JournalWriter.create(tmp_path, _spec(points))
        writer.point_done(0, _result(points[0]))
        writer.close()
        path = tmp_path / f"{writer.run_id}.jsonl"
        lines = path.read_text().splitlines(keepends=True)
        lines.insert(1, "garbage not json\n")
        path.write_text("".join(lines))
        state = JournalState.load(path)
        assert state.bad_lines == 1
        assert sorted(state.finished_results()) == [0]

    def test_no_header_raises(self, tmp_path):
        path = tmp_path / "RUN_X.jsonl"
        path.write_text('{"type": "wave", "wave": 1, "pending": 3}\n')
        with pytest.raises(JournalError, match="header"):
            JournalState.load(path)

    def test_reopen_appends_resume_record(self, tmp_path):
        writer = JournalWriter.create(tmp_path, _spec(_points()))
        run_id = writer.run_id
        writer.close()
        again = JournalWriter.reopen(tmp_path, run_id)
        again.close()
        state = JournalState.load(tmp_path / f"{run_id}.jsonl")
        assert state.resumes == 1

    def test_reopen_missing_run_raises(self, tmp_path):
        with pytest.raises(JournalError):
            JournalWriter.reopen(tmp_path, "RUN_nope")

    def test_failed_result_is_journaled(self, tmp_path):
        points = _points()
        writer = JournalWriter.create(tmp_path, _spec(points))
        bad = GridResult(point=points[0], ok=False,
                         error="boom", attempts=3)
        writer.point_done(0, bad)
        writer.close()
        state = JournalState.load(tmp_path / f"{writer.run_id}.jsonl")
        finished = state.finished_results()
        assert not finished[0].ok
        assert finished[0].error == "boom"
        assert finished[0].attempts == 3


class TestFingerprint:
    def test_sensitive_to_spec_changes(self):
        a = _spec(_points())
        b = _spec(_points())
        assert spec_fingerprint(a) == spec_fingerprint(b)
        b["degrade"] = False
        assert spec_fingerprint(a) != spec_fingerprint(b)

    def test_validate_rejects_edited_spec(self, tmp_path):
        writer = JournalWriter.create(tmp_path, _spec(_points()))
        writer.close()
        path = tmp_path / f"{writer.run_id}.jsonl"
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["spec"]["degrade"] = False  # hand-edited journal
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        state = JournalState.load(path)
        with pytest.raises(JournalError, match="fingerprint mismatch"):
            state.validate()


class TestResolution:
    def test_latest_pointer(self, tmp_path):
        w1 = JournalWriter.create(tmp_path, _spec(_points()))
        w1.close()
        w2 = JournalWriter.create(tmp_path, _spec(_points()))
        w2.close()
        assert resolve_run_id(tmp_path, "latest") == w2.run_id
        assert resolve_run_id(tmp_path, w1.run_id) == w1.run_id

    def test_latest_falls_back_to_newest_on_disk(self, tmp_path):
        w = JournalWriter.create(tmp_path, _spec(_points()))
        w.close()
        (tmp_path / "latest").unlink()
        assert resolve_run_id(tmp_path, "latest") == w.run_id

    def test_unknown_run_raises(self, tmp_path):
        with pytest.raises(JournalError):
            resolve_run_id(tmp_path, "RUN_missing")
        with pytest.raises(JournalError):
            resolve_run_id(tmp_path, "latest")

    def test_run_ids_are_unique(self, tmp_path):
        ids = set()
        for _ in range(3):
            w = JournalWriter.create(tmp_path, _spec(_points()))
            w.close()
            ids.add(w.run_id)
        assert len(ids) == 3
        assert list_runs(tmp_path)

    def test_journal_dir_is_under_store_root(self, tmp_path):
        assert journal_dir(tmp_path) == tmp_path / "journal"


class TestAppendFaults:
    def test_enospc_drops_record_and_counts(self, tmp_path):
        points = _points()
        writer = JournalWriter.create(tmp_path, _spec(points))
        faults.configure("seed=1,disk.enospc=1.0")
        writer.point_done(0, _result(points[0]))
        faults.configure(None)
        assert writer.errors >= 1
        writer.close()
        state = JournalState.load(tmp_path / f"{writer.run_id}.jsonl")
        # Losing the record only costs a re-execution on resume.
        assert state.finished_results() == {}

    def test_torn_write_lands_prefix_reader_skips_it(self, tmp_path):
        points = _points()
        writer = JournalWriter.create(tmp_path, _spec(points))
        faults.configure("seed=1,disk.torn_write=1.0")
        writer.point_done(0, _result(points[0]))
        faults.configure(None)
        writer.close()
        state = JournalState.load(tmp_path / f"{writer.run_id}.jsonl")
        assert state.torn_tail
        assert state.finished_results() == {}


class TestHeartbeats:
    def test_heartbeat_replay_and_in_flight(self, tmp_path):
        points = _points()
        writer = JournalWriter.create(tmp_path, _spec(points))
        writer.point_started(0, points[0])
        writer.point_started(1, points[1])
        writer.point_done(0, _result(points[0]))
        writer.heartbeat(pid=999, wave=1, finished=1, in_flight=[1])
        writer.close()
        state = JournalState.load(tmp_path / f"{writer.run_id}.jsonl")
        state.validate()
        assert state.heartbeats == 1
        assert state.last_heartbeat["finished"] == 1
        assert state.pid == 999  # heartbeat pid wins over header pid
        assert state.in_flight == [1]  # started, never journaled done
        assert state.started == 2

    def test_heartbeats_are_never_fsynced(self, tmp_path):
        obs.enable(reset=True)
        writer = JournalWriter.create(tmp_path, _spec(_points()))
        writer.heartbeat(finished=0)
        writer.heartbeat(finished=0)
        writer.close()
        c = obs.collector().metrics.counters
        # Durable records still fsync one-for-one; the two heartbeats
        # are flushed only.
        assert c["journal.appends"].value == c["journal.fsyncs"].value + 2
        assert c["journal.heartbeats"].value == 2

    def test_start_records_carry_timestamps(self, tmp_path):
        points = _points()
        writer = JournalWriter.create(tmp_path, _spec(points))
        writer.point_started(0, points[0])
        writer.point_done(0, _result(points[0]))
        writer.close()
        path = tmp_path / f"{writer.run_id}.jsonl"
        records = [json.loads(l) for l in path.read_text().splitlines()]
        by_type = {r["type"]: r for r in records}
        assert isinstance(by_type["start"]["t"], float)
        assert isinstance(by_type["done"]["t"], float)
        assert by_type["done"]["t"] >= by_type["start"]["t"]
