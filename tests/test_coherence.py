"""Tests for the coherence models — the vectorized classifier must agree
access-for-access with the event-at-a-time executable specification."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.cache import (
    CacheConfig,
    assoc_lru_hits,
    direct_mapped_hits,
)
from repro.machine.coherence import (
    AccessClassification,
    ExactCoherentSim,
    classify_accesses,
)

FIELDS = ["hit", "cold", "replacement", "true_sharing", "false_sharing",
          "upgrade"]


def tiny_cfg():
    return CacheConfig(size_bytes=128, line_bytes=16)  # 8 sets


class TestScenarios:
    def test_cold_then_hit(self):
        cfg = tiny_cfg()
        proc = np.array([0, 0])
        addr = np.array([0, 8])
        write = np.array([False, False])
        c = classify_accesses(proc, addr, write, cfg)
        assert c.cold.tolist() == [True, False]
        assert c.hit.tolist() == [False, True]

    def test_true_sharing(self):
        """P0 reads word, P1 writes THE SAME word, P0 rereads: true
        sharing miss."""
        cfg = tiny_cfg()
        proc = np.array([0, 1, 0])
        addr = np.array([0, 0, 0])
        write = np.array([False, True, False])
        c = classify_accesses(proc, addr, write, cfg)
        assert c.true_sharing.tolist() == [False, False, True]
        assert c.false_sharing.sum() == 0

    def test_false_sharing(self):
        """P1 writes a different word of the same line: false sharing."""
        cfg = tiny_cfg()
        proc = np.array([0, 1, 0])
        addr = np.array([0, 8, 0])  # words 0 and 1, same 16B line
        write = np.array([False, True, False])
        c = classify_accesses(proc, addr, write, cfg, word_bytes=8)
        assert c.false_sharing.tolist() == [False, False, True]
        assert c.true_sharing.sum() == 0

    def test_own_write_no_invalidation(self):
        cfg = tiny_cfg()
        proc = np.array([0, 0, 0])
        addr = np.array([0, 0, 0])
        write = np.array([False, True, False])
        c = classify_accesses(proc, addr, write, cfg)
        assert c.hit.tolist() == [False, True, True]

    def test_rewrite_after_other_reclaims(self):
        """P0 write, P1 write (invalidates P0), P0 read -> sharing miss;
        then P0 read again -> hit."""
        cfg = tiny_cfg()
        proc = np.array([0, 1, 0, 0])
        addr = np.array([0, 0, 0, 0])
        write = np.array([True, True, False, False])
        c = classify_accesses(proc, addr, write, cfg)
        assert c.true_sharing.tolist() == [False, False, True, False]
        assert c.hit.tolist() == [False, False, False, True]

    def test_replacement_beats_sharing_classification(self):
        """If the line was evicted by a conflict anyway, the miss is a
        replacement miss even if a remote write also occurred."""
        cfg = CacheConfig(size_bytes=32, line_bytes=16)  # 2 sets
        proc = np.array([0, 1, 0, 0])
        # line 0 and line 2 conflict in set 0 for proc 0
        addr = np.array([0, 0, 32, 0])
        write = np.array([False, True, False, False])
        c = classify_accesses(proc, addr, write, cfg)
        assert c.replacement.tolist() == [False, False, False, True]

    def test_upgrade(self):
        """P0 caches line, P1 reads it (shared), P0 writes -> upgrade."""
        cfg = tiny_cfg()
        proc = np.array([0, 1, 0])
        addr = np.array([0, 0, 0])
        write = np.array([False, False, True])
        c = classify_accesses(proc, addr, write, cfg)
        assert c.upgrade.tolist() == [False, False, True]
        assert c.hit.tolist() == [False, False, True]

    def test_empty_stream(self):
        c = classify_accesses(
            np.zeros(0, dtype=int), np.zeros(0, dtype=int),
            np.zeros(0, dtype=bool), tiny_cfg(),
        )
        assert len(c.hit) == 0


@st.composite
def trace(draw):
    n = draw(st.integers(1, 250))
    nprocs = draw(st.integers(1, 4))
    proc = draw(st.lists(st.integers(0, nprocs - 1), min_size=n, max_size=n))
    addr = draw(st.lists(st.integers(0, 31), min_size=n, max_size=n))
    write = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return (
        nprocs,
        np.array(proc),
        np.array(addr) * 8,
        np.array(write),
    )


class TestEquivalence:
    @given(trace())
    @settings(max_examples=120, deadline=None)
    def test_fast_matches_exact(self, t):
        nprocs, proc, addr, write = t
        cfg = tiny_cfg()
        fast = classify_accesses(proc, addr, write, cfg, word_bytes=8)
        exact = ExactCoherentSim(nprocs, cfg, word_bytes=8).run(
            proc, addr, write
        )
        for f in FIELDS:
            assert np.array_equal(getattr(fast, f), getattr(exact, f)), f

    @given(trace())
    @settings(max_examples=60, deadline=None)
    def test_partition_of_outcomes(self, t):
        """Every access is exactly one of: hit, cold, replacement, true
        sharing, false sharing."""
        nprocs, proc, addr, write = t
        c = classify_accesses(proc, addr, write, tiny_cfg())
        total = (
            c.hit.astype(int) + c.cold.astype(int)
            + c.replacement.astype(int) + c.true_sharing.astype(int)
            + c.false_sharing.astype(int)
        )
        assert (total == 1).all()

    @given(trace())
    @settings(max_examples=60, deadline=None)
    def test_single_processor_has_no_sharing(self, t):
        nprocs, proc, addr, write = t
        proc = np.zeros_like(proc)
        c = classify_accesses(proc, addr, write, tiny_cfg())
        assert c.true_sharing.sum() == 0
        assert c.false_sharing.sum() == 0
        assert c.upgrade.sum() == 0

    @given(trace())
    @settings(max_examples=120, deadline=None, derandomize=True)
    def test_fast_matches_exact_with_l2(self, t):
        """With a second-level cache configured, the vectorized
        classifier and the event simulation must also agree on which
        first-level misses are absorbed by L2."""
        nprocs, proc, addr, write = t
        cfg = tiny_cfg()
        l2 = CacheConfig(size_bytes=256, line_bytes=16)  # 16 sets
        fast = classify_accesses(proc, addr, write, cfg, word_bytes=8,
                                 l2=l2)
        exact = ExactCoherentSim(nprocs, cfg, word_bytes=8, l2=l2).run(
            proc, addr, write
        )
        for f in FIELDS + ["l2_hit"]:
            assert np.array_equal(getattr(fast, f), getattr(exact, f)), f

    @given(trace())
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_l2_hits_are_l1_misses(self, t):
        nprocs, proc, addr, write = t
        c = classify_accesses(proc, addr, write, tiny_cfg(),
                              word_bytes=8,
                              l2=CacheConfig(256, 16))
        assert not (c.l2_hit & c.hit).any()
        assert not (c.l2_hit & c.upgrade).any()


class TestAssocLru:
    @given(trace())
    @settings(max_examples=80, deadline=None, derandomize=True)
    def test_assoc_one_is_direct_mapped(self, t):
        """A 1-way LRU set is exactly a direct-mapped slot: the slow
        reference and the vectorized fast path must agree flag-for-flag
        on any interleaved multi-processor stream."""
        nprocs, proc, addr, write = t
        cfg = tiny_cfg()
        assert np.array_equal(
            assoc_lru_hits(proc, addr, cfg),
            direct_mapped_hits(proc, addr, cfg),
        )

    @given(trace())
    @settings(max_examples=80, deadline=None, derandomize=True)
    def test_fully_associative_hits_after_first_touch(self, t):
        """A fully associative cache big enough for the whole footprint
        never evicts: an access hits iff its (proc, line) was touched
        before."""
        nprocs, proc, addr, write = t
        # Addresses span words 0..31 (<= 16 lines of 16B); 16 ways in
        # one set hold the entire footprint per processor.
        cfg = CacheConfig(size_bytes=256, line_bytes=16, assoc=16)
        hits = assoc_lru_hits(proc, addr, cfg)
        seen = set()
        for i in range(len(addr)):
            key = (int(proc[i]), int(addr[i]) // cfg.line_bytes)
            assert hits[i] == (key in seen)
            seen.add(key)
