"""Whole-pipeline property tests over randomly generated affine programs.

A small generator produces random (but valid) two-nest affine programs:
2-D arrays, offset/transposed/row-column accesses, optional carried
dependences.  For every generated program the pipeline must uphold:

* restructuring preserves semantics (executor values identical);
* the decomposition satisfies Equation 1 on every write reference;
* derived layouts are bijections and every owner's partition is
  contiguous;
* SPMD ownership partitions the iteration space (each iteration owned
  by exactly one valid processor);
* the traced access count equals statements x iterations x references.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen.executor import default_init, execute_program
from repro.codegen.spmd import Scheme, generate_spmd
from repro.compiler import compile_program, restructure_program
from repro.decomp.greedy import decompose_program
from repro.ir.builder import ProgramBuilder
from repro.machine.trace import program_traces
from repro.util.intlinalg import mat_mul

N = 8

# access patterns: (f(i, j) -> (expr0, expr1), needs_interior_bounds)
PATTERNS = [
    lambda i, j: (i, j),
    lambda i, j: (j, i),
    lambda i, j: (i - 1, j),
    lambda i, j: (i, j - 1),
    lambda i, j: (i + 1, j + 1),
    lambda i, j: (j - 1, i),
]


@st.composite
def random_program(draw):
    pb = ProgramBuilder("rand", params={"N": N}, time_steps=2)
    arrays = [
        pb.array(name, (N, N))
        for name in ("A", "B", "C")[: draw(st.integers(2, 3))]
    ]
    i, j = pb.vars("I", "J")
    n_nests = draw(st.integers(1, 2))
    for k in range(n_nests):
        wr = arrays[draw(st.integers(0, len(arrays) - 1))]
        w_pat = PATTERNS[draw(st.integers(0, 1))]  # writes stay simple
        reads = []
        for _ in range(draw(st.integers(1, 3))):
            ra = arrays[draw(st.integers(0, len(arrays) - 1))]
            rp = PATTERNS[draw(st.integers(0, len(PATTERNS) - 1))]
            reads.append(ra(*rp(i, j)))
        # interior bounds keep every pattern in range
        nest = pb.nest(
            f"nest{k}",
            [("I", 1, N - 2), ("J", 1, N - 2)],
            [pb.assign(wr(*w_pat(i, j)), reads,
                       lambda *vs: sum(vs) * 0.25)],
        )
    return pb.build()


class TestSemanticsPreserved:
    @given(random_program())
    @settings(max_examples=25, deadline=None)
    def test_restructuring_preserves_values(self, prog):
        init = default_init(prog)
        a = execute_program(prog, init=init)
        b = execute_program(restructure_program(prog), init=init)
        for name in a:
            assert np.allclose(a[name], b[name]), name


class TestDecompositionInvariant:
    @given(random_program())
    @settings(max_examples=25, deadline=None)
    def test_equation1_on_writes(self, prog):
        rprog = restructure_program(prog)
        decomp = decompose_program(rprog, 4)
        for nest in rprog.nests:
            if nest.name in decomp.excluded_nests:
                continue
            for s, stmt in enumerate(nest.body):
                cd = decomp.comp_for(nest.name, s)
                if cd is None or not cd.matrix:
                    continue
                dd = decomp.data_for(stmt.write.array.name)
                if dd is None or dd.replicated or not dd.matrix:
                    continue
                af = stmt.write.access_function(nest.loop_vars)
                got = mat_mul(dd.matrix, [list(r) for r in af.matrix])
                assert got == cd.matrix


class TestLayoutInvariants:
    @given(random_program(), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_bijective_and_contiguous(self, prog, nprocs):
        spmd = compile_program(prog, Scheme.COMP_DECOMP_DATA, nprocs)
        for name, ta in spmd.transformed.items():
            assert ta.layout.is_bijective(), name
            if not ta.owner_specs:
                continue
            per = {}
            for i in range(N):
                for j in range(N):
                    per.setdefault(ta.owner_coords((i, j)), []).append(
                        ta.layout.linearize((i, j))
                    )
            pad = ta.layout.size - ta.decl.size
            for o, addrs in per.items():
                s = sorted(addrs)
                assert s[-1] - s[0] + 1 - len(s) <= pad, (name, o)


class TestSpmdInvariants:
    @given(random_program(), st.integers(1, 6),
           st.sampled_from(list(Scheme)))
    @settings(max_examples=25, deadline=None)
    def test_trace_counts(self, prog, nprocs, scheme):
        spmd = compile_program(prog, scheme, nprocs)
        _, traces = program_traces(spmd)
        for phase, trace in zip(spmd.phases, traces):
            nest = phase.nest
            iters = nest.count_iterations(prog.params)
            # every generated statement is full depth and executes once
            # per iteration, touching (1 + reads) locations
            per_iter_refs = sum(1 + len(s.reads) for s in nest.body)
            expected = iters * per_iter_refs
            assert trace.n_accesses == expected
            assert trace.proc.min() >= 0
            assert trace.proc.max() < nprocs

    @given(random_program(), st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_ownership_partitions_iterations(self, prog, nprocs):
        from repro.machine.trace import _owner_ids, enumerate_iterations

        spmd = compile_program(prog, Scheme.COMP_DECOMP, nprocs)
        for phase in spmd.phases:
            nest = phase.nest
            cols, n = enumerate_iterations(nest, prog.params)
            owners = _owner_ids(
                phase.owners[0], nest, cols, n, prog.params, nprocs,
                spmd.grid,
            )
            assert len(owners) == nest.count_iterations(prog.params)
            assert owners.min() >= 0 and owners.max() < nprocs


class TestUniprocessorEquivalence:
    @given(random_program())
    @settings(max_examples=10, deadline=None)
    def test_schemes_identical_at_p1(self, prog):
        from repro.machine import scaled_dash
        from repro.machine.simulate import simulate

        machine = scaled_dash(1, scale=32, word_bytes=8)
        times = set()
        for scheme in Scheme:
            res = simulate(compile_program(prog, scheme, 1), machine)
            times.add(round(res.total_time, 6))
        assert len(times) == 1
