"""Tests for the rational Fourier–Motzkin solver."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.analysis.fourier_motzkin import LinearSystem


def box(sys, var, lo, hi):
    sys.add_ge({var: 1}, -lo)  # var >= lo
    sys.add_le({var: 1}, -hi)  # var <= hi


class TestFeasibility:
    def test_empty_is_feasible(self):
        assert LinearSystem().feasible()

    def test_box(self):
        s = LinearSystem()
        box(s, "x", 0, 5)
        assert s.feasible()

    def test_empty_interval(self):
        s = LinearSystem()
        box(s, "x", 5, 2)
        assert not s.feasible()

    def test_equality_consistent(self):
        s = LinearSystem()
        box(s, "x", 0, 10)
        box(s, "y", 0, 10)
        s.add_eq({"x": 1, "y": -1}, -3)  # x = y + 3
        assert s.feasible()

    def test_equality_inconsistent(self):
        s = LinearSystem()
        s.add_eq({"x": 1}, -1)  # x = 1
        s.add_eq({"x": 1}, -2)  # x = 2
        assert not s.feasible()

    def test_triangular(self):
        # 0 <= i <= 5, i+1 <= j <= 5 is feasible; i >= 5 makes it empty
        s = LinearSystem()
        box(s, "i", 0, 5)
        s.add_ge({"j": 1, "i": -1}, -1)  # j >= i+1
        s.add_le({"j": 1}, -5)
        assert s.feasible()
        s.add_ge({"i": 1}, -5)  # i >= 5 -> j >= 6 > 5
        assert not s.feasible()

    def test_transitive_contradiction(self):
        # x <= y, y <= z, z <= x - 1
        s = LinearSystem()
        s.add_le({"x": 1, "y": -1}, 0)
        s.add_le({"y": 1, "z": -1}, 0)
        s.add_le({"z": 1, "x": -1}, 1)
        assert not s.feasible()


class TestObjectiveBounds:
    def test_box_bounds(self):
        s = LinearSystem()
        box(s, "x", 2, 7)
        lo, hi = s.objective_bounds({"x": 1})
        assert lo == 2 and hi == 7

    def test_affine_objective(self):
        s = LinearSystem()
        box(s, "x", 0, 3)
        box(s, "y", 1, 2)
        lo, hi = s.objective_bounds({"x": 2, "y": -1}, 5)
        assert lo == 0 - 2 + 5
        assert hi == 6 - 1 + 5

    def test_unbounded(self):
        s = LinearSystem()
        s.add_ge({"x": 1}, 0)  # x >= 0, no upper bound
        lo, hi = s.objective_bounds({"x": 1})
        assert lo == 0
        assert hi is None

    def test_infeasible_returns_none(self):
        s = LinearSystem()
        box(s, "x", 3, 1)
        assert s.objective_bounds({"x": 1}) is None

    def test_constant_objective(self):
        s = LinearSystem()
        box(s, "x", 0, 5)
        lo, hi = s.objective_bounds({}, 4)
        assert lo == 4 and hi == 4

    def test_through_equalities(self):
        # d = j' - j with j' = j + 2
        s = LinearSystem()
        box(s, "j", 0, 9)
        box(s, "jp", 0, 9)
        s.add_eq({"jp": 1, "j": -1}, -2)
        lo, hi = s.objective_bounds({"jp": 1, "j": -1})
        assert lo == 2 and hi == 2

    def test_triangular_distance_positive(self):
        """The LU-style bound: d = k - i with i in [0,N], k in [i+1,N]
        must come out strictly positive."""
        s = LinearSystem()
        n = 10
        box(s, "i", 0, n)
        s.add_ge({"k": 1, "i": -1}, -1)
        s.add_le({"k": 1}, -n)
        lo, hi = s.objective_bounds({"k": 1, "i": -1})
        assert lo == 1 and hi == n

    def test_copy_is_independent(self):
        s = LinearSystem()
        box(s, "x", 0, 5)
        s2 = s.copy()
        s2.add_le({"x": 1}, 1)  # x <= -1 - infeasible
        assert s.feasible()
        assert not s2.feasible()

    def test_variables_listing(self):
        s = LinearSystem()
        s.add_le({"b": 1, "a": -2}, 0)
        s.add_eq({"c": 1}, 0)
        assert s.variables() == ["a", "b", "c"]


@given(
    st.lists(
        st.tuples(st.integers(-5, 5), st.integers(-5, 5), st.integers(-8, 8)),
        min_size=1,
        max_size=6,
    ),
    st.integers(-4, 4),
    st.integers(-4, 4),
)
@settings(max_examples=150, deadline=None)
def test_feasibility_consistent_with_witness(constraints, x, y):
    """If a point satisfies all constraints, FM must report feasible."""
    s = LinearSystem()
    satisfied = True
    for a, b, c in constraints:
        s.add_le({"x": a, "y": b}, c)
        if a * x + b * y + c > 0:
            satisfied = False
    if satisfied:
        assert s.feasible()


@given(st.integers(0, 6), st.integers(0, 6), st.integers(-3, 3))
@settings(max_examples=100, deadline=None)
def test_bounds_contain_objective_at_witness(lox, hix, c):
    if lox > hix:
        return
    s = LinearSystem()
    box(s, "x", lox, hix)
    lo, hi = s.objective_bounds({"x": 3}, c)
    for x in range(lox, hix + 1):
        v = 3 * x + c
        assert lo <= v <= hi
