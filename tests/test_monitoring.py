"""Live monitoring end to end: ``repro status``/``watch``/``report``
driven as real subprocesses against a driver running (or killed) in
*another* process — the cross-process contract is the whole point —
plus the guard that heartbeat + time-series emission stays under 5%
of unmonitored wall time."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.pipeline.journal import JournalState, journal_dir, resolve_run_id

REPO = Path(__file__).resolve().parent.parent
GRID = ["--apps", "simple", "--schemes", "base,comp,data",
        "--procs-list", "1,4", "--n", "10"]
SLOW_GRID = ["--apps", "simple,stencil5,lu", "--schemes", "base,comp,data",
             "--procs-list", "1,2,4", "--n", "48"]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    for var in ("REPRO_FAULTS", "REPRO_CACHE", "REPRO_CACHE_DIR",
                "REPRO_STORE_DIR", "REPRO_OBS", "REPRO_RESULTS_DIR"):
        env.pop(var, None)
    return env


def _repro(args, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=_env(), cwd=str(REPO),
        timeout=timeout,
    )


def _status_json(store, *extra):
    proc = _repro(["status", "--store-dir", str(store), "--json", *extra])
    payload = json.loads(proc.stdout) if proc.stdout.strip() else None
    return proc.returncode, payload


class TestStatusCLI:
    def test_missing_store_exits_2(self, tmp_path):
        proc = _repro(["status", "--store-dir", str(tmp_path / "nope")])
        assert proc.returncode == 2
        assert proc.stderr.strip()

    def test_finished_run_reports_complete(self, tmp_path):
        store = tmp_path / "store"
        done = _repro(["batch", *GRID, "--heartbeat", "0.1",
                       "--store-dir", str(store),
                       "--cache-dir", str(tmp_path / "cache")])
        assert done.returncode == 0, done.stdout + done.stderr

        rc, st = _status_json(store)
        assert rc == 0
        assert st["state"] == "finished"
        assert st["finished"] == st["total"] == 6
        assert st["ok"] == 6 and st["in_flight"] == []
        assert st["pid_alive"] is False  # that driver already exited
        assert st["heartbeats"] >= 1
        assert st["scheme_matrix"]["simple"]["comp"] == [2, 2]

        text = _repro(["status", "--store-dir", str(store)])
        assert text.returncode == 0
        assert "state=finished" in text.stdout
        assert "6/6" in text.stdout

    def test_watch_once_exits_with_state_code(self, tmp_path):
        store = tmp_path / "store"
        done = _repro(["batch", *GRID, "--heartbeat", "0.1",
                       "--store-dir", str(store),
                       "--cache-dir", str(tmp_path / "cache")])
        assert done.returncode == 0, done.stdout + done.stderr
        watch = _repro(["watch", "--once", "--json",
                        "--store-dir", str(store)])
        assert watch.returncode == 0
        assert json.loads(watch.stdout)["state"] == "finished"

    def test_status_of_live_driver_in_another_process(self, tmp_path):
        """The acceptance path: a separate process polls a running
        grid's journal and sees sane progress until it finishes."""
        store = tmp_path / "store"
        driver = subprocess.Popen(
            [sys.executable, "-m", "repro", "batch", *SLOW_GRID,
             "--heartbeat", "0.1",
             "--store-dir", str(store),
             "--cache-dir", str(tmp_path / "cache")],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=_env(), cwd=str(REPO),
        )
        seen_running = None
        try:
            while driver.poll() is None:
                rc, st = _status_json(store)
                if rc == 2:   # journal not created yet
                    time.sleep(0.1)
                    continue
                assert rc in (0, 3)
                if st["state"] == "running":
                    seen_running = st
                assert 0 <= st["finished"] <= st["total"]
                time.sleep(0.2)
        finally:
            out, err = driver.communicate(timeout=300)
        assert driver.returncode == 0, out + err

        if seen_running is None:
            pytest.skip("grid finished before a poll caught it running")
        # A mid-run snapshot from another process was coherent.
        assert seen_running["pid"] == driver.pid
        assert seen_running["pid_alive"] is True
        assert seen_running["finished"] < seen_running["total"]
        if seen_running["executed"]:
            assert seen_running["ewma_latency"] > 0
            assert seen_running["eta"] is not None

        rc, st = _status_json(store)
        assert rc == 0 and st["state"] == "finished"
        assert st["finished"] == st["total"]


def _kill_orphans(marker):
    """SIGKILL leftover pool workers of a SIGKILL'd driver.

    The driver dies without tearing down its ProcessPoolExecutor, so
    the (forked) workers linger blocked on the call queue; they share
    the driver's cmdline, which contains the test's unique store path.
    """
    me = os.getpid()
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit() or int(entry.name) == me:
            continue
        try:
            cmdline = (entry / "cmdline").read_bytes()
        except OSError:
            continue
        if marker.encode() in cmdline:
            try:
                os.kill(int(entry.name), signal.SIGKILL)
            except OSError:
                pass


class TestKilledDriver:
    def test_sigkilled_driver_reports_interrupted_with_in_flight(
            self, tmp_path):
        """driver.kill SIGKILLs the driver right after the first done
        record; with --jobs 2 the whole 6-point wave was already
        dispatched (start records journaled), so exactly 5 points are
        mid-flight when the process dies."""
        store = tmp_path / "store"
        # No captured pipes here: the orphaned workers would inherit
        # them and keep them open long after the driver is dead.
        driver = subprocess.Popen(
            [sys.executable, "-m", "repro", "batch", *GRID,
             "--jobs", "2", "--heartbeat", "0.1",
             "--store-dir", str(store),
             "--cache-dir", str(tmp_path / "cache"),
             "--inject-faults", "seed=1,driver.kill=1.0"],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            env=_env(), cwd=str(REPO),
        )
        try:
            assert driver.wait(timeout=120) == -signal.SIGKILL
        finally:
            _kill_orphans(str(store))

        rc, st = _status_json(store)
        assert rc == 3  # interrupted/stale exit code
        assert st["state"] == "interrupted"
        assert st["finished"] == 1
        assert len(st["in_flight"]) == 5
        # The CLI's count is exactly the journal's start-without-done set.
        jdir = journal_dir(store)
        state = JournalState.load(
            jdir / f"{resolve_run_id(jdir, 'latest')}.jsonl")
        assert [e["i"] for e in st["in_flight"]] == state.in_flight

        # Satellite: --resume surfaces the mid-flight points it will
        # re-execute with a full retry budget.
        resumed = _repro(["batch", "--resume", "latest",
                          "--store-dir", str(store),
                          "--cache-dir", str(tmp_path / "cache")])
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        assert "5 points were mid-flight" in resumed.stdout

        rc, st = _status_json(store)
        assert rc == 0 and st["state"] == "finished"


class TestReportCLI:
    def test_html_report_is_self_contained(self, tmp_path):
        store = tmp_path / "store"
        done = _repro(["batch", *GRID, "--heartbeat", "0.05",
                       "--store-dir", str(store),
                       "--cache-dir", str(tmp_path / "cache")])
        assert done.returncode == 0, done.stdout + done.stderr

        html_path = tmp_path / "report.html"
        json_path = tmp_path / "report.json"
        proc = _repro(["report", "--store-dir", str(store),
                       "--html", str(html_path),
                       "--json", str(json_path)])
        assert proc.returncode == 0, proc.stdout + proc.stderr

        payload = json.loads(json_path.read_text())
        assert payload["schema"] == 1
        assert payload["status"]["state"] == "finished"
        assert len(payload["points"]) == 6

        html = html_path.read_text()
        assert html.lstrip().lower().startswith("<!doctype html")
        assert "run report" in html and "time series" in html
        # Self-contained: rendered from journal + series alone, with no
        # external scripts, stylesheets, or images.
        body = html.split("</title>", 1)[1].lower()
        for needle in ("http://", "https://", "<script src",
                       "<link rel", "<img"):
            assert needle not in body
        assert "finished" in html

    def test_report_text_mode_and_missing_run(self, tmp_path):
        assert _repro(["report", "--store-dir",
                       str(tmp_path / "nope")]).returncode == 2
        store = tmp_path / "store"
        done = _repro(["batch", *GRID,
                       "--store-dir", str(store),
                       "--cache-dir", str(tmp_path / "cache")])
        assert done.returncode == 0, done.stdout + done.stderr
        proc = _repro(["report", "--store-dir", str(store)])
        assert proc.returncode == 0
        assert "state=finished" in proc.stdout


class TestOverhead:
    def test_monitoring_overhead_under_5_percent(self, tmp_path):
        """Heartbeats + time-series sampling add < 5% wall time to a
        journaled grid run (min-of-N against the unmonitored floor)."""
        from repro import pipeline
        from repro.obs.runstate import RunMonitor
        from repro.obs.timeseries import TimeseriesSink, ts_path
        from repro.pipeline.grid import GridPoint, run_grid
        from repro.pipeline.journal import JournalWriter

        obs.disable()
        obs.reset()
        points = [
            GridPoint(app="simple", scheme=s, nprocs=p, n=8, time_steps=2)
            for s in ("base", "comp") for p in (1, 4)
        ]
        spec = {"points": [], "degrade": True, "locality": False}
        jdir = tmp_path / "journal"

        def _run(monitored):
            pipeline.reset_session()  # same cold compile work each arm
            writer = JournalWriter.create(jdir, spec)
            monitor = None
            if monitored:
                sink = TimeseriesSink(ts_path(jdir, writer.run_id),
                                      writer.run_id)
                monitor = RunMonitor(total=len(points), journal=writer,
                                     sink=sink, interval=0.05)
            run_grid(points, cache=False, journal=writer,
                     monitor=monitor)
            if monitor is not None:
                monitor.close()
            writer.end("complete", executed=len(points))
            writer.close()

        def _best_of(fn, repeats=5):
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            return best

        _run(True)  # warm imports and numpy caches
        monitored = _best_of(lambda: _run(True))
        floor = _best_of(lambda: _run(False))
        # 5% relative margin plus 5ms absolute slack for timer noise.
        assert monitored <= floor * 1.05 + 0.005, (
            f"monitoring overhead too high: {monitored:.4f}s vs "
            f"floor {floor:.4f}s"
        )
