"""Tests for data-transformation legality checks."""

import pytest

from repro.datatrans.layout import DimAtom, Layout
from repro.datatrans.legality import (
    LegalityError,
    assert_bijective,
    check_transformable,
)
from repro.decomp.model import DataDecomp


class TestCheckTransformable:
    def test_clean_program(self, figure1_program):
        assert check_transformable(figure1_program, "A") == []

    def test_undeclared(self, figure1_program):
        problems = check_transformable(figure1_program, "Z")
        assert problems and "not declared" in problems[0]

    def test_general_affine_decomp_rejected(self, figure1_program):
        dd = DataDecomp("A", [[1, 1]], [0])
        problems = check_transformable(figure1_program, "A", dd)
        assert any("not supported" in p for p in problems)

    def test_unit_decomp_ok(self, figure1_program):
        dd = DataDecomp("A", [[1, 0]], [0])
        assert check_transformable(figure1_program, "A", dd) == []

    def test_replicated_ok(self, figure1_program):
        dd = DataDecomp("A", [[0, 0]], [0], replicated=True)
        assert check_transformable(figure1_program, "A", dd) == []


class TestBijectivity:
    def test_good_layout(self):
        assert_bijective(Layout.identity((4, 4)), "A")

    def test_broken_chain_detected(self):
        # Two atoms both claiming to be the low part of dim 0.
        lay = Layout(
            orig_dims=(8,),
            atoms=(
                DimAtom(src=0, extent=4, div=1, mod=4),
                DimAtom(src=0, extent=4, div=1, mod=4),
            ),
        )
        with pytest.raises(LegalityError):
            assert_bijective(lay, "A")

    def test_undersized_coverage_detected(self):
        # mod 4 atom alone only distinguishes 4 of 8 values.
        lay = Layout(
            orig_dims=(8,),
            atoms=(DimAtom(src=0, extent=4, div=1, mod=4),),
        )
        with pytest.raises(LegalityError):
            assert_bijective(lay, "A")
