"""Tests for the Equation-1 solver."""

from repro.decomp.solver import (
    RefConstraint,
    StmtEntry,
    achievable_entry_ranks,
    solve_group,
)
from repro.util.intlinalg import mat_mul


def entry(nest, stmt, depth, refs, obstructions=(), weight=1,
          use_reads=True, use_parallel=True):
    return StmtEntry(
        nest=nest, stmt=stmt, depth=depth, refs=refs,
        obstructions=[list(o) for o in obstructions], weight=weight,
        use_reads=use_reads, use_parallel=use_parallel,
    )


def check_equation1(sol, e):
    """D_x F == C_s for every constrained reference of the entry."""
    c = sol.comp_matrices[(e.nest, e.stmt)]
    for ref in e.refs:
        if not ref.is_write and not e.use_reads:
            continue
        if ref.array in sol.replicated:
            continue
        d = sol.data_matrices[ref.array]
        if not d:
            continue
        assert mat_mul(d, ref.matrix) == c, (ref.array, d, c)


class TestSingleNest:
    def test_identity_access_full_rank(self):
        # A(i,j) written, no reads: communication-free, so the solver
        # stays 1-D (no boundary exchange to amortize with a 2-D grid).
        e = entry("n", 0, 2, [RefConstraint("A", [[1, 0], [0, 1]], True)])
        sol = solve_group([e], {"A": 2})
        assert sol.rank == 1
        check_equation1(sol, e)

    def test_obstruction_limits_rank(self):
        # dependence along i: C must kill e_0.
        e = entry(
            "n", 0, 2,
            [RefConstraint("A", [[1, 0], [0, 1]], True)],
            obstructions=[[1, 0]],
        )
        sol = solve_group([e], {"A": 2})
        assert sol.rank == 1
        c = sol.comp_matrices[("n", 0)]
        assert c[0][0] == 0  # row kills the carried direction
        check_equation1(sol, e)

    def test_infeasible_gives_rank0(self):
        e = entry(
            "n", 0, 2,
            [RefConstraint("A", [[1, 0], [0, 1]], True)],
            obstructions=[[1, 0], [0, 1]],
        )
        sol = solve_group([e], {"A": 2})
        assert sol.rank == 0

    def test_transposed_refs_force_alignment(self):
        # A(i,j) and A(j,i) both accessed: D must be symmetric-compatible;
        # with reads on, the only solutions map i+j-like rows; the solver
        # must still satisfy Equation 1 exactly.
        e = entry(
            "n", 0, 2,
            [
                RefConstraint("A", [[1, 0], [0, 1]], True),
                RefConstraint("A", [[0, 1], [1, 0]], False),
            ],
        )
        sol = solve_group([e], {"A": 2})
        check_equation1(sol, e)


class TestCrossNest:
    def test_shared_array_couples_nests(self):
        # nest1 writes A(i,j); nest2 writes A(j,i): their C's must be
        # compatible through the single D_A.
        e1 = entry("n1", 0, 2, [RefConstraint("A", [[1, 0], [0, 1]], True)])
        e2 = entry("n2", 0, 2, [RefConstraint("A", [[0, 1], [1, 0]], True)])
        sol = solve_group([e1, e2], {"A": 2})
        assert sol.rank >= 1
        check_equation1(sol, e1)
        check_equation1(sol, e2)

    def test_achievable_ranks(self):
        e1 = entry(
            "n1", 0, 2, [RefConstraint("A", [[1, 0], [0, 1]], True)],
            obstructions=[[1, 0]],
        )
        ranks = achievable_entry_ranks([e1], {"A": 2})
        assert ranks[("n1", 0)] == 1

    def test_replicated_array_unconstrains(self):
        # B read with a conflicting access would force rank 0; replication
        # removes the constraint.
        e = entry(
            "n", 0, 2,
            [
                RefConstraint("A", [[1, 0], [0, 1]], True),
                RefConstraint("B", [[0, 0], [0, 0]], False),
            ],
        )
        sol = solve_group([e], {"A": 2, "B": 2}, replicated={"B"})
        assert sol.rank >= 1
        assert "B" in sol.replicated

    def test_owner_computes_ignores_reads(self):
        e = entry(
            "n", 0, 2,
            [
                RefConstraint("A", [[1, 0], [0, 1]], True),
                # read that would force D_A = 0 if honoured:
                RefConstraint("A", [[0, 0], [0, 0]], False),
            ],
            use_reads=False,
        )
        sol = solve_group([e], {"A": 2})
        assert sol.rank >= 1


class TestComponents:
    def test_independent_components_merge_dims(self):
        # Two disjoint nest/array pairs: each rank 1; the merged space
        # must still be rank 1 with both active in dimension 0.
        e1 = entry(
            "n1", 0, 2, [RefConstraint("A", [[1, 0], [0, 1]], True)],
            obstructions=[[1, 0]],
        )
        e2 = entry(
            "n2", 0, 2, [RefConstraint("B", [[1, 0], [0, 1]], True)],
            obstructions=[[0, 1]],
        )
        sol = solve_group([e1, e2], {"A": 2, "B": 2})
        assert sol.rank == 1
        c1 = sol.comp_matrices[("n1", 0)]
        c2 = sol.comp_matrices[("n2", 0)]
        assert any(any(row) for row in c1)
        assert any(any(row) for row in c2)

    def test_boundary_comm_enables_second_dim(self):
        # A stencil-like read with offset (1,0): boundary communication
        # exists, so the second dimension is taken.
        e = entry(
            "n", 0, 2,
            [
                RefConstraint("A", [[1, 0], [0, 1]], True, offset=[0, 0]),
                RefConstraint("A", [[1, 0], [0, 1]], False, offset=[1, 0]),
                RefConstraint("A", [[1, 0], [0, 1]], False, offset=[0, 1]),
            ],
        )
        sol = solve_group([e], {"A": 2})
        assert sol.rank == 2

    def test_no_comm_stays_1d(self):
        # Perfectly local accesses (offset 0): no reason for a 2-D grid.
        e = entry(
            "n", 0, 2,
            [
                RefConstraint("A", [[1, 0], [0, 1]], True, offset=[0, 0]),
                RefConstraint("A", [[1, 0], [0, 1]], False, offset=[0, 0]),
            ],
        )
        sol = solve_group([e], {"A": 2})
        assert sol.rank == 1
