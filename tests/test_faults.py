"""Fault injection + hardening (PR-3): deterministic fault plans, the
cache's corrupt-entry quarantine, batch retry/respawn/timeout paths,
graceful degradation, and CLI validation.

The worker crash/stall tests drive real ``ProcessPoolExecutor`` pools
whose workers die mid-grid; the assertions are that the driver always
returns a complete, ordered result list with per-point error records —
never an unhandled exception.
"""

import pytest

from repro import faults, obs
from repro.__main__ import main
from repro.errors import CompileError, FaultInjected, ReproError
from repro.pipeline import ArtifactCache, CompileSession, MISS, reset_session
from repro.pipeline.batch import BatchPoint, run_batch, summarize
from repro.pipeline.passes import DecomposePass


def _pristine_faults():
    """Unconfigured lazy state: the next probe re-reads the env (so
    forked batch workers pick up a monkeypatched ``REPRO_FAULTS``)."""
    faults._plan = None
    faults._configured = False
    faults._counts.clear()


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    _pristine_faults()
    obs.disable()
    obs.reset()
    reset_session()
    yield
    _pristine_faults()
    obs.disable()
    obs.reset()
    reset_session()


class TestFaultPlan:
    def test_parse_and_round_trip(self):
        plan = faults.FaultPlan.parse(
            "seed=7, stall_s=5, cache.read=0.3, worker.crash=0.2"
        )
        assert plan.seed == 7
        assert plan.stall_seconds == 5.0
        assert plan.rate("cache.read") == 0.3
        assert plan.rate("worker.crash") == 0.2
        assert plan.rate("pass") == 0.0
        again = faults.FaultPlan.parse(plan.spec())
        assert again == plan

    def test_disk_and_driver_sites_are_valid(self):
        plan = faults.FaultPlan.parse(
            "seed=1,disk.enospc=0.2,disk.torn_write=0.3,driver.kill=1.0"
        )
        assert plan.rate("disk.enospc") == 0.2
        assert plan.rate("disk.torn_write") == 0.3
        assert plan.rate("driver.kill") == 1.0
        assert faults.FaultPlan.parse(plan.spec()) == plan

    def test_driver_kill_is_noop_when_inactive(self):
        # Unconfigured: must never signal the calling process.
        faults.maybe_driver_kill()
        faults.configure("seed=1,driver.kill=0.0")
        faults.maybe_driver_kill()  # rate 0: also a no-op

    def test_pass_stall_site_and_target_round_trip(self):
        assert "pass.stall" in faults.SITES
        plan = faults.FaultPlan.parse(
            "seed=1,pass.stall=1.0,stall_s=0.25,stall_pass=layout"
        )
        assert plan.rate("pass.stall") == 1.0
        assert plan.stall_pass == "layout"
        assert faults.FaultPlan.parse(plan.spec()) == plan

    def test_pass_stall_inactive_is_noop(self):
        # Unconfigured, and configured-but-untargeted: no sleep call.
        faults.maybe_pass_stall("layout")
        faults.configure("seed=1,pass.stall=0.0")
        faults.maybe_pass_stall("layout")

    def test_parse_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            faults.FaultPlan.parse("bogus=0.5")

    def test_parse_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="rate outside"):
            faults.FaultPlan.parse("cache.read=1.5")
        with pytest.raises(ValueError, match="key=value"):
            faults.FaultPlan.parse("cache.read")

    def test_deterministic_sequence(self):
        faults.configure("seed=3,cache.read=0.5")
        seq1 = [faults.should_fire("cache.read") for _ in range(64)]
        faults.configure("seed=3,cache.read=0.5")
        seq2 = [faults.should_fire("cache.read") for _ in range(64)]
        assert seq1 == seq2
        assert True in seq1 and False in seq1  # rate 0.5 mixes both
        faults.configure("seed=4,cache.read=0.5")
        seq3 = [faults.should_fire("cache.read") for _ in range(64)]
        assert seq3 != seq1  # seed matters

    def test_inactive_by_default(self):
        assert not faults.active()
        assert not faults.should_fire("cache.read")
        faults.check("pass")  # no-op

    def test_check_raises_typed_error(self):
        faults.configure("seed=1,pass=1.0")
        with pytest.raises(FaultInjected) as ei:
            faults.check("pass", app="simple")
        assert isinstance(ei.value, ReproError)
        assert ei.value.context()["app"] == "simple"


class TestCacheQuarantine:
    def test_injected_read_corruption_is_quarantined(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        cache.put("cafecafe", {"x": 1})
        path = cache._disk_path("cafecafe")
        assert path.exists()
        faults.configure("seed=1,cache.read=1.0")
        fresh = ArtifactCache(disk_dir=tmp_path)
        assert fresh.get("cafecafe") is MISS  # never crashes
        assert fresh.stats.corrupt == 1
        assert not path.exists()  # moved aside
        qdir = path.parent.parent / "quarantine"
        assert any(qdir.iterdir())

    def test_truncated_entry_is_quarantined(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        cache.put("deadd00d", {"x": 2})
        path = cache._disk_path("deadd00d")
        path.write_bytes(path.read_bytes()[:7])  # truncate
        fresh = ArtifactCache(disk_dir=tmp_path)
        assert fresh.get("deadd00d") is MISS
        assert fresh.stats.corrupt == 1
        assert not path.exists()

    def test_quarantine_dir_is_capped(self, tmp_path, monkeypatch):
        from repro.pipeline import cache as cache_mod

        monkeypatch.setattr(cache_mod, "QUARANTINE_KEEP", 3)
        obs.enable(reset=True)
        cache = ArtifactCache(disk_dir=tmp_path)
        for i in range(8):
            key = f"badc0de{i:02d}"
            cache.put(key, {"i": i})
            cache._disk_path(key).write_bytes(b"garbage")
            fresh = ArtifactCache(disk_dir=tmp_path)
            assert fresh.get(key) is MISS
        qdir = cache._disk_path("badc0de00").parent.parent / "quarantine"
        kept = [p for p in qdir.iterdir() if p.is_file()]
        assert len(kept) <= 3  # newest K survive a corruption storm
        counters = obs.collector().metrics.snapshot()["counters"]
        assert counters["cache.quarantine.evicted"] == 5

    def test_injected_write_fault_stays_memory_only(self, tmp_path):
        faults.configure("seed=1,cache.write=1.0")
        cache = ArtifactCache(disk_dir=tmp_path)
        cache.put("feedface", {"x": 3})
        assert cache.stats.disk_errors == 1
        assert cache.stats.disk_stores == 0
        assert cache.get("feedface") == {"x": 3}  # memory layer serves

    def test_fully_faulted_disk_cache_batch_completes(self, tmp_path):
        faults.configure("seed=2,cache.read=1.0,cache.write=1.0")
        points = [
            BatchPoint(app="simple", scheme=s, nprocs=p, n=8)
            for s in ("base", "data") for p in (1, 2)
        ]
        results = run_batch(points, jobs=1, disk_dir=str(tmp_path))
        assert [r.ok for r in results] == [True] * len(points)


class TestPipelineFaults:
    def test_pass_fault_becomes_typed_error(self):
        from repro.apps import build_app
        from repro.codegen.spmd import Scheme

        faults.configure("seed=1,pass=1.0")
        with pytest.raises(ReproError):
            CompileSession(cache=None).compile(
                build_app("simple", n=8), Scheme.BASE, 2
            )

    def test_foreign_exception_wrapped_with_context(self, monkeypatch):
        from repro.apps import build_app
        from repro.codegen.spmd import Scheme

        def boom(self, ctx):
            raise RuntimeError("boom")

        monkeypatch.setattr(DecomposePass, "run", boom)
        with pytest.raises(CompileError) as ei:
            CompileSession(cache=None).compile(
                build_app("simple", n=8), Scheme.COMP_DECOMP, 2
            )
        assert "decompose" in str(ei.value)
        assert ei.value.context()["app"] == "simple"


class TestDegradation:
    def test_broken_scheme_degrades_to_base(self, monkeypatch):
        def boom(self, ctx):
            raise RuntimeError("decomposition exploded")

        monkeypatch.setattr(DecomposePass, "run", boom)
        points = [
            BatchPoint(app="simple", scheme="data", nprocs=2, n=8),
            BatchPoint(app="simple", scheme="base", nprocs=2, n=8),
        ]
        results = run_batch(points, jobs=1)
        assert results[0].ok and results[0].degraded
        assert "decomposition exploded" in results[0].degrade_reason
        assert results[1].ok and not results[1].degraded
        assert summarize(results)["degraded"] == 1

    def test_no_degrade_keeps_error(self, monkeypatch):
        def boom(self, ctx):
            raise RuntimeError("decomposition exploded")

        monkeypatch.setattr(DecomposePass, "run", boom)
        points = [BatchPoint(app="simple", scheme="data", nprocs=2, n=8)]
        results = run_batch(points, jobs=1, degrade=False)
        assert not results[0].ok
        assert "decomposition exploded" in results[0].error


class TestBatchWorkerFaults:
    POINTS = [
        BatchPoint(app="simple", scheme="base", nprocs=1, n=8),
        BatchPoint(app="simple", scheme="data", nprocs=2, n=8),
    ]

    def test_worker_raising_is_isolated_in_parallel(self):
        points = [
            self.POINTS[0],
            BatchPoint(app="nosuchapp", scheme="base", nprocs=1, n=8),
            self.POINTS[1],
        ]
        results = run_batch(points, jobs=2)
        assert [r.ok for r in results] == [True, False, True]
        assert "nosuchapp" in results[1].error

    def test_worker_crash_retries_then_fails(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=1,worker.crash=1.0")
        results = run_batch(self.POINTS, jobs=2, retries=1, backoff=0.01)
        assert len(results) == len(self.POINTS)
        for r in results:
            assert not r.ok
            assert r.attempts == 2  # initial try + one retry
            assert "pool broken" in r.error

    def test_worker_stall_hits_timeout(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", "seed=1,worker.stall=1.0,stall_s=60"
        )
        results = run_batch(self.POINTS[:1], jobs=2, timeout=1.5,
                            retries=0, backoff=0.01)
        assert len(results) == 1
        assert not results[0].ok
        assert "timeout" in results[0].error

    def test_serial_retry_counts_attempts(self, monkeypatch):
        calls = {"n": 0}
        real = CompileSession.compile

        def flaky(self, prog, scheme, nprocs, **kw):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return real(self, prog, scheme, nprocs, **kw)

        monkeypatch.setattr(CompileSession, "compile", flaky)
        results = run_batch(self.POINTS[:1], jobs=1, retries=2,
                            backoff=0.0, degrade=False)
        assert results[0].ok
        assert results[0].attempts == 2


class TestCliValidation:
    def test_rejects_nonpositive_numbers(self):
        for argv in (
            ["batch", "--procs-list", "0"],
            ["batch", "--jobs", "-1"],
            ["batch", "--retries", "-2"],
            ["batch", "--timeout", "0"],
            ["run", "simple", "--n", "0"],
            ["verify", "--n", "0"],
            ["decompose", "simple", "--procs", "0"],
        ):
            with pytest.raises(SystemExit) as ei:
                main(argv)
            assert ei.value.code == 2, argv

    def test_rejects_empty_grids(self):
        with pytest.raises(SystemExit):
            main(["batch", "--apps", " "])
        with pytest.raises(SystemExit):
            main(["batch", "--apps", "simple", "--schemes", ","])
        with pytest.raises(SystemExit) as ei:
            main(["batch", "--procs-list", ","])
        assert ei.value.code == 2

    def test_rejects_bad_fault_spec(self):
        with pytest.raises(SystemExit, match="unknown fault site"):
            main(["batch", "--apps", "simple", "--n", "8",
                  "--inject-faults", "bogus=1"])

    def test_chaos_batch_cli_completes(self, capsys, tmp_path):
        rc = main([
            "batch", "--apps", "simple", "--schemes", "base,data",
            "--procs-list", "1,2", "--n", "8", "--retries", "3",
            "--backoff", "0.01", "--cache-dir", str(tmp_path),
            "--inject-faults", "seed=7,cache.read=0.5,cache.write=0.5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "errors: 0" in out
        # The CLI cleared the injected plan after the batch.
        assert not faults.active()
