"""The semantic verification oracle (PR-3 tentpole).

Covers: the oracle passing over a real app × scheme × procs grid
(bit-identical lockstep execution through transformed layouts), the
bijectivity pre-check rejecting a colliding layout, first-divergence
diagnostics when the compiled plan genuinely computes something else,
the optional ``verify`` pipeline pass, and the ``verify`` CLI command.
"""

from dataclasses import replace

import pytest

from repro import obs
from repro.__main__ import main
from repro.apps import build_app
from repro.codegen.spmd import Scheme
from repro.datatrans.layout import DimAtom, Layout
from repro.errors import VerifyError
from repro.pipeline import CompileSession, reset_session
from repro.pipeline.passes import ART_SPMD, VerifyPass
from repro.verify import (
    format_verify_table,
    grid_ok,
    verify_grid,
    verify_point,
    verify_spmd,
)


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    obs.disable()
    obs.reset()
    reset_session()
    yield
    obs.disable()
    obs.reset()
    reset_session()


class TestOracleGrid:
    @pytest.mark.parametrize("app", ["simple", "stencil5", "lu"])
    @pytest.mark.parametrize(
        "scheme",
        [Scheme.BASE, Scheme.COMP_DECOMP, Scheme.COMP_DECOMP_DATA],
    )
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_point_verifies(self, app, scheme, nprocs):
        res = verify_point(app, scheme, nprocs, n=6)
        assert res.ok, res.summary()
        assert res.phases_checked > 0
        assert res.elements_checked > 0

    def test_grid_shares_session(self):
        session = CompileSession()
        results = verify_grid(["simple"], [Scheme.COMP_DECOMP_DATA],
                              [1, 2], n=6, session=session)
        assert grid_ok(results)
        # restructure ran once, not once per grid point
        assert session.manager.runs.get("restructure", 0) == 1

    def test_compile_failure_is_a_failed_point(self):
        res = verify_point("nosuchapp", Scheme.BASE, 1, n=6)
        assert not res.ok
        assert "compile failed" in res.reason

    def test_table_formatting(self):
        results = verify_grid(["simple"], [Scheme.BASE], [1], n=6)
        table = format_verify_table(results)
        assert "simple" in table
        assert "1 points, 1 ok, 0 failed" in table


class TestOracleCatchesBugs:
    def test_non_bijective_layout_rejected(self):
        prog = build_app("simple", n=6)
        spmd = CompileSession().compile(prog, Scheme.COMP_DECOMP_DATA, 2)
        name, ta = sorted(spmd.transformed.items())[0]
        dims = ta.decl.dims
        # Collapse the second dimension: distinct columns now share an
        # address, so the layout is not a bijection.
        bad = Layout(
            orig_dims=tuple(dims),
            atoms=(DimAtom(src=0, extent=dims[0]),
                   DimAtom(src=1, extent=1, mod=1)),
        )
        assert not bad.is_bijective()
        spmd.transformed[name] = replace(ta, layout=bad)
        res = verify_spmd(spmd, prog)
        assert not res.ok
        assert "not bijective" in res.reason
        assert name in res.reason

    def test_semantic_change_reports_first_divergence(self):
        prog = build_app("simple", n=6)
        spmd = CompileSession().compile(prog, Scheme.BASE, 2)
        # A reference whose first statement computes something else: the
        # compiled plan no longer implements it.
        ref = build_app("simple", n=6)
        st = ref.nests[0].body[0]
        ref.nests[0].body[0] = replace(
            st, compute=lambda *vals: 123.456
        )
        res = verify_spmd(spmd, ref)
        assert not res.ok
        div = res.divergence
        assert div is not None
        assert div.array
        assert isinstance(div.index, tuple) and div.index
        assert div.phase not in ("", None)
        assert div.expected != div.actual
        assert "first divergence" in div.describe()

    def test_raise_on_failure_carries_context(self):
        prog = build_app("simple", n=6)
        spmd = CompileSession().compile(prog, Scheme.BASE, 2)
        ref = build_app("simple", n=6)
        st = ref.nests[0].body[0]
        ref.nests[0].body[0] = replace(st, compute=lambda *vals: -1.0)
        res = verify_spmd(spmd, ref)
        with pytest.raises(VerifyError) as ei:
            res.raise_on_failure()
        assert ei.value.context()["app"] == "simple"


class TestVerifyPass:
    def test_session_verify_flag_runs_pass(self):
        session = CompileSession(verify=True)
        session.compile(build_app("simple", n=6),
                        Scheme.COMP_DECOMP_DATA, 2)
        assert session.manager.runs.get("verify", 0) == 1

    def test_env_flag_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert CompileSession().verify
        monkeypatch.setenv("REPRO_VERIFY", "0")
        assert not CompileSession().verify

    def test_verify_pass_never_cached(self):
        session = CompileSession(verify=True)
        for _ in range(2):
            session.compile(build_app("simple", n=6), Scheme.BASE, 2)
        # Two compiles, two real verify executions (zero cache hits).
        assert session.manager.runs.get("verify", 0) == 2
        assert session.manager.hits.get("verify", 0) == 0

    def test_pass_raises_verify_error_on_divergence(self):
        session = CompileSession()
        prog = build_app("simple", n=6)
        spmd = session.compile(prog, Scheme.BASE, 2)
        tampered = build_app("simple", n=6)
        st = tampered.nests[0].body[0]
        tampered.nests[0].body[0] = replace(
            st, compute=lambda *vals: 0.0
        )
        ctx = session._context(tampered, scheme=Scheme.BASE, nprocs=2)
        ctx.artifacts[ART_SPMD] = spmd
        with pytest.raises(VerifyError):
            VerifyPass().run(ctx)


class TestVerifyCli:
    def test_verify_command_ok(self, capsys):
        assert main([
            "verify", "--apps", "simple", "--schemes", "base,data",
            "--procs-list", "1,2", "--n", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "ALL OK" in out
        assert "4 points, 4 ok, 0 failed" in out

    def test_verify_command_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["verify", "--apps", "nosuchapp"])

    def test_run_with_verify_flag(self, capsys):
        assert main([
            "run", "simple", "--n", "12", "--procs-list", "1,2",
            "--scale", "32", "--scheme", "base", "--verify",
            "--verify-n", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "semantic verification" in out
