"""Flamegraph rendering (PR-10): the collapsed/folded stack format,
the self-contained SVG builder, and the profiler's stack capture.

The SVG contract worth pinning: well-formed XML, byte-deterministic
for a given input, and fully self-contained — no scripts, no external
fetches — so it can be committed as a CI artifact and opened from a
file:// URL on an air-gapped host.
"""

import sys
import xml.etree.ElementTree as ET

import pytest

from repro import obs
from repro.obs import hotspot
from repro.obs.export import write_collapsed
from repro.obs.flame import flamegraph_svg, parse_collapsed
from repro.obs.hotspot import EXTERNAL, HotspotProfiler

STACKS = {
    "main;compile;layout": 0.30,
    "main;compile;decompose": 0.10,
    "main;simulate;trace": 0.55,
    "main": 0.05,
}


@pytest.fixture(autouse=True)
def _clean_state():
    from repro import pipeline

    obs.disable()
    obs.reset()
    pipeline.reset_session()
    assert sys.getprofile() is None
    yield
    assert sys.getprofile() is None, "profiler hook leaked"
    obs.disable()
    obs.reset()
    pipeline.reset_session()


def _workload():
    from repro.apps import simple
    from repro.compiler import Scheme, compile_all
    from repro.machine import scaled_dash
    from repro.machine.simulate import simulate

    prog = simple.build(n=12, time_steps=2)
    compiled = compile_all(prog, nprocs=4)
    machine = scaled_dash(4, scale=32, word_bytes=8)
    return simulate(compiled.by_scheme(Scheme.COMP_DECOMP_DATA), machine)


class TestParseCollapsed:
    def test_round_trip(self):
        lines = [f"{k} {v:.6f}" for k, v in sorted(STACKS.items())]
        assert parse_collapsed(lines) == pytest.approx(STACKS)

    def test_accumulates_duplicate_stacks(self):
        parsed = parse_collapsed(["a;b 1.0", "a;b 2.0", "a 0.5"])
        assert parsed == {"a;b": 3.0, "a": 0.5}

    def test_blank_lines_skipped(self):
        assert parse_collapsed(["", "a 1.0", "   "]) == {"a": 1.0}

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_collapsed(["no-value-here"])
        with pytest.raises(ValueError, match="malformed"):
            parse_collapsed(["a not-a-number"])


class TestFlamegraphSVG:
    def test_well_formed_xml_with_frames(self):
        svg = flamegraph_svg(STACKS, title="test")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        rects = root.iter("{http://www.w3.org/2000/svg}rect")
        assert sum(1 for _ in rects) >= len(STACKS)
        titles = [t.text for t in
                  root.iter("{http://www.w3.org/2000/svg}title")]
        assert any("simulate" in t for t in titles)
        assert any("test" in (t.text or "") for t in
                   root.iter("{http://www.w3.org/2000/svg}text"))

    def test_deterministic(self):
        assert flamegraph_svg(STACKS) == flamegraph_svg(dict(
            reversed(list(STACKS.items()))))

    def test_self_contained(self):
        svg = flamegraph_svg(STACKS)
        low = svg.lower()
        assert "<script" not in low
        assert "href" not in low
        # The only external reference is the SVG namespace itself.
        assert low.count("http") == low.count("http://www.w3.org/2000/svg")

    def test_accepts_folded_lines(self):
        lines = [f"{k} {v:.6f}" for k, v in STACKS.items()]
        assert flamegraph_svg(lines) == flamegraph_svg(STACKS)

    def test_empty_input_renders_placeholder(self):
        svg = flamegraph_svg({})
        ET.fromstring(svg)
        assert "(no samples)" in svg

    def test_min_frac_prunes_tiny_frames(self):
        stacks = dict(STACKS)
        stacks["main;compile;epsilon"] = 1e-9
        svg = flamegraph_svg(stacks, min_frac=0.01)
        assert "epsilon" not in svg
        ET.fromstring(svg)

    def test_total_in_header(self):
        svg = flamegraph_svg(STACKS, title="hdr")
        assert f"{sum(STACKS.values()):.4g}s" in svg


class TestWriteCollapsed:
    def test_dict_written_sorted_and_parseable(self, tmp_path):
        path = tmp_path / "s.collapsed"
        write_collapsed(str(path), STACKS)
        text = path.read_text()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert lines == sorted(lines)
        assert parse_collapsed(lines) == pytest.approx(STACKS)

    def test_empty_dict_writes_empty_file(self, tmp_path):
        path = tmp_path / "s.collapsed"
        write_collapsed(str(path), {})
        assert path.read_text() == ""


class TestProfilerStacks:
    def test_default_profiler_has_no_stacks(self):
        with hotspot.profile() as p:
            _workload()
        assert p.report.stacks is None
        assert p.report.collapsed() == []

    def test_collect_stacks_capture(self):
        with hotspot.profile(collect_stacks=True) as p:
            _workload()
        rep = p.report
        assert rep.stacks
        # Stack leaves are self-time buckets: the folded totals must
        # agree with the flat self-time attribution.
        assert sum(rep.stacks.values()) == pytest.approx(
            sum(f.self_s for f in rep.functions), rel=1e-6)
        non_ext = [s for s in rep.stacks if s != EXTERNAL]
        assert any(";" in s or "/" in s for s in non_ext)

    def test_collapsed_lines_feed_flamegraph(self):
        with hotspot.profile(collect_stacks=True) as p:
            _workload()
        lines = p.report.collapsed()
        assert lines == sorted(lines)
        svg = flamegraph_svg(lines, title="profiled")
        ET.fromstring(svg)

    def test_constructor_flag(self):
        prof = HotspotProfiler(collect_stacks=True)
        prof.start()
        _workload()
        rep = prof.stop()
        assert rep.stacks is not None
