"""Locality analytics vs. their brute-force oracles, plus the
simulate/bench/batch integration.

The reuse-distance and set-pressure implementations must match the
O(n^2)/dict oracles **bit-exactly** on small traces — the oracles are
the executable definitions, and any divergence is a correctness bug,
not noise.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.apps import build_app
from repro.codegen.spmd import Scheme
from repro.machine import scaled_dash
from repro.machine.cache import CacheConfig
from repro.machine.locality import (
    COLD,
    collect_locality,
    log2_bin_histogram,
    phase_array_heatmap,
    reuse_distances,
    reuse_distances_oracle,
    set_pressure,
    set_pressure_oracle,
)
from repro.machine.simulate import simulate
from repro.machine.trace import program_traces
from repro.pipeline.session import CompileSession


@pytest.fixture(autouse=True)
def _clean_state():
    from repro import pipeline

    obs.disable()
    obs.reset()
    pipeline.reset_session()
    yield
    obs.disable()
    obs.reset()
    pipeline.reset_session()


def _compiled(app="stencil5", scheme=Scheme.COMP_DECOMP_DATA, nprocs=4,
              n=12):
    prog = build_app(app, n=n)
    spmd = CompileSession().compile(prog, scheme, nprocs)
    machine = scaled_dash(nprocs, scale=16, word_bytes=8)
    return spmd, machine


class TestReuseDistance:
    def test_hand_trace(self):
        # One proc, line size 1: stream a b c a b b -> distances
        # cold cold cold 2 2 0.
        proc = np.zeros(6, dtype=np.int64)
        addr = np.array([0, 1, 2, 0, 1, 1], dtype=np.int64)
        d = reuse_distances(proc, addr, line_bytes=1)
        assert d.tolist() == [COLD, COLD, COLD, 2, 2, 0]

    def test_line_granularity(self):
        # Two addresses on the same 16B line are the same block.
        proc = np.zeros(3, dtype=np.int64)
        addr = np.array([0, 8, 16], dtype=np.int64)
        d = reuse_distances(proc, addr, line_bytes=16)
        assert d.tolist() == [COLD, 0, COLD]

    def test_per_proc_streams_independent(self):
        # Interleaved procs must not see each other's lines.
        proc = np.array([0, 1, 0, 1], dtype=np.int64)
        addr = np.array([0, 0, 0, 0], dtype=np.int64)
        d = reuse_distances(proc, addr, line_bytes=16)
        assert d.tolist() == [COLD, COLD, 0, 0]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_oracle_random(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 300))
        proc = rng.integers(0, 4, n)
        addr = rng.integers(0, 600, n) * 4
        fast = reuse_distances(proc, addr, 16)
        slow = reuse_distances_oracle(proc, addr, 16)
        assert (fast == slow).all()

    def test_matches_oracle_real_trace(self):
        spmd, machine = _compiled(n=8)
        _, traces = program_traces(spmd, machine.numa.page_bytes)
        live = [t for t in traces if t.n_accesses]
        addr = np.concatenate([t.addr for t in live])
        proc = np.concatenate([t.proc for t in live])
        fast = reuse_distances(proc, addr, machine.cache.line_bytes)
        slow = reuse_distances_oracle(proc, addr,
                                      machine.cache.line_bytes)
        assert (fast == slow).all()

    def test_empty_stream(self):
        empty = np.zeros(0, dtype=np.int64)
        assert reuse_distances(empty, empty).tolist() == []


class TestSetPressure:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_oracle_random(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 400))
        proc = rng.integers(0, 3, n)
        addr = rng.integers(0, 800, n) * 8
        cfg = CacheConfig(size_bytes=256, line_bytes=16)
        assert (set_pressure(proc, addr, cfg)
                == set_pressure_oracle(proc, addr, cfg)).all()

    def test_aliasing_concentrates_pressure(self):
        # Lines exactly one cache apart map to the same set: the
        # power-of-two aliasing signature.
        cfg = CacheConfig(size_bytes=256, line_bytes=16)  # 16 sets
        proc = np.zeros(4, dtype=np.int64)
        addr = np.array([0, 256, 512, 768], dtype=np.int64)
        p = set_pressure(proc, addr, cfg)
        assert p.shape == (1, 16)
        assert p[0, 0] == 4
        assert p.sum() == 4

    def test_empty_stream(self):
        cfg = CacheConfig(size_bytes=256, line_bytes=16)
        empty = np.zeros(0, dtype=np.int64)
        assert set_pressure(empty, empty, cfg).shape == (0, 16)


class TestHistogramAndHeatmap:
    def test_log2_bins(self):
        vals = np.array([-1, 0, 0, 1, 2, 3, 4, 7, 8, 100])
        h = log2_bin_histogram(vals)
        assert h == {"0": 2, "1": 1, "2": 2, "4": 2, "8": 1, "64": 1}
        # Negative (cold) markers are excluded, keys numerically sorted.
        assert [int(k) for k in h] == sorted(int(k) for k in h)

    def test_log2_empty(self):
        assert log2_bin_histogram(np.array([], dtype=np.int64)) == {}
        assert log2_bin_histogram(np.array([-1, -1])) == {}

    def test_heatmap_counts_match_traces(self):
        spmd, machine = _compiled(n=8)
        space, traces = program_traces(spmd, machine.numa.page_bytes)
        hm = phase_array_heatmap(space, traces)
        assert hm["phases"] == [t.nest_name for t in traces]
        for t, row in zip(traces, hm["counts"]):
            assert sum(row) == t.n_accesses


class TestCollectLocality:
    def test_deterministic_and_json_ready(self):
        spmd, machine = _compiled()
        space, traces = program_traces(spmd, machine.numa.page_bytes)
        a = collect_locality(space, traces, machine.cache).as_dict()
        b = collect_locality(space, traces, machine.cache).as_dict()
        assert a == b
        assert json.loads(json.dumps(a)) == a
        for name, r in a["reuse"].items():
            assert r["accesses"] == r["cold"] + sum(
                v for v in r["hist"].values())

    def test_simulate_opt_in(self):
        spmd, machine = _compiled(n=8)
        plain = simulate(spmd, machine)
        assert plain.locality == {}
        loc = simulate(spmd, machine, locality=True)
        assert loc.locality["reuse"]
        assert loc.total_time == plain.total_time

    def test_simulate_locality_stable_across_calls(self):
        spmd, machine = _compiled(n=8)
        a = simulate(spmd, machine, locality=True).locality
        b = simulate(spmd, machine, locality=True).locality
        assert a == b


class TestBenchRoundTrip:
    def test_snapshot_carries_locality_and_profile(self, tmp_path):
        from repro.obs import bench

        snap = bench.run_bench(apps=["simple"], schemes=["base"],
                               procs=[1], n=8, repeats=1)
        assert snap["schema"] == bench.SCHEMA_VERSION
        point = snap["points"][0]
        assert point["sim"]["locality"]["reuse"]
        assert point["profile"]["top_self"]
        # Round-trip: save, load, exact-match compare.
        path, _ = bench.save_snapshot(snap, out_dir=tmp_path,
                                      latest=None)
        loaded = bench.load_snapshot(path)
        assert loaded["points"][0]["sim"]["locality"] == \
               point["sim"]["locality"]
        cmp = bench.compare_snapshots(loaded, snap)
        assert cmp.ok, [r for r in cmp.rows if r.failing]

    def test_locality_drift_fails_gate(self, tmp_path):
        from repro.obs import bench

        snap = bench.run_bench(apps=["simple"], schemes=["base"],
                               procs=[1], n=8, repeats=1)
        mutated = json.loads(json.dumps(snap))
        reuse = mutated["points"][0]["sim"]["locality"]["reuse"]
        first = next(iter(reuse))
        reuse[first]["cold"] += 1
        cmp = bench.compare_snapshots(snap, mutated)
        assert not cmp.ok
        assert any("locality" in r.metric for r in cmp.regressions)


class TestBatchLocality:
    def test_batch_result_carries_locality(self):
        from repro.pipeline.batch import BatchPoint, run_batch

        points = [BatchPoint(app="simple", scheme="base", nprocs=2, n=8)]
        res = run_batch(points, jobs=1, cache=False, locality=True)
        assert res[0].ok
        assert res[0].locality["reuse"]
        assert "locality" in res[0].as_dict()

    def test_batch_locality_off_by_default(self):
        from repro.pipeline.batch import BatchPoint, run_batch

        points = [BatchPoint(app="simple", scheme="base", nprocs=2, n=8)]
        res = run_batch(points, jobs=1, cache=False)
        assert res[0].ok
        assert res[0].locality == {}
