"""``repro fsck`` (``repro.pipeline.integrity``): entry verification,
repair, quarantine, and index reconciliation."""

import json
import os

import pytest

from repro import obs
from repro.errors import IntegrityError
from repro.pipeline.integrity import fsck_store
from repro.pipeline.store import ResultStore, result_key


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _seed(store, n=3):
    keys = []
    for i in range(n):
        k = result_key("p", "comp", i + 1, "m")
        store.put(k, {"v": i}, coord=f"c{i}")
        keys.append(k)
    return keys


class TestCleanStore:
    def test_clean_report(self, tmp_path):
        store = ResultStore(tmp_path)
        _seed(store)
        report = fsck_store(store)
        assert report.scanned == 3
        assert report.ok == 3
        assert report.clean
        assert report.damage == 0

    def test_empty_store_is_clean(self, tmp_path):
        report = fsck_store(ResultStore(tmp_path))
        assert report.scanned == 0
        assert report.clean

    def test_report_dict_shape(self, tmp_path):
        report = fsck_store(ResultStore(tmp_path))
        d = report.as_dict()
        for field in ("scanned", "ok", "repaired", "quarantined",
                      "checksum_mismatch", "key_mismatch",
                      "index_dropped", "index_added", "clean",
                      "problems"):
            assert field in d


class TestEntryDamage:
    def test_unparseable_entry_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = _seed(store)
        path = store._path(keys[0])
        path.write_text("{garbage")
        report = fsck_store(store)
        assert report.unparseable == 1
        assert report.quarantined == 1
        assert not report.clean
        assert not path.exists()
        assert (store._quarantine_dir() / path.name).exists()
        # The dangling index coordinate is dropped alongside.
        assert report.index_dropped == 1

    def test_checksum_mismatch_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = _seed(store)
        path = store._path(keys[0])
        entry = json.loads(path.read_text())
        entry["payload"] = {"v": 999}
        path.write_text(json.dumps(entry))
        report = fsck_store(store)
        assert report.checksum_mismatch == 1
        assert report.quarantined == 1
        assert not path.exists()

    def test_key_mismatch_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = _seed(store)
        path = store._path(keys[0])
        entry = json.loads(path.read_text())
        entry["key"] = "f" * 64
        path.write_text(json.dumps(entry))
        report = fsck_store(store)
        assert report.key_mismatch == 1
        assert report.quarantined == 1

    def test_missing_payload_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = _seed(store)
        path = store._path(keys[0])
        entry = json.loads(path.read_text())
        del entry["payload"]
        path.write_text(json.dumps(entry))
        report = fsck_store(store)
        assert report.missing_payload == 1
        assert report.quarantined == 1

    def test_legacy_entry_without_checksum_is_repaired(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = _seed(store)
        path = store._path(keys[0])
        entry = json.loads(path.read_text())
        del entry["sha256"]
        path.write_text(json.dumps(entry))
        report = fsck_store(store)
        assert report.missing_checksum == 1
        assert report.repaired == 1
        assert report.quarantined == 0
        # The repaired entry now verifies — and still serves.
        assert store.get(keys[0]) == {"v": 0}
        assert fsck_store(store).clean

    def test_repair_converges(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = _seed(store)
        store._path(keys[0]).write_text("{garbage")
        entry_path = store._path(keys[1])
        entry = json.loads(entry_path.read_text())
        del entry["sha256"]
        entry_path.write_text(json.dumps(entry))
        first = fsck_store(store)
        assert not first.clean
        second = fsck_store(store)
        assert second.clean
        assert second.scanned == 2  # quarantined entry gone from scan


class TestNoRepair:
    def test_report_only_leaves_damage_in_place(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = _seed(store)
        path = store._path(keys[0])
        path.write_text("{garbage")
        report = fsck_store(store, repair=False)
        assert report.unparseable == 1
        assert report.quarantined == 0
        assert not report.clean
        assert path.exists()  # untouched
        # A second report-only pass finds the same damage.
        assert not fsck_store(store, repair=False).clean


class TestIndexReconciliation:
    def test_dangling_coord_dropped(self, tmp_path):
        store = ResultStore(tmp_path)
        _seed(store)
        index = json.loads(store._index_path().read_text())
        index["phantom"] = "ab" * 32
        store._index_path().write_text(json.dumps(index))
        report = fsck_store(store)
        assert report.index_dropped == 1
        fixed = json.loads(store._index_path().read_text())
        assert "phantom" not in fixed

    def test_missing_coord_added(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = _seed(store)
        index = json.loads(store._index_path().read_text())
        del index["c0"]
        store._index_path().write_text(json.dumps(index))
        report = fsck_store(store)
        assert report.index_added == 1
        fixed = json.loads(store._index_path().read_text())
        assert fixed["c0"] == keys[0]

    def test_duplicate_coord_newest_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        k1 = result_key("p1", "comp", 4, "m")
        k2 = result_key("p2", "comp", 4, "m")
        store.put(k1, {"v": 1}, coord="shared")
        # Forge a second entry claiming the same coordinate (put()
        # would have invalidated; simulate a crash that left both).
        store.put(k2, {"v": 2}, coord="other")
        path2 = store._path(k2)
        entry = json.loads(path2.read_text())
        entry["coord"] = "shared"
        from repro.pipeline.store import payload_checksum
        entry["sha256"] = payload_checksum(entry["payload"])
        path2.write_text(json.dumps(entry))
        os.utime(store._path(k1), (100, 100))
        os.utime(path2, (200, 200))
        report = fsck_store(store)
        assert report.index_duplicates == 1
        fixed = json.loads(store._index_path().read_text())
        assert fixed["shared"] == k2  # newest


class TestLocking:
    def test_refuses_locked_store(self, tmp_path):
        store = ResultStore(tmp_path, lock_timeout=0.15)
        _seed(store)
        with store._lock():
            with pytest.raises(IntegrityError, match="locked"):
                fsck_store(store)
        assert fsck_store(store).clean  # free again
