"""Cross-process advisory file locking (``repro.util.locking``):
mutual exclusion, timeouts, stale-lock breaking, and the store's
lock-timeout degradation path."""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.errors import LockError
from repro.util.locking import FileLock

SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture(params=[True, False], ids=["fcntl", "fallback"])
def mode(request):
    """Both implementations: kernel flock and O_EXCL lock files."""
    return request.param


class TestFileLock:
    def test_acquire_release(self, tmp_path, mode):
        lock = FileLock(tmp_path / ".lock", use_fcntl=mode)
        lock.acquire()
        assert lock.held
        lock.release()
        assert not lock.held

    def test_context_manager(self, tmp_path, mode):
        with FileLock(tmp_path / ".lock", use_fcntl=mode) as lock:
            assert lock.held
        assert not lock.held

    def test_mutual_exclusion(self, tmp_path, mode):
        path = tmp_path / ".lock"
        a = FileLock(path, use_fcntl=mode)
        b = FileLock(path, timeout=0.2, poll=0.02, use_fcntl=mode)
        a.acquire()
        with pytest.raises(LockError):
            b.acquire()
        a.release()
        b.acquire()  # now free
        b.release()

    def test_not_reentrant(self, tmp_path, mode):
        lock = FileLock(tmp_path / ".lock", use_fcntl=mode)
        lock.acquire()
        with pytest.raises(LockError, match="re-entrant"):
            lock.acquire()
        lock.release()

    def test_release_is_idempotent(self, tmp_path, mode):
        lock = FileLock(tmp_path / ".lock", use_fcntl=mode)
        lock.acquire()
        lock.release()
        lock.release()

    def test_records_holder_pid(self, tmp_path, mode):
        path = tmp_path / ".lock"
        with FileLock(path, use_fcntl=mode):
            pid_s = path.read_text().split(":", 1)[0]
            assert int(pid_s) == os.getpid()

    def test_timeout_counter(self, tmp_path, mode):
        obs.enable(reset=True)
        path = tmp_path / ".lock"
        with FileLock(path, use_fcntl=mode):
            with pytest.raises(LockError):
                FileLock(path, timeout=0.1, poll=0.02,
                         use_fcntl=mode).acquire()
        assert obs.collector().metrics.counter("lock.timeouts").value == 1


class TestStaleBreaking:
    def test_dead_pid_is_broken(self, tmp_path):
        path = tmp_path / ".lock"
        # A plausibly-dead pid: fork a child that exits immediately.
        proc = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True)
        dead_pid = int(proc.stdout.strip())
        path.write_text(f"{dead_pid}:{time.time():.3f}\n")
        lock = FileLock(path, timeout=2.0, poll=0.02, use_fcntl=False)
        lock.acquire()  # stale lock broken, not a timeout
        assert lock.held
        lock.release()

    def test_old_timestamp_is_broken(self, tmp_path):
        path = tmp_path / ".lock"
        # Live pid (ours) but ancient stamp: age-based break.
        path.write_text(f"{os.getpid()}:{time.time() - 9999:.3f}\n")
        lock = FileLock(path, timeout=2.0, poll=0.02,
                        stale_after=300.0, use_fcntl=False)
        lock.acquire()
        lock.release()

    def test_live_fresh_lock_is_respected(self, tmp_path):
        path = tmp_path / ".lock"
        path.write_text(f"{os.getpid()}:{time.time():.3f}\n")
        lock = FileLock(path, timeout=0.15, poll=0.02,
                        use_fcntl=False)
        with pytest.raises(LockError):
            lock.acquire()

    def test_garbage_lock_file_is_broken_by_dead_pid_rule(self, tmp_path):
        path = tmp_path / ".lock"
        path.write_text("not-a-pid\n")
        lock = FileLock(path, timeout=2.0, poll=0.02, use_fcntl=False)
        lock.acquire()
        lock.release()


class TestCrossProcess:
    def test_flock_excludes_other_process(self, tmp_path):
        """A real second process cannot acquire while we hold."""
        path = tmp_path / ".lock"
        holder = FileLock(path).acquire()
        code = (
            "import sys; sys.path.insert(0, %r)\n"
            "from repro.errors import LockError\n"
            "from repro.util.locking import FileLock\n"
            "try:\n"
            "    FileLock(%r, timeout=0.3, poll=0.02).acquire()\n"
            "except LockError:\n"
            "    sys.exit(42)\n"
            "sys.exit(0)\n"
        ) % (SRC, str(path))
        proc = subprocess.run([sys.executable, "-c", code])
        assert proc.returncode == 42
        holder.release()
        proc = subprocess.run([sys.executable, "-c", code])
        assert proc.returncode == 0


class TestStoreLockDegradation:
    def test_put_degrades_on_lock_timeout(self, tmp_path):
        from repro.pipeline.store import ResultStore, result_key

        store = ResultStore(tmp_path, lock_timeout=0.15)
        key = result_key("p", "comp", 4, "m")
        with store._lock():
            store.put(key, {"v": 1})  # cannot get the lock
        assert store.stats.lock_timeouts == 1
        assert store.stats.errors == 1
        assert store.get(key) is None  # write was skipped, not torn
        store.put(key, {"v": 1})  # lock free again
        assert store.get(key) == {"v": 1}
