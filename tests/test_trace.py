"""Tests for vectorized iteration enumeration and trace generation."""

import numpy as np
import pytest

from repro.apps import lu, simple, stencil5
from repro.codegen.spmd import Scheme
from repro.compiler import compile_program
from repro.machine.trace import (
    AddressSpace,
    enumerate_iterations,
    phase_trace,
    program_traces,
)


class TestEnumerate:
    def test_rectangular_matches_iterate(self, figure1_program):
        nest = figure1_program.nest("add")
        cols, n = enumerate_iterations(nest, figure1_program.params)
        envs = list(nest.iterate(figure1_program.params))
        assert n == len(envs)
        for t, env in enumerate(envs):
            for v in nest.loop_vars:
                assert cols[v][t] == env[v]

    def test_triangular_matches_iterate(self, lu_program):
        nest = lu_program.nests[0]
        cols, n = enumerate_iterations(nest, lu_program.params)
        envs = list(nest.iterate(lu_program.params))
        assert n == len(envs)
        for t, env in enumerate(envs):
            for v in nest.loop_vars:
                assert cols[v][t] == env[v]

    def test_partial_depth(self, lu_program):
        nest = lu_program.nests[0]
        cols, n = enumerate_iterations(nest, lu_program.params, depth=2)
        n_expected = sum(1 for _ in nest.iterate(lu_program.params))
        # depth-2 enumeration is the (I1, I2) prefix space
        n2 = 0
        seen = set()
        for env in nest.iterate(lu_program.params):
            seen.add((env["I1"], env["I2"]))
        assert n == len(seen)

    def test_empty_range(self):
        from repro.ir.builder import ProgramBuilder

        pb = ProgramBuilder("t", params={})
        a = pb.array("A", (4,))
        (i,) = pb.vars("I")
        nest = pb.nest("n", [("I", 2, 1)], [pb.assign(a(i), [a(i)], None)])
        cols, n = enumerate_iterations(nest, {})
        assert n == 0


class TestAddressSpace:
    def test_page_aligned_bases(self, figure1_program):
        spmd = compile_program(figure1_program, Scheme.BASE, 2)
        space = AddressSpace.build(spmd.transformed, 2, page_bytes=256)
        for base in space.bases.values():
            assert base % 256 == 0

    def test_replicated_per_proc_copies(self):
        from repro.apps import erlebacher

        prog = erlebacher.build(6, time_steps=2)
        spmd = compile_program(prog, Scheme.COMP_DECOMP, 4)
        space = AddressSpace.build(spmd.transformed, 4, page_bytes=256)
        assert "U" in space.replicated_stride
        stride = space.replicated_stride["U"]
        assert stride >= spmd.transformed["U"].nbytes

    def test_no_overlap(self, figure1_program):
        spmd = compile_program(figure1_program, Scheme.BASE, 2)
        space = AddressSpace.build(spmd.transformed, 2, page_bytes=64)
        ranges = []
        for name, ta in spmd.transformed.items():
            ranges.append((space.bases[name],
                           space.bases[name] + ta.nbytes))
        ranges.sort()
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 <= b0


class TestPhaseTrace:
    def test_addresses_match_layout(self, figure1_program):
        """Every traced address must equal base + element_size * the
        layout's linearization of the reference's indices."""
        spmd = compile_program(figure1_program, Scheme.COMP_DECOMP_DATA, 4)
        space, traces = program_traces(spmd)
        t = traces[1]  # relax
        nest = spmd.phases[1].nest
        # reconstruct expected addresses serially
        expected = []
        for env in nest.iterate(figure1_program.params):
            st = nest.body[0]
            for ref in list(st.reads) + [st.write]:
                ta = spmd.transformed[ref.array.name]
                idx = ref.index_at(env)
                expected.append(
                    space.bases[ref.array.name]
                    + ta.layout.linearize(idx) * ta.decl.element_size
                )
        assert len(expected) == t.n_accesses
        assert sorted(expected) == sorted(t.addr.tolist())

    def test_program_order_keys_sorted(self, figure1_program):
        spmd = compile_program(figure1_program, Scheme.BASE, 4)
        _, traces = program_traces(spmd)
        for t in traces:
            assert (np.diff(t.key) >= 0).all()

    def test_reads_precede_write_within_statement(self, figure1_program):
        spmd = compile_program(figure1_program, Scheme.BASE, 1)
        _, traces = program_traces(spmd)
        t = traces[1]
        # per group of 4 accesses (3 reads + 1 write) the write is last
        writes = t.write.reshape(-1, 4)
        assert (writes[:, :3] == False).all()  # noqa: E712
        assert (writes[:, 3] == True).all()  # noqa: E712

    def test_write_flags_counts(self, figure1_program):
        spmd = compile_program(figure1_program, Scheme.BASE, 2)
        _, traces = program_traces(spmd)
        n = figure1_program.params["N"]
        add = traces[0]
        assert int(add.write.sum()) == n * n
        assert add.n_accesses == 3 * n * n

    def test_imperfect_nest_counts(self, lu_program):
        spmd = compile_program(lu_program, Scheme.BASE, 2)
        _, traces = program_traces(spmd)
        t = traces[0]
        n = lu_program.params["N"]
        s1_insts = n * (n - 1) // 2
        s2_insts = sum(
            (n - 1 - i1) ** 2 for i1 in range(n)
        )
        assert t.n_accesses == 3 * s1_insts + 4 * s2_insts

    def test_replicated_addresses_disjoint_per_proc(self):
        from repro.apps import erlebacher

        prog = erlebacher.build(6, time_steps=2)
        spmd = compile_program(prog, Scheme.COMP_DECOMP, 4)
        space, traces = program_traces(spmd)
        ubase = space.bases["U"]
        stride = space.replicated_stride["U"]
        for t in traces:
            mask = (t.addr >= ubase) & (t.addr < ubase + 4 * stride)
            if not mask.any():
                continue
            copy_idx = (t.addr[mask] - ubase) // stride
            assert np.array_equal(copy_idx, t.proc[mask])
