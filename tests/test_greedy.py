"""Tests for the greedy whole-program decomposition — including the
reproduction of every Table 1 data decomposition."""

import pytest

from repro.apps import (
    adi,
    erlebacher,
    lu,
    simple,
    stencil5,
    swm,
    tomcatv,
    vpenta,
)
from repro.compiler import restructure_program
from repro.decomp.greedy import decompose_program
from repro.decomp.hpf import distribute_string
from repro.util.intlinalg import mat_mul


def dist(prog, nprocs=8):
    d = decompose_program(restructure_program(prog), nprocs)
    out = {}
    for name in prog.arrays:
        dd = d.data_for(name)
        out[name] = (
            "REPLICATED"
            if dd is not None and dd.replicated
            else distribute_string(dd, d.foldings)
            if dd is not None
            else None
        )
    return d, out


class TestTable1:
    """The 'Data Decompositions' column of Table 1, program by program."""

    def test_simple_figure1(self):
        d, dd = dist(simple.build(16, time_steps=2))
        assert dd["A"] == "(BLOCK, *)"
        assert dd["B"] == "(BLOCK, *)"
        assert dd["C"] == "(BLOCK, *)"

    def test_vpenta(self):
        d, dd = dist(vpenta.build(12))
        assert dd["F"] == "(*, BLOCK, *)"
        assert dd["A"] == "(*, BLOCK)"
        assert dd["X"] == "(*, BLOCK)"

    def test_lu(self):
        d, dd = dist(lu.build(10))
        assert dd["A"] == "(*, CYCLIC)"
        assert d.is_pipelined("lu")

    def test_stencil(self):
        d, dd = dist(stencil5.build(12, time_steps=2))
        assert dd["A"] == "(BLOCK, BLOCK)"
        assert dd["B"] == "(BLOCK, BLOCK)"
        assert d.rank == 2

    def test_adi(self):
        d, dd = dist(adi.build(10, time_steps=2))
        assert dd["X"] == "(*, BLOCK)"
        assert dd["A"] == "(*, BLOCK)"
        assert dd["B"] == "(*, BLOCK)"
        assert d.is_pipelined("rowsweep")
        assert not d.is_pipelined("colsweep")

    def test_erlebacher(self):
        d, dd = dist(erlebacher.build(6, time_steps=2))
        assert dd["DUX"] == "(*, *, BLOCK)"
        assert dd["DUY"] == "(*, *, BLOCK)"
        assert dd["DUZ"] == "(*, BLOCK, *)"
        assert dd["U"] == "REPLICATED"
        assert d.rank == 1

    def test_swm(self):
        d, dd = dist(swm.build(12, time_steps=2))
        assert dd["P"] == "(BLOCK, BLOCK)"
        assert d.rank == 2

    def test_tomcatv(self):
        d, dd = dist(tomcatv.build(12, time_steps=2))
        assert dd["AA"] == "(BLOCK, *)"
        assert dd["X"] == "(BLOCK, *)"


class TestInvariants:
    def test_equation1_holds_where_strict(self):
        """For non-pipelined nests the final decomposition must satisfy
        D @ F == C on the linear parts of every write reference."""
        prog = restructure_program(stencil5.build(12, time_steps=2))
        d = decompose_program(prog, 8)
        for nest in prog.nests:
            for s, st in enumerate(nest.body):
                cd = d.comp_for(nest.name, s)
                assert cd is not None
                depth = st.depth if st.depth is not None else nest.depth
                af = st.write.access_function(nest.loop_vars[:depth])
                ddx = d.data_for(st.write.array.name)
                got = mat_mul(ddx.matrix, [list(r) for r in af.matrix])
                assert got == [row[:depth] for row in cd.matrix]

    def test_folding_cyclic_only_for_triangular(self):
        from repro.decomp.model import FoldKind

        d_lu, _ = dist(lu.build(10))
        assert d_lu.foldings[0].kind is FoldKind.CYCLIC
        d_st, _ = dist(stencil5.build(12, time_steps=2))
        assert all(f.kind is FoldKind.BLOCK for f in d_st.foldings)

    def test_notes_record_relaxations(self):
        d, _ = dist(lu.build(10))
        assert any("pipeline" in n for n in d.notes)

    def test_rank_independent_of_procs(self):
        p1 = restructure_program(adi.build(10, time_steps=2))
        d4 = decompose_program(p1, 4)
        d16 = decompose_program(p1, 16)
        assert d4.rank == d16.rank
        assert {k: v.matrix for k, v in d4.data.items()} == {
            k: v.matrix for k, v in d16.data.items()
        }

    def test_no_nest_excluded_in_suite(self):
        for mod, kwargs in [
            (simple, dict(n=12, time_steps=2)),
            (lu, dict(n=8)),
            (adi, dict(n=8, time_steps=2)),
            (stencil5, dict(n=10, time_steps=2)),
            (tomcatv, dict(n=10, time_steps=2)),
        ]:
            d = decompose_program(restructure_program(mod.build(**kwargs)), 4)
            assert d.excluded_nests == []

    def test_serial_nest_excluded(self):
        """A nest with no parallelism anywhere ends up excluded."""
        from repro.ir.builder import ProgramBuilder

        pb = ProgramBuilder("serial", params={})
        a = pb.array("A", (16, 16))
        i, j = pb.vars("I", "J")
        pb.nest("chain", [("I", 1, 14), ("J", 1, 14)],
                [pb.assign(a(i, j), [a(i - 1, j), a(i, j - 1), a(i - 1, j - 1)],
                           None)])
        d = decompose_program(pb.build(), 4)
        # both loop directions carry dependences and even a pipeline needs
        # one parallel direction through owner-computes; rank may be >= 1
        # via pipelining, but if not, the nest must be excluded rather
        # than silently serialized.
        if d.rank == 0:
            assert "chain" in d.excluded_nests
        else:
            assert d.comp_for("chain", 0) is not None
