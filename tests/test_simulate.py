"""Tests for the whole-program simulation driver."""

import numpy as np
import pytest

from repro.apps import simple
from repro.codegen.spmd import Scheme
from repro.compiler import compile_program
from repro.machine import scaled_dash
from repro.machine.simulate import simulate, simulate_scheme, speedup_curve


@pytest.fixture(scope="module")
def prog():
    return simple.build(n=32, time_steps=3)


def machine(p):
    return scaled_dash(p, scale=32, word_bytes=4)


class TestSimulate:
    def test_uniprocessor_schemes_agree(self, prog):
        """At P=1 all three configurations execute identical access
        streams, so their times must match exactly."""
        times = []
        for scheme in (Scheme.BASE, Scheme.COMP_DECOMP,
                       Scheme.COMP_DECOMP_DATA):
            spmd = compile_program(prog, scheme, 1)
            times.append(simulate(spmd, machine(1)).total_time)
        assert times[0] == pytest.approx(times[1])
        assert times[0] == pytest.approx(times[2])

    def test_positive_time_and_counts(self, prog):
        res = simulate(compile_program(prog, Scheme.BASE, 4), machine(4))
        assert res.total_time > 0
        assert res.n_accesses == prog.total_iterations() * 0 + res.n_accesses
        assert set(res.miss_breakdown) == {
            "cold", "replacement", "true_sharing", "false_sharing",
            "upgrade", "l2_hits", "remote", "local_miss",
        }

    def test_rounds(self, prog):
        res = simulate(compile_program(prog, Scheme.BASE, 2), machine(2))
        cold_round, steady_round = res.round_times
        assert cold_round >= steady_round  # warm caches help
        expected = cold_round + (prog.time_steps - 1) * steady_round
        assert res.total_time == pytest.approx(expected)

    def test_single_time_step_single_round(self):
        p1 = simple.build(n=16, time_steps=1)
        res = simulate(compile_program(p1, Scheme.BASE, 2), machine(2))
        assert res.round_times[0] == pytest.approx(res.round_times[1])

    def test_no_remote_misses_on_one_cluster(self, prog):
        """With <= cluster_size processors everything is one cluster, so
        no miss can be remote."""
        res = simulate(compile_program(prog, Scheme.BASE, 4), machine(4))
        assert res.miss_breakdown["remote"] == 0

    def test_phase_costs_cover_nests(self, prog):
        res = simulate(compile_program(prog, Scheme.BASE, 4), machine(4))
        assert [pc.nest_name for pc in res.phase_costs] == ["add", "relax"]

    def test_summary_text(self, prog):
        res = simulate(compile_program(prog, Scheme.BASE, 4), machine(4))
        assert "base" in res.summary()
        assert "P=4" in res.summary()

    def test_simulate_scheme_shortcut(self, prog):
        res = simulate_scheme(prog, Scheme.COMP_DECOMP, machine(4))
        assert res.scheme == Scheme.COMP_DECOMP.value


class TestSpeedupCurve:
    def test_baseline_normalized(self, prog):
        curves = speedup_curve(prog, [Scheme.BASE], machine, [1, 2])
        series = curves[Scheme.BASE.value]
        assert series[0] == (1, pytest.approx(1.0))
        assert series[1][1] > 1.0

    def test_all_schemes_present(self, prog):
        curves = speedup_curve(
            prog,
            [Scheme.BASE, Scheme.COMP_DECOMP, Scheme.COMP_DECOMP_DATA],
            machine,
            [1, 4],
        )
        assert len(curves) == 3
        for series in curves.values():
            assert [p for p, _ in series] == [1, 4]

    def test_zero_time_scheme_falls_back_to_neutral_speedup(self):
        """A scheme whose simulated time is zero (empty access trace)
        must report the neutral speedup 1.0, not 0.0, and log an
        observability event."""
        from repro import obs
        from repro.ir.program import Program

        empty = Program(name="empty", arrays={}, nests=[], params={},
                        time_steps=1)
        obs.enable(reset=True)
        try:
            curves = speedup_curve(empty, [Scheme.BASE], machine, [1, 2])
            assert curves[Scheme.BASE.value] == [(1, 1.0), (2, 1.0)]
            assert any(e.name == "sim.zero_time"
                       for e in obs.collector().events)
        finally:
            obs.disable()
            obs.reset()

    def test_figure1_ordering_at_scale(self, prog):
        """The Figure-1 qualitative result: with data transformation the
        program is at least as fast as comp-decomp alone at high P."""
        curves = speedup_curve(
            prog,
            [Scheme.COMP_DECOMP, Scheme.COMP_DECOMP_DATA],
            machine,
            [8],
        )
        cd = curves[Scheme.COMP_DECOMP.value][0][1]
        cdd = curves[Scheme.COMP_DECOMP_DATA.value][0][1]
        assert cdd >= cd * 0.95
