"""Tests for the layout algebra, including the paper's Figure 2/3 data."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datatrans.layout import DimAtom, Layout
from repro.datatrans.primitives import index_table, permute, strip_mine, transpose


class TestDimAtom:
    def test_value(self):
        a = DimAtom(src=0, extent=4, div=3, mod=4)
        assert a.value(13) == (13 // 3) % 4

    def test_value_no_mod(self):
        a = DimAtom(src=0, extent=4, div=3)
        assert a.value(13) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            DimAtom(src=0, extent=0)
        with pytest.raises(ValueError):
            DimAtom(src=0, extent=4, div=0)
        with pytest.raises(ValueError):
            DimAtom(src=0, extent=4, mod=0)

    def test_vectorized_matches_scalar(self):
        a = DimAtom(src=0, extent=4, div=3, mod=4)
        xs = np.arange(50)
        vec = a.value_vec(xs)
        for x in xs:
            assert vec[x] == a.value(int(x))


class TestIdentityLayout:
    def test_matches_column_major(self):
        lay = Layout.identity((4, 6))
        from repro.ir.arrays import ArrayDecl

        decl = ArrayDecl("A", (4, 6))
        for i in range(4):
            for j in range(6):
                assert lay.linearize((i, j)) == decl.linearize((i, j))

    def test_shape(self):
        lay = Layout.identity((4, 6))
        assert lay.dims == (4, 6)
        assert lay.size == 24
        assert lay.strides() == (1, 4)
        assert lay.is_bijective()

    def test_bounds_check(self):
        lay = Layout.identity((4,))
        with pytest.raises(IndexError):
            lay.map_index((4,))
        with pytest.raises(ValueError):
            lay.map_index((1, 2))


class TestFigure2:
    """Section 4.1's 12-element example: strip size 3, then transpose."""

    def test_strip_mining_preserves_addresses(self):
        lay = strip_mine(Layout.identity((12,)), 0, 3)
        for x in range(12):
            assert lay.linearize((x,)) == x
        assert lay.dims == (3, 4)

    def test_strip_mined_indices(self):
        lay = strip_mine(Layout.identity((12,)), 0, 3)
        assert lay.map_index((7,)) == (7 % 3, 7 // 3)

    def test_transpose_makes_strided_contiguous(self):
        lay = transpose(strip_mine(Layout.identity((12,)), 0, 3))
        # elements 0,3,6,9 (every 3rd) become contiguous
        addrs = [lay.linearize((x,)) for x in (0, 3, 6, 9)]
        assert addrs == [0, 1, 2, 3]

    def test_padding_bound(self):
        # total size < d + strip (Section 4.3)
        lay = strip_mine(Layout.identity((10,)), 0, 3)
        assert 10 <= lay.size < 10 + 3


class TestFigure3:
    """The 8x4 array with P=2 under the three distributions."""

    def _derive(self, text):
        from repro.datatrans.transform import derive_layout
        from repro.decomp.hpf import parse_distribute
        from repro.ir.arrays import ArrayDecl

        dd, folds = parse_distribute(text, "A", 2)
        return derive_layout(ArrayDecl("A", (8, 4)), dd, folds, grid=[2])

    def test_block(self):
        ta = self._derive("(BLOCK,*)")
        assert ta.layout.dims == (4, 4, 2)
        assert ta.layout.map_index((4, 0)) == (0, 0, 1)
        assert ta.layout.linearize((4, 0)) == 16
        assert ta.layout.map_index((3, 3)) == (3, 3, 0)
        assert ta.layout.linearize((3, 3)) == 15

    def test_cyclic(self):
        ta = self._derive("(CYCLIC,*)")
        assert ta.layout.dims == (4, 4, 2)
        assert ta.layout.map_index((1, 0)) == (0, 0, 1)
        assert ta.layout.linearize((1, 0)) == 16
        assert ta.layout.map_index((2, 0)) == (1, 0, 0)

    def test_block_cyclic(self):
        ta = self._derive("(CYCLIC(2),*)")
        assert ta.layout.dims == (2, 2, 4, 2)
        # (i1 mod b, i1 div (b P), i2, (i1 div b) mod P)
        assert ta.layout.map_index((5, 1)) == (1, 1, 1, 0)

    @pytest.mark.parametrize("text", ["(BLOCK,*)", "(CYCLIC,*)", "(CYCLIC(2),*)"])
    def test_owner_data_contiguous(self, text):
        ta = self._derive(text)
        per_owner = {}
        for i in range(8):
            for j in range(4):
                o = ta.owner_coords((i, j))
                per_owner.setdefault(o, []).append(
                    ta.layout.linearize((i, j))
                )
        for o, addrs in per_owner.items():
            s = sorted(addrs)
            assert s[-1] - s[0] == len(s) - 1, (text, o, s)

    def test_index_table_is_figure_shaped(self):
        ta = self._derive("(BLOCK,*)")
        table = index_table(ta.layout)
        assert len(table) == 32
        assert table[0] == ((0, 0), (0, 0, 0), 0)
        # column-major enumeration: second entry is (1, 0)
        assert table[1][0] == (1, 0)


class TestRoundTrip:
    @given(st.integers(2, 5), st.integers(2, 5), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_unmap_inverts_map(self, d1, d2, strip):
        lay = strip_mine(Layout.identity((d1 * strip, d2)), 0, strip)
        lay = permute(lay, [1, 2, 0])
        for i in range(d1 * strip):
            for j in range(d2):
                assert lay.unmap_index(lay.map_index((i, j))) == (i, j)

    @given(st.integers(2, 12), st.integers(1, 6))
    @settings(max_examples=80, deadline=None)
    def test_strip_mine_address_noop(self, d, b):
        lay = strip_mine(Layout.identity((d,)), 0, b)
        for x in range(d):
            assert lay.linearize((x,)) == x

    @given(st.integers(2, 8), st.integers(2, 4), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_bijectivity_after_strip_and_permute(self, d1, d2, b):
        lay = strip_mine(Layout.identity((d1, d2)), 0, b)
        lay = permute(lay, list(range(lay.rank))[::-1])
        assert lay.is_bijective()
        addrs = set()
        for i in range(d1):
            for j in range(d2):
                a = lay.linearize((i, j))
                assert a not in addrs
                addrs.add(a)

    def test_vectorized_linearize(self):
        lay = transpose(strip_mine(Layout.identity((12, 3)), 0, 4))
        i = np.repeat(np.arange(12), 3)
        j = np.tile(np.arange(3), 12)
        vec = lay.linearize_vec([i, j])
        for k in range(len(i)):
            assert vec[k] == lay.linearize((int(i[k]), int(j[k])))


class TestPrimitivesErrors:
    def test_permute_rejects_non_permutation(self):
        lay = Layout.identity((4, 4))
        with pytest.raises(ValueError):
            permute(lay, [0, 0])

    def test_strip_rejects_bad_strip(self):
        lay = Layout.identity((12,))
        with pytest.raises(ValueError):
            strip_mine(lay, 0, 0)

    def test_strip_rejects_nondividing_mod(self):
        lay = strip_mine(Layout.identity((12,)), 0, 4)
        # inner atom has mod 4; strip by 3 does not divide it
        with pytest.raises(ValueError):
            strip_mine(lay, 0, 3)

    def test_strip_of_stripped_outer_ok(self):
        lay = strip_mine(Layout.identity((16,)), 0, 4)
        lay2 = strip_mine(lay, 1, 2)  # strip the outer part
        for x in range(16):
            assert lay2.linearize((x,)) == x
