"""The persistent result store: keys, lookup, invalidation, eviction,
durability, and the machine fingerprint it keys on."""

import json
import os

import pytest

from repro.machine.cache import CacheConfig
from repro.machine.cost import CostParams
from repro.machine.dash import dash_machine, scaled_dash
from repro.pipeline.store import (
    MODEL_VERSION,
    QUARANTINE_KEEP,
    ResultStore,
    payload_checksum,
    resolve_store_dir,
    result_key,
)


# -- machine fingerprint (what the keys hang off) ----------------------------

class TestDashFingerprint:
    def test_stable_across_instances(self):
        a = scaled_dash(4, scale=16)
        b = scaled_dash(4, scale=16)
        assert a.fingerprint() == b.fingerprint()

    def test_is_sha256_hex(self):
        fp = scaled_dash(2, scale=16).fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # hex digest

    @pytest.mark.parametrize("mutate", [
        lambda m: m.with_procs(8),
        lambda m: m.with_l2(),
        lambda m: scaled_dash(4, scale=32),
        lambda m: scaled_dash(4, scale=16, line_bytes=32),
        lambda m: scaled_dash(4, scale=16, word_bytes=4),
        lambda m: scaled_dash(4, scale=16, page_bytes=512),
        lambda m: scaled_dash(4, scale=16,
                              cost=CostParams(remote_miss=200.0)),
    ])
    def test_sensitive_to_every_knob(self, mutate):
        base = scaled_dash(4, scale=16)
        assert mutate(base).fingerprint() != base.fingerprint()

    def test_l2_geometry_covered(self):
        a = dash_machine(4)
        b = a.with_l2(size_bytes=2 * a.l2.size_bytes)
        assert a.fingerprint() != b.fingerprint()

    def test_nested_config_equality(self):
        # Same geometry through different construction paths.
        a = dash_machine(8)
        b = dash_machine(32).with_procs(8)
        assert a.fingerprint() == b.fingerprint()


# -- key schema --------------------------------------------------------------

class TestResultKey:
    def test_deterministic(self):
        k1 = result_key("pfp", "comp", 4, "mfp")
        k2 = result_key("pfp", "comp", 4, "mfp")
        assert k1 == k2
        assert len(k1) == 64

    @pytest.mark.parametrize("kwargs", [
        dict(program_fp="other"),
        dict(scheme="data"),
        dict(nprocs=8),
        dict(machine_fp="other"),
        dict(model_version="sim-v999"),
        dict(kind="verify"),
    ])
    def test_every_component_matters(self, kwargs):
        base = dict(program_fp="pfp", scheme="comp", nprocs=4,
                    machine_fp="mfp")
        assert result_key(**base) != result_key(**{**base, **kwargs})

    def test_extras_change_key(self):
        assert (result_key("p", "comp", 4, "m", locality=True)
                != result_key("p", "comp", 4, "m", locality=False))

    def test_model_version_default(self):
        assert result_key("p", "comp", 4, "m") == result_key(
            "p", "comp", 4, "m", model_version=MODEL_VERSION)


# -- directory resolution ----------------------------------------------------

class TestResolveStoreDir:
    def test_explicit_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env"))
        assert resolve_store_dir(str(tmp_path / "x")) == tmp_path / "x"

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env"))
        assert resolve_store_dir() == tmp_path / "env"

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        assert str(resolve_store_dir()).endswith(
            os.path.join(".cache", "repro", "results"))


# -- store behaviour ---------------------------------------------------------

class TestResultStore:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("p", "comp", 4, "m")
        assert store.get(key) is None
        store.put(key, {"total_time": 1.5}, coord="sim:x")
        assert store.get(key) == {"total_time": 1.5}
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.stores == 1

    def test_persists_across_instances(self, tmp_path):
        key = result_key("p", "comp", 4, "m")
        ResultStore(tmp_path).put(key, {"v": 7})
        assert ResultStore(tmp_path).get(key) == {"v": 7}

    def test_same_coord_new_key_invalidates(self, tmp_path):
        store = ResultStore(tmp_path)
        k_old = result_key("prog-v1", "comp", 4, "m")
        k_new = result_key("prog-v2", "comp", 4, "m")
        store.put(k_old, {"v": 1}, coord="sim:simple/comp/P4")
        store.put(k_new, {"v": 2}, coord="sim:simple/comp/P4")
        assert store.stats.invalidations == 1
        # The stale entry is deleted, not just shadowed.
        assert store.get(k_old) is None
        assert store.get(k_new) == {"v": 2}
        assert len(store) == 1

    def test_same_coord_same_key_no_invalidation(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("p", "comp", 4, "m")
        store.put(key, {"v": 1}, coord="c")
        store.put(key, {"v": 1}, coord="c")
        assert store.stats.invalidations == 0

    def test_different_coords_coexist(self, tmp_path):
        store = ResultStore(tmp_path)
        k1 = result_key("p", "comp", 4, "m")
        k2 = result_key("p", "comp", 8, "m")
        store.put(k1, {"v": 1}, coord="c1")
        store.put(k2, {"v": 2}, coord="c2")
        assert store.stats.invalidations == 0
        assert len(store) == 2

    def test_eviction_caps_entries(self, tmp_path):
        store = ResultStore(tmp_path, keep=3)
        keys = [result_key("p", "comp", n, "m") for n in range(1, 7)]
        for i, k in enumerate(keys):
            store.put(k, {"v": i}, coord=f"c{i}")
            # mtime resolution can be coarse; force distinct ordering.
            os.utime(store._path(k), (i, i))
        assert len(store) == 3
        assert store.stats.evictions == 3
        # Newest survive, oldest are gone.
        assert store.get(keys[-1]) is not None
        assert store.get(keys[0]) is None

    def test_corrupt_entry_is_miss_and_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("p", "comp", 4, "m")
        store.put(key, {"v": 1}, coord="c")
        path = store._path(key)
        path.write_text("{not json")
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert store.stats.quarantined == 1
        # Quarantined for post-mortem, not silently deleted.
        assert not path.exists()
        assert (store._quarantine_dir() / path.name).exists()

    def test_checksum_mismatch_is_corrupt(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("p", "comp", 4, "m")
        store.put(key, {"v": 1})
        path = store._path(key)
        entry = json.loads(path.read_text())
        entry["payload"] = {"v": 2}  # payload no longer matches sha256
        path.write_text(json.dumps(entry))
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert store.stats.quarantined == 1

    def test_entries_carry_verifiable_checksum(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("p", "comp", 4, "m")
        store.put(key, {"v": 1, "nested": {"a": [1, 2]}})
        entry = json.loads(store._path(key).read_text())
        assert entry["sha256"] == payload_checksum(entry["payload"])

    def test_quarantine_is_capped(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = [result_key("p", "comp", n, "m")
                for n in range(1, QUARANTINE_KEEP + 10)]
        for i, k in enumerate(keys):
            store.put(k, {"v": i})
            store._path(k).write_text("{broken")
            assert store.get(k) is None
            qfile = store._quarantine_dir() / f"{k}.json"
            os.utime(qfile, (i, i))
        files = [p for p in store._quarantine_dir().iterdir()
                 if p.is_file()]
        assert len(files) == QUARANTINE_KEEP

    def test_key_mismatch_is_corrupt(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("p", "comp", 4, "m")
        store.put(key, {"v": 1})
        path = store._path(key)
        entry = json.loads(path.read_text())
        entry["key"] = "0" * 64
        path.write_text(json.dumps(entry))
        assert store.get(key) is None
        assert store.stats.corrupt == 1

    def test_corrupt_index_tolerated(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("p", "comp", 4, "m")
        store.put(key, {"v": 1}, coord="c")
        store._index_path().write_text("garbage")
        fresh = ResultStore(tmp_path)
        # Lookup still works; a put rebuilds the index.
        assert fresh.get(key) == {"v": 1}
        fresh.put(result_key("p2", "comp", 4, "m"), {"v": 2}, coord="c2")

    def test_stats_dict_shape(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(result_key("p", "comp", 4, "m"), {"v": 1})
        st = store.stats_dict()
        for field in ("hits", "misses", "stores", "invalidations",
                      "evictions", "corrupt", "errors", "entries",
                      "bytes"):
            assert field in st
        assert st["entries"] == 1
        assert st["bytes"] > 0

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path, keep=0)
