"""Decision provenance: capture, cache replay, explain, and run diffing."""

import json

import pytest

from repro import pipeline
from repro.__main__ import main
from repro.apps import build_app
from repro.codegen.spmd import parse_scheme
from repro.obs import provenance
from repro.obs.bench import run_bench
from repro.pipeline import ArtifactCache, CompileSession


OPT = parse_scheme("opt")


@pytest.fixture(autouse=True)
def _no_ambient_cache(monkeypatch):
    """Keep sessions hermetic: no disk store leaking in from the env."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_CACHE", raising=False)


class TestCollection:
    def test_opt_point_spans_all_stages(self):
        prog = build_app("tomcatv", n=32)
        session = CompileSession()
        _, log = provenance.collect_point(session, prog, OPT, 8)
        stages = set(log.stages())
        assert {"unimodular", "decomposition", "folding", "layout",
                "addropt"} <= stages
        sites = {r.site for r in log}
        assert len(sites) >= 5
        for r in log:
            assert r.chosen
            assert r.reason
            assert r.alternatives

    def test_record_noop_without_capture(self):
        assert not provenance.active()
        assert provenance.record("x", stage="s", subject="a",
                                 chosen="c") is None
        with provenance.capture() as recs:
            assert provenance.active()
            provenance.record("x", stage="s", subject="a", chosen="c",
                              alternatives=["c", "d"], reason="r", k=1)
        assert len(recs) == 1
        assert recs[0].as_dict()["inputs"] == {"k": 1}

    def test_scheme_alias_opt(self):
        from repro.compiler import Scheme

        assert parse_scheme("OPT") is Scheme.COMP_DECOMP_DATA


class TestCacheReplay:
    def _log_json(self, session, prog):
        _, log = provenance.collect_point(session, prog, OPT, 8)
        return log.to_json(), session.manager.counts()

    def test_disk_cache_replays_identical_log(self, tmp_path):
        """A disk-cache-warmed session must replay the decision log
        bit-identically without re-running any pass."""
        prog = build_app("tomcatv", n=32)
        cold = CompileSession(cache=ArtifactCache(disk_dir=tmp_path))
        cold_json, cold_counts = self._log_json(cold, prog)
        assert sum(cold_counts["runs"].values()) > 0

        warm = CompileSession(cache=ArtifactCache(disk_dir=tmp_path))
        warm_json, warm_counts = self._log_json(
            warm, build_app("tomcatv", n=32))
        assert warm_json == cold_json
        assert sum(warm_counts["runs"].values()) == 0
        assert sum(warm_counts["hits"].values()) > 0

    def test_capture_state_does_not_change_cache_keys(self):
        """Whether anyone is listening must not perturb fingerprints:
        a compile inside an outer capture hits the artifacts written by
        one that ran with no capture at all."""
        cache = ArtifactCache()
        first = CompileSession(cache=cache)
        first.compile(build_app("simple", n=12), OPT, 4)
        assert sum(first.manager.counts()["hits"].values()) == 0

        second = CompileSession(cache=cache)
        with provenance.capture():
            second.compile(build_app("simple", n=12), OPT, 4)
        counts = second.manager.counts()
        assert sum(counts["runs"].values()) == 0
        assert sum(counts["hits"].values()) > 0
        assert len(second.last_provenance) == len(first.last_provenance)

    def test_bare_values_unwrap_without_records(self):
        value, records = provenance.unwrap({"plain": "artifact"})
        assert value == {"plain": "artifact"}
        assert records == []


class TestDiff:
    def _snap(self, **kw):
        return run_bench(apps=["simple"], schemes=[OPT], procs=[4],
                         n=12, repeats=1, **kw)

    def test_identical_runs(self):
        snap = self._snap()
        assert snap["points"][0]["provenance"]
        diff = provenance.diff_runs(snap, snap)
        assert diff.identical
        assert not diff.significant
        assert diff.n_compared == 1

    def test_forced_layout_change_is_attributed(self, monkeypatch,
                                                tmp_path, capsys):
        """Two runs differing only in one forced layout decision: the
        diff must blame that decision and the CLI must exit nonzero."""
        snap_a = self._snap()

        import repro.codegen.spmd as spmdmod
        from repro.datatrans.transform import identity_transform

        def forced(decl, *args, **kwargs):
            provenance.record(
                "datatrans.layout", stage="layout", subject=decl.name,
                chosen="identity",
                alternatives=["identity", "strip-mine+permute"],
                reason="forced identity (test)",
            )
            return identity_transform(decl)

        monkeypatch.setattr(spmdmod, "derive_layout", forced)
        snap_b = self._snap()
        monkeypatch.undo()

        diff = provenance.diff_runs(snap_a, snap_b)
        assert diff.significant
        point = diff.points[0]
        assert point.culprit is not None
        assert point.culprit["stage"] == "layout"
        assert point.culprit["chosen"] == "identity"
        assert point.culprit_was["chosen"] == "strip-mine+permute"

        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(snap_a))
        b.write_text(json.dumps(snap_b))
        assert main(["diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "culprit" in out
        assert "datatrans.layout" in out
        assert "DIVERGED" in out

    def test_diff_cli_identical_exits_zero(self, tmp_path, capsys):
        snap = self._snap()
        a = tmp_path / "a.json"
        a.write_text(json.dumps(snap))
        assert main(["diff", str(a), str(a)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_cli_json(self, tmp_path, capsys):
        snap = self._snap()
        a = tmp_path / "a.json"
        a.write_text(json.dumps(snap))
        assert main(["diff", str(a), str(a), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["identical"] is True

    def test_missing_provenance_fails_soft(self):
        """Pre-provenance snapshots (e.g. the committed baseline) diff
        without attribution rather than crashing."""
        snap = self._snap()
        legacy = json.loads(json.dumps(snap))
        for p in legacy["points"]:
            p.pop("provenance", None)
            p["sim"]["total_time"] += 1.0
        diff = provenance.diff_runs(legacy, snap)
        assert diff.significant
        assert diff.points[0].culprit is None
        assert "provenance" in diff.points[0].note

    def test_machine_fp_recorded_in_bench_points(self):
        snap = self._snap()
        fp = snap["points"][0]["machine_fp"]
        assert len(fp) == 64
        # Not inside "sim": the exact-match gate must never see it.
        assert "machine_fp" not in snap["points"][0]["sim"]

    def test_machine_config_change_is_attributed(self):
        """When the two runs disagree on the machine fingerprint, the
        divergence is blamed on the machine config, not a compiler
        decision."""
        snap_a = self._snap()
        snap_b = json.loads(json.dumps(snap_a))
        for p in snap_b["points"]:
            p["machine_fp"] = "f" * 64
            p["sim"]["total_time"] *= 2.0
        diff = provenance.diff_runs(snap_a, snap_b)
        assert diff.significant
        point = diff.points[0]
        assert point.culprit is None
        assert "machine fingerprint differs" in point.note
        assert "machine-config change" in point.note

    def test_wall_only_delta_is_noise(self):
        snap = self._snap()
        jittered = json.loads(json.dumps(snap))
        for p in jittered["points"]:
            p["wall"] = {
                k: (v * 1.5 if isinstance(v, (int, float)) else v)
                for k, v in p["wall"].items()
            }
        diff = provenance.diff_runs(snap, jittered)
        assert not diff.identical
        assert not diff.significant  # wall deltas never gate


class TestExplainCli:
    def test_explain_text(self, capsys):
        assert main(["explain", "tomcatv", "--scheme", "OPT",
                     "--procs", "8"]) == 0
        out = capsys.readouterr().out
        for stage in ("[unimodular]", "[decomposition]", "[folding]",
                      "[layout]", "[addropt]"):
            assert stage in out
        assert "alternatives:" in out

    def test_explain_json(self, capsys):
        assert main(["explain", "simple", "--scheme", "opt",
                     "--procs", "4", "--n", "12", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["app"] == "simple"
        assert payload["n_decisions"] == len(payload["decisions"])
        assert payload["n_decisions"] > 0
        assert set(payload["stages"]) >= {"unimodular", "layout"}

    def test_explain_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["explain", "nosuchapp"])


class TestTraceDeterminism:
    def test_tied_timestamps_sort_by_name(self):
        """Events sharing a timestamp appear name-sorted, so the trace
        is byte-stable regardless of dict insertion order."""
        from repro.obs.export import lane_trace_events

        def state(counter_order):
            return {
                "t0": 0.0,
                "spans": [{
                    "name": "pass.layout", "cat": "pipeline",
                    "start": 0.0, "end": 1.0, "attrs": {},
                    "counters": {k: 1 for k in counter_order},
                }],
                "events": [],
                "metrics": {"counters": {}, "gauges": {},
                            "histograms": {}},
            }

        a = lane_trace_events(state(["b", "a", "c"]), pid=0, t0=0.0)
        b = lane_trace_events(state(["c", "b", "a"]), pid=0, t0=0.0)
        assert json.dumps(a) == json.dumps(b)
        names = [e["name"] for e in a if e["ph"] == "C"]
        assert names == sorted(names)

    def test_merged_metrics_name_sorted(self):
        from repro import obs
        from repro.obs.agg import MergedTrace, snapshot

        obs.enable(reset=True)
        obs.inc("zeta", 1)
        obs.inc("alpha", 2)
        merged = MergedTrace(snapshot())
        metrics = merged.merged_metrics()
        obs.disable()
        keys = list(metrics["counters"])
        assert keys == sorted(keys)
