"""Unit and property tests for the exact integer linear algebra."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.intlinalg import (
    column_hermite_normal_form,
    copy_matrix,
    determinant,
    hermite_normal_form,
    hstack,
    identity,
    integer_left_nullspace,
    integer_nullspace,
    integer_rank,
    invert_unimodular,
    is_unimodular,
    mat_add,
    mat_mul,
    mat_sub,
    mat_vec,
    primitive_vector,
    rowspace_basis,
    rowspaces_equal,
    smith_normal_form,
    solve_diophantine,
    transpose,
    unimodular_completion,
    vstack,
    zeros,
)

small_matrix = st.integers(1, 4).flatmap(
    lambda m: st.integers(1, 4).flatmap(
        lambda n: st.lists(
            st.lists(st.integers(-8, 8), min_size=n, max_size=n),
            min_size=m,
            max_size=m,
        )
    )
)


# ---------------------------------------------------------------------------
# basics
# ---------------------------------------------------------------------------

class TestBasics:
    def test_identity(self):
        assert identity(3) == [[1, 0, 0], [0, 1, 0], [0, 0, 1]]
        assert identity(0) == []

    def test_zeros(self):
        assert zeros(2, 3) == [[0, 0, 0], [0, 0, 0]]

    def test_transpose(self):
        assert transpose([[1, 2, 3], [4, 5, 6]]) == [[1, 4], [2, 5], [3, 6]]

    def test_mat_mul(self):
        a = [[1, 2], [3, 4]]
        b = [[5, 6], [7, 8]]
        assert mat_mul(a, b) == [[19, 22], [43, 50]]

    def test_mat_mul_shape_mismatch(self):
        with pytest.raises(ValueError):
            mat_mul([[1, 2]], [[1, 2]])

    def test_mat_vec(self):
        assert mat_vec([[1, 2], [3, 4]], [1, 1]) == [3, 7]

    def test_mat_vec_shape_mismatch(self):
        with pytest.raises(ValueError):
            mat_vec([[1, 2]], [1, 2, 3])

    def test_add_sub(self):
        a = [[1, 2]]
        b = [[3, 4]]
        assert mat_add(a, b) == [[4, 6]]
        assert mat_sub(b, a) == [[2, 2]]

    def test_stacks(self):
        assert hstack([[1], [2]], [[3], [4]]) == [[1, 3], [2, 4]]
        assert vstack([[1, 2]], [[3, 4]]) == [[1, 2], [3, 4]]
        with pytest.raises(ValueError):
            hstack([[1]], [[1], [2]])
        with pytest.raises(ValueError):
            vstack([[1, 2]], [[1]])

    def test_determinant(self):
        assert determinant([[2, 0], [0, 3]]) == 6
        assert determinant([[1, 2], [2, 4]]) == 0
        assert determinant([[0, 1], [1, 0]]) == -1
        assert determinant([]) == 1
        with pytest.raises(ValueError):
            determinant([[1, 2]])

    def test_determinant_3x3(self):
        # det via cofactor expansion cross-check
        m = [[2, -1, 0], [1, 3, 2], [0, 1, 1]]
        expected = 2 * (3 * 1 - 2 * 1) - (-1) * (1 * 1 - 2 * 0)
        assert determinant(m) == expected

    def test_is_unimodular(self):
        assert is_unimodular([[0, 1], [1, 0]])
        assert is_unimodular([[1, 5], [0, 1]])
        assert not is_unimodular([[2, 0], [0, 1]])
        assert not is_unimodular([[1, 2, 3]])

    def test_primitive_vector(self):
        assert primitive_vector([2, 4, 6]) == [1, 2, 3]
        assert primitive_vector([0, 0]) == [0, 0]
        assert primitive_vector([-3, 6]) == [-1, 2]


# ---------------------------------------------------------------------------
# Hermite normal form
# ---------------------------------------------------------------------------

class TestHNF:
    def test_simple(self):
        h, u, piv = hermite_normal_form([[2, 4], [1, 3]])
        assert h == mat_mul(u, [[2, 4], [1, 3]])
        assert is_unimodular(u)
        assert piv == [0, 1]

    def test_zero_matrix(self):
        h, u, piv = hermite_normal_form([[0, 0], [0, 0]])
        assert piv == []
        assert h == [[0, 0], [0, 0]]

    @given(small_matrix)
    @settings(max_examples=150, deadline=None)
    def test_properties(self, a):
        h, u, pivots = hermite_normal_form(a)
        assert h == mat_mul(u, a)
        assert is_unimodular(u)
        last = -1
        for i, p in enumerate(pivots):
            assert p > last
            last = p
            assert h[i][p] > 0
            for i2 in range(i + 1, len(h)):
                assert h[i2][p] == 0
            for i2 in range(i):
                assert 0 <= h[i2][p] < h[i][p]
        # Rows past the pivots are zero.
        for i in range(len(pivots), len(h)):
            assert all(v == 0 for v in h[i])

    @given(small_matrix)
    @settings(max_examples=60, deadline=None)
    def test_column_hnf(self, a):
        h, v, _ = column_hermite_normal_form(a)
        assert h == mat_mul(a, v)
        assert is_unimodular(v)


# ---------------------------------------------------------------------------
# rank / nullspaces
# ---------------------------------------------------------------------------

class TestNullspace:
    def test_full_rank_trivial_nullspace(self):
        assert integer_nullspace([[1, 0], [0, 1]]) == []

    def test_zero_map(self):
        ns = integer_nullspace([[0, 0], [0, 0]])
        assert integer_rank(ns) == 2

    def test_known(self):
        ns = integer_nullspace([[1, 1]])
        assert len(ns) == 1
        assert ns[0][0] == -ns[0][1]

    def test_left_nullspace(self):
        lns = integer_left_nullspace([[1, 0], [1, 0]])
        assert len(lns) == 1
        y = lns[0]
        assert y[0] == -y[1]

    @given(small_matrix)
    @settings(max_examples=150, deadline=None)
    def test_nullspace_properties(self, a):
        ns = integer_nullspace(a)
        n = len(a[0])
        for row in ns:
            assert all(v == 0 for v in mat_vec(a, row))
        assert len(ns) == n - integer_rank(a)
        if ns:
            assert integer_rank(ns) == len(ns)

    @given(small_matrix, st.lists(st.integers(-3, 3), min_size=4, max_size=4))
    @settings(max_examples=80, deadline=None)
    def test_nullspace_saturated(self, a, coeffs):
        """Integer combinations of the basis stay in the nullspace (the
        lattice is closed) — and scaling outside the lattice is caught by
        membership of the generated vector."""
        ns = integer_nullspace(a)
        if not ns:
            return
        vec = [0] * len(ns[0])
        for c, row in zip(coeffs, ns):
            for k in range(len(vec)):
                vec[k] += c * row[k]
        assert all(v == 0 for v in mat_vec(a, vec))


# ---------------------------------------------------------------------------
# Smith normal form
# ---------------------------------------------------------------------------

class TestSNF:
    @given(small_matrix)
    @settings(max_examples=100, deadline=None)
    def test_properties(self, a):
        u, s, v = smith_normal_form(a)
        assert s == mat_mul(mat_mul(u, a), v)
        assert is_unimodular(u)
        assert is_unimodular(v)
        m, n = len(s), len(s[0])
        for i in range(m):
            for j in range(n):
                if i != j:
                    assert s[i][j] == 0
        diag = [s[i][i] for i in range(min(m, n))]
        for i in range(len(diag) - 1):
            if diag[i] == 0:
                assert diag[i + 1] == 0
            else:
                assert diag[i + 1] % diag[i] == 0

    def test_known_divisors(self):
        _, s, _ = smith_normal_form([[2, 0], [0, 4]])
        assert [s[0][0], s[1][1]] == [2, 4]
        _, s, _ = smith_normal_form([[2, 4], [4, 2]])
        # elementary divisors of [[2,4],[4,2]]: 2 and 6
        assert [s[0][0], s[1][1]] == [2, 6]


# ---------------------------------------------------------------------------
# unimodular completion / inversion
# ---------------------------------------------------------------------------

class TestUnimodular:
    def test_completion_identity_rows(self):
        t = unimodular_completion([[0, 1]], 2)
        assert is_unimodular(t)
        assert t[0] == [0, 1]

    def test_completion_empty(self):
        assert unimodular_completion([], 3) == identity(3)

    def test_completion_rejects_dependent(self):
        with pytest.raises(ValueError):
            unimodular_completion([[1, 0], [2, 0]], 2)

    def test_completion_rejects_unsaturated(self):
        with pytest.raises(ValueError):
            unimodular_completion([[2, 0]], 2)

    @given(small_matrix)
    @settings(max_examples=100, deadline=None)
    def test_completion_of_nullspace(self, a):
        ns = integer_nullspace(a)
        if not ns:
            return
        n = len(a[0])
        t = unimodular_completion(ns, n)
        assert is_unimodular(t)
        assert t[: len(ns)] == ns

    def test_invert(self):
        u = [[1, 3], [0, 1]]
        assert mat_mul(u, invert_unimodular(u)) == identity(2)

    def test_invert_rejects_singular(self):
        with pytest.raises(ValueError):
            invert_unimodular([[2, 0], [0, 1]])


# ---------------------------------------------------------------------------
# Diophantine systems
# ---------------------------------------------------------------------------

class TestDiophantine:
    def test_simple(self):
        sol = solve_diophantine([[2, 3]], [7])
        assert sol is not None
        x0, ns = sol
        assert 2 * x0[0] + 3 * x0[1] == 7
        assert len(ns) == 1

    def test_no_solution(self):
        assert solve_diophantine([[2, 4]], [3]) is None

    def test_inconsistent(self):
        assert solve_diophantine([[1, 0], [1, 0]], [1, 2]) is None

    @given(small_matrix, st.lists(st.integers(-4, 4), min_size=4, max_size=4))
    @settings(max_examples=120, deadline=None)
    def test_roundtrip(self, a, xfull):
        n = len(a[0])
        x = xfull[:n] + [0] * max(0, n - len(xfull))
        b = mat_vec(a, x)
        sol = solve_diophantine(a, b)
        assert sol is not None
        x0, ns = sol
        assert mat_vec(a, x0) == b


# ---------------------------------------------------------------------------
# row spaces
# ---------------------------------------------------------------------------

class TestRowspace:
    def test_basis_canonical(self):
        b1 = rowspace_basis([[1, 1], [2, 2]])
        assert len(b1) == 1

    def test_equality(self):
        assert rowspaces_equal([[1, 0], [0, 1]], [[1, 1], [1, -1]])
        assert not rowspaces_equal([[1, 0]], [[0, 1]])
        assert rowspaces_equal([], [])
        assert not rowspaces_equal([[1, 0]], [])
