"""The observability layer: spans, metrics, exporters, no-op fast path.

Covers span nesting/timing, counter aggregation, the disabled-mode
shared no-op objects (identity checks), the Chrome trace-event export
round-trip, the CLI ``profile`` command, and the overhead guard: the
disabled instrumentation path must add < 5% to a small
``compile_all`` + ``simulate`` run.
"""

import json
import time

import pytest

from repro import obs
from repro.apps import simple
from repro.compiler import Scheme, compile_all, compile_program
from repro.machine import scaled_dash
from repro.machine.simulate import simulate


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts disabled with an empty collector, a cold
    pipeline session (so compiles do real pass work rather than hitting
    artifacts cached by earlier tests), and leaves no global state
    behind."""
    from repro import pipeline

    obs.disable()
    obs.reset()
    pipeline.reset_session()
    yield
    obs.disable()
    obs.reset()
    pipeline.reset_session()


class TestSpans:
    def test_nesting_and_timing(self):
        obs.enable()
        with obs.span("outer", cat="test", k=1) as outer:
            time.sleep(0.002)
            with obs.span("inner", cat="test") as inner:
                time.sleep(0.001)
                inner.add("work", 3)
                inner.add("work", 4)
        spans = obs.collector().spans
        assert [s.name for s in spans] == ["inner", "outer"]  # close order
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.duration > 0
        assert outer.duration >= inner.duration
        assert inner.counters == {"work": 7}
        assert outer.attrs == {"k": 1}

    def test_events_parented_to_open_span(self):
        obs.enable()
        with obs.span("phase", cat="test") as sp:
            obs.event("thing", cat="test", value=42)
        ev = obs.collector().events[0]
        assert ev.span_id == sp.span_id
        assert ev.attrs == {"value": 42}

    def test_span_records_exception_type(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("boom", cat="test"):
                raise ValueError("no")
        assert obs.collector().spans[0].attrs["error"] == "ValueError"


class TestMetrics:
    def test_counter_aggregation(self):
        obs.enable()
        obs.inc("x", 2)
        obs.inc("x", 3)
        obs.inc("y")
        snap = obs.collector().metrics.snapshot()
        assert snap["counters"] == {"x": 5, "y": 1}

    def test_gauge_and_histogram(self):
        obs.enable()
        obs.gauge("g").set(7.5)
        h = obs.histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        snap = obs.collector().metrics.snapshot()
        assert snap["gauges"]["g"] == 7.5
        assert snap["histograms"]["h"]["count"] == 3
        assert snap["histograms"]["h"]["mean"] == 2.0
        assert snap["histograms"]["h"]["min"] == 1.0
        assert snap["histograms"]["h"]["max"] == 3.0


class TestHistogramEdges:
    """Percentile estimation at the awkward ends: empty, single
    sample, interpolation, and the deterministic reservoir decimation
    that kicks in past SAMPLE_CAP observations."""

    def test_empty_histogram(self):
        from repro.obs.metrics import Histogram
        h = Histogram("h")
        assert h.percentile(0.0) == 0.0
        assert h.p50 == 0.0 and h.p95 == 0.0
        assert h.mean == 0.0

    def test_empty_histogram_snapshot_uses_none_sentinels(self):
        obs.enable()
        obs.collector().metrics.histogram("h")  # created, never observed
        snap = obs.collector().metrics.snapshot()["histograms"]["h"]
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None
        assert snap["p50"] is None and snap["p95"] is None

    def test_single_sample_is_every_percentile(self):
        from repro.obs.metrics import Histogram
        h = Histogram("h").observe(7.25)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert h.percentile(q) == 7.25
        assert h.min == h.max == 7.25

    def test_percentile_interpolates(self):
        from repro.obs.metrics import Histogram
        h = Histogram("h")
        for v in (4.0, 1.0, 3.0, 2.0):  # order must not matter
            h.observe(v)
        assert h.percentile(0.5) == pytest.approx(2.5)
        assert h.percentile(0.0) == 1.0
        assert h.percentile(1.0) == 4.0

    def test_decimation_boundary_keeps_estimates_and_extremes(self):
        from repro.obs.metrics import SAMPLE_CAP, Histogram
        h = Histogram("h")
        n = SAMPLE_CAP + 1  # first decimation fires exactly here
        for v in range(n):
            h.observe(float(v))
        assert h.count == n
        assert len(h.samples) <= SAMPLE_CAP
        assert h.min == 0.0 and h.max == float(n - 1)
        # Decimated estimates stay close to the true percentiles.
        assert h.percentile(0.5) == pytest.approx((n - 1) / 2, rel=0.05)
        assert h.p95 == pytest.approx(0.95 * (n - 1), rel=0.05)

    def test_decimation_is_deterministic(self):
        from repro.obs.metrics import SAMPLE_CAP, Histogram
        a, b = Histogram("a"), Histogram("b")
        for v in range(3 * SAMPLE_CAP):
            a.observe(float(v))
            b.observe(float(v))
        assert a.samples == b.samples  # identical streams → identical retention


class TestSummaryDegenerate:
    """The text exporter on empty / awkward recordings."""

    def test_nothing_recorded(self):
        obs.enable()
        assert obs.summary() == "(no telemetry recorded)"

    def test_unobserved_histogram_renders_dashes(self):
        obs.enable()
        obs.collector().metrics.histogram("latency.empty")
        text = obs.summary()
        assert "latency.empty" in text
        assert "p50=- p95=-" in text  # None sentinels, not a crash

    def test_single_sample_histogram_renders(self):
        obs.enable()
        obs.histogram("one").observe(2.5)
        text = obs.summary()
        assert "n=1" in text and "p50=2.5" in text

    def test_monitor_counters_join_store_section(self):
        obs.enable()
        obs.inc("monitor.ticks", 3)
        obs.inc("ts.samples", 4)
        text = obs.summary()
        store_section = text.split("result store:", 1)[1]
        store_section = store_section.split("counters:", 1)[0]
        assert "monitor.ticks" in store_section
        assert "ts.samples" in store_section


class TestDisabledFastPath:
    def test_span_returns_shared_noop(self):
        assert not obs.enabled()
        assert obs.span("a") is obs.span("b", cat="x", attr=1)
        assert obs.span("a") is obs.NOOP_SPAN

    def test_metrics_return_shared_noop(self):
        assert obs.counter("a") is obs.counter("b")
        assert obs.counter("a") is obs.NOOP_METRIC
        assert obs.gauge("g") is obs.NOOP_METRIC
        assert obs.histogram("h") is obs.NOOP_METRIC

    def test_nothing_recorded_while_disabled(self):
        with obs.span("s", cat="test") as sp:
            sp.add("c", 1).set(x=2)
        obs.event("e", cat="test")
        obs.inc("c", 5)
        c = obs.collector()
        assert c.spans == [] and c.events == []
        assert c.metrics.snapshot()["counters"] == {}

    def test_noop_span_surface(self):
        sp = obs.span("x")
        assert sp.set(a=1) is sp
        assert sp.add("k") is sp
        assert sp.duration == 0.0


class TestExport:
    def _record_something(self):
        obs.enable()
        with obs.span("outer", cat="test", scheme="base") as sp:
            sp.add("cold", 4)
            with obs.span("inner", cat="test"):
                obs.event("ev", cat="test", nest="n0")
        obs.inc("total", 9)

    def test_chrome_trace_round_trip(self):
        self._record_something()
        data = json.loads(json.dumps(obs.to_chrome_trace()))
        evs = data["traceEvents"]
        xs = {e["name"]: e for e in evs if e["ph"] == "X"}
        assert set(xs) == {"outer", "inner"}
        assert xs["outer"]["args"]["scheme"] == "base"
        assert xs["outer"]["args"]["cold"] == 4
        assert xs["outer"]["dur"] >= xs["inner"]["dur"] >= 0
        # Span counters and registry counters appear as counter tracks.
        cs = [e for e in evs if e["ph"] == "C"]
        assert any(e["name"] == "outer.cold" for e in cs)
        assert any(e["name"] == "total" and e["args"]["total"] == 9
                   for e in cs)
        assert any(e["ph"] == "i" and e["name"] == "ev" for e in evs)

    def test_json_dump_structure(self):
        self._record_something()
        data = json.loads(json.dumps(obs.to_json()))
        assert [s["name"] for s in data["spans"]] == ["outer", "inner"]
        assert data["spans"][1]["parent"] == data["spans"][0]["id"]
        assert data["metrics"]["counters"]["total"] == 9
        assert data["events"][0]["name"] == "ev"

    def test_summary_renders_tree(self):
        self._record_something()
        text = obs.summary()
        assert "outer" in text and "inner" in text
        assert "total" in text
        assert "ms" in text

    def test_write_chrome_trace(self, tmp_path):
        self._record_something()
        path = str(tmp_path / "trace.json")
        obs.write_chrome_trace(path)
        with open(path) as fh:
            data = json.load(fh)
        assert "traceEvents" in data


class TestPipelineTelemetry:
    """The instrumented compiler + simulator emit the expected shape."""

    def test_compile_simulate_trace_contents(self):
        obs.enable()
        prog = simple.build(n=16)
        spmd = compile_program(prog, Scheme.COMP_DECOMP_DATA, 4)
        res = simulate(spmd, scaled_dash(4, scale=32, word_bytes=8))
        names = {s.name for s in obs.collector().spans}
        assert {"compiler.compile", "compiler.restructure",
                "unimodular.nest", "decomp.greedy", "decomp.solve_group",
                "codegen.spmd", "sim.simulate", "sim.trace",
                "sim.phase"} <= names
        # Per-phase simulator spans carry miss-class counters.
        phase_spans = [
            s for s in obs.collector().spans
            if s.name == "sim.phase" and s.attrs.get("round") == "steady"
        ]
        assert phase_spans
        for s in phase_spans:
            assert {"cold", "replacement", "true_sharing",
                    "false_sharing"} <= set(s.counters)
        # Ladder decisions and layout derivations were logged.
        ev_names = {e.name for e in obs.collector().events}
        assert {"decomp.ladder", "decomp.folding",
                "datatrans.layout", "codegen.phase"} <= ev_names
        # Detail fields flow into SimResult when obs is enabled.
        assert res.array_breakdown
        assert "local_ratio" in res.numa
        assert res.conflict_sets["nsets"] > 0
        for pc in res.phase_costs:
            assert "cold" in pc.misses

    def test_detail_flag_without_obs(self):
        prog = simple.build(n=16)
        spmd = compile_program(prog, Scheme.BASE, 4)
        machine = scaled_dash(4, scale=32, word_bytes=8)
        lean = simulate(spmd, machine)
        rich = simulate(spmd, machine, detail=True)
        assert lean.array_breakdown == {}
        assert rich.array_breakdown
        assert lean.total_time == rich.total_time


class TestProfileCli:
    def test_profile_command_writes_valid_chrome_trace(self, tmp_path, capsys):
        from repro.__main__ import main

        out = str(tmp_path / "trace.json")
        rc = main([
            "profile", "simple", "--n", "16", "--procs", "4",
            "--scheme", "comp_decomp_data", "-o", out,
        ])
        assert rc == 0
        with open(out) as fh:
            data = json.load(fh)
        evs = data["traceEvents"]
        xs = [e for e in evs if e.get("ph") == "X"]
        # Nested compiler-phase spans ...
        assert any(e["name"] == "compiler.compile" for e in xs)
        assert any(e["name"] == "decomp.greedy" for e in xs)
        # ... and per-phase simulator miss-class counters.
        sim_phases = [
            e for e in xs
            if e["name"] == "sim.phase"
            and e.get("args", {}).get("round") == "steady"
        ]
        assert sim_phases and all(
            "cold" in e["args"] and "false_sharing" in e["args"]
            for e in sim_phases
        )
        assert any(e.get("ph") == "C" for e in evs)
        text = capsys.readouterr().out
        assert "profile:" in text and "numa:" in text


def _workload():
    """A small but non-trivial compile_all + simulate run (fresh program
    each call so memoization cannot hide compile work)."""
    prog = simple.build(n=12, time_steps=2)
    compiled = compile_all(prog, nprocs=4)
    machine = scaled_dash(4, scale=32, word_bytes=8)
    return simulate(compiled.by_scheme(Scheme.COMP_DECOMP_DATA), machine)


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestOverhead:
    def test_disabled_path_under_5_percent(self, monkeypatch):
        """The disabled instrumentation adds < 5% to compile+simulate.

        The floor is measured with every hook monkeypatched to the
        cheapest possible stub (the closest approximation of "no
        instrumentation at all" available without editing source).
        """
        obs.disable()
        _workload()  # warm imports and numpy caches

        with_hooks = _best_of(_workload)

        noop_cm = obs.NOOP_SPAN
        monkeypatch.setattr(obs, "span", lambda *a, **k: noop_cm)
        monkeypatch.setattr(obs, "event", lambda *a, **k: None)
        monkeypatch.setattr(obs, "inc", lambda *a, **k: None)
        monkeypatch.setattr(obs, "enabled", lambda: False)
        floor = _best_of(_workload)

        # 5% relative margin plus 5ms absolute slack for timer noise on
        # very fast runs.
        assert with_hooks <= floor * 1.05 + 0.005, (
            f"disabled obs overhead too high: {with_hooks:.4f}s vs "
            f"floor {floor:.4f}s"
        )
