"""Tests for the optional second-level cache."""

import numpy as np
import pytest

from repro.apps import simple
from repro.codegen.spmd import Scheme
from repro.compiler import compile_program
from repro.machine import dash_machine, scaled_dash
from repro.machine.cache import CacheConfig
from repro.machine.coherence import classify_accesses
from repro.machine.simulate import simulate


def tiny(l1=64, l2=256):
    return (
        CacheConfig(size_bytes=l1, line_bytes=16),
        CacheConfig(size_bytes=l2, line_bytes=16),
    )


class TestClassifierL2:
    def test_l1_conflict_served_by_l2(self):
        l1, l2 = tiny(32, 128)  # L1: 2 sets; L2: 8 sets
        proc = np.zeros(4, dtype=np.int64)
        # lines 0 and 2 conflict in L1 set 0 but live in different L2
        # sets: the second round of accesses hits in L2.
        addr = np.array([0, 32, 0, 32])
        write = np.zeros(4, dtype=bool)
        c = classify_accesses(proc, addr, write, l1, l2=l2)
        assert c.hit.tolist() == [False] * 4
        assert c.l2_hit.tolist() == [False, False, True, True]

    def test_l1_hits_are_not_l2_hits(self):
        l1, l2 = tiny()
        proc = np.zeros(2, dtype=np.int64)
        addr = np.array([0, 0])
        c = classify_accesses(proc, addr, np.zeros(2, bool), l1, l2=l2)
        assert c.hit.tolist() == [False, True]
        assert c.l2_hit.tolist() == [False, False]

    def test_invalidation_kills_both_levels(self):
        l1, l2 = tiny()
        proc = np.array([0, 1, 0])
        addr = np.array([0, 0, 0])
        write = np.array([False, True, False])
        c = classify_accesses(proc, addr, write, l1, l2=l2)
        # the reread is a sharing miss, NOT an L2 hit
        assert c.true_sharing.tolist() == [False, False, True]
        assert not c.l2_hit.any()

    def test_no_l2_all_false(self):
        l1, _ = tiny()
        proc = np.zeros(3, dtype=np.int64)
        addr = np.array([0, 64, 0])
        c = classify_accesses(proc, addr, np.zeros(3, bool), l1)
        assert not c.l2_hit.any()


class TestMachineL2:
    def test_dash_machine_has_l2(self):
        m = dash_machine(32)
        assert m.l2 is not None
        assert m.l2.size_bytes == 256 * 1024

    def test_with_l2_default_ratio(self):
        m = scaled_dash(8, scale=16)
        assert m.l2 is None
        m2 = m.with_l2()
        assert m2.l2.size_bytes == 4 * m.cache.size_bytes

    def test_l2_reduces_time(self):
        prog = simple.build(n=48, time_steps=3)
        spmd = compile_program(prog, Scheme.BASE, 4)
        m1 = scaled_dash(4, scale=32, word_bytes=4)
        m2 = m1.with_l2()
        t1 = simulate(spmd, m1)
        t2 = simulate(spmd, m2)
        assert t2.total_time <= t1.total_time
        assert t2.miss_breakdown["l2_hits"] > 0
        # L2 hits are removed from the memory-level miss counts
        assert (
            t2.miss_breakdown["local_miss"] + t2.miss_breakdown["remote"]
            < t1.miss_breakdown["local_miss"] + t1.miss_breakdown["remote"]
        )

    def test_l2_breakdown_zero_without_l2(self):
        prog = simple.build(n=16, time_steps=2)
        spmd = compile_program(prog, Scheme.BASE, 2)
        res = simulate(spmd, scaled_dash(2, scale=32, word_bytes=4))
        assert res.miss_breakdown["l2_hits"] == 0
