"""Cross-process telemetry aggregation (PR-4): snapshot freezing,
clock-skew correction, and the multi-lane Chrome trace merge.

The schema checks here are the exporter's contract with trace viewers:
every event carries the required keys with the right types, timestamps
are monotonic within each lane, and worker lanes never interleave PIDs.
"""

import json
import pickle

import pytest

from repro import obs
from repro.obs import agg
from repro.obs.agg import MergedTrace, clock_offset, snapshot
from repro.obs.export import collector_state, lane_trace_events
from repro.pipeline import reset_session
from repro.pipeline.batch import BatchPoint, merged_trace, run_batch


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    obs.disable()
    obs.reset()
    reset_session()
    yield
    obs.disable()
    obs.reset()
    reset_session()


def _record(counter="work.done"):
    """One tiny recording, frozen into a snapshot."""
    obs.enable(reset=True)
    with obs.span("outer", cat="test", who="x") as sp:
        sp.add("items", 3)
        with obs.span("inner", cat="test"):
            obs.event("tick", cat="test", n=1)
        obs.inc(counter)
    snap = agg.snapshot()
    obs.disable()
    obs.reset()
    return snap


REQUIRED_KEYS = {"name", "ph", "pid", "tid"}
PHASES = {"M", "X", "i", "C"}


def _check_chrome_schema(trace):
    """Structural validation of one Chrome trace-event object."""
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    last_ts = {}
    for ev in trace["traceEvents"]:
        assert REQUIRED_KEYS <= set(ev), ev
        assert ev["ph"] in PHASES, ev
        assert isinstance(ev["pid"], int)
        assert isinstance(ev["tid"], int)
        if ev["ph"] == "M":
            assert ev["name"] == "process_name"
            assert isinstance(ev["args"]["name"], str)
            continue
        assert isinstance(ev["ts"], (int, float))
        if ev["ph"] == "X":
            assert isinstance(ev["dur"], (int, float))
        if ev["ph"] == "i":
            assert ev["s"] == "t"
        # Timed events must be monotonic within their lane.
        assert ev["ts"] >= last_ts.get(ev["pid"], float("-inf"))
        last_ts[ev["pid"]] = ev["ts"]


class TestSnapshot:
    def test_schema_and_identity(self):
        snap = _record()
        assert snap["schema"] == agg.SNAPSHOT_SCHEMA
        assert isinstance(snap["pid"], int)
        assert snap["wall_ref"] > 0 and snap["perf_ref"] >= 0
        assert [s["name"] for s in snap["spans"]] == ["outer", "inner"]
        assert snap["metrics"]["counters"] == {"work.done": 1}

    def test_pid_override(self):
        snap = _record()
        again = agg.snapshot(pid=4242)
        assert again["pid"] == 4242
        assert snap["pid"] != 4242

    def test_pickle_and_json_round_trip(self):
        snap = _record()
        assert pickle.loads(pickle.dumps(snap)) == snap
        assert json.loads(json.dumps(snap)) == snap


class TestClockOffset:
    def test_offset_maps_worker_onto_reference_timeline(self):
        # Worker perf clock started 40s after the reference's: a worker
        # instant t reads t+40 on the reference clock.
        worker = {"wall_ref": 100.0, "perf_ref": 10.0}
        ref = {"wall_ref": 100.0, "perf_ref": 50.0}
        assert clock_offset(worker, ref) == pytest.approx(40.0)
        assert clock_offset(ref, worker) == pytest.approx(-40.0)

    def test_offset_is_reference_time_invariant(self):
        # Reading the pair later shifts both refs equally.
        worker = {"wall_ref": 107.5, "perf_ref": 17.5}
        ref = {"wall_ref": 103.25, "perf_ref": 53.25}
        assert clock_offset(worker, ref) == pytest.approx(40.0)

    def test_same_process_offset_is_zero(self):
        snap = _record()
        assert clock_offset(snap, snap) == 0.0


class TestMergedTrace:
    def _two_worker_trace(self):
        parent = _record("driver.work")
        mt = MergedTrace(parent=parent)
        w1 = dict(_record("w.count"), pid=1111)
        w2 = dict(_record("w.count"), pid=2222)
        mt.add_worker(w1, tags={"attempts": 2, "retried": True})
        mt.add_worker(w2, tags={"attempts": 1, "retried": False})
        return parent, mt

    def test_schema_valid_and_lanes_disjoint(self):
        parent, mt = self._two_worker_trace()
        trace = mt.to_chrome_trace()
        _check_chrome_schema(trace)
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {parent["pid"], 1111, 2222}
        metas = {e["pid"]: e["args"]["name"]
                 for e in trace["traceEvents"] if e["ph"] == "M"}
        assert metas[parent["pid"]] == "driver"
        assert metas[1111] == "worker-1111"
        assert metas[2222] == "worker-2222"
        # Every lane carries its own complete span set.
        for pid in (1111, 2222):
            lane = [e for e in trace["traceEvents"]
                    if e["pid"] == pid and e["ph"] == "X"]
            assert {e["name"] for e in lane} == {"outer", "inner"}

    def test_tags_land_on_root_spans_only(self):
        _, mt = self._two_worker_trace()
        trace = mt.to_chrome_trace()
        roots = [e for e in trace["traceEvents"]
                 if e["ph"] == "X" and e["name"] == "outer"
                 and e["pid"] == 1111]
        inner = [e for e in trace["traceEvents"]
                 if e["ph"] == "X" and e["name"] == "inner"
                 and e["pid"] == 1111]
        assert roots[0]["args"]["attempts"] == 2
        assert roots[0]["args"]["retried"] is True
        assert "attempts" not in inner[0]["args"]

    def test_tagging_does_not_mutate_snapshot(self):
        snap = dict(_record(), pid=1111)
        before = json.dumps(snap, sort_keys=True)
        mt = MergedTrace(parent=_record())
        mt.add_worker(snap, tags={"attempts": 3})
        mt.to_chrome_trace()
        assert json.dumps(snap, sort_keys=True) == before

    def test_schema_mismatch_rejected(self):
        mt = MergedTrace(parent=_record())
        bad = dict(_record(), schema=99)
        with pytest.raises(ValueError, match="schema"):
            mt.add_worker(bad)

    def test_skew_correction_applied_to_worker_lane(self):
        parent = _record()
        worker = dict(_record(), pid=1111)
        # Pretend the worker's perf clock started 1s later.
        worker["wall_ref"] = parent["wall_ref"]
        worker["perf_ref"] = parent["perf_ref"] - 1.0
        mt = MergedTrace(parent=parent)
        mt.add_worker(worker)
        trace = mt.to_chrome_trace()
        raw_start = worker["spans"][0]["start"]
        shifted = [e for e in trace["traceEvents"]
                   if e["pid"] == 1111 and e["ph"] == "X"
                   and e["name"] == "outer"]
        expect = (raw_start + 1.0 - parent["t0"]) * 1e6
        assert shifted[0]["ts"] == pytest.approx(expect)

    def test_merged_metrics_provenance(self):
        _, mt = self._two_worker_trace()
        counters = mt.merged_metrics()["counters"]
        assert counters["w.count"]["total"] == 2
        assert counters["w.count"]["lanes"] == {
            "worker-1111": 1, "worker-2222": 1,
        }
        assert counters["driver.work"]["lanes"] == {"driver": 1}
        assert mt.counter_total("w.count") == 2
        assert mt.counter_total("absent") == 0

    def test_same_pid_snapshots_share_a_lane(self):
        mt = MergedTrace(parent=_record())
        mt.add_worker(dict(_record("w.count"), pid=1111))
        mt.add_worker(dict(_record("w.count"), pid=1111))
        assert mt.worker_pids() == [1111]
        trace = mt.to_chrome_trace()
        _check_chrome_schema(trace)
        metas = [e for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["pid"] == 1111]
        assert len(metas) == 1
        assert mt.merged_metrics()["counters"]["w.count"]["lanes"] == {
            "worker-1111": 2,
        }

    def test_write_round_trips_through_json(self, tmp_path):
        _, mt = self._two_worker_trace()
        path = mt.write(str(tmp_path / "trace.json"))
        with open(path) as fh:
            loaded = json.load(fh)
        _check_chrome_schema(loaded)


class TestSingleLaneExport:
    def test_lane_events_honour_pid_and_shift(self):
        snap = _record()
        events = lane_trace_events(snap, pid=7, tid=3, shift=2.0,
                                   process_name="lane7")
        assert events[0]["ph"] == "M"
        for ev in events:
            assert ev["pid"] == 7
        xs = [e for e in events if e["ph"] == "X"]
        base = lane_trace_events(snap, pid=7)
        xs0 = [e for e in base if e["ph"] == "X"]
        assert xs[0]["ts"] - xs0[0]["ts"] == pytest.approx(2e6)

    def test_collector_state_matches_snapshot_body(self):
        obs.enable(reset=True)
        with obs.span("only", cat="test"):
            obs.inc("c")
        state = collector_state()
        assert [s["name"] for s in state["spans"]] == ["only"]
        assert state["metrics"]["counters"] == {"c": 1}
        obs.disable()
        obs.reset()


class TestBatchIntegration:
    def test_parallel_batch_ships_per_point_snapshots(self):
        points = [
            BatchPoint(app="simple", scheme=s, nprocs=p, n=8)
            for s in ("base", "comp") for p in (1, 2)
        ]
        obs.enable(reset=True)
        results = run_batch(points, jobs=2, cache=False,
                            collect_telemetry=True)
        mt = merged_trace(results)
        obs.disable()
        assert all(r.ok for r in results)
        assert all(r.telemetry is not None for r in results)
        assert len(mt.worker_pids()) >= 1
        trace = mt.to_chrome_trace()
        _check_chrome_schema(trace)
        # Every worker PID contributes spans, each tagged with the
        # hardening verdict.
        for pid in mt.worker_pids():
            lane = [e for e in trace["traceEvents"]
                    if e["pid"] == pid and e["ph"] == "X"
                    and e["name"] == "batch.point"]
            assert lane
            assert all("attempts" in e["args"] and "ok" in e["args"]
                       for e in lane)

    def test_serial_batch_records_into_caller_collector(self):
        points = [BatchPoint(app="simple", scheme="base", nprocs=1, n=8)]
        obs.enable(reset=True)
        results = run_batch(points, jobs=1, cache=False,
                            collect_telemetry=True)
        mt = merged_trace(results)
        obs.disable()
        assert results[0].telemetry is None  # no per-point snapshot
        trace = mt.to_chrome_trace()
        _check_chrome_schema(trace)
        names = {e["name"] for e in trace["traceEvents"]
                 if e["ph"] == "X"}
        assert "batch.point" in names  # driver lane has the spans
