"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("lu", "vpenta", "tomcatv"):
            assert name in out

    def test_decompose(self, capsys):
        assert main(["decompose", "lu", "--n", "12", "--procs", "4"]) == 0
        out = capsys.readouterr().out
        assert "(*, CYCLIC)" in out
        assert "pipelined" in out

    def test_decompose_verbose(self, capsys):
        assert main([
            "decompose", "simple", "--n", "12", "--procs", "4", "--verbose"
        ]) == 0
        out = capsys.readouterr().out
        assert "C[" in out

    def test_emit(self, capsys):
        assert main([
            "emit", "simple", "--n", "8", "--procs", "2", "--scheme", "data"
        ]) == 0
        out = capsys.readouterr().out
        assert "spmd_main" in out

    def test_run(self, capsys):
        assert main([
            "run", "simple", "--n", "16", "--procs-list", "1,4",
            "--scale", "32", "--scheme", "base",
        ]) == 0
        out = capsys.readouterr().out
        assert "base" in out
        assert "1.00" in out

    def test_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["decompose", "nosuchapp"])


class TestProfileErrors:
    def test_bad_app(self):
        with pytest.raises(SystemExit):
            main(["profile", "nosuchapp", "--n", "8"])

    def test_bad_scheme_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["profile", "simple", "--scheme", "bogus"])

    def test_json_to_nonexistent_dir(self, tmp_path):
        missing = tmp_path / "no" / "such" / "dir" / "out.json"
        with pytest.raises(SystemExit, match="cannot write"):
            main(["profile", "simple", "--n", "8", "--procs", "2",
                  "--json", str(missing)])

    def test_trace_output_to_nonexistent_dir(self, tmp_path):
        missing = tmp_path / "absent" / "trace.json"
        with pytest.raises(SystemExit, match="cannot write"):
            main(["profile", "simple", "--n", "8", "--procs", "2",
                  "-o", str(missing)])

    def test_json_dash_to_stdout(self, capsys):
        assert main(["profile", "simple", "--n", "8", "--procs", "2",
                     "--json", "-"]) == 0
        out = capsys.readouterr().out
        start = out.index('{\n  "arrays"')
        payload = json.loads(out[start:out.rindex("}") + 1])
        assert payload["scheme"]
        assert payload["locality"]["reuse"]


class TestHotspotsErrors:
    _FAST = ["--n", "8", "--repeats", "1", "--apps", "simple",
             "--schemes", "base", "--procs-list", "1"]

    def test_bad_app(self):
        with pytest.raises(SystemExit, match="unknown app"):
            main(["hotspots", "--apps", "nosuchapp"])

    def test_bad_scheme(self):
        with pytest.raises(SystemExit, match="unknown scheme"):
            main(["hotspots", "--schemes", "bogus"])

    def test_empty_apps(self):
        with pytest.raises(SystemExit, match="no apps"):
            main(["hotspots", "--apps", ","])

    def test_json_to_nonexistent_dir(self, tmp_path):
        missing = tmp_path / "no" / "dir" / "hot.json"
        with pytest.raises(SystemExit, match="cannot write"):
            main(["hotspots", *self._FAST, "--json", str(missing)])

    def test_html_to_nonexistent_dir(self, tmp_path):
        missing = tmp_path / "no" / "dir" / "hot.html"
        with pytest.raises(SystemExit, match="cannot write"):
            main(["hotspots", *self._FAST, "--html", str(missing)])

    def test_json_dash_to_stdout(self, capsys):
        assert main(["hotspots", *self._FAST, "--json", "-"]) == 0
        out = capsys.readouterr().out
        start = out.index('{\n  "config"')
        payload = json.loads(out[start:out.rindex("}") + 1])
        assert payload["hotspots"]["samples"] > 0
        assert payload["points"][0]["locality"]
