"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("lu", "vpenta", "tomcatv"):
            assert name in out

    def test_decompose(self, capsys):
        assert main(["decompose", "lu", "--n", "12", "--procs", "4"]) == 0
        out = capsys.readouterr().out
        assert "(*, CYCLIC)" in out
        assert "pipelined" in out

    def test_decompose_verbose(self, capsys):
        assert main([
            "decompose", "simple", "--n", "12", "--procs", "4", "--verbose"
        ]) == 0
        out = capsys.readouterr().out
        assert "C[" in out

    def test_emit(self, capsys):
        assert main([
            "emit", "simple", "--n", "8", "--procs", "2", "--scheme", "data"
        ]) == 0
        out = capsys.readouterr().out
        assert "spmd_main" in out

    def test_run(self, capsys):
        assert main([
            "run", "simple", "--n", "16", "--procs-list", "1,4",
            "--scale", "32", "--scheme", "base",
        ]) == 0
        out = capsys.readouterr().out
        assert "base" in out
        assert "1.00" in out

    def test_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["decompose", "nosuchapp"])
