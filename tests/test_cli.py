"""Tests for the command-line interface."""

import contextlib
import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("lu", "vpenta", "tomcatv"):
            assert name in out

    def test_decompose(self, capsys):
        assert main(["decompose", "lu", "--n", "12", "--procs", "4"]) == 0
        out = capsys.readouterr().out
        assert "(*, CYCLIC)" in out
        assert "pipelined" in out

    def test_decompose_verbose(self, capsys):
        assert main([
            "decompose", "simple", "--n", "12", "--procs", "4", "--verbose"
        ]) == 0
        out = capsys.readouterr().out
        assert "C[" in out

    def test_emit(self, capsys):
        assert main([
            "emit", "simple", "--n", "8", "--procs", "2", "--scheme", "data"
        ]) == 0
        out = capsys.readouterr().out
        assert "spmd_main" in out

    def test_run(self, capsys):
        assert main([
            "run", "simple", "--n", "16", "--procs-list", "1,4",
            "--scale", "32", "--scheme", "base",
        ]) == 0
        out = capsys.readouterr().out
        assert "base" in out
        assert "1.00" in out

    def test_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["decompose", "nosuchapp"])


class TestProfileErrors:
    def test_bad_app(self):
        with pytest.raises(SystemExit):
            main(["profile", "nosuchapp", "--n", "8"])

    def test_bad_scheme_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["profile", "simple", "--scheme", "bogus"])

    def test_json_to_nonexistent_dir(self, tmp_path):
        missing = tmp_path / "no" / "such" / "dir" / "out.json"
        with pytest.raises(SystemExit, match="cannot write"):
            main(["profile", "simple", "--n", "8", "--procs", "2",
                  "--json", str(missing)])

    def test_trace_output_to_nonexistent_dir(self, tmp_path):
        missing = tmp_path / "absent" / "trace.json"
        with pytest.raises(SystemExit, match="cannot write"):
            main(["profile", "simple", "--n", "8", "--procs", "2",
                  "-o", str(missing)])

    def test_json_dash_to_stdout(self, capsys):
        assert main(["profile", "simple", "--n", "8", "--procs", "2",
                     "--json", "-"]) == 0
        out = capsys.readouterr().out
        start = out.index('{\n  "arrays"')
        payload = json.loads(out[start:out.rindex("}") + 1])
        assert payload["scheme"]
        assert payload["locality"]["reuse"]


class TestHotspotsErrors:
    _FAST = ["--n", "8", "--repeats", "1", "--apps", "simple",
             "--schemes", "base", "--procs-list", "1"]

    def test_bad_app(self):
        with pytest.raises(SystemExit, match="unknown app"):
            main(["hotspots", "--apps", "nosuchapp"])

    def test_bad_scheme(self):
        with pytest.raises(SystemExit, match="unknown scheme"):
            main(["hotspots", "--schemes", "bogus"])

    def test_empty_apps(self):
        with pytest.raises(SystemExit, match="no apps"):
            main(["hotspots", "--apps", ","])

    def test_json_to_nonexistent_dir(self, tmp_path):
        missing = tmp_path / "no" / "dir" / "hot.json"
        with pytest.raises(SystemExit, match="cannot write"):
            main(["hotspots", *self._FAST, "--json", str(missing)])

    def test_html_to_nonexistent_dir(self, tmp_path):
        missing = tmp_path / "no" / "dir" / "hot.html"
        with pytest.raises(SystemExit, match="cannot write"):
            main(["hotspots", *self._FAST, "--html", str(missing)])

    def test_json_dash_to_stdout(self, capsys):
        assert main(["hotspots", *self._FAST, "--json", "-"]) == 0
        out = capsys.readouterr().out
        start = out.index('{\n  "config"')
        payload = json.loads(out[start:out.rindex("}") + 1])
        assert payload["hotspots"]["samples"] > 0
        assert payload["points"][0]["locality"]


class TestIncrementalCli:
    _GRID = ["--apps", "simple", "--schemes", "base,comp",
             "--procs-list", "1,2", "--n", "8"]

    def test_batch_cold_then_warm(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["batch", *self._GRID, "--incremental",
                     "--store-dir", store,
                     "--expect-incremental", "4"]) == 0
        out = capsys.readouterr().out
        assert "result store: 0 served, 4 executed" in out

        assert main(["batch", *self._GRID, "--incremental",
                     "--store-dir", store,
                     "--expect-incremental", "0"]) == 0
        out = capsys.readouterr().out
        assert "result store: 4 served, 0 executed" in out
        assert "ok (store)" in out

    def test_expect_incremental_mismatch_fails(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        rc = main(["batch", *self._GRID, "--incremental",
                   "--store-dir", store, "--expect-incremental", "0"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "--expect-incremental 0" in err

    def test_expect_incremental_implies_incremental(self, capsys,
                                                    tmp_path):
        # --expect-incremental alone turns the store lookup on.
        store = str(tmp_path / "store")
        main(["batch", *self._GRID, "--store-dir", store])
        assert main(["batch", *self._GRID, "--store-dir", store,
                     "--expect-incremental", "0"]) == 0

    def test_batch_json_reports_store_stats(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        out_json = tmp_path / "batch.json"
        assert main(["batch", *self._GRID, "--incremental",
                     "--store-dir", store,
                     "--json", str(out_json)]) == 0
        payload = json.loads(out_json.read_text())
        assert payload["store"]["stores"] == 4
        assert payload["summary"]["executed"] == 4
        assert payload["summary"]["store_hits"] == 0

    def test_negative_expect_incremental_rejected(self):
        with pytest.raises(SystemExit) as ei:
            main(["batch", *self._GRID, "--expect-incremental", "-1"])
        assert ei.value.code == 2

    def test_verify_incremental(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        args = ["verify", "--apps", "simple", "--schemes", "base,comp",
                "--procs-list", "1,2", "--n", "6", "--incremental",
                "--store-dir", store]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "result store: 0 verdicts served, 4 verified live" in out
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "result store: 4 verdicts served, 0 verified live" in out
        assert "ALL OK" in out


class TestBrokenPipe:
    """``repro <table-printing-cmd> | head`` must exit 141 (128 +
    SIGPIPE), not traceback: ``main()`` converts ``BrokenPipeError``
    for every subcommand.  Simulated in-process by pointing
    ``sys.stdout`` at a pipe whose read end is already closed, so the
    first line each command prints raises ``EPIPE``."""

    _GRID = ["--apps", "simple", "--schemes", "base",
             "--procs-list", "1", "--n", "8"]

    @contextlib.contextmanager
    def _broken_stdout(self):
        import os
        import sys

        r, w = os.pipe()
        os.close(r)
        saved = sys.stdout
        # Line-buffered: the first print hits the dead pipe at once.
        stream = os.fdopen(w, "w", buffering=1)
        sys.stdout = stream
        try:
            yield
        finally:
            sys.stdout = saved
            try:
                stream.close()
            except OSError:
                pass

    def test_series_exits_141(self, tmp_path):
        with self._broken_stdout():
            rc = main(["series", "--file",
                       str(tmp_path / "missing.jsonl")])
        assert rc == 141

    def test_explain_exits_141(self):
        with self._broken_stdout():
            rc = main(["explain", "simple", "--n", "8", "--procs", "2"])
        assert rc == 141

    def test_diff_exits_141(self, tmp_path):
        from repro.codegen.spmd import parse_scheme
        from repro.obs.perf import record_point

        run = record_point("simple", parse_scheme("base"), 1, n=8)
        path = tmp_path / "run.json"
        path.write_text(json.dumps(run))
        with self._broken_stdout():
            rc = main(["diff", str(path), str(path)])
        assert rc == 141

    def test_hotspots_exits_141(self):
        import sys

        with self._broken_stdout():
            rc = main(["hotspots", *self._GRID, "--repeats", "1"])
        assert rc == 141
        assert sys.getprofile() is None, "profiler hook leaked"

    def test_report_exits_141(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["batch", *self._GRID, "--store-dir", store,
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        capsys.readouterr()
        with self._broken_stdout():
            rc = main(["report", "--store-dir", store])
        assert rc == 141

    def test_perf_record_exits_141(self):
        with self._broken_stdout():
            rc = main(["perf", "record", "simple", "--scheme", "base",
                       "--procs", "1", "--n", "8"])
        assert rc == 141
