"""Tests for the HPF front end (DISTRIBUTE parsing, rendering, ALIGN)."""

import pytest

from repro.decomp.hpf import apply_alignment, distribute_string, parse_distribute
from repro.decomp.model import DataDecomp, FoldKind, Folding


class TestParse:
    def test_block_star(self):
        dd, folds = parse_distribute("(BLOCK, *)", "A", 2)
        assert dd.matrix == [[1, 0]]
        assert folds[0].kind is FoldKind.BLOCK

    def test_star_cyclic(self):
        dd, folds = parse_distribute("(*, CYCLIC)", "A", 2)
        assert dd.matrix == [[0, 1]]
        assert folds[0].kind is FoldKind.CYCLIC

    def test_two_dims(self):
        dd, folds = parse_distribute("(BLOCK, BLOCK)", "A", 2)
        assert dd.matrix == [[1, 0], [0, 1]]
        assert len(folds) == 2

    def test_block_cyclic(self):
        dd, folds = parse_distribute("(CYCLIC(4), *)", "A", 2)
        assert folds[0].kind is FoldKind.BLOCK_CYCLIC
        assert folds[0].block == 4

    def test_case_insensitive(self):
        dd, folds = parse_distribute("(block, *)", "A", 2)
        assert folds[0].kind is FoldKind.BLOCK

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            parse_distribute("(BLOCK, *)", "A", 3)

    def test_garbage(self):
        with pytest.raises(ValueError):
            parse_distribute("(FOO, *)", "A", 2)


class TestRender:
    def test_roundtrip(self):
        for text in ["(BLOCK, *)", "(*, CYCLIC)", "(BLOCK, BLOCK)",
                     "(*, BLOCK, *)"]:
            dd, folds = parse_distribute(text, "A")
            assert distribute_string(dd, folds) == text

    def test_block_cyclic_render(self):
        dd, folds = parse_distribute("(CYCLIC(2), *)", "A")
        assert distribute_string(dd, folds) == "(CYCLIC(2), *)"

    def test_replicated(self):
        dd = DataDecomp("A", [[0, 0]], [0], replicated=True)
        assert distribute_string(dd, []) == "REPLICATED"


class TestAlignment:
    def test_identity_alignment(self):
        t, folds = parse_distribute("(BLOCK, *)", "T", 2)
        a = apply_alignment(t, [[1, 0], [0, 1]], "A")
        assert a.matrix == t.matrix

    def test_transposed_alignment(self):
        # ALIGN A(i,j) WITH T(j,i): template dims <- swapped array dims.
        t, folds = parse_distribute("(BLOCK, *)", "T", 2)
        a = apply_alignment(t, [[0, 1], [1, 0]], "A")
        # T's dim 0 distributed; A's dim 1 feeds T dim 0.
        assert a.matrix == [[0, 1]]
        assert distribute_string(a, folds) == "(*, BLOCK)"

    def test_replicated_template(self):
        t = DataDecomp("T", [[0, 0]], [0], replicated=True)
        a = apply_alignment(t, [[1, 0], [0, 1]], "A")
        assert a.replicated

    def test_hpf_drives_data_transform(self):
        """An HPF DISTRIBUTE can feed derive_layout directly (the paper's
        Section 7 point: HPF directives + caches instead of explicit
        message passing)."""
        from repro.datatrans.transform import derive_layout
        from repro.ir.arrays import ArrayDecl

        dd, folds = parse_distribute("(CYCLIC, *)", "A", 2)
        ta = derive_layout(ArrayDecl("A", (16, 4)), dd, folds, grid=[4])
        assert ta.restructured
        # cyclic elements of one processor are contiguous
        addrs = sorted(
            ta.layout.linearize((i, 0)) for i in range(0, 16, 4)
        )
        assert addrs[-1] - addrs[0] == len(addrs) - 1
