"""The pass pipeline: fingerprints, artifact cache, sessions, batch.

Covers the PR-2 acceptance points: fingerprint stability across
equivalent ``Program`` builds and invalidation on any content or
configuration change; disk-cache round-trips (including artifacts that
embed lambda ``compute`` callables); a warm-cache ``compile_all``
performing zero pass executions (asserted via obs metrics); and the
parallel batch driver matching the serial path point-for-point.
"""

import pytest

from repro import obs
from repro.apps import build_app, simple
from repro.codegen.spmd import Scheme, parse_scheme, scheme_short_name
from repro.pipeline import (
    MISS,
    ArtifactCache,
    CompileSession,
    fingerprint_program,
    reset_session,
)
from repro.pipeline.batch import (
    BatchPoint,
    make_grid,
    run_batch,
    summarize,
)
from repro.pipeline.passes import RestructurePass


@pytest.fixture(autouse=True)
def _clean_state():
    obs.disable()
    obs.reset()
    reset_session()
    yield
    obs.disable()
    obs.reset()
    reset_session()


class TestFingerprint:
    def test_stable_across_equivalent_builds(self):
        a = simple.build(n=16, time_steps=2)
        b = simple.build(n=16, time_steps=2)
        assert a is not b
        assert fingerprint_program(a) == fingerprint_program(b)

    def test_changes_with_size_and_time_steps(self):
        base = fingerprint_program(simple.build(n=16, time_steps=2))
        assert fingerprint_program(simple.build(n=8, time_steps=2)) != base
        assert fingerprint_program(simple.build(n=16, time_steps=3)) != base

    def test_changes_with_compute_semantics(self):
        from tests.conftest import make_two_nest_program

        def variant(op):
            prog = make_two_nest_program()
            st = prog.nests[0].body[0]
            from dataclasses import replace

            prog.nests[0].body[0] = replace(st, compute=op)
            return prog

        fp_add = fingerprint_program(variant(lambda x: x + 1))
        fp_mul = fingerprint_program(variant(lambda x: x * 2))
        fp_add2 = fingerprint_program(variant(lambda x: x + 1))
        assert fp_add != fp_mul
        assert fp_add == fp_add2

    def test_pass_key_invalidation(self, monkeypatch):
        prog = simple.build(n=8)
        session = CompileSession()
        rp = RestructurePass()
        ctx = session._context(prog)
        k1 = rp.cache_key(ctx)
        monkeypatch.setattr(RestructurePass, "version", "999")
        assert rp.cache_key(ctx) != k1
        # scheme / nprocs reach the codegen pass key
        c4 = session._context(prog, scheme=Scheme.BASE, nprocs=4)
        c8 = session._context(prog, scheme=Scheme.BASE, nprocs=8)
        cd = session._context(prog, scheme=Scheme.COMP_DECOMP, nprocs=4)
        keys = {session._spmd.cache_key(c) for c in (c4, c8, cd)}
        assert len(keys) == 3


class TestArtifactCache:
    def test_lru_eviction(self):
        cache = ArtifactCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is MISS
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_disk_round_trip_with_lambdas(self, tmp_path):
        prog = simple.build(n=8)
        session = CompileSession(
            cache=ArtifactCache(disk_dir=tmp_path)
        )
        spmd = session.compile(prog, Scheme.COMP_DECOMP_DATA, 4)

        # A second cache over the same directory (fresh process
        # stand-in) serves every artifact from disk.
        cold = CompileSession(cache=ArtifactCache(disk_dir=tmp_path))
        spmd2 = cold.compile(
            simple.build(n=8), Scheme.COMP_DECOMP_DATA, 4
        )
        assert cold.manager.total_runs() == 0
        assert cold.cache.stats.disk_hits > 0
        assert spmd2.scheme is spmd.scheme
        assert spmd2.nprocs == spmd.nprocs
        assert [p.nest.name for p in spmd2.phases] == [
            p.nest.name for p in spmd.phases
        ]
        # The reconstructed compute callables behave identically.
        st = spmd2.program.nests[0].body[0]
        ref = spmd.program.nests[0].body[0]
        assert st.compute(2.0, 3.0) == ref.compute(2.0, 3.0)

    def test_unpicklable_artifact_stays_memory_only(self, tmp_path):
        import threading

        cache = ArtifactCache(disk_dir=tmp_path)
        cache.put("k", threading.Lock())
        assert cache.stats.disk_errors == 1
        assert cache.get("k") is not MISS  # memory layer still serves

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        cache.put("deadbeef", {"x": 1})
        path = cache._disk_path("deadbeef")
        path.write_bytes(b"not a pickle")
        fresh = ArtifactCache(disk_dir=tmp_path)
        assert fresh.get("deadbeef") is MISS
        assert fresh.stats.corrupt == 1


class TestSessionMemoization:
    def test_restructure_no_attribute_mutation(self):
        prog = simple.build(n=16, time_steps=2)
        session = CompileSession()
        r = session.restructure(prog)
        assert not hasattr(prog, "_restructured")
        assert not hasattr(r, "_restructured")

    def test_restructure_memoized_by_content(self):
        session = CompileSession()
        r1 = session.restructure(simple.build(n=16, time_steps=2))
        r2 = session.restructure(simple.build(n=16, time_steps=2))
        assert r1 is r2
        assert session.restructure(r1) is r1  # fixed point

    def test_no_cache_session_still_compiles(self):
        session = CompileSession(cache=None)
        prog = simple.build(n=8)
        spmd = session.compile(prog, Scheme.COMP_DECOMP, 4)
        assert spmd.nprocs == 4
        assert session.manager.total_runs() > 0
        # Every compile does full work.
        before = session.manager.total_runs()
        session.compile(simple.build(n=8), Scheme.COMP_DECOMP, 4)
        assert session.manager.total_runs() > before


class TestWarmCompileAll:
    def test_second_compile_all_runs_zero_passes(self):
        session = CompileSession()
        session.compile_all(simple.build(n=12, time_steps=2), nprocs=4)

        obs.enable(reset=True)
        cp = session.compile_all(
            simple.build(n=12, time_steps=2), nprocs=4
        )
        counters = obs.collector().metrics.snapshot()["counters"]
        for name in ("restructure", "decompose", "layout", "spmd"):
            assert counters.get(f"pipeline.pass.{name}.runs", 0) == 0, name
            assert counters.get(f"pipeline.pass.{name}.cache_hits", 0) > 0
        # No real compiler work was traced either.
        names = {s.name for s in obs.collector().spans}
        assert "compiler.restructure" not in names
        assert "decomp.greedy" not in names
        assert "codegen.spmd" not in names
        # The result is still complete and self-consistent.
        assert cp.comp_decomp.decomposition is cp.decomposition

    def test_wrappers_share_default_session(self):
        from repro.compiler import compile_all, restructure_program

        compile_all(simple.build(n=12, time_steps=2), nprocs=4)
        obs.enable(reset=True)
        compile_all(simple.build(n=12, time_steps=2), nprocs=4)
        counters = obs.collector().metrics.snapshot()["counters"]
        assert counters.get("pipeline.pass.spmd.runs", 0) == 0
        r1 = restructure_program(simple.build(n=12, time_steps=2))
        assert restructure_program(r1) is r1


class TestBatch:
    GRID = dict(apps=["simple"], schemes=["base", "comp", "data"],
                procs=[1, 4], n=8, scale=32)

    def test_parallel_matches_serial(self):
        points = make_grid(**self.GRID)
        assert len(points) == 6
        serial = run_batch(points, jobs=1)
        parallel = run_batch(points, jobs=4)
        assert all(r.ok for r in serial), [r.error for r in serial]
        assert all(r.ok for r in parallel), [r.error for r in parallel]
        for s, p in zip(serial, parallel):
            assert s.point == p.point
            assert s.total_time == p.total_time
            assert s.n_accesses == p.n_accesses
            assert s.miss_breakdown == p.miss_breakdown

    def test_error_isolation(self):
        points = [
            BatchPoint(app="simple", scheme="base", nprocs=2, n=8),
            BatchPoint(app="nosuchapp", scheme="base", nprocs=2, n=8),
            BatchPoint(app="simple", scheme="comp", nprocs=2, n=8),
        ]
        results = run_batch(points, jobs=1)
        assert [r.ok for r in results] == [True, False, True]
        assert "nosuchapp" in results[1].error
        agg = summarize(results)
        assert agg["errors"] == 1 and agg["ok"] == 2

    def test_serial_shared_session_reuses_artifacts(self):
        points = make_grid(**self.GRID)
        results = run_batch(points, jobs=1)
        agg = summarize(results)
        # restructure runs once for the app, not once per point.
        assert agg["pass_runs"].get("restructure", 0) == 1
        assert agg["pass_hits"].get("restructure", 0) == len(points) - 1

    def test_warm_disk_cache_fully_cached(self, tmp_path):
        points = make_grid(apps=["simple"], schemes=["base", "data"],
                           procs=[1, 2], n=8, scale=32)
        cold = run_batch(points, jobs=2, disk_dir=str(tmp_path))
        warm = run_batch(points, jobs=2, disk_dir=str(tmp_path))
        assert all(r.ok for r in warm), [r.error for r in warm]
        assert not summarize(cold)["fully_cached"]
        assert summarize(warm)["fully_cached"]
        for c, w in zip(cold, warm):
            assert c.total_time == w.total_time

    def test_pinned_decomposition(self):
        points = make_grid(apps=["simple"], schemes=["data"],
                           procs=[1, 4], n=8, pin_decomp=True)
        assert all(p.decomp_procs == 4 for p in points)
        results = run_batch(points, jobs=1)
        assert all(r.ok for r in results)
        agg = summarize(results)
        assert agg["pass_runs"].get("decompose", 0) == 1


class TestSchemeTable:
    def test_aliases_resolve(self):
        assert parse_scheme("base") is Scheme.BASE
        assert parse_scheme("comp") is Scheme.COMP_DECOMP
        assert parse_scheme("comp_decomp") is Scheme.COMP_DECOMP
        assert parse_scheme("data") is Scheme.COMP_DECOMP_DATA
        assert parse_scheme("comp_decomp_data") is Scheme.COMP_DECOMP_DATA
        assert parse_scheme("comp decomp + data transform") is \
            Scheme.COMP_DECOMP_DATA
        assert parse_scheme(Scheme.BASE) is Scheme.BASE

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            parse_scheme("turbo")

    def test_short_names_round_trip(self):
        for scheme in Scheme:
            assert parse_scheme(scheme_short_name(scheme)) is scheme


class TestBuildApp:
    def test_forwards_accepted_kwargs(self):
        prog = build_app("simple", n=8, time_steps=3)
        assert prog.time_steps == 3

    def test_none_means_default(self):
        prog = build_app("lu", n=8, time_steps=None)
        assert prog.params["N"] == 8

    def test_rejects_unknown_kwarg(self):
        with pytest.raises(ValueError, match="does not accept"):
            build_app("lu", time_steps=3)

    def test_rejects_unknown_app(self):
        with pytest.raises(ValueError, match="unknown app"):
            build_app("nosuchapp", n=8)
