"""Tests for the exact dependence analysis."""

import pytest

from repro.analysis.dependence import (
    LOOP_INDEPENDENT,
    analyze_nest,
    dependence_distance_table,
)
from repro.ir.builder import ProgramBuilder
from repro.ir.loops import Statement


def single_nest(loops, body_fn, arrays, params=None):
    pb = ProgramBuilder("t", params=params or {})
    decls = {name: pb.array(name, dims) for name, dims in arrays.items()}
    nest = pb.nest("n", loops, body_fn(pb, decls))
    return pb.build(validate=False), nest


class TestNoDependence:
    def test_disjoint_arrays(self):
        prog, nest = single_nest(
            [("I", 0, 7)],
            lambda pb, d: [pb.assign(d["A"](pb.vars("I")[0]),
                                     [d["B"](pb.vars("I")[0])], None)],
            {"A": (8,), "B": (8,)},
        )
        deps = analyze_nest(nest, prog.params)
        assert deps == []

    def test_gcd_filter(self):
        # A(2I) written, A(2I+1) read: never intersect.
        pb = ProgramBuilder("t")
        a = pb.array("A", (32,))
        (i,) = pb.vars("I")
        nest = pb.nest("n", [("I", 0, 7)],
                       [pb.assign(a(2 * i), [a(2 * i + 1)], None)])
        deps = analyze_nest(nest, {})
        assert deps == []

    def test_out_of_range_distance(self):
        # A(I) = A(I+100) with only 8 iterations: no overlap.
        pb = ProgramBuilder("t")
        a = pb.array("A", (200,))
        (i,) = pb.vars("I")
        nest = pb.nest("n", [("I", 0, 7)],
                       [pb.assign(a(i), [a(i + 100)], None)])
        assert analyze_nest(nest, {}) == []


class TestUniformDependences:
    def test_flow_distance_one(self):
        pb = ProgramBuilder("t")
        a = pb.array("A", (16,))
        (i,) = pb.vars("I")
        nest = pb.nest("n", [("I", 1, 14)],
                       [pb.assign(a(i), [a(i - 1)], None)])
        deps = analyze_nest(nest, {})
        flows = [d for d in deps if d.kind == "flow" and d.level == 0]
        assert flows and all(d.distance == (1,) for d in flows)

    def test_anti_dependence(self):
        pb = ProgramBuilder("t")
        a = pb.array("A", (16,))
        (i,) = pb.vars("I")
        nest = pb.nest("n", [("I", 0, 13)],
                       [pb.assign(a(i), [a(i + 2)], None)])
        deps = analyze_nest(nest, {})
        antis = [d for d in deps if d.kind == "anti" and d.level == 0]
        assert antis and all(d.distance == (2,) for d in antis)

    def test_figure1_relax(self, figure1_program):
        nest = figure1_program.nest("relax")
        table = dependence_distance_table(nest, figure1_program.params)
        assert 0 in table  # carried by J
        assert 1 not in table  # I parallel
        for d in table[0]:
            assert d.distance == (1, 0)

    def test_output_dependence(self):
        pb = ProgramBuilder("t")
        a = pb.array("A", (16, 16))
        i, j = pb.vars("I", "J")
        # A(I,0) written every J iteration: output dep carried by J.
        nest = pb.nest("n", [("I", 0, 7), ("J", 0, 7)],
                       [pb.assign(a(i, 0 * j), [a(i, j)], None)])
        deps = analyze_nest(nest, {})
        outs = [d for d in deps if d.kind == "output"]
        assert any(d.level == 1 for d in outs)

    def test_loop_independent_between_statements(self):
        pb = ProgramBuilder("t")
        a = pb.array("A", (16,))
        b = pb.array("B", (16,))
        (i,) = pb.vars("I")
        nest = pb.nest("n", [("I", 0, 15)], [
            pb.assign(a(i), [b(i)], None),
            pb.assign(b(i), [a(i)], None),
        ])
        deps = analyze_nest(nest, {})
        li = [d for d in deps if d.level == LOOP_INDEPENDENT]
        # flow A: s0 writes A(i), s1 reads A(i) in same iteration
        assert any(d.array == "A" and d.kind == "flow" for d in li)
        # no loop-independent dep may flow backwards in the body
        assert all(d.src_stmt <= d.dst_stmt for d in li)


class TestTriangularAndImperfect:
    def test_lu_all_carried_outermost(self, lu_program):
        nest = lu_program.nests[0]
        deps = analyze_nest(nest, lu_program.params)
        carried = [d for d in deps if d.level >= 0]
        assert carried
        assert all(d.level == 0 for d in carried)

    def test_lu_positive_first_component(self, lu_program):
        nest = lu_program.nests[0]
        for d in analyze_nest(nest, lu_program.params):
            if d.level == 0:
                assert d.dmin[0] is not None and d.dmin[0] >= 1

    def test_imperfect_common_depth(self, lu_program):
        nest = lu_program.nests[0]
        deps = analyze_nest(nest, lu_program.params)
        # deps between the depth-2 scale stmt and depth-3 update stmt
        cross = [d for d in deps if d.src_stmt != d.dst_stmt]
        assert cross
        for d in cross:
            assert len(d.dmin) == 2  # min(depth(s1), depth(s2))


class TestParamOffsets:
    def test_reversed_access(self):
        # A(N-1-I) = A(N-I): anti/flow with distance via param offsets.
        n = 10
        pb = ProgramBuilder("t", params={"N": n})
        a = pb.array("A", (n,))
        (i,) = pb.vars("I")
        rev = -1 * i + (n - 1)
        nest = pb.nest("n", [("I", 1, n - 1)],
                       [pb.assign(a(rev), [a(rev + 1)], None)])
        deps = analyze_nest(nest, pb._prog.params)
        flows = [d for d in deps if d.kind == "flow" and d.level == 0]
        assert flows and all(d.distance == (1,) for d in flows)


class TestDedupAndRepr:
    def test_no_duplicates(self, figure1_program):
        nest = figure1_program.nest("relax")
        deps = analyze_nest(nest, figure1_program.params)
        keys = [
            (d.array, d.src_stmt, d.dst_stmt, d.kind, d.level, d.dmin, d.dmax)
            for d in deps
        ]
        assert len(keys) == len(set(keys))

    def test_repr_contains_kind(self, figure1_program):
        nest = figure1_program.nest("relax")
        deps = analyze_nest(nest, figure1_program.params)
        assert any("flow" in repr(d) for d in deps)

    def test_memoization_returns_same_list(self, figure1_program):
        nest = figure1_program.nest("relax")
        a = analyze_nest(nest, figure1_program.params)
        b = analyze_nest(nest, figure1_program.params)
        assert a is b
