"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.ir.builder import ProgramBuilder


@pytest.fixture
def rng():
    return np.random.default_rng(20260707)


@pytest.fixture
def figure1_program():
    """The paper's Figure 1 program at a small size."""
    from repro.apps import simple

    return simple.build(n=16, time_steps=2)


@pytest.fixture
def lu_program():
    from repro.apps import lu

    return lu.build(n=10)


def make_two_nest_program(n=8):
    """A tiny two-nest program for structural tests."""
    pb = ProgramBuilder("tiny", params={"N": n})
    a = pb.array("A", (n, n))
    b = pb.array("B", (n, n))
    i, j = pb.vars("I", "J")
    pb.nest("first", [("J", 0, n - 1), ("I", 0, n - 1)],
            [pb.assign(a(i, j), [b(i, j)], lambda x: x)])
    pb.nest("second", [("J", 1, n - 1), ("I", 0, n - 1)],
            [pb.assign(b(i, j), [a(i, j - 1)], lambda x: x)])
    return pb.build()
