"""Tests for Program validation and the builder DSL."""

import pytest

from repro.ir.arrays import ArrayDecl
from repro.ir.builder import ProgramBuilder
from repro.ir.expr import Var
from repro.ir.loops import Loop, LoopNest, Statement
from repro.ir.program import Program


class TestBuilder:
    def test_duplicate_array(self):
        pb = ProgramBuilder("t")
        pb.array("A", (4,))
        with pytest.raises(ValueError):
            pb.array("A", (4,))

    def test_vars(self):
        i, j = ProgramBuilder.vars("I", "J")
        assert i.coeff("I") == 1
        assert j.coeff("J") == 1

    def test_build_validates(self):
        pb = ProgramBuilder("t")
        a = pb.array("A", (4,))
        i = pb.vars("I")[0]
        # reference uses undeclared variable K in bounds
        pb.nest("n", [("I", 0, Var("K"))], [pb.assign(a(i), [a(i)], None)])
        with pytest.raises(ValueError):
            pb.build()

    def test_build_no_validate(self):
        pb = ProgramBuilder("t")
        a = pb.array("A", (4,))
        i = pb.vars("I")[0]
        pb.nest("n", [("I", 0, Var("K"))], [pb.assign(a(i), [a(i)], None)])
        prog = pb.build(validate=False)
        assert prog.nests


class TestProgramValidate:
    def _base(self):
        pb = ProgramBuilder("t", params={"N": 4})
        a = pb.array("A", (4, 4))
        i, j = pb.vars("I", "J")
        pb.nest("n1", [("I", 0, 3), ("J", 0, 3)],
                [pb.assign(a(i, j), [a(i, j)], None)])
        return pb

    def test_ok(self):
        self._base().build().validate()

    def test_duplicate_nest_names(self):
        pb = self._base()
        a = pb._prog.arrays["A"]
        i, j = pb.vars("I", "J")
        pb.nest("n1", [("I", 0, 3), ("J", 0, 3)],
                [pb.assign(a(i, j), [a(i, j)], None)])
        with pytest.raises(ValueError, match="duplicate nest"):
            pb.build()

    def test_duplicate_loop_var(self):
        pb = ProgramBuilder("t")
        a = pb.array("A", (4, 4))
        i = Var("I")
        pb.nest("n", [("I", 0, 3), ("I", 0, 3)],
                [pb.assign(a(i, i), [a(i, i)], None)])
        with pytest.raises(ValueError, match="duplicate loop variable"):
            pb.build()

    def test_undeclared_array(self):
        prog = Program("t", arrays={}, params={})
        stray = ArrayDecl("Z", (4,))
        nest = LoopNest(
            "n",
            [Loop.make("I", 0, 3)],
            [Statement(write=stray(Var("I")), reads=())],
        )
        prog.nests.append(nest)
        with pytest.raises(ValueError, match="undeclared array"):
            prog.validate()

    def test_shadowed_declaration(self):
        decl1 = ArrayDecl("A", (4,))
        decl2 = ArrayDecl("A", (4,))
        prog = Program("t", arrays={"A": decl1}, params={})
        nest = LoopNest(
            "n",
            [Loop.make("I", 0, 3)],
            [Statement(write=decl2(Var("I")), reads=())],
        )
        prog.nests.append(nest)
        with pytest.raises(ValueError, match="shadowed"):
            prog.validate()

    def test_unbound_subscript_var(self):
        pb = ProgramBuilder("t")
        a = pb.array("A", (4,))
        pb.nest("n", [("I", 0, 3)], [pb.assign(a(Var("Q")), [], None)])
        with pytest.raises(ValueError, match="unbound variable Q"):
            pb.build()

    def test_bound_uses_inner_var(self):
        pb = ProgramBuilder("t")
        a = pb.array("A", (4, 4))
        i, j = pb.vars("I", "J")
        # I's bound uses J, which is declared later (inner) - illegal.
        pb.nest("n", [("I", 0, Var("J")), ("J", 0, 3)],
                [pb.assign(a(i, j), [a(i, j)], None)])
        with pytest.raises(ValueError, match="not an outer index"):
            pb.build()


class TestProgramQueries:
    def test_nest_lookup(self, figure1_program):
        assert figure1_program.nest("add").name == "add"
        with pytest.raises(KeyError):
            figure1_program.nest("missing")

    def test_total_iterations(self, figure1_program):
        n = figure1_program.params["N"]
        expected = n * n + (n - 2) * n
        assert figure1_program.total_iterations() == expected

    def test_repr(self, figure1_program):
        assert "simple" in repr(figure1_program)
