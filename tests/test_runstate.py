"""Live run state: the driver-side RunMonitor (hook accounting, rate
limiting, best-effort emission) and the reader-side status snapshot
(run-state classification, EWMA latency → ETA, per-scheme matrix,
cache-hit rate) derived from the journal alone, plus the report
payload that stitches journal + time series together."""

import subprocess
import time
from dataclasses import asdict

import pytest

from repro import obs
from repro.errors import JournalError
from repro.obs.runstate import (
    RunMonitor,
    build_report,
    load_status,
    pid_alive,
    rss_bytes,
    status_from_state,
)
from repro.obs.timeseries import TimeseriesSink, ts_path
from repro.pipeline.grid import GridPoint, GridResult
from repro.pipeline.journal import JournalState, JournalWriter, journal_dir


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _points():
    return [
        GridPoint(app="simple", scheme=s, nprocs=p, n=8, time_steps=2)
        for s in ("base", "comp") for p in (1, 4)
    ]


def _spec(points):
    return {"points": [asdict(p) for p in points],
            "degrade": True, "locality": False}


def _result(point, elapsed=0.5, **kw):
    return GridResult(point=point, ok=kw.pop("ok", True),
                      total_time=123.0, n_accesses=42,
                      miss_breakdown={"cold": 7}, elapsed=elapsed, **kw)


def _dead_pid():
    proc = subprocess.Popen(["true"])
    proc.wait()
    return proc.pid


class TestHelpers:
    def test_rss_bytes_reports_something_plausible(self):
        rss = rss_bytes()
        assert rss is None or rss > 1_000_000  # >1 MB for a python proc

    def test_pid_alive(self):
        import os
        assert pid_alive(None) is None
        assert pid_alive(0) is None
        assert pid_alive(os.getpid()) is True
        assert pid_alive(_dead_pid()) is False


class TestRunMonitor:
    def test_hook_accounting(self):
        m = RunMonitor(total=4, interval=1000)
        m.wave_started(1, pending=4)
        for i in range(3):
            m.point_dispatched(i)
        assert sorted(m._in_flight) == [0, 1, 2]
        m.point_finished(0, _result(_points()[0]))
        m.point_finished(1, _result(_points()[1], ok=False, attempts=3))
        m.point_finished(2, _result(_points()[2], degraded=True,
                                    attempts=2))
        served = _result(_points()[3], ok=False, store_hit=True)
        m.point_dispatched(3)
        m.point_finished(3, served)
        snap = m.progress()
        assert snap["dispatched"] == 4 and snap["finished"] == 4
        assert snap["errors"] == 1          # store hits never count
        assert snap["degraded"] == 1
        assert snap["retried"] == 2
        assert snap["store_hits"] == 1
        assert snap["in_flight"] == []
        assert snap["wave"] == 1 and snap["total"] == 4

    def test_tick_is_rate_limited(self):
        m = RunMonitor(total=1, interval=1000)
        assert m.tick() is True        # first tick always lands
        assert m.tick() is False       # inside the interval
        assert m.tick(force=True) is True
        assert m.ticks == 2

    def test_heartbeats_land_in_journal_and_series(self, tmp_path):
        points = _points()
        writer = JournalWriter.create(tmp_path, _spec(points))
        sink = TimeseriesSink(ts_path(tmp_path, writer.run_id),
                              writer.run_id)
        m = RunMonitor(total=len(points), journal=writer, sink=sink,
                       interval=1000, jobs=2)
        m.wave_started(1, pending=4)
        m.point_dispatched(0)
        m.point_finished(0, _result(points[0]))
        m.close()  # forced final tick
        writer.close()

        state = JournalState.load(tmp_path / f"{writer.run_id}.jsonl")
        assert state.heartbeats == 2  # wave tick + close tick
        hb = state.last_heartbeat
        assert hb["finished"] == 1 and hb["total"] == 4
        assert hb["jobs"] == 2 and hb["in_flight"] == []
        from repro.obs.timeseries import load_series
        series = load_series(ts_path(tmp_path, writer.run_id))
        assert len(series["samples"]) == 2
        assert series["samples"][-1]["progress"]["finished"] == 1

    def test_emission_failure_is_swallowed_and_counted(self):
        obs.enable()

        class Boom:
            def heartbeat(self, **kw):
                raise OSError("disk gone")

        m = RunMonitor(total=1, journal=Boom(), interval=1000)
        assert m.tick() is True  # the failure must not propagate
        c = obs.collector().metrics.counters
        assert c["monitor.errors"].value == 1
        assert c["monitor.ticks"].value == 1


class TestStatusFromState:
    def _journal(self, tmp_path, points=None):
        points = points if points is not None else _points()
        return points, JournalWriter.create(tmp_path, _spec(points))

    def _load(self, tmp_path, writer):
        return JournalState.load(tmp_path / f"{writer.run_id}.jsonl")

    def test_finished_run(self, tmp_path):
        points, writer = self._journal(tmp_path)
        writer.wave(1, len(points))
        for i, p in enumerate(points):
            writer.point_started(i, p)
            writer.point_done(i, _result(p))
        writer.end("complete", executed=len(points))
        writer.close()
        st = status_from_state(self._load(tmp_path, writer))
        assert st.state == "finished"
        assert st.total == 4 and st.finished == 4 and st.ok == 4
        assert st.progress == 1.0 and st.eta is None
        assert st.in_flight == []
        # Every (app, scheme) cell complete.
        assert st.scheme_matrix == {"simple": {"base": [2, 2],
                                               "comp": [2, 2]}}

    def test_running_run_with_in_flight_and_eta(self, tmp_path):
        points, writer = self._journal(tmp_path)
        writer.wave(1, len(points))
        for i in (0, 1):
            writer.point_started(i, points[i])
        writer.point_done(0, _result(points[0], elapsed=1.0))
        writer.point_done(1, _result(points[1], elapsed=2.0))
        writer.point_started(2, points[2])
        writer.heartbeat(jobs=2, finished=2)
        writer.close()
        st = status_from_state(self._load(tmp_path, writer))
        assert st.state == "running"  # our (alive) pid wrote the header
        assert st.finished == 2
        assert st.in_flight == [{"i": 2, "label": points[2].label()}]
        # EWMA over executed latencies in journal order:
        # 1.0 then 0.25*2.0 + 0.75*1.0 = 1.25; two points remain.
        assert st.ewma_latency == pytest.approx(1.25)
        assert st.eta == pytest.approx(2 * 1.25 / 2)  # jobs=2 heartbeat
        assert st.heartbeat_age is not None

    def test_store_hits_excluded_from_ewma(self, tmp_path):
        points, writer = self._journal(tmp_path)
        writer.point_done(0, _result(points[0], elapsed=500.0,
                                     store_hit=True))
        writer.point_done(1, _result(points[1], elapsed=1.0))
        writer.close()
        st = status_from_state(self._load(tmp_path, writer))
        assert st.store_hits == 1 and st.executed == 1
        assert st.ewma_latency == pytest.approx(1.0)

    def test_cache_hit_rate(self, tmp_path):
        points, writer = self._journal(tmp_path)
        writer.point_done(0, _result(points[0], pass_runs={"sim": 3},
                                     pass_hits={"sim": 1}))
        writer.close()
        st = status_from_state(self._load(tmp_path, writer))
        assert st.cache_hit_rate == pytest.approx(0.25)

    def test_interrupted_via_end_record(self, tmp_path):
        points, writer = self._journal(tmp_path)
        writer.point_done(0, _result(points[0]))
        writer.end("interrupted", executed=1)
        writer.close()
        st = status_from_state(self._load(tmp_path, writer))
        assert st.state == "interrupted"

    def test_interrupted_via_dead_pid(self, tmp_path):
        """SIGKILL shape: no end record, driver pid gone."""
        points, writer = self._journal(tmp_path)
        writer.point_started(0, points[0])
        writer.point_started(1, points[1])
        writer.point_done(0, _result(points[0]))
        writer.heartbeat(pid=_dead_pid(), finished=1)
        writer.close()
        st = status_from_state(self._load(tmp_path, writer))
        assert st.state == "interrupted"
        assert st.pid_alive is False
        assert [e["i"] for e in st.in_flight] == [1]

    def test_stale_when_heartbeat_is_old(self, tmp_path):
        points, writer = self._journal(tmp_path)
        writer.heartbeat(finished=0)  # pid in header is us: alive
        writer.close()
        st = status_from_state(self._load(tmp_path, writer),
                               now=time.time() + 60, stale_after=15.0)
        assert st.state == "stale"

    def test_torn_tail_and_damage_surfaced(self, tmp_path):
        points, writer = self._journal(tmp_path)
        writer.point_done(0, _result(points[0]))
        writer.close()
        path = tmp_path / f"{writer.run_id}.jsonl"
        with open(path, "a") as fh:
            fh.write('{"type": "done", "i": 1, "resu')
        st = status_from_state(JournalState.load(path))
        assert st.torn_tail
        assert st.finished == 1


class TestLoadStatusAndReport:
    def _store_with_run(self, tmp_path, ts=True):
        store = tmp_path / "store"
        jdir = journal_dir(store)
        points = _points()
        writer = JournalWriter.create(jdir, _spec(points))
        sink = (TimeseriesSink(ts_path(jdir, writer.run_id),
                               writer.run_id) if ts else None)
        m = RunMonitor(total=len(points), journal=writer, sink=sink,
                       interval=0.05)
        writer.wave(1, len(points))
        m.wave_started(1, len(points))
        for i, p in enumerate(points):
            writer.point_started(i, p)
            m.point_dispatched(i)
            r = _result(p, elapsed=0.01 * (i + 1))
            writer.point_done(i, r)
            m.point_finished(i, r)
            time.sleep(0.06)  # past the monitor interval → extra ticks
        m.close()
        writer.end("complete", executed=len(points))
        writer.close()
        return store, writer.run_id

    def test_load_status_resolves_latest(self, tmp_path):
        store, run_id = self._store_with_run(tmp_path)
        st = load_status(store, "latest")
        assert st.run_id == run_id
        assert st.state == "finished"
        assert load_status(store, run_id).run_id == run_id

    def test_load_status_missing_run_raises(self, tmp_path):
        with pytest.raises(JournalError):
            load_status(tmp_path / "no-store", "latest")

    def test_build_report_payload(self, tmp_path):
        store, run_id = self._store_with_run(tmp_path)
        payload = build_report(store, "latest")
        assert payload["schema"] == 1
        assert payload["run_id"] == run_id
        assert payload["status"]["state"] == "finished"
        assert "spec" not in payload["header"]
        assert len(payload["points"]) == 4
        assert payload["failures"] == []
        # Timeline is origin-relative and monotone from zero.
        ts = [e["t"] for e in payload["timeline"]]
        assert ts and ts[0] == 0.0 and ts == sorted(ts)
        kinds = {e["type"] for e in payload["timeline"]}
        assert {"wave", "start", "done", "heartbeat"} <= kinds
        # The time series became plottable curves.
        assert payload["series"]["samples"] >= 2
        finished_curve = payload["series"]["curves"]["finished"]
        assert finished_curve[-1][1] == 4.0
        import json
        json.dumps(payload)  # --json and --html render the same artifact

    def test_report_without_series_file(self, tmp_path):
        store, run_id = self._store_with_run(tmp_path, ts=False)
        payload = build_report(store, "latest")
        assert payload["series"]["samples"] == 0
        assert payload["series"]["curves"] == {}
