"""Tests for affine expressions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.expr import AffineExpr, Const, Param, Var


class TestConstruction:
    def test_var(self):
        v = Var("I")
        assert v.coeff("I") == 1
        assert v.const == 0
        assert v.variables == ("I",)

    def test_const(self):
        c = Const(5)
        assert c.is_constant()
        assert c.constant_value() == 5

    def test_zero_coeffs_dropped(self):
        e = AffineExpr({"I": 0, "J": 2}, 1)
        assert e.variables == ("J",)

    def test_coerce(self):
        assert AffineExpr.coerce(3) == Const(3)
        e = Var("I")
        assert AffineExpr.coerce(e) is e

    def test_immutability(self):
        e = Var("I")
        with pytest.raises(AttributeError):
            e.const = 5

    def test_constant_value_raises_on_nonconstant(self):
        with pytest.raises(ValueError):
            Var("I").constant_value()


class TestArithmetic:
    def test_add(self):
        e = Var("I") + Var("J") + 3
        assert e.coeff("I") == 1
        assert e.coeff("J") == 1
        assert e.const == 3

    def test_radd_rsub(self):
        e = 5 + Var("I")
        assert e.const == 5
        e2 = 5 - Var("I")
        assert e2.coeff("I") == -1
        assert e2.const == 5

    def test_sub_cancel(self):
        e = Var("I") - Var("I")
        assert e == 0

    def test_scale(self):
        e = 3 * (Var("I") + 1)
        assert e.coeff("I") == 3
        assert e.const == 3

    def test_scale_by_const_expr(self):
        e = Var("I") * Const(4)
        assert e.coeff("I") == 4

    def test_scale_by_nonconst_raises(self):
        with pytest.raises(TypeError):
            Var("I") * Var("J")

    def test_neg(self):
        e = -(Var("I") + 2)
        assert e.coeff("I") == -1
        assert e.const == -2


class TestEvalSubs:
    def test_eval(self):
        e = 2 * Var("I") - Var("J") + 7
        assert e.eval({"I": 3, "J": 4}) == 9

    def test_eval_missing_binding(self):
        with pytest.raises(KeyError):
            Var("I").eval({})

    def test_subs_int(self):
        e = Var("I") + Var("J")
        assert e.subs({"I": 5}) == Var("J") + 5

    def test_subs_expr(self):
        e = 2 * Var("I")
        out = e.subs({"I": Var("K") + 1})
        assert out == 2 * Var("K") + 2

    def test_depends_on(self):
        e = Var("I") + Param("N")
        assert e.depends_on(["I"])
        assert not e.depends_on(["J"])


class TestEquality:
    def test_hash_eq(self):
        a = Var("I") + 1
        b = 1 + Var("I")
        assert a == b
        assert hash(a) == hash(b)

    def test_int_comparison(self):
        assert Const(4) == 4
        assert AffineExpr({}, 0) == 0

    def test_repr_roundtrip_ish(self):
        assert repr(Var("I") - Var("J") + 2) == "I - J + 2"
        assert repr(Const(0)) == "0"


ints = st.integers(-20, 20)
exprs = st.builds(
    lambda ci, cj, c: AffineExpr({"I": ci, "J": cj}, c), ints, ints, ints
)


class TestAlgebraProperties:
    @given(exprs, exprs, st.integers(-10, 10), st.integers(-10, 10))
    @settings(max_examples=200, deadline=None)
    def test_linearity_under_eval(self, e1, e2, i, j):
        env = {"I": i, "J": j}
        assert (e1 + e2).eval(env) == e1.eval(env) + e2.eval(env)
        assert (e1 - e2).eval(env) == e1.eval(env) - e2.eval(env)
        assert (e1 * 3).eval(env) == 3 * e1.eval(env)
        assert (-e1).eval(env) == -e1.eval(env)

    @given(exprs, st.integers(-10, 10), st.integers(-10, 10),
           st.integers(-10, 10))
    @settings(max_examples=200, deadline=None)
    def test_subs_commutes_with_eval(self, e, k, i, j):
        env = {"K": k, "J": j}
        substituted = e.subs({"I": Var("K") * 2 + 1})
        direct = e.eval({"I": 2 * k + 1, "J": j})
        assert substituted.eval(env) == direct
