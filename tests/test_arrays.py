"""Tests for array declarations and affine references."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.arrays import AccessFunction, ArrayDecl, ArrayRef
from repro.ir.expr import Const, Param, Var


class TestArrayDecl:
    def test_basic(self):
        a = ArrayDecl("A", (4, 6), 8)
        assert a.rank == 2
        assert a.size == 24
        assert a.nbytes == 192

    def test_rejects_empty_dims(self):
        with pytest.raises(ValueError):
            ArrayDecl("A", ())

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ArrayDecl("A", (4, 0))

    def test_linearize_column_major(self):
        a = ArrayDecl("A", (4, 6))
        # column-major: first index fastest
        assert a.linearize((0, 0)) == 0
        assert a.linearize((1, 0)) == 1
        assert a.linearize((0, 1)) == 4
        assert a.linearize((3, 5)) == 23

    def test_linearize_3d(self):
        a = ArrayDecl("A", (2, 3, 4))
        assert a.linearize((1, 2, 3)) == 1 + 2 * 2 + 3 * 6

    def test_linearize_bounds(self):
        a = ArrayDecl("A", (4, 4))
        with pytest.raises(IndexError):
            a.linearize((4, 0))
        with pytest.raises(ValueError):
            a.linearize((0,))

    @given(st.tuples(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5)))
    @settings(max_examples=50, deadline=None)
    def test_linearize_bijective(self, dims):
        a = ArrayDecl("A", dims)
        seen = set()
        for addr in range(a.size):
            idx = a.delinearize(addr)
            assert a.linearize(idx) == addr
            assert idx not in seen
            seen.add(idx)

    def test_delinearize_out_of_range(self):
        a = ArrayDecl("A", (2, 2))
        with pytest.raises(IndexError):
            a.delinearize(4)


class TestArrayRef:
    def setup_method(self):
        self.a = ArrayDecl("A", (8, 8))
        self.i = Var("I")
        self.j = Var("J")

    def test_call_sugar(self):
        ref = self.a(self.i, self.j + 1)
        assert isinstance(ref, ArrayRef)
        assert ref.index_exprs[1] == self.j + 1

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            self.a(self.i)

    def test_index_at(self):
        ref = self.a(self.i + 1, 2 * self.j)
        assert ref.index_at({"I": 2, "J": 3}) == (3, 6)

    def test_address_at(self):
        ref = self.a(self.i, self.j)
        assert ref.address_at({"I": 3, "J": 2}) == 3 + 2 * 8


class TestAccessFunction:
    def test_matrix_and_offset(self):
        a = ArrayDecl("A", (8, 8))
        i, j = Var("I"), Var("J")
        n = Param("N")
        ref = a(2 * i + j + 1, j - n)
        af = ref.access_function(("I", "J"))
        assert af.matrix == ((2, 1), (0, 1))
        assert af.offset[0] == Const(1)
        assert af.offset[1] == -n

    def test_rank(self):
        a = ArrayDecl("A", (8, 8))
        i, j = Var("I"), Var("J")
        assert a(i, j).access_function(("I", "J")).rank == 2
        assert a(i, i).access_function(("I", "J")).rank == 1

    def test_constant_offset(self):
        a = ArrayDecl("A", (8, 8))
        i, j = Var("I"), Var("J")
        af = a(i + 3, j).access_function(("I", "J"))
        assert af.constant_offset() == [3, 0]

    def test_constant_offset_raises_with_params(self):
        a = ArrayDecl("A", (8, 8))
        i, j = Var("I"), Var("J")
        af = a(i + Param("N"), j).access_function(("I", "J"))
        with pytest.raises(ValueError):
            af.constant_offset()

    def test_partial_depth(self):
        a = ArrayDecl("A", (8, 8))
        i1, i2 = Var("I1"), Var("I2")
        ref = a(i2, i1)
        af = ref.access_function(("I1",))
        assert af.matrix == ((0,), (1,))
        # I2 lands in the offset as a residual symbol
        assert af.offset[0].coeff("I2") == 1
