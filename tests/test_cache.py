"""Tests for the private cache models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.cache import (
    CacheConfig,
    assoc_lru_hits,
    direct_mapped_hits,
    segmented_prev_equal,
    segmented_prev_position,
)


class TestConfig:
    def test_geometry(self):
        c = CacheConfig(size_bytes=256, line_bytes=16)
        assert c.nlines == 16
        assert c.nsets == 16

    def test_assoc_geometry(self):
        c = CacheConfig(size_bytes=256, line_bytes=16, assoc=2)
        assert c.nsets == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=100, line_bytes=16)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0, line_bytes=16)

    def test_mapping(self):
        c = CacheConfig(size_bytes=64, line_bytes=16)  # 4 sets
        assert c.line_of(np.array([0, 16, 64])).tolist() == [0, 1, 4]
        assert c.set_of(np.array([0, 1, 4, 5])).tolist() == [0, 1, 0, 1]


class TestSegmentedHelpers:
    def test_prev_equal(self):
        group = np.array([0, 0, 1, 0, 1])
        value = np.array([5, 5, 7, 6, 7])
        out = segmented_prev_equal(group, value)
        assert out.tolist() == [False, True, False, False, True]

    def test_prev_position(self):
        group = np.array([0, 1, 0, 1, 0])
        pos = np.arange(5)
        out = segmented_prev_position(group, pos)
        assert out.tolist() == [-1, -1, 0, 1, 2]

    def test_empty(self):
        assert len(segmented_prev_equal(np.array([]), np.array([]))) == 0
        assert len(
            segmented_prev_position(np.array([]), np.array([]))
        ) == 0


def naive_direct_mapped(proc, addr, cfg):
    """Reference implementation: dict-based direct-mapped caches."""
    cache = {}
    hits = np.zeros(len(addr), dtype=bool)
    for i, (p, a) in enumerate(zip(proc, addr)):
        ln = a // cfg.line_bytes
        s = ln % cfg.nsets
        hits[i] = cache.get((p, s)) == ln
        cache[(p, s)] = ln
    return hits


class TestDirectMapped:
    def test_simple_reuse(self):
        cfg = CacheConfig(size_bytes=64, line_bytes=16)
        proc = np.zeros(4, dtype=np.int64)
        addr = np.array([0, 4, 8, 16])  # same line x3 then new line
        hits = direct_mapped_hits(proc, addr, cfg)
        assert hits.tolist() == [False, True, True, False]

    def test_conflict_eviction(self):
        cfg = CacheConfig(size_bytes=32, line_bytes=16)  # 2 sets
        proc = np.zeros(3, dtype=np.int64)
        # lines 0 and 2 both map to set 0
        addr = np.array([0, 32, 0])
        hits = direct_mapped_hits(proc, addr, cfg)
        assert hits.tolist() == [False, False, False]

    def test_per_processor_isolation(self):
        cfg = CacheConfig(size_bytes=64, line_bytes=16)
        proc = np.array([0, 1, 0, 1])
        addr = np.array([0, 0, 0, 0])
        hits = direct_mapped_hits(proc, addr, cfg)
        assert hits.tolist() == [False, False, True, True]

    @given(
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 255)),
                 min_size=1, max_size=200)
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_naive(self, accesses):
        cfg = CacheConfig(size_bytes=64, line_bytes=16)
        proc = np.array([p for p, _ in accesses], dtype=np.int64)
        addr = np.array([a for _, a in accesses], dtype=np.int64)
        fast = direct_mapped_hits(proc, addr, cfg)
        ref = naive_direct_mapped(proc, addr, cfg)
        assert np.array_equal(fast, ref)


class TestAssocLRU:
    def test_two_way_avoids_conflict(self):
        cfg1 = CacheConfig(size_bytes=32, line_bytes=16, assoc=1)
        cfg2 = CacheConfig(size_bytes=32, line_bytes=16, assoc=2)
        proc = np.zeros(4, dtype=np.int64)
        addr = np.array([0, 32, 0, 32])  # ping-pong between 2 lines
        dm = assoc_lru_hits(proc, addr, cfg1)
        tw = assoc_lru_hits(proc, addr, cfg2)
        assert dm.tolist() == [False, False, False, False]
        assert tw.tolist() == [False, False, True, True]

    def test_lru_order(self):
        cfg = CacheConfig(size_bytes=32, line_bytes=16, assoc=2)
        proc = np.zeros(6, dtype=np.int64)
        # lines 0,2 fit the 2-way set; line 4 evicts the LRU line 0.
        addr = np.array([0, 32, 0, 32, 64, 32])
        hits = assoc_lru_hits(proc, addr, cfg)
        assert hits.tolist() == [False, False, True, True, False, True]

    def test_assoc1_matches_direct(self):
        cfg = CacheConfig(size_bytes=64, line_bytes=16)
        rng = np.random.default_rng(3)
        proc = rng.integers(0, 2, 100)
        addr = rng.integers(0, 16, 100) * 16
        assert np.array_equal(
            assoc_lru_hits(proc, addr, cfg),
            direct_mapped_hits(proc, addr, cfg),
        )
