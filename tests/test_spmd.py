"""Tests for SPMD plan generation: ownership, synchronization, phases."""

import pytest

from repro.apps import adi, lu, simple, stencil5
from repro.codegen.spmd import Scheme, SyncKind, generate_spmd
from repro.compiler import compile_program, restructure_program
from repro.decomp.greedy import decompose_program
from repro.machine.trace import enumerate_iterations, _owner_ids
import numpy as np


def owners_for(spmd, phase_idx, stmt_idx):
    phase = spmd.phases[phase_idx]
    nest = phase.nest
    st = nest.body[stmt_idx]
    depth = st.depth if st.depth is not None else nest.depth
    cols, n = enumerate_iterations(nest, spmd.program.params, depth)
    return _owner_ids(
        phase.owners[stmt_idx], nest, cols, n, spmd.program.params,
        spmd.nprocs, spmd.grid,
    )


class TestBase:
    def test_every_iteration_owned_once(self, figure1_program):
        spmd = compile_program(figure1_program, Scheme.BASE, 4)
        for k, phase in enumerate(spmd.phases):
            o = owners_for(spmd, k, 0)
            assert len(o) == phase.nest.count_iterations(
                figure1_program.params
            )
            assert o.min() >= 0 and o.max() < 4

    def test_block_partition_balanced(self, figure1_program):
        spmd = compile_program(figure1_program, Scheme.BASE, 4)
        o = owners_for(spmd, 0, 0)
        counts = np.bincount(o, minlength=4)
        assert counts.max() - counts.min() <= counts.max() // 2

    def test_barriers(self, figure1_program):
        spmd = compile_program(figure1_program, Scheme.BASE, 4)
        assert all(p.sync_after is SyncKind.BARRIER for p in spmd.phases)

    def test_lu_barrier_per_outer_iteration(self, lu_program):
        spmd = compile_program(lu_program, Scheme.BASE, 4)
        n = lu_program.params["N"]
        # parallel level is I2 (level 1): one barrier per I1 value
        assert spmd.phases[0].barriers_per_execution == n

    def test_serial_nest(self):
        from repro.ir.builder import ProgramBuilder

        pb = ProgramBuilder("t", params={})
        a = pb.array("A", (8, 8))
        i, j = pb.vars("I", "J")
        pb.nest("chain", [("I", 1, 7), ("J", 1, 7)],
                [pb.assign(a(i, j),
                           [a(i - 1, j), a(i, j - 1), a(i - 1, j - 1)],
                           None)])
        spmd = compile_program(pb.build(), Scheme.BASE, 4)
        o = owners_for(spmd, 0, 0)
        assert (o == 0).all()

    def test_layouts_untouched(self, figure1_program):
        spmd = compile_program(figure1_program, Scheme.BASE, 4)
        assert all(not t.restructured for t in spmd.transformed.values())


class TestDecompSchemes:
    def test_partition_property(self, figure1_program):
        spmd = compile_program(figure1_program, Scheme.COMP_DECOMP_DATA, 4)
        for k, phase in enumerate(spmd.phases):
            for s in range(len(phase.nest.body)):
                o = owners_for(spmd, k, s)
                assert o.min() >= 0 and o.max() < 4

    def test_sync_none_when_local(self, figure1_program):
        spmd = compile_program(figure1_program, Scheme.COMP_DECOMP, 4)
        relax = next(p for p in spmd.phases if p.nest.name == "relax")
        assert relax.sync_after is SyncKind.NONE
        assert relax.all_reads_local

    def test_stencil_neighbor_sync(self):
        prog = stencil5.build(12, time_steps=2)
        spmd = compile_program(prog, Scheme.COMP_DECOMP, 4)
        update = next(p for p in spmd.phases if p.nest.name == "update")
        assert update.sync_after is SyncKind.NEIGHBOR

    def test_adi_pipeline(self):
        prog = adi.build(10, time_steps=2)
        spmd = compile_program(prog, Scheme.COMP_DECOMP, 4)
        row = next(p for p in spmd.phases if p.nest.name == "rowsweep")
        col = next(p for p in spmd.phases if p.nest.name == "colsweep")
        assert row.sync_after is SyncKind.PIPELINE
        assert row.pipelined
        assert row.seq_steps == 10  # the sequential I2 range (0..N-1)
        assert not col.pipelined

    def test_data_scheme_restructures(self):
        prog = lu.build(8)
        spmd = compile_program(prog, Scheme.COMP_DECOMP_DATA, 4)
        assert spmd.transformed["A"].restructured
        spmd2 = compile_program(prog, Scheme.COMP_DECOMP, 4)
        assert not spmd2.transformed["A"].restructured
        # but owner information exists in both
        assert spmd2.transformed["A"].owner_specs

    def test_grid_matches_rank(self):
        prog = stencil5.build(12, time_steps=2)
        spmd = compile_program(prog, Scheme.COMP_DECOMP, 8)
        assert spmd.grid == (4, 2)

    def test_same_decomposition_same_owners_across_schemes(self, figure1_program):
        rprog = restructure_program(figure1_program)
        d = decompose_program(rprog, 4)
        s1 = compile_program(figure1_program, Scheme.COMP_DECOMP, 4, decomp=d)
        s2 = compile_program(figure1_program, Scheme.COMP_DECOMP_DATA, 4,
                             decomp=d)
        for k in range(len(s1.phases)):
            o1 = owners_for(s1, k, 0)
            o2 = owners_for(s2, k, 0)
            assert np.array_equal(o1, o2)

    def test_requires_decomp(self, figure1_program):
        from repro.codegen.spmd import generate_spmd

        with pytest.raises(ValueError):
            generate_spmd(figure1_program, Scheme.COMP_DECOMP, 4)


class TestOwnerVectorization:
    def test_affine_owner_matches_model(self):
        """Vectorized owner ids agree with the scalar CompDecomp +
        folding path."""
        from repro.decomp.folding import fold_owner, linearize_grid

        prog = restructure_program(stencil5.build(12, time_steps=2))
        d = decompose_program(prog, 8)
        spmd = generate_spmd(prog, Scheme.COMP_DECOMP, 8, decomp=d)
        phase = next(p for p in spmd.phases if p.nest.name == "update")
        nest = phase.nest
        cols, n = enumerate_iterations(nest, prog.params, nest.depth)
        o = _owner_ids(phase.owners[0], nest, cols, n, prog.params, 8,
                       spmd.grid)
        cd = d.comp_for(nest.name, 0)
        plan = phase.owners[0]
        for t in range(0, n, 7):
            it = [int(cols[v][t]) for v in nest.loop_vars]
            virt = cd.virtual_proc(it)
            coords = fold_owner(virt, plan.extents, d.foldings, spmd.grid)
            assert o[t] == linearize_grid(coords, spmd.grid)
