"""Tests for unimodular restructuring and parallel-level detection."""

from repro.analysis.dependence import analyze_nest
from repro.analysis.parallelism import (
    carried_distance_vectors,
    outermost_parallel_level,
    parallel_levels,
    variable_components,
)
from repro.analysis.unimodular import expose_outer_parallelism
from repro.ir.builder import ProgramBuilder
from repro.util.intlinalg import identity, is_unimodular


class TestParallelLevels:
    def test_figure1(self, figure1_program):
        add = figure1_program.nest("add")
        relax = figure1_program.nest("relax")
        assert parallel_levels(add, params=figure1_program.params) == (0, 1)
        assert parallel_levels(relax, params=figure1_program.params) == (1,)
        assert outermost_parallel_level(
            relax, params=figure1_program.params
        ) == 1

    def test_fully_serial(self):
        pb = ProgramBuilder("t")
        a = pb.array("A", (16, 16))
        i, j = pb.vars("I", "J")
        nest = pb.nest("n", [("I", 1, 14), ("J", 1, 14)],
                       [pb.assign(a(i, j), [a(i - 1, j), a(i, j - 1)], None)])
        assert parallel_levels(nest, params={}) == ()
        assert outermost_parallel_level(nest, params={}) is None

    def test_carried_distance_vectors(self, figure1_program):
        relax = figure1_program.nest("relax")
        deps = analyze_nest(relax, figure1_program.params)
        vecs = carried_distance_vectors(deps)
        assert (1, 0) in vecs

    def test_variable_components(self, lu_program):
        nest = lu_program.nests[0]
        deps = analyze_nest(nest, lu_program.params)
        comps = variable_components(deps, nest.depth)
        assert 0 in comps  # the I1 distance varies


class TestExpose:
    def test_interchange_moves_parallel_out(self, figure1_program):
        relax = figure1_program.nest("relax")
        res = expose_outer_parallelism(relax, figure1_program.params)
        assert [l.var for l in res.nest.loops] == ["I", "J"]
        assert res.parallel == (0,)
        assert is_unimodular(res.transform)
        assert res.outer_parallel_count == 1

    def test_already_parallel_identity(self, figure1_program):
        add = figure1_program.nest("add")
        res = expose_outer_parallelism(add, figure1_program.params)
        assert res.transform == identity(2)
        assert res.nest is add

    def test_imperfect_nest_untouched(self, lu_program):
        nest = lu_program.nests[0]
        res = expose_outer_parallelism(nest, lu_program.params)
        assert res.nest is nest
        assert res.transform == identity(3)
        # BASE will parallelize I2 (level 1), like the paper.
        assert res.parallel == (1, 2)

    def test_triangular_bounds_block_illegal_permutation(self):
        # Parallel loop J has bounds depending on I: cannot be hoisted.
        pb = ProgramBuilder("t", params={"N": 8})
        a = pb.array("A", (8, 8))
        i, j = pb.vars("I", "J")
        nest = pb.nest("n", [("I", 1, 7), ("J", i, 7)],
                       [pb.assign(a(j, i), [a(j, i - 1)], None)])
        res = expose_outer_parallelism(nest, pb._prog.params)
        assert res.nest is nest  # fell back

    def test_semantics_preserved_by_interchange(self, figure1_program):
        """Executing the restructured relax nest gives the same values."""
        import numpy as np

        from repro.codegen.executor import execute_program
        from repro.compiler import restructure_program

        init = {
            name: 1.0 + np.arange(decl.size, dtype=float).reshape(decl.dims)
            for name, decl in figure1_program.arrays.items()
        }
        a = execute_program(figure1_program, init=init)
        b = execute_program(restructure_program(figure1_program), init=init)
        for name in a:
            assert np.allclose(a[name], b[name])

    def test_idempotent(self, figure1_program):
        from repro.compiler import restructure_program

        r1 = restructure_program(figure1_program)
        for nest in r1.nests:
            res = expose_outer_parallelism(nest, r1.params)
            assert [l.var for l in res.nest.loops] == [
                l.var for l in nest.loops
            ]

    def test_memoized(self, figure1_program):
        relax = figure1_program.nest("relax")
        r1 = expose_outer_parallelism(relax, figure1_program.params)
        r2 = expose_outer_parallelism(relax, figure1_program.params)
        assert r1 is r2

    def test_band_locality_order_vpenta(self):
        """vpenta's 3-D sweeps put the plane loop K inside the column
        loop J, keeping the 2-D coefficient column in cache across the
        three planes."""
        from repro.apps import vpenta

        prog = vpenta.build(n=12)
        nest = prog.nest("fwd3d")
        res = expose_outer_parallelism(nest, prog.params)
        assert [l.var for l in res.nest.loops] == ["J", "K", "I"]

    def test_legal_after_transform(self, figure1_program):
        """All dependences of the transformed nest are still carried
        forward (lexicographically non-negative)."""
        relax = figure1_program.nest("relax")
        res = expose_outer_parallelism(relax, figure1_program.params)
        for d in res.deps:
            if d.level >= 0:
                assert d.dmin[d.level] is None or d.dmin[d.level] >= 1
