"""Atomic durable writes (``repro.util.atomicio``): the one write path
shared by the result store, the disk cache, and the bench snapshots —
plus its seeded disk-fault hooks."""

import errno
import os

import pytest

from repro import faults, obs
from repro.util.atomicio import write_atomic


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.configure(None)
    obs.disable()
    obs.reset()
    yield
    faults.configure(None)
    obs.disable()
    obs.reset()


class TestWriteAtomic:
    def test_writes_bytes(self, tmp_path):
        p = tmp_path / "out.bin"
        write_atomic(p, b"\x00\x01payload")
        assert p.read_bytes() == b"\x00\x01payload"

    def test_writes_str_as_utf8(self, tmp_path):
        p = tmp_path / "out.txt"
        write_atomic(p, "héllo\n")
        assert p.read_text() == "héllo\n"

    def test_overwrites_atomically(self, tmp_path):
        p = tmp_path / "out.txt"
        write_atomic(p, "old")
        write_atomic(p, "new")
        assert p.read_text() == "new"

    def test_creates_parent_dirs(self, tmp_path):
        p = tmp_path / "a" / "b" / "out.txt"
        write_atomic(p, "x")
        assert p.read_text() == "x"

    def test_no_mkdirs_fails_on_missing_parent(self, tmp_path):
        p = tmp_path / "missing" / "out.txt"
        with pytest.raises(OSError):
            write_atomic(p, "x", mkdirs=False)

    def test_no_temp_droppings(self, tmp_path):
        p = tmp_path / "out.txt"
        write_atomic(p, "x")
        assert [f.name for f in tmp_path.iterdir()] == ["out.txt"]

    def test_failure_cleans_temp(self, tmp_path):
        # Unwritable destination: the temp file must not leak.
        target = tmp_path / "dir-not-file"
        target.mkdir()
        with pytest.raises(OSError):
            write_atomic(target, "x")
        names = {f.name for f in tmp_path.iterdir()}
        assert names == {"dir-not-file"}


class TestDiskFaults:
    def test_enospc_raises_enospc(self, tmp_path):
        faults.configure("seed=1,disk.enospc=1.0")
        p = tmp_path / "out.txt"
        with pytest.raises(OSError) as ei:
            write_atomic(p, "x")
        assert ei.value.errno == errno.ENOSPC
        assert not p.exists()

    def test_torn_write_lands_a_prefix(self, tmp_path):
        faults.configure("seed=1,disk.torn_write=1.0")
        p = tmp_path / "out.txt"
        write_atomic(p, "0123456789")
        # The rename still happens, so the torn payload is visible —
        # exactly the damage checksums and fsck exist to catch.
        assert p.read_text() == "01234"

    def test_rates_below_one_are_deterministic(self, tmp_path):
        faults.configure("seed=9,disk.enospc=0.5")
        outcomes1 = []
        for i in range(32):
            try:
                write_atomic(tmp_path / f"f{i}", "x")
                outcomes1.append(True)
            except OSError:
                outcomes1.append(False)
        faults.configure("seed=9,disk.enospc=0.5")
        outcomes2 = []
        for i in range(32):
            try:
                write_atomic(tmp_path / f"g{i}", "x")
                outcomes2.append(True)
            except OSError:
                outcomes2.append(False)
        assert outcomes1 == outcomes2
        assert True in outcomes1 and False in outcomes1
