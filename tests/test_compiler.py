"""Tests for the integrated compiler driver and C emission."""

import pytest

from repro.apps import lu, simple
from repro.codegen.spmd import Scheme, SyncKind
from repro.compiler import (
    CompiledProgram,
    compile_all,
    compile_program,
    emit_c_program,
    restructure_program,
)


class TestRestructure:
    def test_memoized(self, figure1_program):
        r1 = restructure_program(figure1_program)
        r2 = restructure_program(figure1_program)
        assert r1 is r2
        assert restructure_program(r1) is r1

    def test_relax_interchanged(self, figure1_program):
        r = restructure_program(figure1_program)
        relax = r.nest("relax")
        assert [l.var for l in relax.loops] == ["I", "J"]

    def test_preserves_arrays_and_params(self, figure1_program):
        r = restructure_program(figure1_program)
        assert r.arrays == figure1_program.arrays
        assert r.params == figure1_program.params
        assert r.time_steps == figure1_program.time_steps


class TestCompile:
    def test_base(self, figure1_program):
        spmd = compile_program(figure1_program, Scheme.BASE, 4)
        assert spmd.scheme is Scheme.BASE
        assert spmd.nprocs == 4
        assert len(spmd.phases) == 2

    def test_decomp_auto(self, figure1_program):
        spmd = compile_program(figure1_program, Scheme.COMP_DECOMP, 4)
        assert spmd.decomposition is not None

    def test_compile_all(self, figure1_program):
        cp = compile_all(figure1_program, 4)
        assert isinstance(cp, CompiledProgram)
        assert cp.by_scheme(Scheme.BASE) is cp.base
        assert cp.by_scheme(Scheme.COMP_DECOMP_DATA) is cp.comp_decomp_data
        # shared decomposition
        assert cp.comp_decomp.decomposition is cp.decomposition

    def test_invalid_program_rejected(self):
        from repro.ir.program import Program

        bad = Program("b")
        from repro.ir.arrays import ArrayDecl
        from repro.ir.expr import Var
        from repro.ir.loops import Loop, LoopNest, Statement

        stray = ArrayDecl("Z", (4,))
        bad.nests.append(
            LoopNest("n", [Loop.make("I", 0, 3)],
                     [Statement(write=stray(Var("I")), reads=())])
        )
        with pytest.raises(ValueError):
            compile_program(bad, Scheme.BASE, 2)


class TestEmitC:
    def test_contains_structure(self, figure1_program):
        spmd = compile_program(figure1_program, Scheme.COMP_DECOMP_DATA, 4)
        src = emit_c_program(spmd)
        assert "spmd_main" in src
        assert "for (J" in src or "for (I" in src
        assert "double A[" in src
        # data scheme: no barrier needed for the all-local phases
        assert "barrier()" not in src

    def test_base_has_barriers(self, figure1_program):
        src = emit_c_program(compile_program(figure1_program, Scheme.BASE, 4))
        assert "barrier()" in src

    def test_divmod_in_restructured_addresses(self):
        prog = lu.build(8)
        src = emit_c_program(compile_program(prog, Scheme.COMP_DECOMP_DATA, 4))
        assert "%" in src and "/" in src

    def test_pipeline_comment(self):
        prog = lu.build(8)
        src = emit_c_program(compile_program(prog, Scheme.COMP_DECOMP, 4))
        assert "pipeline" in src

    def test_replicated_note(self):
        from repro.apps import erlebacher

        prog = erlebacher.build(6, time_steps=2)
        src = emit_c_program(compile_program(prog, Scheme.COMP_DECOMP, 4))
        assert "replicated" in src

    def test_paper_example_shape(self):
        """The (BLOCK, *) SPMD code of Section 4.3: the restructured
        array A is declared with strip dimensions b x N x P."""
        prog = simple.build(n=16, time_steps=1)
        spmd = compile_program(prog, Scheme.COMP_DECOMP_DATA, 4)
        ta = spmd.transformed["A"]
        assert ta.restructured
        assert ta.layout.dims == (4, 16, 4)  # (b, N, P)
        src = emit_c_program(spmd)
        assert "double A[4 * 16 * 4]" in src
