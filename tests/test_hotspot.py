"""The sampling profiler: attribution, determinism, the strict
disabled path, report ordering, obs round-trip, and the CLI.

The overhead guard mirrors ``tests/test_obs.py``: while no profiler is
started, the repro hot path must run within 5% of a floor measured the
same way — the profiler installs nothing (``sys.getprofile()`` stays
untouched), so the only honest difference is timer noise.
"""

import json
import sys
import time

import pytest

from repro import obs
from repro.apps import simple
from repro.compiler import Scheme, compile_all
from repro.machine import scaled_dash
from repro.machine.simulate import simulate
from repro.obs import hotspot
from repro.obs.hotspot import (
    DEFAULT_INTERVAL,
    EXTERNAL,
    HotspotProfiler,
    HotspotReport,
)


@pytest.fixture(autouse=True)
def _clean_state():
    from repro import pipeline

    obs.disable()
    obs.reset()
    pipeline.reset_session()
    assert sys.getprofile() is None
    yield
    assert sys.getprofile() is None, "profiler hook leaked"
    obs.disable()
    obs.reset()
    pipeline.reset_session()


def _workload():
    """Small compile+simulate run; fresh program defeats memoization."""
    prog = simple.build(n=12, time_steps=2)
    compiled = compile_all(prog, nprocs=4)
    machine = scaled_dash(4, scale=32, word_bytes=8)
    return simulate(compiled.by_scheme(Scheme.COMP_DECOMP_DATA), machine)


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestLifecycle:
    def test_start_stop_restores_hook(self):
        prof = HotspotProfiler()
        assert sys.getprofile() is None
        prof.start()
        assert sys.getprofile() is not None
        assert hotspot.active() is prof
        report = prof.stop()
        assert sys.getprofile() is None
        assert hotspot.active() is None
        assert isinstance(report, HotspotReport)

    def test_nested_prev_hook_restored(self):
        marker = lambda *a: None
        sys.setprofile(marker)
        try:
            with HotspotProfiler():
                pass
            assert sys.getprofile() is marker
        finally:
            sys.setprofile(None)

    def test_double_start_and_stop_raise(self):
        prof = HotspotProfiler().start()
        try:
            with pytest.raises(RuntimeError):
                prof.start()
        finally:
            prof.stop()
        with pytest.raises(RuntimeError):
            prof.stop()

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            HotspotProfiler(interval=0)

    def test_profile_context_manager(self):
        with hotspot.profile() as p:
            _workload()
        assert p.report is not None
        assert p.report.samples > 0


class TestAttribution:
    def test_repro_functions_attributed(self):
        with hotspot.profile() as p:
            _workload()
        rep = p.report
        keys = {f.key for f in rep.functions}
        assert any(k.startswith("machine/") for k in keys)
        assert any(k.startswith("pipeline/") or k.startswith("analysis/")
                   for k in keys)
        # Self time sums to the sampled wall time (every sample lands
        # in exactly one self bucket, EXTERNAL included).
        total_self = sum(f.self_s for f in rep.functions)
        assert total_self <= rep.wall_s * 1.5
        for f in rep.functions:
            assert f.cum_s >= f.self_s - 1e-12 or f.key == EXTERNAL

    def test_external_bucket(self):
        def spin():
            return sum(range(50))

        with hotspot.profile() as p:
            # Pure non-repro work: every sample must fall to EXTERNAL.
            for _ in range(5000):
                spin()
        rep = p.report
        assert rep.samples > 0
        non_ext = [f for f in rep.functions if f.key != EXTERNAL]
        assert sum(f.self_s for f in non_ext) <= rep.wall_s * 0.5

    def test_ranking_deterministic_ordering(self):
        with hotspot.profile() as p:
            _workload()
        fns = p.report.functions
        ranks = [(-f.self_s, f.key) for f in fns]
        assert ranks == sorted(ranks)
        # as_dict carries the same order plus the module rollup.
        d = p.report.as_dict(top=5)
        assert [f["key"] for f in d["functions"]] == \
               [f.key for f in fns[:5]]
        assert list(d["modules"]) == sorted(d["modules"])

    def test_module_rollup_sums_to_functions(self):
        with hotspot.profile() as p:
            _workload()
        rep = p.report
        assert sum(rep.by_module().values()) == pytest.approx(
            sum(f.self_s for f in rep.functions))


class TestDeterminism:
    def test_fake_clock_exact_totals(self):
        """With an injectable clock the recorded durations are exact:
        sampling positions are tick-counted, so the same event stream
        yields the same sample count and byte-identical attribution."""

        def run_once():
            t = [0.0]

            def clock():
                t[0] += 1.0
                return t[0]

            prof = HotspotProfiler(interval=3, clock=clock)
            prof.start()
            try:
                prog = simple.build(n=8, time_steps=2)
            finally:
                rep = prof.stop()
            return rep

        a, b = run_once(), run_once()
        assert a.samples == b.samples > 0
        assert [(f.key, f.self_samples, f.cum_samples)
                for f in a.functions] == \
               [(f.key, f.self_samples, f.cum_samples)
                for f in b.functions]
        # Each sampled dt is exactly 1.0 fake seconds.
        assert sum(f.self_s for f in a.functions) == pytest.approx(
            float(a.samples))

    def test_tick_counted_sampling_rate(self):
        with hotspot.profile(interval=11) as p:
            _workload()
        rep = p.report
        assert rep.interval == 11
        # samples == floor(ticks / interval) exactly (pure tick count).
        assert rep.samples == rep.ticks // 11


class TestObsRoundTrip:
    def test_to_obs_histograms(self):
        with hotspot.profile() as p:
            _workload()
        rep = p.report
        obs.enable(reset=True)
        rep.to_obs()
        hists = obs.collector().metrics.histograms
        self_keys = [k for k in hists if k.startswith("hotspot.self_s.")]
        assert self_keys
        top = rep.functions[0]
        h = hists[f"hotspot.self_s.{top.key}"]
        assert h.count == top.self_samples
        assert h.total == pytest.approx(top.self_s)

    def test_to_obs_noop_when_disabled(self):
        with hotspot.profile() as p:
            _workload()
        p.report.to_obs()  # must not raise, must not enable anything
        assert not obs.enabled()


class TestOverhead:
    def test_disabled_path_under_5_percent(self):
        """With no profiler started the hot path pays nothing: the
        module installs no sys hooks, so the comparison is plain run
        vs. plain run with the module imported and a profiler object
        constructed (but never started)."""
        _workload()  # warm imports and numpy caches

        HotspotProfiler()  # constructed, never started
        assert sys.getprofile() is None
        with_module = _best_of(_workload)
        floor = _best_of(_workload)
        assert with_module <= floor * 1.05 + 0.005, (
            f"disabled profiler overhead too high: {with_module:.4f}s "
            f"vs floor {floor:.4f}s"
        )


class TestCli:
    def test_hotspots_smoke_trace_in_top5(self, capsys, tmp_path):
        """The CI guard's exact contract: on a small grid with repeats,
        machine/trace.py is in the top-5 self-time ranking."""
        from repro.__main__ import main

        out_json = tmp_path / "hot.json"
        out_html = tmp_path / "hot.html"
        rc = main([
            "hotspots", "--apps", "simple,stencil5",
            "--schemes", "base,comp,data", "--procs-list", "1,4",
            "--n", "16", "--repeats", "3",
            "--expect-hot", "machine/trace.py",
            "--json", str(out_json), "--html", str(out_html),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "expect-hot OK" in out
        assert "machine/trace.py" in out
        payload = json.loads(out_json.read_text())
        assert payload["hotspots"]["samples"] > 0
        assert payload["points"]
        assert payload["points"][0]["locality"]["reuse"]
        html = out_html.read_text()
        assert "<html" in html and "heatmap" in html

    def test_hotspots_expect_hot_failure(self, capsys, tmp_path):
        from repro.__main__ import main

        rc = main([
            "hotspots", "--apps", "simple", "--schemes", "base",
            "--procs-list", "1", "--n", "8", "--repeats", "1",
            "--expect-hot", "no/such/module.py",
        ])
        assert rc == 1
        err = capsys.readouterr().err
        assert "no/such/module.py" in err
