"""Tests for the diagonal-layout extension (Section 4.1.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datatrans.diagonal import DiagonalLayout, diagonal_layout


class TestGeometry:
    def test_diagonal_count(self):
        lay = diagonal_layout((4, 3))
        assert lay.ndiagonals == 6

    def test_diagonal_lengths(self):
        lay = diagonal_layout((3, 3))
        assert [lay.diagonal_length(d) for d in range(5)] == [1, 2, 3, 2, 1]

    def test_diagonal_lengths_rect(self):
        lay = diagonal_layout((4, 2))
        assert [lay.diagonal_length(d) for d in range(5)] == [1, 2, 2, 2, 1]

    def test_length_out_of_range(self):
        with pytest.raises(IndexError):
            diagonal_layout((3, 3)).diagonal_length(5)

    def test_sizes(self):
        boxed = diagonal_layout((4, 3), packed=False)
        packed = diagonal_layout((4, 3), packed=True)
        assert packed.size == 12  # dense
        assert boxed.size == 6 * 3  # diagonals x min-dim
        assert boxed.size >= packed.size

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            diagonal_layout((0, 3))


class TestMapping:
    def test_diagonal_contiguous(self):
        """THE property the paper wants: elements of one anti-diagonal
        occupy consecutive addresses."""
        for packed in (False, True):
            lay = diagonal_layout((5, 4), packed=packed)
            for d in range(lay.ndiagonals):
                addrs = []
                for i in range(5):
                    j = d - i
                    if 0 <= j < 4:
                        addrs.append(lay.linearize((i, j)))
                addrs.sort()
                assert addrs == list(range(addrs[0], addrs[0] + len(addrs)))

    def test_packed_dense(self):
        lay = diagonal_layout((4, 4), packed=True)
        addrs = sorted(
            lay.linearize((i, j)) for i in range(4) for j in range(4)
        )
        assert addrs == list(range(16))

    @given(st.integers(1, 6), st.integers(1, 6), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_bijective(self, d1, d2, packed):
        lay = diagonal_layout((d1, d2), packed=packed)
        assert lay.is_bijective()

    @given(st.integers(1, 6), st.integers(1, 6), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_unmap_roundtrip(self, d1, d2, packed):
        lay = diagonal_layout((d1, d2), packed=packed)
        for i in range(d1):
            for j in range(d2):
                assert lay.unmap(lay.linearize((i, j))) == (i, j)

    def test_unmap_padding_raises(self):
        lay = diagonal_layout((3, 3), packed=False)
        # diagonal 0 has length 1 but the boxed slot is 3 wide
        with pytest.raises(IndexError):
            lay.unmap(1)

    def test_bounds_checked(self):
        lay = diagonal_layout((3, 3))
        with pytest.raises(IndexError):
            lay.linearize((3, 0))

    def test_vectorized_matches_scalar(self):
        lay = diagonal_layout((6, 5), packed=True)
        i = np.repeat(np.arange(6), 5)
        j = np.tile(np.arange(5), 6)
        vec = lay.linearize_vec([i, j])
        for k in range(len(i)):
            assert vec[k] == lay.linearize((int(i[k]), int(j[k])))


class TestUseCase:
    def test_wavefront_traversal_locality(self):
        """A wavefront loop touching one diagonal per step gets stride-1
        accesses under the diagonal layout but scattered ones under
        column-major — the motivation the paper sketches."""
        from repro.datatrans.layout import Layout

        n = 8
        diag = diagonal_layout((n, n), packed=True)
        colmajor = Layout.identity((n, n))
        d = n  # a middle anti-diagonal
        diag_addrs = []
        cm_addrs = []
        for i in range(n):
            j = d - i
            if 0 <= j < n:
                diag_addrs.append(diag.linearize((i, j)))
                cm_addrs.append(colmajor.linearize((i, j)))
        strides = np.diff(sorted(diag_addrs))
        assert (strides == 1).all()
        cm_strides = np.diff(sorted(cm_addrs))
        assert (cm_strides > 1).all()
