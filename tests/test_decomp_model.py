"""Tests for the decomposition data model and folding functions."""

import pytest

from repro.decomp.folding import fold_owner, grid_shape, linearize_grid
from repro.decomp.model import (
    CompDecomp,
    DataDecomp,
    Decomposition,
    FoldKind,
    Folding,
)


class TestFolding:
    def test_block_owner(self):
        f = Folding(FoldKind.BLOCK)
        # 10 elements over 4 procs: strips of 3
        owners = [f.owner(v, 10, 4) for v in range(10)]
        assert owners == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]

    def test_block_owner_clamped(self):
        f = Folding(FoldKind.BLOCK)
        # 8 over 3: strip 3 -> owners 0,0,0,1,1,1,2,2
        assert f.owner(7, 8, 3) == 2

    def test_cyclic_owner(self):
        f = Folding(FoldKind.CYCLIC)
        assert [f.owner(v, 10, 4) for v in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_block_cyclic_owner(self):
        f = Folding(FoldKind.BLOCK_CYCLIC, 2)
        # blocks of 2, round robin over 2 procs
        assert [f.owner(v, 8, 2) for v in range(8)] == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_block_cyclic_requires_block(self):
        with pytest.raises(ValueError):
            Folding(FoldKind.BLOCK_CYCLIC)

    def test_owner_invalid_nproc(self):
        with pytest.raises(ValueError):
            Folding(FoldKind.BLOCK).owner(0, 4, 0)

    def test_repr(self):
        assert repr(Folding(FoldKind.BLOCK)) == "BLOCK"
        assert repr(Folding(FoldKind.BLOCK_CYCLIC, 4)) == "BLOCK_CYCLIC(4)"


class TestGridShape:
    def test_rank0(self):
        assert grid_shape(8, 0) == ()

    def test_rank1(self):
        assert grid_shape(8, 1) == (8,)

    def test_rank2_square(self):
        assert grid_shape(16, 2) == (4, 4)

    def test_rank2_rect(self):
        assert grid_shape(32, 2) == (8, 4)
        assert grid_shape(2, 2) == (2, 1)

    def test_rank2_prime(self):
        assert grid_shape(7, 2) == (7, 1)

    def test_product_invariant(self):
        for p in range(1, 33):
            for r in (1, 2, 3):
                g = grid_shape(p, r)
                prod = 1
                for x in g:
                    prod *= x
                assert prod == p

    def test_linearize_column_major(self):
        grid = (4, 2)
        pids = set()
        for c1 in range(2):
            for c0 in range(4):
                pids.add(linearize_grid((c0, c1), grid))
        assert pids == set(range(8))
        # dim 0 is fastest
        assert linearize_grid((1, 0), grid) == 1
        assert linearize_grid((0, 1), grid) == 4

    def test_fold_owner(self):
        coords = fold_owner(
            (5, 3), (10, 8), (Folding(FoldKind.BLOCK), Folding(FoldKind.CYCLIC)),
            (2, 4),
        )
        assert coords == (1, 3)


class TestDecompObjects:
    def test_comp_virtual_proc(self):
        cd = CompDecomp("n", 0, matrix=[[0, 1], [1, 0]], offset=[0, 1])
        assert cd.virtual_proc((3, 4)) == (4, 4)
        assert cd.rank == 2

    def test_comp_empty(self):
        cd = CompDecomp("n", 0, matrix=[], offset=[])
        assert cd.virtual_proc((1, 2)) == ()
        assert cd.rank == 0

    def test_data_virtual_proc(self):
        dd = DataDecomp("A", matrix=[[1, 0]], offset=[0])
        assert dd.virtual_proc((7, 2)) == (7,)

    def test_distributed_dims(self):
        dd = DataDecomp("A", matrix=[[0, 1], [1, 0]], offset=[0, 0])
        assert dd.distributed_dims() == [(0, 1), (1, 0)]

    def test_distributed_dims_skips_zero_rows(self):
        dd = DataDecomp("A", matrix=[[0, 0], [1, 0]], offset=[0, 0])
        assert dd.distributed_dims() == [(1, 0)]

    def test_distributed_dims_rejects_general_affine(self):
        dd = DataDecomp("A", matrix=[[1, 1]], offset=[0])
        with pytest.raises(ValueError):
            dd.distributed_dims()

    def test_decomposition_queries(self):
        d = Decomposition(rank=1)
        d.comp[("n", 0)] = CompDecomp("n", 0, [[1]], [0])
        d.data["A"] = DataDecomp("A", [[1]], [0])
        d.pipelined_nests.append("n")
        assert d.comp_for("n", 0) is not None
        assert d.comp_for("x", 0) is None
        assert d.data_for("A") is not None
        assert d.is_pipelined("n")
        assert not d.is_pipelined("m")

    def test_summary_mentions_replication(self):
        d = Decomposition(rank=1, foldings=[Folding(FoldKind.BLOCK)])
        d.data["U"] = DataDecomp("U", [[0, 0]], [0], replicated=True)
        assert "REPLICATED" in d.summary()
