"""Deterministic, seeded fault injection for robustness testing.

A :class:`FaultPlan` assigns a firing rate to named *sites*; consumers
ask :func:`should_fire` at each site and the answer is derived from a
counted SHA-256 draw — the full firing sequence is a pure function of
``(seed, site, call number)``, so a chaos run is reproducible while
retries still see fresh draws (the retry is a later call).

Activate with the ``REPRO_FAULTS`` environment variable (inherited by
batch worker processes) or the batch CLI's ``--inject-faults``; the
spec is a comma-separated ``key=value`` list::

    REPRO_FAULTS="seed=7,cache.read=0.3,cache.write=0.3,worker.crash=0.2,worker.stall=0.1,stall_s=5"

Recognized sites and what the consumers do when they fire:

=================  ========================================================
``cache.read``     the disk store's loaded bytes are corrupted → the
                   cache quarantines the entry and recomputes
``cache.write``    the disk store raises on write → artifact stays
                   memory-only (``disk_errors`` counter)
``pass``           a :class:`~repro.errors.FaultInjected` is raised
                   mid-pass → degradation / per-point error isolation
``pass.stall``     a pass sleeps ``stall_s`` seconds inside its span —
                   a pure *slowdown*, not a failure; narrow it to one
                   pass with ``stall_pass=<name>``.  The perf CI job
                   plants a deterministic wall-time culprit this way
                   and requires ``repro perf diff`` to attribute it
``worker.crash``   a batch worker process hard-exits (``os._exit``) →
                   the driver respawns the pool and retries
``worker.stall``   a batch worker sleeps ``stall_s`` seconds → the
                   driver's per-point timeout fires
``disk.enospc``    :func:`repro.util.atomicio.write_atomic` raises
                   ``OSError(ENOSPC)`` → store/cache writes degrade
                   (counted, never fatal)
``disk.torn_write`` an atomic write (or journal append) lands only a
                   prefix of its payload, unsynced → corrupt-entry
                   quarantine, ``repro fsck``, and the journal's
                   torn-tail reader all get exercised
``driver.kill``    the grid *driver* SIGKILLs itself right after
                   journaling a finished point → ``--resume`` recovery
=================  ========================================================

``worker.*`` sites only ever fire inside batch worker processes
(:func:`maybe_worker_faults` is only called there); ``driver.kill``
only ever fires in the driver (:func:`maybe_driver_kill` is called
from the grid engine's completion callback); everything else is
process-agnostic.  When no plan is configured every probe is a cheap
no-op returning ``False``.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import FaultInjected

__all__ = [
    "ENV_FLAG",
    "SITES",
    "FaultPlan",
    "active",
    "check",
    "configure",
    "corrupt",
    "current_plan",
    "maybe_driver_kill",
    "maybe_pass_stall",
    "maybe_worker_faults",
    "should_fire",
]

ENV_FLAG = "REPRO_FAULTS"

SITES = (
    "cache.read", "cache.write", "pass", "pass.stall",
    "worker.crash", "worker.stall",
    "disk.enospc", "disk.torn_write", "driver.kill",
)

_CORRUPT_PREFIX = b"\x00REPRO-FAULT-CORRUPT\x00"


@dataclass
class FaultPlan:
    """Firing rates per site plus the shared seed and stall duration."""

    seed: int = 0
    rates: Dict[str, float] = field(default_factory=dict)
    stall_seconds: float = 30.0
    # Restrict "pass.stall" to one pass name; empty = every pass.
    stall_pass: str = ""

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``key=value,key=value`` spec (see module docstring)."""
        plan = cls()
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad fault spec item {part!r}: expected key=value"
                )
            key, _, value = part.partition("=")
            key = key.strip().lower()
            value = value.strip()
            try:
                if key == "seed":
                    plan.seed = int(value)
                elif key in ("stall_s", "stall_seconds"):
                    plan.stall_seconds = float(value)
                elif key == "stall_pass":
                    plan.stall_pass = value
                elif key in SITES:
                    rate = float(value)
                    if not (0.0 <= rate <= 1.0):
                        raise ValueError("rate outside [0, 1]")
                    plan.rates[key] = rate
                else:
                    raise ValueError(f"unknown fault site {key!r}")
            except ValueError as exc:
                raise ValueError(
                    f"bad fault spec item {part!r}: {exc}"
                ) from None
        return plan

    def rate(self, site: str) -> float:
        return self.rates.get(site, 0.0)

    def spec(self) -> str:
        """Round-trippable spec string (for handing to subprocesses)."""
        parts = [f"seed={self.seed}", f"stall_s={self.stall_seconds:g}"]
        if self.stall_pass:
            parts.append(f"stall_pass={self.stall_pass}")
        parts += [f"{k}={v:g}" for k, v in sorted(self.rates.items())]
        return ",".join(parts)


# Module state: the configured plan and per-site draw counters.  Worker
# processes inherit REPRO_FAULTS through the environment and lazily
# build their own plan (and counters) on first probe.
_plan: Optional[FaultPlan] = None
_configured = False
_counts: Dict[str, int] = {}


def configure(spec: Optional[str]) -> Optional[FaultPlan]:
    """Install a fault plan from a spec string (``None`` disables fault
    injection regardless of the environment).  Resets draw counters."""
    global _plan, _configured
    _plan = FaultPlan.parse(spec) if spec else None
    _configured = True
    _counts.clear()
    return _plan


def current_plan() -> Optional[FaultPlan]:
    """The active plan: an explicit :func:`configure`, else the
    ``REPRO_FAULTS`` environment variable, else ``None``."""
    global _plan, _configured
    if not _configured:
        spec = os.environ.get(ENV_FLAG, "").strip()
        _plan = FaultPlan.parse(spec) if spec else None
        _configured = True
    return _plan


def active() -> bool:
    return current_plan() is not None


def should_fire(site: str) -> bool:
    """Deterministic seeded draw: does the fault at ``site`` fire now?"""
    plan = current_plan()
    if plan is None:
        return False
    rate = plan.rate(site)
    if rate <= 0.0:
        return False
    _counts[site] = n = _counts.get(site, 0) + 1
    digest = hashlib.sha256(f"{plan.seed}:{site}:{n}".encode()).digest()
    draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
    if draw >= rate:
        return False
    from repro import obs

    obs.inc(f"faults.{site}")
    obs.event("faults.injected", cat="faults", site=site, draw_no=n)
    return True


def check(site: str, **context) -> None:
    """Raise :class:`~repro.errors.FaultInjected` when ``site`` fires."""
    if should_fire(site):
        raise FaultInjected(f"injected fault at {site}", **context)


def corrupt(data: bytes, site: str = "cache.read") -> bytes:
    """Return ``data``, corrupted when ``site`` fires (the result is
    guaranteed not to unpickle)."""
    if should_fire(site):
        return _CORRUPT_PREFIX + data[len(_CORRUPT_PREFIX):]
    return data


def maybe_worker_faults() -> None:
    """Fire worker-process faults: hard crash or stall.  Only batch
    worker processes call this — the driver process never does."""
    plan = current_plan()
    if plan is None:
        return
    if should_fire("worker.crash"):
        os._exit(3)
    if should_fire("worker.stall"):
        time.sleep(plan.stall_seconds)


def maybe_pass_stall(pass_name: str) -> None:
    """Fire the ``pass.stall`` fault: sleep ``stall_s`` seconds inside
    the named pass's span.  Unlike the ``pass`` site this is a pure
    slowdown — the pass still succeeds — so the wall-time ledger books
    the sleep against that pass and ``repro perf diff`` must name it
    as the culprit.  ``stall_pass=<name>`` narrows the site to one
    pass; without it every pass draws."""
    plan = current_plan()
    if plan is None or plan.rate("pass.stall") <= 0.0:
        return
    if plan.stall_pass and plan.stall_pass != pass_name:
        return
    if should_fire("pass.stall"):
        time.sleep(plan.stall_seconds)


def maybe_driver_kill() -> None:
    """Fire the ``driver.kill`` fault: SIGKILL the *driver* process.

    The grid engine calls this after a finished point has been
    persisted (store write + journal append), which is exactly the
    crash window ``--resume`` recovery is built for: everything
    journaled so far must be served on restart, everything else
    re-executed.  A SIGKILL cannot be caught, so no graceful-shutdown
    path softens it — this is the hard-crash chaos site.
    """
    if should_fire("driver.kill"):
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
