"""SPMD code generation (the paper's Section 4.3).

Transformed arrays are declared as linear arrays and accessed through
linearized addresses containing integer division and modulo; this
package builds those address expressions, applies the paper's three
address optimizations (strip-invariant div/mod elimination, iteration
peeling at strip boundaries, and mod/div strength reduction), partitions
iterations across processors according to the computation
decomposition, emits inspectable C-like source, and executes programs
numerically to validate that transformations preserve semantics.
"""

from repro.codegen.addrexpr import (
    AExpr,
    AVar,
    AConst,
    build_address_expr,
    count_divmod,
)
from repro.codegen.optimize import optimize_ref_address, AddressCostReport
from repro.codegen.spmd import SpmdProgram, SpmdPhase, generate_spmd
from repro.codegen.executor import execute_program
from repro.codegen.emit_c import emit_c_program
from repro.codegen.emit_optimized import emit_optimized_program

__all__ = [
    "AExpr",
    "AVar",
    "AConst",
    "build_address_expr",
    "count_divmod",
    "optimize_ref_address",
    "AddressCostReport",
    "SpmdProgram",
    "SpmdPhase",
    "generate_spmd",
    "execute_program",
    "emit_c_program",
    "emit_optimized_program",
]
