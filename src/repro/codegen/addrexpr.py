"""Address-expression IR.

Addresses of transformed arrays are sums of strided terms
``stride * ((e // div) % mod)`` where ``e`` is an affine expression in
the loop indices.  This tiny expression IR represents exactly that
shape, evaluates it, renders it as C, and counts the division/modulo
operations — the quantity the paper's Section 4.3 optimizations drive
to (almost) zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.datatrans.layout import Layout
from repro.ir.expr import AffineExpr


class AExpr:
    """Base class for address expressions."""

    def eval(self, env: Mapping[str, int]) -> int:
        raise NotImplementedError

    def to_c(self) -> str:
        raise NotImplementedError

    def children(self) -> Tuple["AExpr", ...]:
        return ()


@dataclass(frozen=True)
class AConst(AExpr):
    value: int

    def eval(self, env):
        return self.value

    def to_c(self):
        return str(self.value)


@dataclass(frozen=True)
class AVar(AExpr):
    name: str

    def eval(self, env):
        return env[self.name]

    def to_c(self):
        return self.name


@dataclass(frozen=True)
class AAffine(AExpr):
    """An affine combination of loop variables (no div/mod inside)."""

    expr: AffineExpr

    def eval(self, env):
        return self.expr.eval(env)

    def to_c(self):
        return repr(self.expr)


@dataclass(frozen=True)
class AAdd(AExpr):
    terms: Tuple[AExpr, ...]

    def eval(self, env):
        return sum(t.eval(env) for t in self.terms)

    def to_c(self):
        return " + ".join(t.to_c() for t in self.terms)

    def children(self):
        return self.terms


@dataclass(frozen=True)
class AScale(AExpr):
    factor: int
    operand: AExpr

    def eval(self, env):
        return self.factor * self.operand.eval(env)

    def to_c(self):
        if self.factor == 1:
            return self.operand.to_c()
        return f"{self.factor}*({self.operand.to_c()})"

    def children(self):
        return (self.operand,)


@dataclass(frozen=True)
class ADiv(AExpr):
    """Floor division by a positive constant (indices are non-negative,
    so C truncation agrees with floor — Section 4.1.1)."""

    operand: AExpr
    divisor: int

    def eval(self, env):
        return self.operand.eval(env) // self.divisor

    def to_c(self):
        return f"(({self.operand.to_c()}) / {self.divisor})"

    def children(self):
        return (self.operand,)


@dataclass(frozen=True)
class AMod(AExpr):
    operand: AExpr
    modulus: int

    def eval(self, env):
        return self.operand.eval(env) % self.modulus

    def to_c(self):
        return f"(({self.operand.to_c()}) % {self.modulus})"

    def children(self):
        return (self.operand,)


# ---------------------------------------------------------------------------

def build_address_expr(
    layout: Layout, index_exprs: Sequence[AffineExpr]
) -> AExpr:
    """Address expression of a reference under a transformed layout.

    ``index_exprs[k]`` is the (affine) subscript for original dimension
    k; the result sums ``stride * ((subscript // div) % mod)`` over the
    layout's atoms.
    """
    terms: List[AExpr] = []
    stride = 1
    for atom in layout.atoms:
        e: AExpr = AAffine(index_exprs[atom.src])
        if atom.div != 1:
            e = ADiv(e, atom.div)
        if atom.mod is not None:
            e = AMod(e, atom.mod)
        terms.append(AScale(stride, e) if stride != 1 else e)
        stride *= atom.extent
    if not terms:
        return AConst(0)
    if len(terms) == 1:
        return terms[0]
    return AAdd(tuple(terms))


def count_divmod(expr: AExpr) -> Tuple[int, int]:
    """Static count of (div, mod) nodes in an expression tree."""
    divs = mods = 0
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ADiv):
            divs += 1
        elif isinstance(node, AMod):
            mods += 1
        stack.extend(node.children())
    return divs, mods


def divmod_nodes(expr: AExpr) -> List[AExpr]:
    """All ADiv/AMod nodes of an expression tree."""
    out = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, (ADiv, AMod)):
            out.append(node)
        stack.extend(node.children())
    return out
