"""C source emission.

Like the SUIF compiler, the pipeline's human-visible output is C: each
phase becomes an SPMD loop nest with per-processor bounds, transformed
arrays are declared as linear arrays (C has no dynamically-sized
multidimensional arrays — Section 4.3), and subscripts are linearized
address expressions.  The emitted code is for inspection and for
diffing against the paper's examples; it is not compiled here (the
machine model replays the equivalent address streams instead).
"""

from __future__ import annotations

from typing import List, Mapping

from repro.codegen.addrexpr import build_address_expr
from repro.codegen.spmd import OwnerPlan, Scheme, SpmdProgram, SyncKind
from repro.datatrans.transform import TransformedArray
from repro.ir.loops import LoopNest


def _array_decls(spmd: SpmdProgram) -> List[str]:
    out = []
    for name in sorted(spmd.transformed):
        ta = spmd.transformed[name]
        dims = " * ".join(str(d) for d in ta.layout.dims)
        note = ""
        if ta.restructured:
            shape = ", ".join(str(d) for d in ta.layout.dims)
            note = f"  /* restructured: dims ({shape}) */"
        elif ta.replicated:
            note = "  /* replicated per processor */"
        out.append(f"double {name}[{dims}];{note}")
    return out


def _owner_comment(plan: OwnerPlan, nest: LoopNest) -> str:
    if plan.kind == "serial":
        return "/* executed by processor 0 */"
    if plan.kind == "base":
        var = nest.loops[plan.level].var
        return f"/* {var} block-distributed over current range */"
    rows = "; ".join(
        "+".join(
            f"{c}*{v}" for c, v in zip(row, nest.loop_vars) if c
        ) or "0"
        for row in (plan.matrix or [])
    )
    folds = ",".join(repr(f) for f in plan.foldings)
    return f"/* virtual proc = ({rows}) folded ({folds}) */"


def emit_c_program(spmd: SpmdProgram) -> str:
    """Render the SPMD program as annotated C-like source."""
    lines: List[str] = []
    lines.append(f"/* scheme: {spmd.scheme.value}; P = {spmd.nprocs}; "
                 f"grid = {spmd.grid} */")
    lines.extend(_array_decls(spmd))
    lines.append("")
    lines.append("void spmd_main(int myid) {")
    indent = "  "
    for phase in spmd.phases:
        nest = phase.nest
        lines.append(f"{indent}/* nest {nest.name} */")
        for s, st in enumerate(nest.body):
            plan = phase.owners[s]
            lines.append(f"{indent}{_owner_comment(plan, nest)}")
        depth = nest.depth
        for k, loop in enumerate(nest.loops):
            pad = indent * (k + 1)
            lines.append(
                f"{pad}for ({loop.var} = {loop.lower!r}; "
                f"{loop.var} <= {loop.upper!r}; {loop.var}++) {{"
            )
        pad = indent * (depth + 1)
        for st in nest.body:
            ta = spmd.transformed[st.write.array.name]
            waddr = build_address_expr(ta.layout, st.write.index_exprs)
            reads = []
            for r in st.reads:
                rta = spmd.transformed[r.array.name]
                raddr = build_address_expr(rta.layout, r.index_exprs)
                reads.append(f"{r.array.name}[{raddr.to_c()}]")
            rhs = ", ".join(reads) or "0.0"
            lines.append(
                f"{pad}{st.write.array.name}[{waddr.to_c()}] = f({rhs});"
            )
        for k in range(depth, 0, -1):
            lines.append(f"{indent * k}}}")
        if phase.sync_after is SyncKind.BARRIER:
            lines.append(f"{indent}barrier();")
        elif phase.sync_after is SyncKind.NEIGHBOR:
            lines.append(f"{indent}neighbor_sync();")
        elif phase.sync_after is SyncKind.PIPELINE:
            lines.append(f"{indent}/* doacross pipeline: pairwise sync */")
        lines.append("")
    lines.append("}")
    return "\n".join(lines)
