"""SPMD program generation.

A :class:`SpmdProgram` packages everything the machine model needs to
replay a compiled program on P processors:

* per-nest *phases* in program order, each with a per-statement owner
  specification (how iterations map to physical processors),
* the transformed (or original) layout of every array,
* the synchronization required after each phase (barrier, nothing,
  neighbour sync, or pipelined point-to-point),

for each of the paper's three compiler configurations:

* ``BASE`` — each nest parallelized independently at its outermost
  parallel level (after unimodular restructuring), BLOCK distribution of
  the *current* loop range, FORTRAN layouts, barrier after every
  parallel loop execution;
* ``COMP_DECOMP`` — the global decomposition drives iteration
  ownership; layouts unchanged; barriers eliminated where the
  decomposition proves every read local (replaced by cheap
  producer-consumer synchronization for pipelined nests);
* ``COMP_DECOMP_DATA`` — as above, plus restructured array layouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.obs import provenance
from repro.analysis.unimodular import expose_outer_parallelism
from repro.datatrans.transform import (
    TransformedArray,
    derive_layout,
    identity_transform,
)
from repro.decomp.folding import grid_shape
from repro.decomp.model import Decomposition, Folding, FoldKind
from repro.ir.loops import LoopNest
from repro.ir.program import Program


class Scheme(Enum):
    BASE = "base"
    COMP_DECOMP = "comp decomp"
    COMP_DECOMP_DATA = "comp decomp + data transform"


#: Canonical short name per scheme (stable CLI/report vocabulary).
SCHEME_NAMES: Dict[str, "Scheme"] = {}  # populated below

#: Every accepted spelling (short names, identifier-style long names,
#: and the enum values themselves) → scheme.
SCHEME_ALIASES: Dict[str, "Scheme"] = {}

SCHEME_NAMES.update({
    "base": Scheme.BASE,
    "comp": Scheme.COMP_DECOMP,
    "data": Scheme.COMP_DECOMP_DATA,
})
SCHEME_ALIASES.update(SCHEME_NAMES)
SCHEME_ALIASES.update({
    "comp_decomp": Scheme.COMP_DECOMP,
    "comp_decomp_data": Scheme.COMP_DECOMP_DATA,
    # The paper's fully-optimized configuration (Section 6 "OPT").
    "opt": Scheme.COMP_DECOMP_DATA,
    Scheme.BASE.value: Scheme.BASE,
    Scheme.COMP_DECOMP.value: Scheme.COMP_DECOMP,
    Scheme.COMP_DECOMP_DATA.value: Scheme.COMP_DECOMP_DATA,
})


def parse_scheme(name) -> "Scheme":
    """Resolve any accepted scheme spelling (or a Scheme) to a Scheme."""
    if isinstance(name, Scheme):
        return name
    try:
        return SCHEME_ALIASES[str(name).strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; accepted: "
            f"{', '.join(sorted(SCHEME_ALIASES))}"
        ) from None


def scheme_short_name(scheme: "Scheme") -> str:
    """The canonical short name of a scheme (inverse of SCHEME_NAMES)."""
    for short, s in SCHEME_NAMES.items():
        if s is scheme:
            return short
    raise ValueError(f"no short name for {scheme!r}")  # pragma: no cover


class SyncKind(Enum):
    BARRIER = "barrier"
    NONE = "none"
    NEIGHBOR = "neighbor"
    PIPELINE = "pipeline"


@dataclass
class OwnerPlan:
    """How one statement's iterations map to processors.

    ``kind='base'``: BLOCK partition of the current range of loop
    ``level`` (renormalized per execution, like a self-scheduling
    traditional parallelizer).

    ``kind='affine'``: virtual processor = ``matrix @ i`` folded per
    dimension onto the processor grid.

    ``kind='serial'``: everything on processor 0.
    """

    kind: str
    level: int = 0
    matrix: Optional[List[List[int]]] = None
    foldings: Tuple[Folding, ...] = ()
    extents: Tuple[int, ...] = ()  # virtual extents per processor dim

    def owner_at(
        self,
        env: Mapping[str, int],
        nest: "LoopNest",
        params: Mapping[str, int],
        nprocs: int,
        grid: Sequence[int],
    ) -> int:
        """Owning processor of one statement instance under a concrete
        loop-variable binding ``env`` (which must also bind any outer
        variables the bounds reference).  This is the scalar twin of the
        vectorized owner computation in :mod:`repro.machine.trace`; the
        verification oracle executes through it.
        """
        if self.kind == "serial" or nprocs == 1:
            return 0
        if self.kind == "base":
            loop = nest.loops[self.level]
            lo = loop.lower.eval(env)
            hi = loop.upper.eval(env)
            span = max(hi - lo + 1, 1)
            v = env[loop.var]
            return min(max((v - lo) * nprocs // span, 0), nprocs - 1)
        pid = 0
        for dim in range(len(self.matrix) - 1, -1, -1):
            row = self.matrix[dim]
            virt = 0
            for c, var in zip(row, nest.loop_vars):
                if c:
                    virt += c * env[var]
            fold = self.foldings[dim]
            g = grid[dim] if dim < len(grid) else 1
            ext = self.extents[dim] if dim < len(self.extents) else 1
            if fold.kind is FoldKind.BLOCK:
                b = max(1, -(-ext // g))
                coord = min(virt // b, g - 1)
            elif fold.kind is FoldKind.CYCLIC:
                coord = virt % g
            else:
                coord = (virt // fold.block) % g
            pid = pid * g + coord
        return pid


@dataclass
class SpmdPhase:
    """One loop nest's parallel execution."""

    nest: LoopNest
    owners: List[OwnerPlan]  # per statement
    sync_after: SyncKind
    pipelined: bool = False
    barriers_per_execution: int = 1
    all_reads_local: bool = True
    seq_steps: int = 1
    """For pipelined phases: trip count of the sequential (carried)
    levels, i.e. the number of doacross steps available for tiling."""


@dataclass
class SpmdProgram:
    program: Program
    scheme: Scheme
    nprocs: int
    grid: Tuple[int, ...]
    transformed: Dict[str, TransformedArray]
    phases: List[SpmdPhase]
    decomposition: Optional[Decomposition] = None


# ---------------------------------------------------------------------------

def _virtual_extents(
    nest: LoopNest, matrix: Sequence[Sequence[int]], params: Mapping[str, int]
) -> Tuple[int, ...]:
    """Conservative extent of each virtual processor coordinate, used by
    BLOCK folding to size strips."""
    bounds = nest.numeric_bounds(params)
    out = []
    for row in matrix:
        lo = hi = 0
        for c, (blo, bhi) in zip(row, bounds):
            if c >= 0:
                lo += c * blo
                hi += c * bhi
            else:
                lo += c * bhi
                hi += c * blo
        out.append(max(1, hi - lo + 1))
    return tuple(out)


def _reads_local(
    nest: LoopNest, decomp: Decomposition, params: Mapping[str, int]
) -> bool:
    """True when Equation 1 holds *exactly* (linear parts and offsets)
    for every reference of the nest under the final decomposition, so no
    synchronization-worthy communication remains."""
    from repro.util.intlinalg import mat_mul, mat_vec

    for s, st in enumerate(nest.body):
        cd = decomp.comp_for(nest.name, s)
        if cd is None:
            return False
        depth = st.depth if st.depth is not None else nest.depth
        loop_vars = nest.loop_vars[:depth]
        for ref in st.all_refs():
            dd = decomp.data_for(ref.array.name)
            if dd is None:
                return False
            if dd.replicated or not dd.matrix:
                continue
            af = ref.access_function(loop_vars)
            f = [list(r) for r in af.matrix]
            df = mat_mul(dd.matrix, f)
            if df != [row[:depth] for row in cd.matrix]:
                return False
            offsets = [e.eval(params) for e in af.offset]
            if any(v != 0 for v in mat_vec(dd.matrix, offsets)):
                return False
    return True


def _barriers_per_execution(
    nest: LoopNest, parallel_level: int, params: Mapping[str, int]
) -> int:
    """Number of barrier episodes per nest execution when the parallel
    loop sits below ``parallel_level`` sequential loops (one barrier per
    execution of the parallel loop)."""
    if parallel_level <= 0:
        return 1
    outer = LoopNest(name=nest.name, loops=nest.loops[:parallel_level], body=[])
    return max(1, outer.count_iterations(params))


def derive_program_layout(
    prog: Program,
    decomp: Decomposition,
    grid: Tuple[int, ...],
    restructure: bool,
    line_pad_elements: Optional[int] = None,
) -> Dict[str, TransformedArray]:
    """Derive every array's (possibly restructured) layout under a
    decomposition — the pipeline's standalone layout pass.

    An array whose decomposition falls outside the data-transform
    restriction (e.g. a hand-supplied general affine mapping) keeps its
    original layout rather than failing.
    """
    transformed: Dict[str, TransformedArray] = {}
    for name, decl in prog.arrays.items():
        try:
            transformed[name] = derive_layout(
                decl,
                decomp.data_for(name),
                decomp.foldings,
                grid,
                restructure=restructure,
                line_pad_elements=line_pad_elements,
            )
        except ValueError as exc:
            provenance.record(
                "datatrans.legality", stage="layout", subject=name,
                chosen="identity",
                alternatives=["strip-mine+permute", "identity"],
                reason="legality rejection", error=str(exc),
            )
            transformed[name] = identity_transform(decl)
    return transformed


def generate_spmd(
    prog: Program,
    scheme: Scheme,
    nprocs: int,
    decomp: Optional[Decomposition] = None,
    line_pad_elements: Optional[int] = None,
    transformed: Optional[Dict[str, TransformedArray]] = None,
) -> SpmdProgram:
    """Build the SPMD execution plan for one compiler configuration.

    ``line_pad_elements`` (data scheme only) pads each restructured
    partition to a cache-line multiple; see
    :func:`repro.datatrans.transform.derive_layout`.  ``transformed``
    optionally supplies precomputed layouts (the pipeline's layout-pass
    artifact); when omitted they are derived here.
    """
    with obs.span("codegen.spmd", cat="codegen", program=prog.name,
                  scheme=scheme.value, nprocs=nprocs) as sp:
        out = _generate_impl(prog, scheme, nprocs, decomp,
                             line_pad_elements, transformed)
        sp.set(phases=len(out.phases), grid=list(out.grid))
        return out


def _generate_impl(
    prog: Program,
    scheme: Scheme,
    nprocs: int,
    decomp: Optional[Decomposition] = None,
    line_pad_elements: Optional[int] = None,
    transformed: Optional[Dict[str, TransformedArray]] = None,
) -> SpmdProgram:
    params = prog.params

    if scheme is Scheme.BASE:
        phases: List[SpmdPhase] = []
        if transformed is None:
            transformed = {
                name: identity_transform(decl)
                for name, decl in prog.arrays.items()
            }
        for nest in prog.nests:
            res = expose_outer_parallelism(nest, params)
            n = res.nest
            level = None
            for k in range(n.depth):
                if k in res.parallel:
                    level = k
                    break
                # levels before the first parallel one stay sequential
            if level is None:
                owners = [OwnerPlan(kind="serial") for _ in n.body]
                obs.event("codegen.phase", cat="codegen", nest=n.name,
                          sync=SyncKind.BARRIER.value, serial=True)
                phases.append(
                    SpmdPhase(
                        nest=n,
                        owners=owners,
                        sync_after=SyncKind.BARRIER,
                        barriers_per_execution=1,
                    )
                )
                continue
            owners = []
            for st in n.body:
                depth = st.depth if st.depth is not None else n.depth
                if level < depth:
                    owners.append(OwnerPlan(kind="base", level=level))
                else:
                    owners.append(OwnerPlan(kind="serial"))
            barriers = _barriers_per_execution(n, level, params)
            obs.event("codegen.phase", cat="codegen", nest=n.name,
                      sync=SyncKind.BARRIER.value, level=level,
                      barriers=barriers)
            phases.append(
                SpmdPhase(
                    nest=n,
                    owners=owners,
                    sync_after=SyncKind.BARRIER,
                    barriers_per_execution=barriers,
                )
            )
        return SpmdProgram(
            program=prog,
            scheme=scheme,
            nprocs=nprocs,
            grid=(nprocs,),
            transformed=transformed,
            phases=phases,
        )

    if decomp is None:
        raise ValueError(f"{scheme} requires a decomposition")
    grid = grid_shape(nprocs, decomp.rank)
    restructure = scheme is Scheme.COMP_DECOMP_DATA
    if transformed is None:
        transformed = derive_program_layout(
            prog, decomp, grid,
            restructure=restructure,
            line_pad_elements=line_pad_elements if restructure else None,
        )

    phases = []
    for nest in prog.nests:
        owners = []
        serial = True
        for s, st in enumerate(nest.body):
            cd = decomp.comp_for(nest.name, s)
            if cd is None or not cd.matrix or all(
                all(c == 0 for c in row) for row in cd.matrix
            ):
                owners.append(OwnerPlan(kind="serial"))
                continue
            serial = False
            owners.append(
                OwnerPlan(
                    kind="affine",
                    matrix=[list(r) for r in cd.matrix],
                    foldings=tuple(decomp.foldings),
                    extents=_virtual_extents(
                        LoopNest(
                            name=nest.name,
                            loops=nest.loops[
                                : (st.depth if st.depth is not None
                                   else nest.depth)
                            ],
                            body=[],
                        ),
                        cd.matrix,
                        params,
                    ),
                )
            )
        pipelined = decomp.is_pipelined(nest.name)
        local = _reads_local(nest, decomp, params)
        if pipelined:
            sync = SyncKind.PIPELINE
        elif local:
            sync = SyncKind.NONE
        elif serial:
            sync = SyncKind.BARRIER
        else:
            sync = SyncKind.NEIGHBOR if _nearly_local(nest, decomp) else SyncKind.BARRIER
        # Sequential (unmapped) levels give the doacross step count.
        mapped_levels = set()
        for plan in owners:
            if plan.matrix:
                for row in plan.matrix:
                    mapped_levels |= {k for k, c in enumerate(row) if c}
        seq_steps = 1
        if pipelined:
            bounds = nest.numeric_bounds(params)
            for k, (lo, hi) in enumerate(bounds):
                if k not in mapped_levels:
                    seq_steps *= max(1, hi - lo + 1)
        obs.event("codegen.phase", cat="codegen", nest=nest.name,
                  sync=sync.value, pipelined=pipelined,
                  all_reads_local=local, seq_steps=seq_steps,
                  serial=serial)
        phases.append(
            SpmdPhase(
                nest=nest,
                owners=owners,
                sync_after=sync,
                pipelined=pipelined,
                barriers_per_execution=1,
                all_reads_local=local,
                seq_steps=seq_steps,
            )
        )
    return SpmdProgram(
        program=prog,
        scheme=scheme,
        nprocs=nprocs,
        grid=grid,
        transformed=transformed,
        phases=phases,
        decomposition=decomp,
    )


def _nearly_local(nest: LoopNest, decomp: Decomposition) -> bool:
    """True when every read is local up to a constant offset (boundary
    exchange with a fixed set of neighbours): the linear parts match
    even though the offsets differ."""
    from repro.util.intlinalg import mat_mul

    for s, st in enumerate(nest.body):
        cd = decomp.comp_for(nest.name, s)
        if cd is None:
            return False
        depth = st.depth if st.depth is not None else nest.depth
        loop_vars = nest.loop_vars[:depth]
        for ref in st.all_refs():
            dd = decomp.data_for(ref.array.name)
            if dd is None:
                return False
            if dd.replicated or not dd.matrix:
                continue
            af = ref.access_function(loop_vars)
            df = mat_mul(dd.matrix, [list(r) for r in af.matrix])
            if df != [row[:depth] for row in cd.matrix]:
                return False
    return True
