"""The Section 4.3 address optimizations.

Transformed-array subscripts contain ``div`` and ``mod``; executed
naively on every access they would swamp the cache gains.  The paper
describes three remedies, all implemented here as an analysis over one
innermost loop:

1. **strip-invariant elimination** — inside a single strip-mined
   partition the quotient ``e div b`` is constant and ``e mod b`` is
   linear, so both hoist out of the loop (the ``idiv = myid`` /
   ``imod = imod + 1`` rewrite of the paper's SPMD example);
2. **peeling** — when the loop's range crosses a small number of strip
   boundaries, the boundary-crossing iterations are peeled off and the
   remainder optimized as in (1);
3. **strength reduction** — otherwise the mod operand is tracked
   incrementally, performing a subtract-and-carry only when the running
   value exceeds the modulus (and sharing the carry with the matching
   division), like the paper's ``x = x + 4; IF (x .ge. 64) ...`` rewrite.

The analysis reports per-iteration and per-loop-entry division/modulo
counts before and after optimization; the ablation benchmark
(EXPERIMENTS.md) sums these into dynamic counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro import obs
from repro.obs import provenance
from repro.codegen.addrexpr import (
    AAffine,
    ADiv,
    AExpr,
    AMod,
    count_divmod,
    divmod_nodes,
)
from repro.ir.expr import AffineExpr


@dataclass
class NodePlan:
    """Optimization decision for one div/mod node."""

    node: AExpr
    strategy: str  # 'invariant' | 'peel' | 'strength' | 'none'
    per_iter: float  # amortized div/mod executed per iteration
    per_entry: int  # div/mod executed once per loop entry
    detail: str = ""


@dataclass
class AddressCostReport:
    """Cost summary for one reference's address in one innermost loop."""

    naive_per_iter: int
    plans: List[NodePlan] = field(default_factory=list)

    @property
    def optimized_per_iter(self) -> float:
        return sum(p.per_iter for p in self.plans)

    @property
    def per_entry(self) -> int:
        return sum(p.per_entry for p in self.plans)

    def dynamic_counts(self, trips: int, entries: int) -> Tuple[float, float]:
        """(naive, optimized) dynamic div+mod counts for ``entries``
        executions of a loop with ``trips`` iterations each."""
        naive = float(self.naive_per_iter) * trips * entries
        opt = self.optimized_per_iter * trips * entries + self.per_entry * entries
        return naive, opt


def _expr_interval(
    e: AffineExpr, var: str, var_range: Tuple[int, int],
    other_ranges: Mapping[str, Tuple[int, int]],
) -> Tuple[int, int]:
    """Interval of an affine expression over the loop var and the
    (conservative) ranges of the other variables."""
    lo = hi = e.const
    ranges = dict(other_ranges)
    ranges[var] = var_range
    for v, c in e.coeffs:
        if v not in ranges:
            raise ValueError(f"no range for variable {v}")
        vlo, vhi = ranges[v]
        if c >= 0:
            lo += c * vlo
            hi += c * vhi
        else:
            lo += c * vhi
            hi += c * vlo
    return lo, hi


def optimize_ref_address(
    expr: AExpr,
    var: str,
    var_range: Tuple[int, int],
    other_ranges: Optional[Mapping[str, Tuple[int, int]]] = None,
    peel_limit: int = 2,
) -> AddressCostReport:
    """Plan the Section 4.3 optimizations for one address expression in
    the innermost loop over ``var`` with inclusive ``var_range``.

    ``other_ranges`` bounds the loop-invariant variables (outer loop
    indices for the current processor, parameters already substituted).
    """
    other_ranges = dict(other_ranges or {})
    divs, mods = count_divmod(expr)
    report = AddressCostReport(naive_per_iter=divs + mods)
    trips = max(1, var_range[1] - var_range[0] + 1)

    for node in divmod_nodes(expr):
        operand = node.operand
        if not isinstance(operand, AAffine):
            report.plans.append(
                NodePlan(node, "none", per_iter=1.0, per_entry=0,
                         detail="non-affine operand")
            )
            continue
        e = operand.expr
        c = node.divisor if isinstance(node, ADiv) else node.modulus
        coeff = e.coeff(var)
        if coeff == 0:
            # Loop-invariant operand: hoist entirely.
            report.plans.append(
                NodePlan(node, "invariant", per_iter=0.0, per_entry=1,
                         detail="operand invariant in loop")
            )
            continue
        lo, hi = _expr_interval(e, var, var_range, other_ranges)
        q_lo, q_hi = lo // c, hi // c
        boundaries = q_hi - q_lo
        if boundaries == 0:
            # The whole range sits inside one strip: div is constant,
            # mod is linear (e - c*q), both computed once per entry.
            report.plans.append(
                NodePlan(node, "invariant", per_iter=0.0, per_entry=1,
                         detail=f"range [{lo},{hi}] within one strip of {c}")
            )
        elif boundaries <= peel_limit:
            report.plans.append(
                NodePlan(node, "peel", per_iter=0.0,
                         per_entry=1 + boundaries,
                         detail=f"peel {boundaries} boundary crossing(s)")
            )
        else:
            # Strength reduction: one div/mod at entry, then an
            # increment with a carry roughly every c/|coeff| iterations
            # (a subtraction, not a division — the *division* count
            # amortizes to zero; we charge the carry bookkeeping as
            # 1/period to stay conservative).
            period = max(1, c // max(1, abs(coeff)))
            report.plans.append(
                NodePlan(node, "strength", per_iter=1.0 / period
                         if period < trips else 0.0,
                         per_entry=1,
                         detail=f"strength-reduced, carry period {period}")
            )
    if provenance.active():
        _AFTER = {
            "invariant": "hoisted to loop preamble",
            "peel": "boundary iterations peeled, remainder hoisted",
            "strength": "running value with subtract-and-carry",
            "none": "unchanged",
        }
        for i, p in enumerate(report.plans):
            before = getattr(p.node, "to_c", lambda: repr(p.node))()
            provenance.record(
                "addropt.plan", stage="addropt",
                subject=f"{var}[{i}] {before}",
                chosen=p.strategy,
                alternatives=["invariant", "peel", "strength", "none"],
                reason=p.detail,
                before=before, after=_AFTER.get(p.strategy, p.strategy),
                per_iter=p.per_iter, per_entry=p.per_entry,
                ops_saved_per_iter=1.0 - p.per_iter,
            )
    if obs.enabled():
        # "invariant" covers the paper's div/mod hoisting; "peel" and
        # "strength" the other two Section 4.3 remedies.
        for p in report.plans:
            obs.inc(f"addropt.{p.strategy}")
        obs.inc("addropt.divmod_nodes", len(report.plans))
        obs.event(
            "addropt.plan", cat="codegen", var=var,
            naive_per_iter=report.naive_per_iter,
            optimized_per_iter=report.optimized_per_iter,
            per_entry=report.per_entry,
            strategies=[p.strategy for p in report.plans],
        )
    return report
