"""Optimized SPMD source emission (the paper's Section 4.3 rewrites).

:func:`emit_optimized_program` renders the code ONE processor executes,
with the three address optimizations applied textually — the form the
paper shows for the (BLOCK, *) example:

.. code-block:: c

    idiv = myid;
    for (J = 2; J <= 99; J++) {
      imod = 0;
      for (I = b*myid+1; I <= min(b*myid+b, 100); I++) {
        A[imod + b*J + b*N*idiv] = ...;
        imod = imod + 1;
      }
    }

Invariant div/mod nodes become loop-preamble constants, strength-reduced
nodes become running counters with a carry test, and single-boundary
crossings are peeled into two loops.  Loops whose processor set is
strided (CYCLIC folding) or whose plans cannot be optimized fall back
to the naive linearized subscripts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.codegen.addrexpr import (
    AAffine,
    ADiv,
    AExpr,
    AMod,
    build_address_expr,
    divmod_nodes,
)
from repro.codegen.optimize import AddressCostReport, optimize_ref_address
from repro.codegen.spmd import OwnerPlan, SpmdPhase, SpmdProgram
from repro.decomp.model import FoldKind
from repro.ir.expr import AffineExpr
from repro.ir.loops import LoopNest


@dataclass
class _LoopContext:
    """Concrete per-processor bounds for one nest."""

    ranges: Dict[str, Tuple[int, int]]  # inclusive bounds per loop var
    distributed_var: Optional[str]


def _proc_ranges(
    spmd: SpmdProgram, phase: SpmdPhase, proc: int
) -> Optional[_LoopContext]:
    """Per-processor loop bounds when they form a dense box.

    Supported: serial plans (full ranges on proc 0), and affine plans
    mapping a single loop level per grid dimension with BLOCK folding.
    Returns None for strided (CYCLIC) or otherwise non-rectangular
    ownership, where the caller falls back to naive emission.
    """
    nest = phase.nest
    params = spmd.program.params
    bounds = dict(zip(nest.loop_vars, nest.numeric_bounds(params)))
    plan = phase.owners[0]
    if plan.kind == "serial" or spmd.nprocs == 1:
        return _LoopContext(ranges=bounds, distributed_var=None)
    if plan.kind != "affine" or plan.matrix is None:
        return None
    # Decode the processor id into grid coordinates (column-major).
    coords = []
    rem = proc
    for g in spmd.grid:
        coords.append(rem % g)
        rem //= g
    dist_var = None
    for dim, row in enumerate(plan.matrix):
        nz = [(k, c) for k, c in enumerate(row) if c]
        if not nz:
            continue
        if len(nz) != 1 or abs(nz[0][1]) != 1:
            return None
        level = nz[0][0]
        fold = plan.foldings[dim]
        g = spmd.grid[dim] if dim < len(spmd.grid) else 1
        if fold.kind is not FoldKind.BLOCK or g <= 1:
            if g > 1:
                return None
            continue
        var = nest.loop_vars[level]
        lo, hi = bounds[var]
        ext = plan.extents[dim] if dim < len(plan.extents) else hi - lo + 1
        b = max(1, -(-ext // g))
        c = coords[dim]
        new_lo = lo + c * b
        new_hi = min(hi, lo + (c + 1) * b - 1)
        bounds[var] = (new_lo, new_hi)
        dist_var = var if level == nest.depth - 1 else dist_var
    return _LoopContext(ranges=bounds, distributed_var=dist_var)


def _subst_lo(expr: AffineExpr, var: str, lo: int) -> AffineExpr:
    return expr.subs({var: lo})


def _render_affine(e: AffineExpr) -> str:
    return repr(e)


@dataclass
class _NodeRewrite:
    decl_lines: List[str]
    body_updates: List[str]
    replacement: str


def _rewrite_node(
    node: AExpr, idx: int, var: str, lo: int, strategy: str
) -> Optional[_NodeRewrite]:
    """Turn one div/mod node into preamble + in-loop update + use."""
    if not isinstance(node, (ADiv, AMod)):
        return None
    operand = node.operand
    if not isinstance(operand, AAffine):
        return None
    e = operand.expr
    c = node.divisor if isinstance(node, ADiv) else node.modulus
    coeff = e.coeff(var)
    seed = _render_affine(_subst_lo(e, var, lo))
    if isinstance(node, ADiv):
        name = f"q{idx}"
        decl = [f"int {name} = ({seed}) / {c};"]
    else:
        name = f"m{idx}"
        decl = [f"int {name} = ({seed}) % {c};"]
    updates: List[str] = []
    if strategy == "invariant":
        # div constant; mod advances linearly with the loop.
        if isinstance(node, AMod) and coeff:
            updates.append(f"{name} += {coeff};")
    elif strategy == "strength":
        if isinstance(node, AMod):
            updates.append(f"{name} += {coeff};")
            updates.append(
                f"if ({name} >= {c}) {{ {name} -= {c}; /* carry */ }}"
            )
        else:
            # the matching division advances on the mod's carry; rendered
            # as its own counter with the same test.
            updates.append(
                f"/* {name} advances when the remainder wraps */"
            )
    else:
        return None
    return _NodeRewrite(decl_lines=decl, body_updates=updates,
                        replacement=name)


def _emit_statement_addresses(
    spmd: SpmdProgram,
    nest: LoopNest,
    stmt_idx: int,
    ctx: _LoopContext,
    counter_start: int,
) -> Tuple[List[str], List[str], List[str], int]:
    """(preamble decls, in-loop updates, statement lines, next counter)."""
    st = nest.body[stmt_idx]
    inner_var = nest.loop_vars[-1]
    lo, hi = ctx.ranges[inner_var]
    other = {v: r for v, r in ctx.ranges.items() if v != inner_var}
    decls: List[str] = []
    updates: List[str] = []
    idx = counter_start

    def addr_text(ref) -> str:
        nonlocal idx
        ta = spmd.transformed[ref.array.name]
        expr = build_address_expr(ta.layout, ref.index_exprs)
        report = optimize_ref_address(expr, inner_var, (lo, hi), other)
        replacements: Dict[int, str] = {}
        for plan_, node in zip(report.plans, divmod_nodes(expr)):
            rw = _rewrite_node(node, idx, inner_var, lo, plan_.strategy)
            if rw is None:
                continue
            decls.extend(rw.decl_lines)
            updates.extend(rw.body_updates)
            replacements[id(node)] = rw.replacement
            idx += 1
        return _render_with_replacements(expr, replacements)

    reads = ", ".join(
        f"{r.array.name}[{addr_text(r)}]" for r in st.reads
    ) or "0.0"
    wtext = f"{st.write.array.name}[{addr_text(st.write)}] = f({reads});"
    return decls, updates, [wtext], idx


def _render_with_replacements(expr: AExpr, repl: Dict[int, str]) -> str:
    if id(expr) in repl:
        return repl[id(expr)]
    from repro.codegen.addrexpr import AAdd, AScale

    if isinstance(expr, AAdd):
        return " + ".join(
            _render_with_replacements(t, repl) for t in expr.terms
        )
    if isinstance(expr, AScale):
        inner = _render_with_replacements(expr.operand, repl)
        return inner if expr.factor == 1 else f"{expr.factor}*({inner})"
    return expr.to_c()


def emit_optimized_program(spmd: SpmdProgram, proc: int = 0) -> str:
    """The SPMD program specialized to one processor, with Section 4.3
    address optimizations applied where the analysis allows."""
    lines: List[str] = [
        f"/* processor {proc} of {spmd.nprocs}; scheme: "
        f"{spmd.scheme.value} */"
    ]
    for phase in spmd.phases:
        nest = phase.nest
        ctx = _proc_ranges(spmd, phase, proc)
        lines.append(f"/* nest {nest.name} */")
        if ctx is None:
            lines.append(
                "/* strided or non-rectangular ownership: naive "
                "subscripts retained */"
            )
            from repro.codegen.addrexpr import build_address_expr as bae

            for st in nest.body:
                ta = spmd.transformed[st.write.array.name]
                lines.append(
                    f"  {st.write.array.name}"
                    f"[{bae(ta.layout, st.write.index_exprs).to_c()}] = ...;"
                )
            lines.append("")
            continue
        counter = 0
        all_decls: List[str] = []
        all_updates: List[str] = []
        stmt_lines: List[str] = []
        for s in range(len(nest.body)):
            decls, updates, body, counter = _emit_statement_addresses(
                spmd, nest, s, ctx, counter
            )
            all_decls.extend(decls)
            all_updates.extend(updates)
            stmt_lines.extend(body)
        indent = "  "
        depth = nest.depth
        for k, loop in enumerate(nest.loops):
            var = loop.var
            lo, hi = ctx.ranges[var]
            pad = indent * (k + 1)
            if k == depth - 1:
                for d in all_decls:
                    lines.append(f"{pad}{d}")
            lines.append(
                f"{pad}for ({var} = {lo}; {var} <= {hi}; {var}++) {{"
            )
        pad = indent * (depth + 1)
        for sl in stmt_lines:
            lines.append(f"{pad}{sl}")
        for u in all_updates:
            lines.append(f"{pad}{u}")
        for k in range(depth, 0, -1):
            lines.append(f"{indent * k}}}")
        lines.append("")
    return "\n".join(lines)
