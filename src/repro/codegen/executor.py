"""Sequential semantic executor.

Interprets a :class:`Program` over NumPy storage, honouring statement
nesting depth (imperfect nests) and the enclosing time loop.  This is
the semantic ground truth used by the tests: the SPMD partitioning and
the data transformations must never change the values a program
computes, only where they live and who computes them.

The interpreter is deliberately simple (one Python-level dispatch per
statement instance); apps provide vectorized golden references for the
larger validation runs, per the NumPy optimization guidance.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

import numpy as np

from repro.ir.loops import LoopNest
from repro.ir.program import Program


def default_init(prog: Program, seed: int = 12345) -> Dict[str, np.ndarray]:
    """Deterministic nonzero initial contents for every array (values in
    [1, 2) so divisions in apps like LU stay well-conditioned)."""
    rng = np.random.default_rng(seed)
    out = {}
    for name, decl in sorted(prog.arrays.items()):
        out[name] = 1.0 + rng.random(decl.dims, dtype=np.float64)
    return out


def _run_nest(
    nest: LoopNest, storage: Mapping[str, np.ndarray], params: Mapping[str, int]
) -> None:
    depth = nest.depth
    stmts_by_level: Dict[int, list] = {}
    for st in nest.body:
        d = st.depth if st.depth is not None else depth
        stmts_by_level.setdefault(d, []).append(st)
    env = dict(params)

    def exec_level(level: int) -> None:
        for st in stmts_by_level.get(level, ()):
            vals = [
                storage[r.array.name][r.index_at(env)] for r in st.reads
            ]
            if st.compute is not None:
                result = st.compute(*vals)
            else:
                result = float(sum(vals))
            storage[st.write.array.name][st.write.index_at(env)] = result
        if level == depth:
            return
        loop = nest.loops[level]
        lo = loop.lower.eval(env)
        hi = loop.upper.eval(env)
        for v in range(lo, hi + 1):
            env[loop.var] = v
            exec_level(level + 1)
        env.pop(loop.var, None)

    exec_level(0)


def execute_program(
    prog: Program,
    init: Optional[Mapping[str, np.ndarray]] = None,
    time_steps: Optional[int] = None,
) -> Dict[str, np.ndarray]:
    """Run the program sequentially; returns the final array contents."""
    storage: Dict[str, np.ndarray] = {}
    base = init if init is not None else default_init(prog)
    for name, decl in prog.arrays.items():
        if name in base:
            arr = np.array(base[name], dtype=np.float64)
            if arr.shape != decl.dims:
                raise ValueError(
                    f"{name}: init shape {arr.shape} != dims {decl.dims}"
                )
        else:
            arr = np.zeros(decl.dims, dtype=np.float64)
        storage[name] = arr
    steps = time_steps if time_steps is not None else prog.time_steps
    for _ in range(max(1, steps)):
        for nest in prog.nests:
            for _ in range(max(1, nest.frequency)):
                _run_nest(nest, storage, prog.params)
    return storage
