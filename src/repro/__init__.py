"""repro — reproduction of "Data and Computation Transformations for
Multiprocessors" (Anderson, Amarasinghe & Lam, PPoPP 1995).

Public API map:

* :mod:`repro.ir` — the affine loop-nest IR and builder DSL;
* :mod:`repro.analysis` — dependence tests and unimodular restructuring;
* :mod:`repro.decomp` — phase 1: computation/data decomposition;
* :mod:`repro.datatrans` — phase 2: strip-mine + permute layouts;
* :mod:`repro.codegen` — SPMD generation, address optimizations, C
  emission, semantic execution;
* :mod:`repro.machine` — the scaled-DASH memory-system model;
* :mod:`repro.apps` — the paper's benchmark programs;
* :mod:`repro.compiler` — the three Section-6 pipelines;
* :mod:`repro.verify` — the semantic verification oracle;
* :mod:`repro.errors` / :mod:`repro.faults` — typed failures and
  deterministic fault injection;
* :mod:`repro.report` — experiment formatting.
"""

from repro.compiler import Scheme, compile_all, compile_program
from repro.errors import (
    CacheError,
    CompileError,
    FaultInjected,
    LegalityError,
    ReproError,
    SimulationError,
    VerifyError,
)

__version__ = "1.0.0"

__all__ = [
    "Scheme",
    "compile_all",
    "compile_program",
    "ReproError",
    "CompileError",
    "LegalityError",
    "CacheError",
    "SimulationError",
    "VerifyError",
    "FaultInjected",
    "__version__",
]
