"""Atomic, durable file writes — the one implementation.

Historically three near-identical temp-file-plus-rename snippets lived
in :mod:`repro.pipeline.cache`, :mod:`repro.pipeline.store` and
:mod:`repro.obs.bench`; they are all this function now.  The write
protocol is the standard crash-safe sequence:

1. create a temp file *in the destination directory* (same filesystem,
   so the final rename is atomic);
2. write the full payload, ``flush`` + ``fsync`` it (data reaches the
   platter, not just the page cache);
3. ``os.replace`` over the destination (atomic on POSIX);
4. ``fsync`` the destination directory so the rename itself is durable.

A reader therefore only ever observes the old content or the complete
new content — never a prefix.  ``fsync=False`` skips both syncs for
callers that prefer throughput over durability (e.g. bench series
rotation, where losing the newest line in a crash is acceptable).

Fault injection (:mod:`repro.faults`) hooks the write path so chaos
tests can reach every recovery branch deterministically:

* ``disk.enospc`` — the write raises ``OSError(ENOSPC)`` before any
  byte lands (the temp file is cleaned up);
* ``disk.torn_write`` — only a prefix of the payload reaches the
  destination and the syncs are skipped, simulating a torn write that
  a crash (or a lying disk) made visible.  ``repro fsck`` and the
  corrupt-entry quarantine paths exist to detect exactly this.
"""

from __future__ import annotations

import errno
import os
import tempfile
from pathlib import Path
from typing import Union

from repro import faults

__all__ = ["fsync_dir", "write_atomic"]


def fsync_dir(path: os.PathLike) -> None:
    """Best-effort fsync of a directory (makes a rename durable)."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_atomic(path: os.PathLike, data: Union[str, bytes],
                 fsync: bool = True, mkdirs: bool = True) -> Path:
    """Atomically replace ``path`` with ``data`` (str or bytes).

    Raises ``OSError`` on failure (callers decide whether a failed
    write is fatal); on any failure the temp file is removed, the
    destination is untouched.  Returns the destination path.
    """
    path = Path(path)
    if isinstance(data, str):
        data = data.encode("utf-8")
    if faults.should_fire("disk.enospc"):
        raise OSError(errno.ENOSPC,
                      "no space left on device (injected fault)")
    torn = faults.should_fire("disk.torn_write")
    if torn:
        # A torn write lands a prefix and never syncs: the rename still
        # happens (the crash is modeled as occurring after it), so the
        # truncated payload is what the next reader sees.
        data = data[: len(data) // 2]
        fsync = False
    if mkdirs:
        path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(path.parent)
    return path
