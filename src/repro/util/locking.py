"""Advisory cross-process file locking with timeout and stale-break.

Two grid drivers sharing one ``--store-dir`` must not interleave
read-modify-write cycles on the store's coordinate index, race its
eviction scan, or both rewrite the journal's ``latest`` pointer.
:class:`FileLock` serializes those critical sections:

* **primary mode** (POSIX): ``fcntl.flock`` on a long-lived lock file.
  The kernel owns the lock, so a crashed holder releases it
  automatically — there are no stale locks to break.
* **fallback mode** (no ``fcntl``, or ``use_fcntl=False``):
  ``O_CREAT | O_EXCL`` lock files carrying ``pid:timestamp``.  A lock
  whose owning pid is dead, or whose age exceeds ``stale_after``
  seconds, is *broken* (unlinked and re-acquired) — the classic
  stale-lock policy for lock files that can outlive their owner.

Both modes poll with ``poll`` seconds of sleep until ``timeout``, then
raise :class:`~repro.errors.LockError`.  The lock file records the
holder's pid and acquisition time in both modes for diagnostics.

Lock acquisition order (deadlock avoidance, see DESIGN.md): a process
that needs both takes the **store lock before the journal lock**, and
never acquires the same :class:`FileLock` re-entrantly.

Counters: ``lock.acquired``, ``lock.contended`` (had to wait),
``lock.timeouts``, ``lock.stale_broken``, and ``lock.wait_ms`` (total
milliseconds spent waiting).
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Optional

from repro import obs
from repro.errors import LockError

try:  # pragma: no cover - always present on the POSIX CI hosts
    import fcntl
except ImportError:  # pragma: no cover - win32
    fcntl = None

__all__ = ["FileLock"]

DEFAULT_TIMEOUT = 30.0
DEFAULT_POLL = 0.05
DEFAULT_STALE_AFTER = 300.0


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


class FileLock:
    """An advisory inter-process lock on ``path`` (a dedicated lock
    file, not the resource itself).  Context-manager friendly::

        with FileLock(store_dir / ".lock", timeout=10):
            ...critical section...

    Not re-entrant and not thread-safe — one instance guards one
    acquisition.
    """

    def __init__(self, path: os.PathLike, timeout: float = DEFAULT_TIMEOUT,
                 poll: float = DEFAULT_POLL,
                 stale_after: float = DEFAULT_STALE_AFTER,
                 use_fcntl: Optional[bool] = None):
        self.path = Path(path)
        self.timeout = timeout
        self.poll = poll
        self.stale_after = stale_after
        self._fcntl = (fcntl is not None) if use_fcntl is None \
            else (use_fcntl and fcntl is not None)
        self._fd: Optional[int] = None
        self._held = False

    @property
    def held(self) -> bool:
        return self._held

    # -- acquisition -------------------------------------------------------

    def acquire(self) -> "FileLock":
        if self._held:
            raise LockError("lock is not re-entrant",
                            lock=str(self.path))
        deadline = time.monotonic() + self.timeout
        waited = False
        start = time.monotonic()
        while True:
            if self._try_acquire():
                obs.inc("lock.acquired")
                if waited:
                    obs.inc("lock.contended")
                    obs.counter("lock.wait_ms").add(
                        (time.monotonic() - start) * 1000.0)
                self._held = True
                return self
            waited = True
            if time.monotonic() >= deadline:
                obs.inc("lock.timeouts")
                obs.event("lock.timeout", cat="lock",
                          lock=str(self.path), timeout=self.timeout)
                raise LockError(
                    f"could not acquire lock within {self.timeout:g}s",
                    lock=str(self.path))
            time.sleep(self.poll)

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        if self._fcntl:
            if self._fd is not None:
                try:
                    fcntl.flock(self._fd, fcntl.LOCK_UN)
                except OSError:
                    pass
                try:
                    os.close(self._fd)
                except OSError:
                    pass
                self._fd = None
        else:
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    # -- one attempt -------------------------------------------------------

    def _try_acquire(self) -> bool:
        if self._fcntl:
            return self._try_flock()
        return self._try_exclusive()

    def _try_flock(self) -> bool:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(str(self.path), os.O_CREAT | os.O_RDWR, 0o644)
        except OSError as exc:
            raise LockError(f"cannot open lock file: {exc}",
                            lock=str(self.path)) from exc
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return False
        self._fd = fd
        self._stamp(fd)
        return True

    def _try_exclusive(self) -> bool:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(str(self.path),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            self._maybe_break_stale()
            return False
        except OSError as exc:
            raise LockError(f"cannot create lock file: {exc}",
                            lock=str(self.path)) from exc
        self._stamp(fd)
        os.close(fd)
        return True

    def _stamp(self, fd: int) -> None:
        try:
            os.ftruncate(fd, 0)
            os.write(fd, f"{os.getpid()}:{time.time():.3f}\n".encode())
        except OSError:
            pass

    def _maybe_break_stale(self) -> None:
        """Fallback mode only: unlink a lock whose holder is provably
        gone (dead pid) or that has outlived ``stale_after`` seconds."""
        try:
            text = self.path.read_text().strip()
            pid_s, _, ts_s = text.partition(":")
            pid = int(pid_s)
            ts = float(ts_s) if ts_s else 0.0
        except (OSError, ValueError):
            pid, ts = -1, 0.0
        stale = not _pid_alive(pid)
        if not stale and self.stale_after is not None and ts:
            stale = (time.time() - ts) > self.stale_after
        if not stale:
            return
        try:
            os.unlink(self.path)
        except OSError:
            return
        obs.inc("lock.stale_broken")
        obs.event("lock.stale_broken", cat="lock", lock=str(self.path),
                  holder_pid=pid)
