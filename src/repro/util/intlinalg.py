"""Exact integer linear algebra.

All of the affine machinery in this package — dependence testing,
unimodular loop transformations, affine computation/data decompositions —
needs *exact* arithmetic over the integers.  Floating point is unusable
(a rank decision made with a rounded pivot silently produces a wrong
parallelization), so everything here works on plain Python ``int``
matrices represented as ``list[list[int]]``.

The workhorse is the Hermite Normal Form computed by integer row
operations (extended-gcd pivoting).  From it we derive ranks, integer
nullspace lattice bases, solutions of linear Diophantine systems and
unimodular completions (via the Smith Normal Form).

None of these matrices is large — loop nests are 2-4 deep and arrays
2-3 dimensional — so the implementations favour clarity and exactness
over asymptotic cleverness.
"""

from __future__ import annotations

from math import gcd
from typing import List, Optional, Sequence, Tuple

Matrix = List[List[int]]
Vector = List[int]


# ---------------------------------------------------------------------------
# Basic constructors and operations
# ---------------------------------------------------------------------------

def identity(n: int) -> Matrix:
    """Return the n-by-n identity matrix."""
    return [[1 if i == j else 0 for j in range(n)] for i in range(n)]


def zeros(m: int, n: int) -> Matrix:
    """Return an m-by-n zero matrix."""
    return [[0] * n for _ in range(m)]


def copy_matrix(a: Sequence[Sequence[int]]) -> Matrix:
    """Deep-copy a matrix into fresh lists of ints."""
    return [list(map(int, row)) for row in a]


def shape(a: Sequence[Sequence[int]]) -> Tuple[int, int]:
    """Return (rows, cols); a zero-row matrix has shape (0, 0)."""
    m = len(a)
    n = len(a[0]) if m else 0
    return m, n


def transpose(a: Sequence[Sequence[int]]) -> Matrix:
    """Return the transpose of ``a``."""
    m, n = shape(a)
    return [[a[i][j] for i in range(m)] for j in range(n)]


def mat_mul(a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]) -> Matrix:
    """Exact matrix product a @ b."""
    m, k = shape(a)
    k2, n = shape(b)
    if k != k2:
        raise ValueError(f"shape mismatch: ({m},{k}) @ ({k2},{n})")
    bt = transpose(b)
    return [[sum(x * y for x, y in zip(row, col)) for col in bt] for row in a]


def mat_vec(a: Sequence[Sequence[int]], v: Sequence[int]) -> Vector:
    """Exact matrix-vector product a @ v."""
    m, n = shape(a)
    if n != len(v):
        raise ValueError(f"shape mismatch: ({m},{n}) @ ({len(v)},)")
    return [sum(x * y for x, y in zip(row, v)) for row in a]


def mat_add(a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]) -> Matrix:
    """Exact elementwise sum."""
    if shape(a) != shape(b):
        raise ValueError("shape mismatch in mat_add")
    return [[x + y for x, y in zip(ra, rb)] for ra, rb in zip(a, b)]


def mat_sub(a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]) -> Matrix:
    """Exact elementwise difference."""
    if shape(a) != shape(b):
        raise ValueError("shape mismatch in mat_sub")
    return [[x - y for x, y in zip(ra, rb)] for ra, rb in zip(a, b)]


def hstack(a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]) -> Matrix:
    """Horizontally concatenate two matrices with equal row counts."""
    if len(a) != len(b):
        raise ValueError("row-count mismatch in hstack")
    return [list(ra) + list(rb) for ra, rb in zip(a, b)]


def vstack(a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]) -> Matrix:
    """Vertically concatenate two matrices with equal column counts."""
    if a and b and len(a[0]) != len(b[0]):
        raise ValueError("column-count mismatch in vstack")
    return copy_matrix(a) + copy_matrix(b)


def determinant(a: Sequence[Sequence[int]]) -> int:
    """Exact determinant via the Bareiss fraction-free algorithm."""
    m, n = shape(a)
    if m != n:
        raise ValueError("determinant of non-square matrix")
    if m == 0:
        return 1
    mat = copy_matrix(a)
    sign = 1
    prev = 1
    for k in range(n - 1):
        if mat[k][k] == 0:
            # Find a row below with a nonzero pivot and swap it up.
            for i in range(k + 1, n):
                if mat[i][k] != 0:
                    mat[k], mat[i] = mat[i], mat[k]
                    sign = -sign
                    break
            else:
                return 0
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                mat[i][j] = (mat[i][j] * mat[k][k] - mat[i][k] * mat[k][j]) // prev
            mat[i][k] = 0
        prev = mat[k][k]
    return sign * mat[n - 1][n - 1]


def is_unimodular(a: Sequence[Sequence[int]]) -> bool:
    """True iff ``a`` is square with determinant +1 or -1."""
    m, n = shape(a)
    return m == n and abs(determinant(a)) == 1


# ---------------------------------------------------------------------------
# Hermite Normal Form
# ---------------------------------------------------------------------------

def hermite_normal_form(
    a: Sequence[Sequence[int]],
) -> Tuple[Matrix, Matrix, List[int]]:
    """Row-style Hermite Normal Form.

    Returns ``(H, U, pivots)`` with ``H = U @ a``, ``U`` unimodular, and
    ``H`` in row echelon form: each nonzero row has a positive leading
    entry (pivot) strictly to the right of the previous row's pivot,
    entries below each pivot are zero, and entries *above* each pivot are
    reduced into ``[0, pivot)``.  ``pivots`` lists the pivot column of
    each nonzero row.
    """
    h = copy_matrix(a)
    m, n = shape(h)
    u = identity(m)
    pivots: List[int] = []
    row = 0
    for col in range(n):
        # Find a pivot row at or below `row` with nonzero entry in `col`.
        pivot_row = None
        for i in range(row, m):
            if h[i][col] != 0:
                pivot_row = i
                break
        if pivot_row is None:
            continue
        if pivot_row != row:
            h[row], h[pivot_row] = h[pivot_row], h[row]
            u[row], u[pivot_row] = u[pivot_row], u[row]
        # Eliminate entries below using extended-gcd row combinations,
        # which keep everything integral and the transform unimodular.
        for i in range(row + 1, m):
            while h[i][col] != 0:
                q = h[row][col] // h[i][col]
                for j in range(n):
                    h[row][j] -= q * h[i][j]
                for j in range(m):
                    u[row][j] -= q * u[i][j]
                h[row], h[i] = h[i], h[row]
                u[row], u[i] = u[i], u[row]
        if h[row][col] < 0:
            h[row] = [-x for x in h[row]]
            u[row] = [-x for x in u[row]]
        # Reduce the entries above the pivot into [0, pivot).
        p = h[row][col]
        for i in range(row):
            q = h[i][col] // p
            if q:
                for j in range(n):
                    h[i][j] -= q * h[row][j]
                for j in range(m):
                    u[i][j] -= q * u[row][j]
        pivots.append(col)
        row += 1
        if row == m:
            break
    return h, u, pivots


def column_hermite_normal_form(
    a: Sequence[Sequence[int]],
) -> Tuple[Matrix, Matrix, List[int]]:
    """Column-style HNF: returns ``(H, V, pivots)`` with ``H = a @ V``,
    ``V`` unimodular, ``H`` in column echelon form.  ``pivots`` lists the
    pivot row of each nonzero column.
    """
    ht, ut, pivots = hermite_normal_form(transpose(a))
    return transpose(ht), transpose(ut), pivots


def integer_rank(a: Sequence[Sequence[int]]) -> int:
    """Rank of ``a`` (identical over Z-lattices and over Q)."""
    if not a:
        return 0
    _, _, pivots = hermite_normal_form(a)
    return len(pivots)


# ---------------------------------------------------------------------------
# Nullspaces
# ---------------------------------------------------------------------------

def integer_nullspace(a: Sequence[Sequence[int]]) -> Matrix:
    """Basis (as rows) of the integer nullspace lattice {x : a @ x = 0}.

    The returned rows generate *all* integer solutions: the lattice is
    saturated, so any integer solution is an integer combination of the
    basis rows.  Returns ``[]`` when the nullspace is trivial.
    """
    m, n = shape(a)
    if n == 0:
        return []
    if m == 0:
        return identity(n)
    h, v, _ = column_hermite_normal_form(a)
    basis: Matrix = []
    for j in range(n):
        if all(h[i][j] == 0 for i in range(m)):
            basis.append([v[i][j] for i in range(n)])
    return basis


def integer_left_nullspace(a: Sequence[Sequence[int]]) -> Matrix:
    """Basis (as rows) of {y : y @ a = 0} over the integers."""
    return integer_nullspace(transpose(a))


# ---------------------------------------------------------------------------
# Smith Normal Form
# ---------------------------------------------------------------------------

def smith_normal_form(
    a: Sequence[Sequence[int]],
) -> Tuple[Matrix, Matrix, Matrix]:
    """Smith Normal Form: returns ``(U, S, V)`` with ``S = U @ a @ V``,
    ``U`` and ``V`` unimodular, and ``S`` diagonal with each diagonal
    entry dividing the next.
    """
    s = copy_matrix(a)
    m, n = shape(s)
    u = identity(m)
    v = identity(n)

    def swap_rows(i, j):
        s[i], s[j] = s[j], s[i]
        u[i], u[j] = u[j], u[i]

    def swap_cols(i, j):
        for row in s:
            row[i], row[j] = row[j], row[i]
        for row in v:
            row[i], row[j] = row[j], row[i]

    def add_row(dst, src, q):
        for j in range(n):
            s[dst][j] += q * s[src][j]
        for j in range(m):
            u[dst][j] += q * u[src][j]

    def add_col(dst, src, q):
        for row in s:
            row[dst] += q * row[src]
        for row in v:
            row[dst] += q * row[src]

    def normalize_pivot(t: int) -> None:
        if s[t][t] < 0:
            s[t] = [-x for x in s[t]]
            u[t] = [-x for x in u[t]]

    t = 0
    while t < min(m, n):
        # Find a nonzero pivot in the remaining submatrix.
        pi = pj = None
        for i in range(t, m):
            for j in range(t, n):
                if s[i][j] != 0:
                    pi, pj = i, j
                    break
            if pi is not None:
                break
        if pi is None:
            break
        swap_rows(t, pi)
        swap_cols(t, pj)
        # Repeat elimination until row t and column t are clear.  The
        # pivot is kept positive and every swap installs a strictly
        # smaller positive pivot (remainder-based Euclid), so the pass
        # terminates.
        while True:
            normalize_pivot(t)
            dirty = False
            for i in range(t + 1, m):
                while s[i][t] != 0:
                    q = s[i][t] // s[t][t]
                    add_row(i, t, -q)  # remainder now in [0, pivot)
                    if s[i][t] != 0:
                        swap_rows(t, i)
                        normalize_pivot(t)
                    dirty = True
            for j in range(t + 1, n):
                while s[t][j] != 0:
                    q = s[t][j] // s[t][t]
                    add_col(j, t, -q)
                    if s[t][j] != 0:
                        swap_cols(t, j)
                        normalize_pivot(t)
                    dirty = True
            if not dirty:
                break
        normalize_pivot(t)
        # Enforce the divisibility chain: s[t][t] must divide every
        # remaining entry; if not, fold the offending row in and redo.
        d = s[t][t]
        offender = None
        for i in range(t + 1, m):
            for j in range(t + 1, n):
                if s[i][j] % d != 0:
                    offender = i
                    break
            if offender is not None:
                break
        if offender is not None:
            add_row(t, offender, 1)
            continue
        t += 1
    return u, s, v


# ---------------------------------------------------------------------------
# Unimodular completion
# ---------------------------------------------------------------------------

def unimodular_completion(rows: Sequence[Sequence[int]], n: int) -> Matrix:
    """Complete ``rows`` (k linearly independent integer n-vectors that
    form a basis of a saturated lattice) to an n-by-n unimodular matrix
    whose first k rows are exactly ``rows``.

    Raises ``ValueError`` when the rows are dependent or do not span a
    saturated lattice (elementary divisors != 1), in which case no such
    completion exists.
    """
    k = len(rows)
    if k == 0:
        return identity(n)
    b = copy_matrix(rows)
    if any(len(r) != n for r in b):
        raise ValueError("row length mismatch")
    u, s, v = smith_normal_form(b)
    diag = [s[i][i] for i in range(min(k, n))]
    if any(d == 0 for d in diag) or len(diag) < k:
        raise ValueError("rows are linearly dependent")
    if any(abs(d) != 1 for d in diag):
        raise ValueError("rows do not form a saturated lattice basis")
    # b = u^{-1} @ [I_k | 0] @ v^{-1}; build W = diag(u^{-1}, I) so that
    # (W @ v^{-1})[0:k] = b while W @ v^{-1} stays unimodular.
    u_inv = invert_unimodular(u)
    v_inv = invert_unimodular(v)
    w = identity(n)
    for i in range(k):
        for j in range(k):
            w[i][j] = u_inv[i][j]
    result = mat_mul(w, v_inv)
    # Sanity: the first k rows must literally equal the input rows.
    for i in range(k):
        if result[i] != list(map(int, rows[i])):
            raise AssertionError("unimodular completion failed to embed rows")
    return result


def invert_unimodular(a: Sequence[Sequence[int]]) -> Matrix:
    """Exact inverse of a unimodular matrix (integer entries)."""
    m, n = shape(a)
    if m != n:
        raise ValueError("cannot invert non-square matrix")
    h, u, pivots = hermite_normal_form(a)
    # For a unimodular matrix the HNF is the identity, so H = U A = I
    # and U is the inverse.
    if len(pivots) != n or any(h[i][i] != 1 for i in range(n)):
        raise ValueError("matrix is not unimodular")
    for i in range(n):
        for j in range(n):
            if h[i][j] != (1 if i == j else 0):
                raise ValueError("matrix is not unimodular")
    return u


# ---------------------------------------------------------------------------
# Linear Diophantine systems
# ---------------------------------------------------------------------------

def solve_diophantine(
    a: Sequence[Sequence[int]], b: Sequence[int]
) -> Optional[Tuple[Vector, Matrix]]:
    """Solve ``a @ x = b`` over the integers.

    Returns ``(x0, null_basis)`` where ``x0`` is a particular integer
    solution and ``null_basis`` rows generate the homogeneous solutions
    (so every solution is ``x0 + sum_i c_i * null_basis[i]``), or
    ``None`` when no integer solution exists.
    """
    m, n = shape(a)
    if m != len(b):
        raise ValueError("shape mismatch in solve_diophantine")
    if m == 0:
        return [0] * n, identity(n)
    h, v, _ = column_hermite_normal_form(a)
    # Solve h @ y = b by forward substitution over the echelon columns.
    y = [0] * n
    residual = list(map(int, b))
    col = 0
    for col_idx in range(n):
        # Pivot row of this column, if any.
        pivot_row = None
        for i in range(m):
            if h[i][col_idx] != 0:
                pivot_row = i
                break
        if pivot_row is None:
            continue
        num = residual[pivot_row]
        den = h[pivot_row][col_idx]
        if num % den != 0:
            return None
        q = num // den
        y[col_idx] = q
        for i in range(m):
            residual[i] -= q * h[i][col_idx]
        col += 1
    if any(r != 0 for r in residual):
        return None
    x0 = mat_vec(v, y)
    return x0, integer_nullspace(a)


# ---------------------------------------------------------------------------
# Rational row-space helpers (used by the decomposition solver)
# ---------------------------------------------------------------------------

def rowspace_basis(a: Sequence[Sequence[int]]) -> Matrix:
    """Integer basis for the row space of ``a`` (nonzero HNF rows).

    The basis is in echelon form, which gives a canonical representative
    of the row space and makes equality comparisons cheap.
    """
    if not a:
        return []
    h, _, pivots = hermite_normal_form(a)
    return [h[i] for i in range(len(pivots))]


def rowspaces_equal(
    a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]
) -> bool:
    """True iff two row collections span the same rational subspace."""
    ra = integer_rank(a) if a else 0
    rb = integer_rank(b) if b else 0
    if ra != rb:
        return False
    if ra == 0:
        return True
    stacked = vstack(a, b)
    return integer_rank(stacked) == ra


def primitive_vector(v: Sequence[int]) -> Vector:
    """Divide a nonzero integer vector by the gcd of its entries."""
    g = 0
    for x in v:
        g = gcd(g, abs(x))
    if g == 0:
        return list(v)
    return [x // g for x in v]
