"""Utility substrates: exact integer linear algebra and small helpers."""

from repro.util.intlinalg import (
    hermite_normal_form,
    smith_normal_form,
    integer_nullspace,
    integer_left_nullspace,
    integer_rank,
    unimodular_completion,
    solve_diophantine,
    is_unimodular,
    mat_mul,
    mat_vec,
    identity,
)

__all__ = [
    "hermite_normal_form",
    "smith_normal_form",
    "integer_nullspace",
    "integer_left_nullspace",
    "integer_rank",
    "unimodular_completion",
    "solve_diophantine",
    "is_unimodular",
    "mat_mul",
    "mat_vec",
    "identity",
]
