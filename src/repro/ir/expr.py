"""Affine integer expressions.

An :class:`AffineExpr` is an integer linear combination of named
variables plus a constant:  ``3*i - j + 2*N + 5``.  Variables come in
two flavours that behave identically algebraically but are kept
distinguishable for the analyses:

* loop index variables (``Var``) — the unknowns of dependence tests and
  the domain of computation decompositions;
* symbolic parameters (``Param``) — problem sizes such as ``N`` that are
  constant during any one execution.

Expressions are immutable and hashable.  Arithmetic (`+`, `-`, unary
`-`, `*` by int) builds new expressions; ``subs`` substitutes
expressions for variables; ``eval`` produces an int given a complete
environment.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple, Union

IntLike = Union[int, "AffineExpr"]


class AffineExpr:
    """Immutable affine expression: sum of coeff*var plus constant."""

    __slots__ = ("coeffs", "const", "_hash")

    def __init__(self, coeffs: Mapping[str, int] | None = None, const: int = 0):
        items = tuple(
            sorted((v, int(c)) for v, c in (coeffs or {}).items() if c != 0)
        )
        object.__setattr__(self, "coeffs", items)
        object.__setattr__(self, "const", int(const))
        object.__setattr__(self, "_hash", hash((items, int(const))))

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("AffineExpr is immutable")

    def __reduce__(self):
        # Slots + the immutability guard break the default pickle/copy
        # path (it restores state via setattr); rebuild through the
        # constructor instead.
        return (AffineExpr, (dict(self.coeffs), self.const))

    # -- constructors -----------------------------------------------------

    @staticmethod
    def coerce(x: IntLike) -> "AffineExpr":
        """Turn an int (or pass through an expression) into an AffineExpr."""
        if isinstance(x, AffineExpr):
            return x
        return AffineExpr({}, int(x))

    # -- inspection --------------------------------------------------------

    def coeff(self, var: str) -> int:
        """Coefficient of ``var`` (0 if absent)."""
        for v, c in self.coeffs:
            if v == var:
                return c
        return 0

    @property
    def variables(self) -> Tuple[str, ...]:
        """Names of variables with nonzero coefficient, sorted."""
        return tuple(v for v, _ in self.coeffs)

    def is_constant(self) -> bool:
        """True when no variable appears."""
        return not self.coeffs

    def constant_value(self) -> int:
        """The value of a constant expression (raises otherwise)."""
        if self.coeffs:
            raise ValueError(f"{self} is not constant")
        return self.const

    def depends_on(self, names: Iterable[str]) -> bool:
        """True if any of ``names`` appears with nonzero coefficient."""
        names = set(names)
        return any(v in names for v, _ in self.coeffs)

    def as_dict(self) -> Dict[str, int]:
        """Coefficients as a fresh dict."""
        return dict(self.coeffs)

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: IntLike) -> "AffineExpr":
        other = AffineExpr.coerce(other)
        d = self.as_dict()
        for v, c in other.coeffs:
            d[v] = d.get(v, 0) + c
        return AffineExpr(d, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "AffineExpr":
        return AffineExpr({v: -c for v, c in self.coeffs}, -self.const)

    def __sub__(self, other: IntLike) -> "AffineExpr":
        return self + (-AffineExpr.coerce(other))

    def __rsub__(self, other: IntLike) -> "AffineExpr":
        return AffineExpr.coerce(other) - self

    def __mul__(self, k: int) -> "AffineExpr":
        if isinstance(k, AffineExpr):
            if k.is_constant():
                k = k.const
            else:
                raise TypeError("affine expressions support scaling by ints only")
        return AffineExpr({v: c * k for v, c in self.coeffs}, self.const * k)

    __rmul__ = __mul__

    # -- substitution / evaluation -------------------------------------------

    def subs(self, env: Mapping[str, IntLike]) -> "AffineExpr":
        """Substitute expressions (or ints) for variables."""
        out = AffineExpr({}, self.const)
        for v, c in self.coeffs:
            if v in env:
                out = out + AffineExpr.coerce(env[v]) * c
            else:
                out = out + AffineExpr({v: c})
        return out

    def eval(self, env: Mapping[str, int]) -> int:
        """Evaluate to an int; every variable must be bound in ``env``."""
        total = self.const
        for v, c in self.coeffs:
            total += c * env[v]
        return total

    # -- comparison / display ---------------------------------------------

    def __eq__(self, other) -> bool:
        if isinstance(other, int):
            other = AffineExpr.coerce(other)
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return self.coeffs == other.coeffs and self.const == other.const

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = []
        for v, c in self.coeffs:
            if c == 1:
                parts.append(v)
            elif c == -1:
                parts.append(f"-{v}")
            else:
                parts.append(f"{c}*{v}")
        if self.const or not parts:
            parts.append(str(self.const))
        s = " + ".join(parts)
        return s.replace("+ -", "- ")


def Var(name: str) -> AffineExpr:
    """An affine expression consisting of a single loop index variable."""
    return AffineExpr({name: 1})


def Param(name: str) -> AffineExpr:
    """A symbolic problem-size parameter (algebraically a variable)."""
    return AffineExpr({name: 1})


def Const(value: int) -> AffineExpr:
    """A constant affine expression."""
    return AffineExpr({}, value)
