"""Whole-program container.

A :class:`Program` is an ordered sequence of loop nests over a common
set of array declarations, with concrete parameter values.  An optional
``time_steps`` models an enclosing sequential time loop around the whole
nest sequence (as in the paper's Figure 1): analyses treat it as a
frequency multiplier and the simulator replays the nest sequence that
many times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.ir.arrays import ArrayDecl
from repro.ir.loops import LoopNest


@dataclass
class Program:
    """A program: arrays + ordered loop nests + parameter bindings."""

    name: str
    arrays: Dict[str, ArrayDecl] = field(default_factory=dict)
    nests: List[LoopNest] = field(default_factory=list)
    params: Dict[str, int] = field(default_factory=dict)
    time_steps: int = 1

    def validate(self) -> None:
        """Check structural sanity; raises ValueError on problems."""
        names = set()
        for nest in self.nests:
            if nest.name in names:
                raise ValueError(f"duplicate nest name {nest.name}")
            names.add(nest.name)
            loop_vars = set(nest.loop_vars)
            if len(loop_vars) != nest.depth:
                raise ValueError(f"{nest.name}: duplicate loop variable")
            visible = set(self.params) | loop_vars
            for st in nest.body:
                for ref in st.all_refs():
                    decl = self.arrays.get(ref.array.name)
                    if decl is None:
                        raise ValueError(
                            f"{nest.name}: reference to undeclared array "
                            f"{ref.array.name}"
                        )
                    if decl is not ref.array:
                        raise ValueError(
                            f"{nest.name}: reference to shadowed declaration "
                            f"of {ref.array.name}"
                        )
                    for e in ref.index_exprs:
                        for v in e.variables:
                            if v not in visible:
                                raise ValueError(
                                    f"{nest.name}: unbound variable {v} "
                                    f"in {ref!r}"
                                )
            # Bounds must be evaluable from params + outer loop vars.
            outer: set = set(self.params)
            for loop in nest.loops:
                for e in (loop.lower, loop.upper):
                    for v in e.variables:
                        if v not in outer:
                            raise ValueError(
                                f"{nest.name}: bound of {loop.var} uses "
                                f"{v} which is not an outer index/param"
                            )
                outer.add(loop.var)

    def nest(self, name: str) -> LoopNest:
        for n in self.nests:
            if n.name == name:
                return n
        raise KeyError(name)

    def total_iterations(self) -> int:
        """Total statement-iterations over one time step."""
        return sum(
            n.count_iterations(self.params) * len(n.body) * n.frequency
            for n in self.nests
        )

    def __repr__(self) -> str:
        return (
            f"Program({self.name}, arrays={sorted(self.arrays)}, "
            f"nests={[n.name for n in self.nests]})"
        )
