"""Loops, statements and loop nests.

A :class:`LoopNest` is a perfectly nested band of DO loops (step 1,
inclusive bounds, bounds affine in outer indices and parameters)
containing a straight-line body of array assignments.  This matches the
program fragments the paper's algorithms operate on; imperfect nests in
the benchmarks are expressed as sequences of perfect nests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.ir.arrays import ArrayDecl, ArrayRef
from repro.ir.expr import AffineExpr


@dataclass(frozen=True)
class Loop:
    """One DO loop: ``for var in [lower, upper]`` with unit step.

    Bounds are affine in enclosing loop variables and parameters.
    """

    var: str
    lower: AffineExpr
    upper: AffineExpr

    @staticmethod
    def make(var: str, lower, upper) -> "Loop":
        return Loop(var, AffineExpr.coerce(lower), AffineExpr.coerce(upper))

    def __repr__(self) -> str:
        return f"DO {self.var} = {self.lower!r}, {self.upper!r}"


@dataclass(frozen=True)
class Statement:
    """A single array assignment ``write = compute(*reads)``.

    ``compute`` maps the read values (floats, in ``reads`` order) to the
    written value; when omitted the executor stores the sum of the reads,
    which is enough for address-trace purposes.
    """

    write: ArrayRef
    reads: Tuple[ArrayRef, ...]
    compute: Optional[Callable[..., float]] = None
    label: str = ""
    depth: Optional[int] = None
    """Nesting depth of this statement: it executes inside the first
    ``depth`` loops only (``None`` = full nest depth).  This models
    imperfect nests such as LU, where the scaling statement sits one
    level above the update statement."""

    def all_refs(self) -> Tuple[ArrayRef, ...]:
        return (self.write,) + self.reads

    def __repr__(self) -> str:
        rhs = ", ".join(repr(r) for r in self.reads)
        return f"{self.write!r} = f({rhs})"


@dataclass(eq=False)
class LoopNest:
    """A perfect nest of loops (outermost first) over a statement body.

    ``frequency`` weights the nest's execution count relative to other
    nests (e.g. a surrounding sequential time loop); the greedy
    decomposition algorithm processes high-frequency nests first and the
    cost model multiplies simulated time by it.

    ``carries_dependence`` per level is filled in by the dependence
    analysis; ``parallel_levels`` by the parallelizer.
    """

    name: str
    loops: List[Loop]
    body: List[Statement]
    frequency: int = 1
    # Analysis results (populated by repro.analysis / repro.compiler):
    parallel_levels: Tuple[int, ...] = ()
    pipeline_levels: Tuple[int, ...] = ()

    @property
    def depth(self) -> int:
        return len(self.loops)

    @property
    def loop_vars(self) -> Tuple[str, ...]:
        return tuple(l.var for l in self.loops)

    def arrays_written(self) -> List[ArrayDecl]:
        seen: Dict[str, ArrayDecl] = {}
        for st in self.body:
            seen.setdefault(st.write.array.name, st.write.array)
        return list(seen.values())

    def arrays_read(self) -> List[ArrayDecl]:
        seen: Dict[str, ArrayDecl] = {}
        for st in self.body:
            for r in st.reads:
                seen.setdefault(r.array.name, r.array)
        return list(seen.values())

    def arrays_accessed(self) -> List[ArrayDecl]:
        seen: Dict[str, ArrayDecl] = {}
        for st in self.body:
            for r in st.all_refs():
                seen.setdefault(r.array.name, r.array)
        return list(seen.values())

    def refs_to(self, array_name: str) -> List[Tuple[ArrayRef, bool]]:
        """All references to an array as (ref, is_write) pairs."""
        out = []
        for st in self.body:
            if st.write.array.name == array_name:
                out.append((st.write, True))
            for r in st.reads:
                if r.array.name == array_name:
                    out.append((r, False))
        return out

    # -- iteration-space helpers -------------------------------------------

    def iterate(self, params: Mapping[str, int]) -> Iterator[Dict[str, int]]:
        """Yield environments binding every loop var (plus params), in
        sequential program order.  Bounds may reference outer indices.
        """
        env = dict(params)

        def rec(level: int):
            if level == self.depth:
                yield dict(env)
                return
            loop = self.loops[level]
            lo = loop.lower.eval(env)
            hi = loop.upper.eval(env)
            for v in range(lo, hi + 1):
                env[loop.var] = v
                yield from rec(level + 1)
            env.pop(loop.var, None)

        yield from rec(0)

    def count_iterations(self, params: Mapping[str, int]) -> int:
        """Number of iterations of the full nest (exact, handles
        triangular bounds by per-level summation)."""
        env = dict(params)

        def rec(level: int) -> int:
            if level == self.depth:
                return 1
            loop = self.loops[level]
            lo = loop.lower.eval(env)
            hi = loop.upper.eval(env)
            # Fast path: inner bounds independent of this variable.
            inner_vars = {l.var for l in self.loops[level + 1 :]}
            deps = any(
                l.lower.coeff(loop.var) or l.upper.coeff(loop.var)
                for l in self.loops[level + 1 :]
            )
            if hi < lo:
                return 0
            if not deps:
                env[loop.var] = lo
                inner = rec(level + 1)
                env.pop(loop.var, None)
                return (hi - lo + 1) * inner
            total = 0
            for v in range(lo, hi + 1):
                env[loop.var] = v
                total += rec(level + 1)
            env.pop(loop.var, None)
            return total

        return rec(0)

    def numeric_bounds(
        self, params: Mapping[str, int]
    ) -> List[Tuple[int, int]]:
        """Conservative numeric [lo, hi] interval per loop level, by
        interval propagation through the affine bounds."""
        intervals: Dict[str, Tuple[int, int]] = {}
        out: List[Tuple[int, int]] = []

        def expr_range(e: AffineExpr) -> Tuple[int, int]:
            lo = hi = e.const
            for v, c in e.coeffs:
                if v in params:
                    lo += c * params[v]
                    hi += c * params[v]
                elif v in intervals:
                    vlo, vhi = intervals[v]
                    if c >= 0:
                        lo += c * vlo
                        hi += c * vhi
                    else:
                        lo += c * vhi
                        hi += c * vlo
                else:
                    raise ValueError(f"unbound variable {v} in bound {e!r}")
            return lo, hi

        for loop in self.loops:
            llo, _ = expr_range(loop.lower)
            _, uhi = expr_range(loop.upper)
            intervals[loop.var] = (llo, uhi)
            out.append((llo, uhi))
        return out

    def __repr__(self) -> str:
        return f"LoopNest({self.name}, depth={self.depth}, stmts={len(self.body)})"
