"""Builder DSL for constructing IR programs concisely.

The benchmark programs in :mod:`repro.apps` are written with this
builder.  Example (the paper's Figure 1)::

    pb = ProgramBuilder("figure1", params={"N": 64})
    A = pb.array("A", (64, 64), element_size=4)
    B = pb.array("B", (64, 64), element_size=4)
    i, j = pb.vars("I", "J")
    pb.nest("copy", [("J", 0, 63), ("I", 0, 63)],
            [pb.assign(A(i, j), [B(i, j)], lambda b: b)])
    prog = pb.build()
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ir.arrays import ArrayDecl, ArrayRef
from repro.ir.expr import AffineExpr, Var
from repro.ir.loops import Loop, LoopNest, Statement
from repro.ir.program import Program


class ProgramBuilder:
    """Incrementally build a :class:`Program`."""

    def __init__(self, name: str, params: Optional[Dict[str, int]] = None,
                 time_steps: int = 1):
        self._prog = Program(name=name, params=dict(params or {}),
                             time_steps=time_steps)

    # -- declarations -----------------------------------------------------

    def array(self, name: str, dims: Sequence[int],
              element_size: int = 8) -> ArrayDecl:
        """Declare an array and return its declaration (callable to make
        references)."""
        if name in self._prog.arrays:
            raise ValueError(f"array {name} already declared")
        decl = ArrayDecl(name, tuple(int(d) for d in dims), element_size)
        self._prog.arrays[name] = decl
        return decl

    @staticmethod
    def vars(*names: str) -> Tuple[AffineExpr, ...]:
        """Convenience: several index variables at once."""
        return tuple(Var(n) for n in names)

    # -- statements ---------------------------------------------------------

    @staticmethod
    def assign(write: ArrayRef, reads: Iterable[ArrayRef],
               compute: Optional[Callable[..., float]] = None,
               label: str = "") -> Statement:
        return Statement(write=write, reads=tuple(reads), compute=compute,
                         label=label)

    # -- nests ---------------------------------------------------------------

    def nest(self, name: str, loops: Sequence[Tuple], body: List[Statement],
             frequency: int = 1) -> LoopNest:
        """Add a loop nest.  Each loop is a (var, lower, upper) triple with
        bounds that may be ints or affine expressions in outer vars."""
        nest = LoopNest(
            name=name,
            loops=[Loop.make(v, lo, hi) for (v, lo, hi) in loops],
            body=list(body),
            frequency=frequency,
        )
        self._prog.nests.append(nest)
        return nest

    # -- finish ---------------------------------------------------------------

    def build(self, validate: bool = True) -> Program:
        if validate:
            self._prog.validate()
        return self._prog


# Backwards-compatible alias used in a few tests/examples.
NestBuilder = ProgramBuilder
