"""Array declarations and affine array references.

An :class:`ArrayDecl` describes a (concrete-size) n-dimensional array
with FORTRAN column-major storage by default — dimension 0 varies
fastest in memory, matching the paper's convention.

An :class:`ArrayRef` is an access ``A(e_0, ..., e_{n-1})`` whose index
expressions are affine in the enclosing loop indices and the symbolic
parameters.  Its :class:`AccessFunction` view extracts the ``F`` matrix
and offset vector used throughout the decomposition framework
(reference = ``F @ i + f``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.ir.expr import AffineExpr

Matrix = List[List[int]]
Vector = List[int]


@dataclass(frozen=True)
class ArrayDecl:
    """Declaration of an n-dimensional array.

    ``dims`` are extents per dimension (0-based indexing, per the
    paper).  ``element_size`` is in bytes (8 for DOUBLE PRECISION,
    4 for REAL).  Column-major: the linearized address of element
    (i0, i1, ..., ik) is ``i0 + d0*(i1 + d1*(i2 + ...))``.
    """

    name: str
    dims: Tuple[int, ...]
    element_size: int = 8

    def __post_init__(self):
        if not self.dims:
            raise ValueError("arrays must have at least one dimension")
        if any(d <= 0 for d in self.dims):
            raise ValueError(f"array {self.name} has non-positive extent")

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def size(self) -> int:
        """Total number of elements."""
        n = 1
        for d in self.dims:
            n *= d
        return n

    @property
    def nbytes(self) -> int:
        return self.size * self.element_size

    def linearize(self, index: Sequence[int]) -> int:
        """Column-major element offset of a concrete index tuple."""
        if len(index) != self.rank:
            raise ValueError(f"{self.name}: index rank mismatch")
        addr = 0
        for i, d in zip(reversed(index), reversed(self.dims)):
            if not (0 <= i < d):
                raise IndexError(
                    f"{self.name}: index {tuple(index)} out of bounds {self.dims}"
                )
            addr = addr * d + i
        return addr

    def delinearize(self, addr: int) -> Tuple[int, ...]:
        """Inverse of :meth:`linearize`."""
        if not (0 <= addr < self.size):
            raise IndexError(f"{self.name}: address {addr} out of range")
        out = []
        for d in self.dims:
            out.append(addr % d)
            addr //= d
        return tuple(out)

    def __call__(self, *exprs) -> "ArrayRef":
        """Sugar for building references: ``A(i, j + 1)``."""
        return ArrayRef(
            self, tuple(AffineExpr.coerce(e) for e in exprs)
        )

    def __repr__(self) -> str:
        dims = ",".join(str(d) for d in self.dims)
        return f"{self.name}({dims})"


@dataclass(frozen=True)
class AccessFunction:
    """The affine access function of a reference w.r.t. a loop nest.

    ``matrix`` is the d-by-n integer matrix ``F`` (d = array rank,
    n = nest depth) and ``offset`` holds the remaining affine parts
    (constants and symbolic parameters) per array dimension, so the
    reference is ``F @ i + offset``.
    """

    matrix: Tuple[Tuple[int, ...], ...]
    offset: Tuple[AffineExpr, ...]

    def as_lists(self) -> Tuple[Matrix, List[AffineExpr]]:
        return [list(r) for r in self.matrix], list(self.offset)

    @property
    def rank(self) -> int:
        """Rank of the linear part F."""
        from repro.util.intlinalg import integer_rank

        return integer_rank([list(r) for r in self.matrix])

    def constant_offset(self) -> Vector:
        """Offset vector as plain ints (raises if symbolic params remain)."""
        return [e.constant_value() for e in self.offset]


@dataclass(frozen=True)
class ArrayRef:
    """An affine reference ``array(index_exprs...)``."""

    array: ArrayDecl
    index_exprs: Tuple[AffineExpr, ...]

    def __post_init__(self):
        if len(self.index_exprs) != self.array.rank:
            raise ValueError(
                f"{self.array.name}: reference has {len(self.index_exprs)} "
                f"subscripts but array rank is {self.array.rank}"
            )

    def access_function(self, loop_vars: Sequence[str]) -> AccessFunction:
        """Split each subscript into loop-variable part and residual offset."""
        mat = []
        off = []
        loop_set = list(loop_vars)
        for e in self.index_exprs:
            mat.append(tuple(e.coeff(v) for v in loop_set))
            residual = AffineExpr(
                {v: c for v, c in e.coeffs if v not in loop_set}, e.const
            )
            off.append(residual)
        return AccessFunction(tuple(mat), tuple(off))

    def index_at(self, env) -> Tuple[int, ...]:
        """Concrete index tuple under a variable binding."""
        return tuple(e.eval(env) for e in self.index_exprs)

    def address_at(self, env) -> int:
        """Concrete column-major element offset under a binding."""
        return self.array.linearize(self.index_at(env))

    def __repr__(self) -> str:
        subs = ", ".join(repr(e) for e in self.index_exprs)
        return f"{self.array.name}({subs})"
