"""Loop-nest intermediate representation.

This package is the stand-in for the SUIF front end: benchmark programs
are written directly as affine loop nests over affine array references.
Everything downstream — dependence analysis, unimodular parallelization,
computation/data decomposition, data-layout transformation and SPMD code
generation — consumes this IR.
"""

from repro.ir.expr import AffineExpr, Var, Const, Param
from repro.ir.arrays import ArrayDecl, ArrayRef, AccessFunction
from repro.ir.loops import Loop, Statement, LoopNest
from repro.ir.program import Program
from repro.ir.builder import NestBuilder, ProgramBuilder

__all__ = [
    "AffineExpr",
    "Var",
    "Const",
    "Param",
    "ArrayDecl",
    "ArrayRef",
    "AccessFunction",
    "Loop",
    "Statement",
    "LoopNest",
    "Program",
    "NestBuilder",
    "ProgramBuilder",
]
