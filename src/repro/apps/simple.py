"""The paper's Figure 1 example.

Two nests under a time loop: an elementwise update of ``A`` from ``B``
and ``C`` (fully parallel) and a column relaxation carrying a dependence
along J.  Minimizing sharing forces both nests to parallelize the I
(row) loop and distributes rows in blocks — DISTRIBUTE(BLOCK, *) — and
the data transformation then makes each processor's block of rows
contiguous (Figure 1(c)).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program

PAPER_N = 1024
PAPER_ELEMENT = 4  # REAL


def build(n: int = 64, time_steps: int = 4) -> Program:
    """The Figure 1 code at size n (paper: 1024)."""
    pb = ProgramBuilder("simple", params={"N": n}, time_steps=time_steps)
    a = pb.array("A", (n, n), element_size=PAPER_ELEMENT)
    b = pb.array("B", (n, n), element_size=PAPER_ELEMENT)
    c = pb.array("C", (n, n), element_size=PAPER_ELEMENT)
    i, j = pb.vars("I", "J")
    pb.nest(
        "add",
        [("J", 0, n - 1), ("I", 0, n - 1)],
        [pb.assign(a(i, j), [b(i, j), c(i, j)], lambda x, y: x + y)],
    )
    pb.nest(
        "relax",
        [("J", 1, n - 2), ("I", 0, n - 1)],
        [
            pb.assign(
                a(i, j),
                [a(i, j), a(i, j - 1), a(i, j + 1)],
                lambda x, y, z: 0.333 * (x + y + z),
            )
        ],
    )
    return pb.build()


def reference(
    init: Mapping[str, np.ndarray], n: int, time_steps: int = 4
) -> Dict[str, np.ndarray]:
    """Vectorized golden model (sequential semantics)."""
    a = np.array(init["A"], dtype=np.float64)
    b = np.array(init["B"], dtype=np.float64)
    c = np.array(init["C"], dtype=np.float64)
    for _ in range(time_steps):
        a = b + c
        # The relaxation sweeps J left-to-right and uses updated A(I,J-1):
        for j in range(1, n - 1):
            a[:, j] = 0.333 * (a[:, j] + a[:, j - 1] + a[:, j + 1])
    return {"A": a, "B": b, "C": c}
