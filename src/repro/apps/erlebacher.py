"""Erlebacher (Section 6.2.5) — 3-D tridiagonal solves.

Partial derivatives of a 3-D input field are computed in all three
dimensions; each direction's solve is a recurrence (forward
substitution) along that dimension and fully parallel in the other two.
The input array is only read, so the decomposition replicates it; the
derivative arrays get the distributions of Table 1 —
DUX(*, *, BLOCK), DUY(*, *, BLOCK) and DUZ(*, BLOCK, *) — so every
phase's accesses are local.  DUZ's layout (second dimension
distributed) leaves each processor's share non-contiguous until the
data transformation restructures it; since only a third of the work
touches DUZ, the improvement is modest (Figure 11).
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program

PAPER_N = 64
PAPER_ELEMENT = 8


def build(n: int = 20, time_steps: int = 2) -> Program:
    pb = ProgramBuilder("erlebacher", params={"N": n}, time_steps=time_steps)
    u = pb.array("U", (n, n, n), element_size=PAPER_ELEMENT)
    dux = pb.array("DUX", (n, n, n), element_size=PAPER_ELEMENT)
    duy = pb.array("DUY", (n, n, n), element_size=PAPER_ELEMENT)
    duz = pb.array("DUZ", (n, n, n), element_size=PAPER_ELEMENT)
    i, j, k = pb.vars("I", "J", "K")

    # X-derivative: recurrence along I, parallel in (J, K).
    pb.nest(
        "xsweep",
        [("K", 0, n - 1), ("J", 0, n - 1), ("I", 1, n - 2)],
        [
            pb.assign(
                dux(i, j, k),
                [dux(i - 1, j, k), u(i + 1, j, k), u(i - 1, j, k)],
                lambda dm, up, um: 0.5 * (up - um) - 0.25 * dm,
            )
        ],
    )
    # Y-derivative: recurrence along J.
    pb.nest(
        "ysweep",
        [("K", 0, n - 1), ("J", 1, n - 2), ("I", 0, n - 1)],
        [
            pb.assign(
                duy(i, j, k),
                [duy(i, j - 1, k), u(i, j + 1, k), u(i, j - 1, k)],
                lambda dm, up, um: 0.5 * (up - um) - 0.25 * dm,
            )
        ],
    )
    # Z-derivative: recurrence along K (the wavefront dimension).
    pb.nest(
        "zsweep",
        [("K", 1, n - 2), ("J", 0, n - 1), ("I", 0, n - 1)],
        [
            pb.assign(
                duz(i, j, k),
                [duz(i, j, k - 1), u(i, j, k + 1), u(i, j, k - 1)],
                lambda dm, up, um: 0.5 * (up - um) - 0.25 * dm,
            )
        ],
    )
    return pb.build()


def reference(
    init: Mapping[str, np.ndarray], n: int, time_steps: int = 2
) -> Dict[str, np.ndarray]:
    u = np.array(init["U"], dtype=np.float64)
    dux = np.array(init["DUX"], dtype=np.float64)
    duy = np.array(init["DUY"], dtype=np.float64)
    duz = np.array(init["DUZ"], dtype=np.float64)
    for _ in range(time_steps):
        for i in range(1, n - 1):
            dux[i] = 0.5 * (u[i + 1] - u[i - 1]) - 0.25 * dux[i - 1]
        for j in range(1, n - 1):
            duy[:, j] = 0.5 * (u[:, j + 1] - u[:, j - 1]) - 0.25 * duy[:, j - 1]
        for k in range(1, n - 1):
            duz[:, :, k] = (
                0.5 * (u[:, :, k + 1] - u[:, :, k - 1]) - 0.25 * duz[:, :, k - 1]
            )
    return {"U": u, "DUX": dux, "DUY": duy, "DUZ": duz}
