"""Vpenta (Section 6.2.1) — simultaneous pentadiagonal inversion.

The nasa7 (SPEC92) kernel inverts three pentadiagonal systems at once:
forward elimination and back substitution recurrences run down the rows
(first dimension) of the 2-D coefficient arrays for every column, and
of every plane of the 3-D right-hand-side array F.

The base compiler must interchange loops to get the parallel column
loop outermost (without that the program barely speeds up at all).  The
decomposition distributes the column dimension — A(*, BLOCK) and
F(*, BLOCK, *) as in Table 1 — which leaves the 2-D arrays contiguous
per processor but splits each processor's share of the 3-D array into
one non-adjacent slab per plane; the data transformation packs those
slabs together, producing the big speedup jump of Figure 4.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program

PAPER_N = 128
PAPER_ELEMENT = 8
NRHS = 3


def build(n: int = 64, time_steps: int = 2) -> Program:
    pb = ProgramBuilder("vpenta", params={"N": n}, time_steps=time_steps)
    a = pb.array("A", (n, n), element_size=PAPER_ELEMENT)
    b = pb.array("B", (n, n), element_size=PAPER_ELEMENT)
    x = pb.array("X", (n, n), element_size=PAPER_ELEMENT)
    f = pb.array("F", (n, n, NRHS), element_size=PAPER_ELEMENT)
    i, j, k = pb.vars("I", "J", "K")

    # Forward elimination on the 2-D unknowns: recurrence down the rows,
    # columns independent.  Written (I outer, J inner) the way the
    # original FORTRAN is; BASE must interchange to parallelize.
    pb.nest(
        "fwd2d",
        [("I", 2, n - 1), ("J", 0, n - 1)],
        [
            pb.assign(
                x(i, j),
                [x(i, j), x(i - 1, j), x(i - 2, j), a(i, j), b(i, j)],
                lambda xv, x1, x2, av, bv: xv - av * x1 - bv * x2,
            )
        ],
    )
    # Same elimination applied to the three right-hand-side planes.
    pb.nest(
        "fwd3d",
        [("K", 0, NRHS - 1), ("I", 2, n - 1), ("J", 0, n - 1)],
        [
            pb.assign(
                f(i, j, k),
                [f(i, j, k), f(i - 1, j, k), f(i - 2, j, k), a(i, j)],
                lambda fv, f1, f2, av: fv - av * (f1 + f2),
            )
        ],
    )
    # Back substitution (recurrence up the rows, expressed with the
    # reversed index N-1-I so the loop steps forward).
    rev = -1 * i + (n - 1)
    pb.nest(
        "back2d",
        [("I", 2, n - 1), ("J", 0, n - 1)],
        [
            pb.assign(
                x(rev, j),
                [x(rev, j), x(rev + 1, j), x(rev + 2, j), b(rev, j)],
                lambda xv, x1, x2, bv: xv - bv * (x1 + x2),
            )
        ],
    )
    pb.nest(
        "back3d",
        [("K", 0, NRHS - 1), ("I", 2, n - 1), ("J", 0, n - 1)],
        [
            pb.assign(
                f(rev, j, k),
                [f(rev, j, k), f(rev + 1, j, k), b(rev, j)],
                lambda fv, f1, bv: fv - bv * f1,
            )
        ],
    )
    return pb.build()


def reference(
    init: Mapping[str, np.ndarray], n: int, time_steps: int = 2
) -> Dict[str, np.ndarray]:
    a = np.array(init["A"], dtype=np.float64)
    b = np.array(init["B"], dtype=np.float64)
    x = np.array(init["X"], dtype=np.float64)
    f = np.array(init["F"], dtype=np.float64)
    for _ in range(time_steps):
        for i in range(2, n):
            x[i, :] = x[i, :] - a[i, :] * x[i - 1, :] - b[i, :] * x[i - 2, :]
        for k in range(NRHS):
            for i in range(2, n):
                f[i, :, k] = f[i, :, k] - a[i, :] * (
                    f[i - 1, :, k] + f[i - 2, :, k]
                )
        for i in range(2, n):
            r = n - 1 - i
            x[r, :] = x[r, :] - b[r, :] * (x[r + 1, :] + x[r + 2, :])
        for k in range(NRHS):
            for i in range(2, n):
                r = n - 1 - i
                f[r, :, k] = f[r, :, k] - b[r, :] * f[r + 1, :, k]
    return {"A": a, "B": b, "X": x, "F": f}
