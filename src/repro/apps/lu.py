"""LU decomposition without pivoting (Section 6.2.2, Figure 5).

The classic right-looking kji-form: for each pivot column I1, scale the
sub-column, then rank-1-update the trailing submatrix.  All dependences
are carried by the outer I1 loop; the decomposition assigns all
operations on a column to one processor, distributes columns cyclically
for load balance (the trailing submatrix shrinks), and synchronizes
with cheap producer-consumer locks instead of barriers.  Without the
data transformation, a processor's cyclic columns are scattered and —
for power-of-two sizes — alias heavily in the direct-mapped cache (the
paper's 31-vs-32-processor cliff); restructuring packs each processor's
columns contiguously.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.ir.builder import ProgramBuilder
from repro.ir.loops import Statement
from repro.ir.program import Program

PAPER_SIZES = (256, 1024)
PAPER_ELEMENT = 8  # DOUBLE PRECISION


def build(n: int = 64) -> Program:
    """LU at size n (paper: 256 and 1024)."""
    pb = ProgramBuilder("lu", params={"N": n})
    a = pb.array("A", (n, n), element_size=PAPER_ELEMENT)
    i1, i2, i3 = pb.vars("I1", "I2", "I3")
    nest = pb.nest(
        "lu",
        [("I1", 0, n - 1), ("I2", i1 + 1, n - 1), ("I3", i1 + 1, n - 1)],
        [],
    )
    scale = Statement(
        write=a(i2, i1),
        reads=(a(i2, i1), a(i1, i1)),
        compute=lambda x, piv: x / piv,
        depth=2,
        label="scale",
    )
    update = Statement(
        write=a(i2, i3),
        reads=(a(i2, i3), a(i2, i1), a(i1, i3)),
        compute=lambda x, m, r: x - m * r,
        depth=3,
        label="update",
    )
    nest.body = [scale, update]
    return pb.build()


def reference(init: Mapping[str, np.ndarray], n: int) -> Dict[str, np.ndarray]:
    """Golden LU (in-place, no pivoting), vectorized per pivot step."""
    a = np.array(init["A"], dtype=np.float64)
    for k in range(n - 1):
        a[k + 1 :, k] /= a[k, k]
        a[k + 1 :, k + 1 :] -= np.outer(a[k + 1 :, k], a[k, k + 1 :])
    return {"A": a}


def well_conditioned_init(n: int, seed: int = 7) -> Dict[str, np.ndarray]:
    """Diagonally dominant matrix so the factorization stays stable."""
    rng = np.random.default_rng(seed)
    a = rng.random((n, n)) + np.eye(n) * n
    return {"A": a}
