"""Swm256-like shallow-water model (Section 6.2.6).

Highly data-parallel finite differences on a 2-D grid: fluxes are
computed from the height field, then the prognostic fields are updated
from flux differences, then copied forward — every nest is parallel in
both dimensions.  The base compiler already does well by parallelizing
the outermost loop everywhere; the decomposition phase picks
two-dimensional blocks (P(BLOCK, BLOCK), Table 1) to cut the
communication-to-computation ratio, which *loses* without the data
transformation (scattered 2-D blocks) and edges slightly ahead of base
with it (Figure 12).
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program

PAPER_N = 256
PAPER_ELEMENT = 4  # REAL


def build(n: int = 128, time_steps: int = 4) -> Program:
    pb = ProgramBuilder("swm", params={"N": n}, time_steps=time_steps)
    p = pb.array("P", (n, n), element_size=PAPER_ELEMENT)
    u = pb.array("U", (n, n), element_size=PAPER_ELEMENT)
    v = pb.array("V", (n, n), element_size=PAPER_ELEMENT)
    cu = pb.array("CU", (n, n), element_size=PAPER_ELEMENT)
    cv = pb.array("CV", (n, n), element_size=PAPER_ELEMENT)
    i, j = pb.vars("I", "J")

    # Flux computation (interior points; the original wraps periodically,
    # which is non-affine — boundary handling does not affect the
    # memory-system behaviour being measured).
    pb.nest(
        "fluxes",
        [("J", 1, n - 1), ("I", 1, n - 1)],
        [
            pb.assign(
                cu(i, j),
                [p(i, j), p(i - 1, j), u(i, j)],
                lambda pc, pw, uv: 0.5 * (pc + pw) * uv,
                label="cu",
            ),
            pb.assign(
                cv(i, j),
                [p(i, j), p(i, j - 1), v(i, j)],
                lambda pc, ps, vv: 0.5 * (pc + ps) * vv,
                label="cv",
            ),
        ],
    )
    # Height update from flux divergence.
    pb.nest(
        "update",
        [("J", 1, n - 2), ("I", 1, n - 2)],
        [
            pb.assign(
                p(i, j),
                [p(i, j), cu(i + 1, j), cu(i, j), cv(i, j + 1), cv(i, j)],
                lambda pc, cue, cuw, cvn, cvs: pc
                - 0.1 * ((cue - cuw) + (cvn - cvs)),
            )
        ],
    )
    # Velocity relaxation toward the fluxes.
    pb.nest(
        "velocities",
        [("J", 1, n - 1), ("I", 1, n - 1)],
        [
            pb.assign(
                u(i, j), [u(i, j), cu(i, j)], lambda uv, c: 0.9 * uv + 0.1 * c,
                label="u",
            ),
            pb.assign(
                v(i, j), [v(i, j), cv(i, j)], lambda vv, c: 0.9 * vv + 0.1 * c,
                label="v",
            ),
        ],
    )
    return pb.build()


def reference(
    init: Mapping[str, np.ndarray], n: int, time_steps: int = 4
) -> Dict[str, np.ndarray]:
    p = np.array(init["P"], dtype=np.float64)
    u = np.array(init["U"], dtype=np.float64)
    v = np.array(init["V"], dtype=np.float64)
    cu = np.array(init["CU"], dtype=np.float64)
    cv = np.array(init["CV"], dtype=np.float64)
    for _ in range(time_steps):
        cu[1:, 1:] = 0.5 * (p[1:, 1:] + p[:-1, 1:]) * u[1:, 1:]
        cv[1:, 1:] = 0.5 * (p[1:, 1:] + p[1:, :-1]) * v[1:, 1:]
        p[1:-1, 1:-1] = p[1:-1, 1:-1] - 0.1 * (
            (cu[2:, 1:-1] - cu[1:-1, 1:-1]) + (cv[1:-1, 2:] - cv[1:-1, 1:-1])
        )
        u[1:, 1:] = 0.9 * u[1:, 1:] + 0.1 * cu[1:, 1:]
        v[1:, 1:] = 0.9 * v[1:, 1:] + 0.1 * cv[1:, 1:]
    return {"P": p, "U": u, "V": v, "CU": cu, "CV": cv}
