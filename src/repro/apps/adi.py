"""ADI integration (Section 6.2.4, Figure 9).

Two sweeps per time step: a column sweep (recurrence down each column,
columns independent) and a row sweep (recurrence along each row, rows
independent).  Local analysis parallelizes each sweep on its own terms
and the processors touch completely different data in the two phases
(the base version's downfall).  The global decomposition keeps a static
block-column distribution: the column sweep is doall, and the row sweep
runs as a tiled doacross pipeline — no data reorganization is needed
because block columns are already contiguous (Table 1: X(*, BLOCK)).
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program

PAPER_SIZES = (256, 1024)
PAPER_ELEMENT = 8


def build(n: int = 64, time_steps: int = 4) -> Program:
    pb = ProgramBuilder("adi", params={"N": n}, time_steps=time_steps)
    x = pb.array("X", (n, n), element_size=PAPER_ELEMENT)
    a = pb.array("A", (n, n), element_size=PAPER_ELEMENT)
    b = pb.array("B", (n, n), element_size=PAPER_ELEMENT)
    i1, i2 = pb.vars("I1", "I2")
    pb.nest(
        "colsweep",
        [("I1", 0, n - 1), ("I2", 1, n - 1)],
        [
            pb.assign(
                x(i2, i1),
                [x(i2, i1), x(i2 - 1, i1), a(i2, i1), b(i2 - 1, i1)],
                lambda xv, xm, av, bm: xv - xm * av / bm,
                label="col-x",
            ),
            pb.assign(
                b(i2, i1),
                [b(i2, i1), a(i2, i1), b(i2 - 1, i1)],
                lambda bv, av, bm: bv - av * av / bm,
                label="col-b",
            ),
        ],
    )
    pb.nest(
        "rowsweep",
        [("I1", 1, n - 1), ("I2", 0, n - 1)],
        [
            pb.assign(
                x(i2, i1),
                [x(i2, i1), x(i2, i1 - 1), a(i2, i1), b(i2, i1 - 1)],
                lambda xv, xm, av, bm: xv - xm * av / bm,
                label="row-x",
            ),
            pb.assign(
                b(i2, i1),
                [b(i2, i1), a(i2, i1), b(i2, i1 - 1)],
                lambda bv, av, bm: bv - av * av / bm,
                label="row-b",
            ),
        ],
    )
    return pb.build()


def reference(
    init: Mapping[str, np.ndarray], n: int, time_steps: int = 4
) -> Dict[str, np.ndarray]:
    x = np.array(init["X"], dtype=np.float64)
    a = np.array(init["A"], dtype=np.float64)
    b = np.array(init["B"], dtype=np.float64)
    for _ in range(time_steps):
        for i2 in range(1, n):  # column sweep: recurrence along rows
            x[i2, :] = x[i2, :] - x[i2 - 1, :] * a[i2, :] / b[i2 - 1, :]
            b[i2, :] = b[i2, :] - a[i2, :] * a[i2, :] / b[i2 - 1, :]
        for i1 in range(1, n):  # row sweep: recurrence along columns
            x[:, i1] = x[:, i1] - x[:, i1 - 1] * a[:, i1] / b[:, i1 - 1]
            b[:, i1] = b[:, i1] - a[:, i1] * a[:, i1] / b[:, i1 - 1]
    return {"X": x, "A": a, "B": b}


def stable_init(n: int, seed: int = 11) -> Dict[str, np.ndarray]:
    """B bounded away from zero; A small so the recurrences stay tame."""
    rng = np.random.default_rng(seed)
    return {
        "X": rng.random((n, n)),
        "A": 0.1 * rng.random((n, n)),
        "B": 1.0 + rng.random((n, n)),
    }
