"""Tomcatv-like mesh generation (Section 6.2.7).

Alternating nests: residual computations that are parallel in both
dimensions, and solver nests carrying a recurrence *along* each row
(across the columns) that leave only the row loop parallel.  The base
compiler parallelizes the outermost loop of each nest independently —
column blocks in the residual nests, row blocks in the solver nests —
so processors re-use almost nothing across nests and the row blocks are
non-contiguous (max speedup ~5 in the paper).  The global decomposition
fixes a block-of-rows assignment everywhere — AA(BLOCK, *), Table 1 —
restoring temporal locality, and the data transformation makes the row
blocks contiguous (speedup 18, Figure 13).
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program

PAPER_N = 257
PAPER_ELEMENT = 8


def build(n: int = 64, time_steps: int = 4) -> Program:
    pb = ProgramBuilder("tomcatv", params={"N": n}, time_steps=time_steps)
    x = pb.array("X", (n, n), element_size=PAPER_ELEMENT)
    rx = pb.array("RX", (n, n), element_size=PAPER_ELEMENT)
    aa = pb.array("AA", (n, n), element_size=PAPER_ELEMENT)
    i, j = pb.vars("I", "J")

    # Residuals: fully parallel 4-point gather.
    pb.nest(
        "residual",
        [("J", 1, n - 2), ("I", 1, n - 2)],
        [
            pb.assign(
                rx(i, j),
                [x(i - 1, j), x(i + 1, j), x(i, j - 1), x(i, j + 1)],
                lambda a, b, c, d: 0.25 * (a + b + c + d),
            )
        ],
    )
    # Row solver: recurrence along each row (across columns J); rows
    # independent.
    pb.nest(
        "rowsolve",
        [("J", 1, n - 1), ("I", 0, n - 1)],
        [
            pb.assign(
                aa(i, j),
                [aa(i, j - 1), rx(i, j)],
                lambda am, r: 0.5 * am + r,
            )
        ],
    )
    # Mesh update: fully parallel, feeds the next time step.
    pb.nest(
        "update",
        [("J", 1, n - 2), ("I", 1, n - 2)],
        [
            pb.assign(
                x(i, j),
                [x(i, j), aa(i, j)],
                lambda xv, av: 0.8 * xv + 0.2 * av,
            )
        ],
    )
    return pb.build()


def reference(
    init: Mapping[str, np.ndarray], n: int, time_steps: int = 4
) -> Dict[str, np.ndarray]:
    x = np.array(init["X"], dtype=np.float64)
    rx = np.array(init["RX"], dtype=np.float64)
    aa = np.array(init["AA"], dtype=np.float64)
    for _ in range(time_steps):
        rx[1:-1, 1:-1] = 0.25 * (
            x[:-2, 1:-1] + x[2:, 1:-1] + x[1:-1, :-2] + x[1:-1, 2:]
        )
        for j in range(1, n):
            aa[:, j] = 0.5 * aa[:, j - 1] + rx[:, j]
        x[1:-1, 1:-1] = 0.8 * x[1:-1, 1:-1] + 0.2 * aa[1:-1, 1:-1]
    return {"X": x, "RX": rx, "AA": aa}
