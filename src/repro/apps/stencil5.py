"""Five-point stencil (Section 6.2.3, Figure 7).

A Jacobi-style relaxation: ``A`` is computed from the five-point
neighbourhood of ``B``, then copied back, under a time loop.  Both loops
of the update are parallel, so the decomposition phase assigns
two-dimensional blocks (better communication-to-computation ratio than
one-dimensional strips) — but without the data transformation each
processor's 2-D block is non-contiguous and performance *drops below
the base compiler* (the paper's key negative result for
computation-only optimization).  Restructuring the arrays into blocked
layout recovers it: the paper reports 29x on 32 processors.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program

PAPER_N = 512
PAPER_ELEMENT = 4  # REAL


def build(n: int = 128, time_steps: int = 4) -> Program:
    pb = ProgramBuilder("stencil5", params={"N": n}, time_steps=time_steps)
    a = pb.array("A", (n, n), element_size=PAPER_ELEMENT)
    b = pb.array("B", (n, n), element_size=PAPER_ELEMENT)
    i1, i2 = pb.vars("I1", "I2")
    pb.nest(
        "update",
        [("I1", 1, n - 2), ("I2", 1, n - 2)],
        [
            pb.assign(
                a(i2, i1),
                [
                    b(i2, i1),
                    b(i2 - 1, i1),
                    b(i2 + 1, i1),
                    b(i2, i1 - 1),
                    b(i2, i1 + 1),
                ],
                lambda c, n_, s, w, e: 0.2 * (c + n_ + s + w + e),
            )
        ],
    )
    pb.nest(
        "copy",
        [("I1", 1, n - 2), ("I2", 1, n - 2)],
        [pb.assign(b(i2, i1), [a(i2, i1)], lambda x: x)],
    )
    return pb.build()


def reference(
    init: Mapping[str, np.ndarray], n: int, time_steps: int = 4
) -> Dict[str, np.ndarray]:
    a = np.array(init["A"], dtype=np.float64)
    b = np.array(init["B"], dtype=np.float64)
    for _ in range(time_steps):
        a[1:-1, 1:-1] = 0.2 * (
            b[1:-1, 1:-1]
            + b[:-2, 1:-1]
            + b[2:, 1:-1]
            + b[1:-1, :-2]
            + b[1:-1, 2:]
        )
        b[1:-1, 1:-1] = a[1:-1, 1:-1]
    return {"A": a, "B": b}
