"""The paper's benchmark programs (Section 6.2), expressed in the IR.

Each module provides:

* ``build(n, ...) -> Program`` — the program at a configurable size
  (the experiments use scaled-down sizes with a proportionally scaled
  machine; see EXPERIMENTS.md);
* ``reference(init, ...) -> dict`` — a vectorized NumPy golden model
  used by the tests to validate the IR program's semantics;
* ``PAPER_*`` constants recording what the paper used.
"""

from repro.apps import (
    adi,
    erlebacher,
    lu,
    simple,
    stencil5,
    swm,
    tomcatv,
    vpenta,
)

ALL_APPS = {
    "simple": simple,
    "vpenta": vpenta,
    "lu": lu,
    "stencil5": stencil5,
    "adi": adi,
    "erlebacher": erlebacher,
    "swm": swm,
    "tomcatv": tomcatv,
}


def build_app(name: str, **kwargs):
    """Build a benchmark program by name, forwarding only the keyword
    arguments its builder accepts.

    Raises ``ValueError`` for an unknown app name or for a keyword the
    app's ``build`` does not take (e.g. ``time_steps`` for ``lu``,
    whose time behaviour is inherent to the factorization).  ``None``
    values mean "use the builder's default" and are dropped.
    """
    import inspect

    mod = ALL_APPS.get(name)
    if mod is None:
        raise ValueError(
            f"unknown app {name!r}; available: {', '.join(sorted(ALL_APPS))}"
        )
    kwargs = {k: v for k, v in kwargs.items() if v is not None}
    params = inspect.signature(mod.build).parameters
    unknown = sorted(k for k in kwargs if k not in params)
    if unknown:
        raise ValueError(
            f"app {name!r} builder does not accept: {', '.join(unknown)} "
            f"(it takes: {', '.join(params)})"
        )
    return mod.build(**kwargs)


__all__ = ["ALL_APPS", "build_app"] + list(ALL_APPS)
