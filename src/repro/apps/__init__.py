"""The paper's benchmark programs (Section 6.2), expressed in the IR.

Each module provides:

* ``build(n, ...) -> Program`` — the program at a configurable size
  (the experiments use scaled-down sizes with a proportionally scaled
  machine; see EXPERIMENTS.md);
* ``reference(init, ...) -> dict`` — a vectorized NumPy golden model
  used by the tests to validate the IR program's semantics;
* ``PAPER_*`` constants recording what the paper used.
"""

from repro.apps import (
    adi,
    erlebacher,
    lu,
    simple,
    stencil5,
    swm,
    tomcatv,
    vpenta,
)

ALL_APPS = {
    "simple": simple,
    "vpenta": vpenta,
    "lu": lu,
    "stencil5": stencil5,
    "adi": adi,
    "erlebacher": erlebacher,
    "swm": swm,
    "tomcatv": tomcatv,
}

__all__ = ["ALL_APPS"] + list(ALL_APPS)
