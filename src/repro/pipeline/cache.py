"""Content-addressed artifact cache: in-memory LRU + optional disk.

Keys are SHA-256 digests built by the passes
(:mod:`repro.pipeline.fingerprint`); values are arbitrary pass
artifacts.  Every cache holds an in-memory LRU; a disk store is layered
underneath when a directory is configured, so artifacts survive the
process and are shared across the batch driver's worker processes.

Disk location resolution (:func:`resolve_disk_dir`):

* ``REPRO_CACHE_DIR=<path>`` — use that directory;
* ``REPRO_CACHE=1`` (or an explicit CLI ``--cache``) — use the default
  ``~/.cache/repro``;
* otherwise the cache is memory-only.

Disk entries are namespaced by cache schema and interpreter version
(the serializer marshals compute bytecode, which is only stable within
one Python version).  Disk failures are never fatal: an artifact that
cannot be pickled simply stays memory-only, an unreadable disk entry is
treated as a miss, and a *corrupt* entry (truncated, garbage, or
unpicklable bytes) is quarantined — moved aside into the store's
``quarantine/`` directory, counted in ``CacheStats.corrupt`` and the
``pipeline.cache.corrupt`` obs counter — and recomputed, never raised.

Fault injection (:mod:`repro.faults`) hooks both disk directions:
``cache.read`` corrupts loaded bytes (exercising the quarantine path)
and ``cache.write`` fails the store (exercising the memory-only
fallback).
"""

from __future__ import annotations

import os
import sys
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro import faults, obs
from repro.errors import CacheError
from repro.pipeline import serde
from repro.util.atomicio import write_atomic

__all__ = ["MISS", "ArtifactCache", "CacheStats", "resolve_disk_dir"]

MISS = object()
"""Sentinel returned by :meth:`ArtifactCache.get` on a miss."""

SCHEMA_VERSION = 1
DEFAULT_CAPACITY = 256
ENV_DIR = "REPRO_CACHE_DIR"
ENV_FLAG = "REPRO_CACHE"
# The quarantine directory keeps only the newest K corrupt entries:
# enough to post-mortem a bad run, bounded under a chaos loop that
# corrupts entries forever.
QUARANTINE_KEEP = 32


def resolve_disk_dir(explicit: Optional[str] = None) -> Optional[Path]:
    """The disk-store directory implied by ``explicit``/environment, or
    ``None`` for a memory-only cache."""
    if explicit:
        return Path(explicit).expanduser()
    env_dir = os.environ.get(ENV_DIR)
    if env_dir:
        return Path(env_dir).expanduser()
    flag = os.environ.get(ENV_FLAG, "").lower()
    if flag not in ("", "0", "false", "no"):
        return Path("~/.cache/repro").expanduser()
    return None


@dataclass
class CacheStats:
    """Counters for one cache instance (always on, unlike obs)."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    stores: int = 0
    disk_stores: int = 0
    disk_errors: int = 0
    corrupt: int = 0
    evictions: int = 0
    quarantine_evicted: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "stores": self.stores,
            "disk_stores": self.disk_stores,
            "disk_errors": self.disk_errors,
            "corrupt": self.corrupt,
            "evictions": self.evictions,
            "quarantine_evicted": self.quarantine_evicted,
        }


class ArtifactCache:
    """LRU over ``key -> artifact`` with an optional disk layer."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 disk_dir: Optional[os.PathLike] = None):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.stats = CacheStats()
        self._mem: "OrderedDict[str, Any]" = OrderedDict()

    @classmethod
    def from_env(cls, capacity: int = DEFAULT_CAPACITY) -> "ArtifactCache":
        return cls(capacity=capacity, disk_dir=resolve_disk_dir())

    def __len__(self) -> int:
        return len(self._mem)

    def __contains__(self, key: str) -> bool:
        return key in self._mem

    # -- lookup ------------------------------------------------------------

    def get(self, key: str) -> Any:
        """The cached artifact, or :data:`MISS`."""
        if key in self._mem:
            self._mem.move_to_end(key)
            self.stats.hits += 1
            obs.inc("pipeline.cache.hits")
            return self._mem[key]
        value = self._disk_get(key)
        if value is not MISS:
            self.stats.hits += 1
            self.stats.disk_hits += 1
            obs.inc("pipeline.cache.hits")
            obs.inc("pipeline.cache.disk_hits")
            self._mem_put(key, value)
            return value
        self.stats.misses += 1
        obs.inc("pipeline.cache.misses")
        return MISS

    def put(self, key: str, value: Any) -> None:
        self.stats.stores += 1
        self._mem_put(key, value)
        self._disk_put(key, value)

    def clear(self) -> None:
        """Drop the in-memory layer (disk entries are left in place)."""
        self._mem.clear()

    # -- memory layer ------------------------------------------------------

    def _mem_put(self, key: str, value: Any) -> None:
        self._mem[key] = value
        self._mem.move_to_end(key)
        while len(self._mem) > self.capacity:
            self._mem.popitem(last=False)
            self.stats.evictions += 1
            obs.inc("pipeline.cache.evictions")

    # -- disk layer --------------------------------------------------------

    def _disk_path(self, key: str) -> Path:
        tag = f"v{SCHEMA_VERSION}-py{sys.version_info[0]}{sys.version_info[1]}"
        return self.disk_dir / tag / key[:2] / f"{key}.pkl"

    def _disk_get(self, key: str) -> Any:
        if self.disk_dir is None:
            return MISS
        try:
            path = self._disk_path(key)
            data = path.read_bytes()
        except OSError:
            return MISS
        except Exception as exc:  # unexpected; a read must never crash
            self.stats.disk_errors += 1
            obs.event("pipeline.cache.disk_error", cat="pipeline",
                      op="load", key=key, error=type(exc).__name__)
            return MISS
        data = faults.corrupt(data, "cache.read")
        try:
            return serde.loads(data)
        except Exception as exc:
            # Truncated / garbage / unpicklable entry: quarantine it so
            # it is never retried, count it, and recompute.
            self.stats.corrupt += 1
            obs.inc("pipeline.cache.corrupt")
            obs.event("pipeline.cache.corrupt", cat="pipeline",
                      key=key, error=type(exc).__name__)
            self._quarantine(path, key)
            return MISS

    def _quarantine(self, path: Path, key: str) -> None:
        """Move a corrupt entry out of the lookup path (best effort —
        on failure the file is deleted; on *that* failing, ignored).
        The quarantine directory is capped at :data:`QUARANTINE_KEEP`
        newest entries so repeated corruption can't grow it forever."""
        try:
            qdir = path.parent.parent / "quarantine"
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
            self._prune_quarantine(qdir)
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass

    def _prune_quarantine(self, qdir: Path) -> None:
        try:
            entries = sorted(
                (p for p in qdir.iterdir() if p.is_file()),
                key=lambda p: p.stat().st_mtime,
                reverse=True,
            )
        except OSError:
            return
        for stale in entries[QUARANTINE_KEEP:]:
            try:
                os.unlink(stale)
            except OSError:
                continue
            self.stats.quarantine_evicted += 1
            obs.inc("cache.quarantine.evicted")

    def _disk_put(self, key: str, value: Any) -> None:
        if self.disk_dir is None:
            return
        path = self._disk_path(key)
        try:
            if faults.should_fire("cache.write"):
                raise CacheError("injected disk-store write fault", key=key)
            data = serde.dumps(value)
            # Artifacts are recomputable, so skip the fsync: a crash at
            # worst loses a cache entry, never corrupts one (the rename
            # is still atomic and torn entries quarantine on read).
            write_atomic(path, data, fsync=False)
            self.stats.disk_stores += 1
            obs.inc("pipeline.cache.disk_stores")
        except Exception as exc:
            # Unpicklable artifact or unwritable directory: stay
            # memory-only rather than fail the compile.
            self.stats.disk_errors += 1
            obs.event("pipeline.cache.disk_error", cat="pipeline",
                      op="store", key=key, error=type(exc).__name__)
