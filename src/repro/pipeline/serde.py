"""Pickling for pipeline artifacts, tolerant of IR compute callables.

Cached artifacts (restructured programs, SPMD plans) embed the
``Statement.compute`` callables of the source program, which are
usually lambdas defined inside an app's ``build`` function — exactly
what the stock pickler refuses to serialize.  The disk store therefore
uses a :class:`Pickler` with a ``reducer_override`` that marshals the
function's code object and records its name, defaults, closure values
and defining module; :func:`_rebuild_function` reassembles a behaviour-
identical function at load time.

``marshal`` bytecode is only guaranteed stable within one interpreter
version, so the on-disk cache namespaces its directory by the running
Python version (see :mod:`repro.pipeline.cache`).
"""

from __future__ import annotations

import builtins
import io
import marshal
import pickle
import sys
import types
from typing import Any

__all__ = ["dumps", "loads"]


def _rebuild_function(code_bytes, name, qualname, module, defaults, cells):
    code = marshal.loads(code_bytes)
    mod = sys.modules.get(module)
    glb = mod.__dict__ if mod is not None else {"__builtins__": builtins}
    closure = None
    if cells is not None:
        closure = tuple(types.CellType(v) for v in cells)
    fn = types.FunctionType(code, glb, name, defaults, closure)
    fn.__qualname__ = qualname
    return fn


def _importable(obj: types.FunctionType) -> bool:
    """True when stock pickling (by module + qualname reference) works."""
    if "<locals>" in obj.__qualname__ or obj.__name__ == "<lambda>":
        return False
    mod = sys.modules.get(obj.__module__)
    if mod is None:
        return False
    target = mod
    for part in obj.__qualname__.split("."):
        target = getattr(target, part, None)
        if target is None:
            return False
    return target is obj


class _FunctionPickler(pickle.Pickler):
    def reducer_override(self, obj: Any):
        # Only intercept functions the stock pickler would reject
        # (lambdas, nested defs).  Importable functions — including
        # ``_rebuild_function`` itself, which appears as the reduce
        # callable — must pickle by reference or the override recurses.
        if isinstance(obj, types.FunctionType) and not _importable(obj):
            try:
                code_bytes = marshal.dumps(obj.__code__)
            except ValueError:  # pragma: no cover - exotic code object
                return NotImplemented
            cells = None
            if obj.__closure__ is not None:
                cells = tuple(c.cell_contents for c in obj.__closure__)
            return _rebuild_function, (
                code_bytes,
                obj.__name__,
                obj.__qualname__,
                obj.__module__,
                obj.__defaults__,
                cells,
            )
        return NotImplemented


def dumps(obj: Any) -> bytes:
    buf = io.BytesIO()
    _FunctionPickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buf.getvalue()


def loads(data: bytes) -> Any:
    return pickle.loads(data)
