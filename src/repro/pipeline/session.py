"""Compile sessions: the pass pipeline's front door.

A :class:`CompileSession` owns an :class:`~repro.pipeline.cache.ArtifactCache`
and a :class:`~repro.pipeline.manager.PassManager` and exposes the same
three operations as the legacy driver (``restructure`` /
``compile`` / ``compile_all``), now as explicit pass-pipeline
executions with content-addressed artifact reuse.  It replaces the old
``prog._restructured`` attribute hack: memoization lives in the
session's cache, keyed by program content, and never mutates caller
objects.

A process-wide default session backs the compatibility wrappers in
:mod:`repro.compiler`; callers that want isolation (a cold profile, a
batch worker with a disk store) construct their own.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional, Tuple

from repro import obs
from repro.obs.provenance import ProvenanceLog
from repro.codegen.spmd import Scheme, SpmdProgram
from repro.decomp.model import Decomposition
from repro.ir.program import Program
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.fingerprint import (
    fingerprint_decomposition,
    fingerprint_program,
)
from repro.pipeline.manager import PassManager
from repro.pipeline.passes import (
    ART_DECOMPOSITION,
    ART_PROGRAM,
    ART_RESTRUCTURED,
    DecomposePass,
    LayoutPass,
    PassContext,
    RestructurePass,
    SpmdCodegenPass,
    VerifyPass,
)

__all__ = [
    "ENV_VERIFY",
    "CompileSession",
    "get_session",
    "set_session",
    "reset_session",
]

_AUTO = object()

ENV_VERIFY = "REPRO_VERIFY"


class CompileSession:
    """One pipeline instance: passes + artifact cache.

    ``cache`` may be an :class:`ArtifactCache`, ``None`` to disable
    artifact reuse entirely (every pass always runs), or omitted to
    build one from the environment (``REPRO_CACHE_DIR`` /
    ``REPRO_CACHE`` select an optional disk store).

    ``verify=True`` appends the :class:`VerifyPass` oracle to every
    compile — each SPMD plan is executed against the sequential
    reference and a divergence raises
    :class:`~repro.errors.VerifyError`.  ``verify=None`` (default)
    reads the ``REPRO_VERIFY`` environment flag.
    """

    def __init__(self, cache=_AUTO, max_dims: int = 2,
                 verify: Optional[bool] = None):
        if cache is _AUTO:
            cache = ArtifactCache.from_env()
        if verify is None:
            verify = os.environ.get(ENV_VERIFY, "").lower() not in (
                "", "0", "false", "no"
            )
        self.cache: Optional[ArtifactCache] = cache
        self.manager = PassManager(cache)
        self.max_dims = max_dims
        self.verify = bool(verify)
        self._restructure = RestructurePass()
        self._decompose = DecomposePass()
        self._layout = LayoutPass()
        self._spmd = SpmdCodegenPass()
        self._verify = VerifyPass()
        # Decision log of the most recent compile()/compile_all() point
        # (cache hits replay the original records, so this is complete
        # even on a fully warm session).
        self.last_provenance = ProvenanceLog()

    # -- pipeline operations ----------------------------------------------

    def _context(self, prog: Program, **kw) -> PassContext:
        ctx = PassContext(
            program=prog,
            program_fp=fingerprint_program(prog),
            max_dims=self.max_dims,
            **kw,
        )
        ctx.artifacts[ART_PROGRAM] = prog
        return ctx

    def restructure(self, prog: Program) -> Program:
        """The restructured form of ``prog`` (cached by content).

        The output is registered as its own fixed point, so
        restructuring an already-restructured program returns it
        unchanged — the property the old attribute memo provided,
        without mutating any ``Program``.
        """
        ctx = self._context(prog)
        out = self.manager.execute(self._restructure, ctx)
        if out is not prog and self.cache is not None:
            out_ctx = self._context(out)
            if out_ctx.program_fp != ctx.program_fp:
                self.manager.seed(
                    self._restructure.cache_key(out_ctx), out
                )
        return out

    def compile(
        self,
        prog: Program,
        scheme: Scheme,
        nprocs: int,
        decomp: Optional[Decomposition] = None,
        max_dims: Optional[int] = None,
        line_pad_elements: Optional[int] = None,
        decomp_nprocs: Optional[int] = None,
    ) -> SpmdProgram:
        """Compile one (program, scheme, nprocs) point through the
        pipeline.

        ``decomp`` supplies an external decomposition (e.g. from HPF
        directives); its content fingerprint then keys the downstream
        artifacts.  ``decomp_nprocs`` pins the processor count the
        derived decomposition's folding is chosen for (a sweep passes
        its maximum so every point shares one decomposition, matching
        :func:`repro.machine.simulate.speedup_curve`).
        """
        prog.validate()
        ctx = self._context(
            prog,
            scheme=scheme,
            nprocs=nprocs,
            decomp_nprocs=decomp_nprocs or nprocs,
            line_pad_elements=line_pad_elements,
        )
        if max_dims is not None:
            ctx.max_dims = max_dims
        with obs.span("compiler.compile", cat="compiler",
                      program=prog.name, scheme=scheme.value,
                      nprocs=nprocs):
            spmd = self._compile_ctx(ctx, decomp)
        self.last_provenance = ctx.provenance
        return spmd

    def _compile_ctx(self, ctx: PassContext,
                     decomp: Optional[Decomposition]) -> SpmdProgram:
        self._restructure_into(ctx)
        if ctx.scheme is Scheme.BASE:
            spmd = self.manager.execute(self._spmd, ctx)
        else:
            if decomp is not None:
                ctx.decomp_token = fingerprint_decomposition(decomp)
                ctx.artifacts[ART_DECOMPOSITION] = decomp
            else:
                self.manager.execute(self._decompose, ctx)
            self.manager.execute(self._layout, ctx)
            spmd = self.manager.execute(self._spmd, ctx)
        if self.verify:
            self.manager.execute(self._verify, ctx)
        return spmd

    def _restructure_into(self, ctx: PassContext) -> Program:
        out = self.manager.execute(self._restructure, ctx)
        ctx.artifacts[ART_RESTRUCTURED] = out
        return out

    def compile_degradable(
        self,
        prog: Program,
        scheme: Scheme,
        nprocs: int,
        **kw,
    ) -> Tuple[SpmdProgram, Optional[str]]:
        """:meth:`compile` with graceful degradation.

        If a decomposition-scheme compile fails, fall back to the
        sequential-layout ``BASE`` scheme for the same point instead of
        aborting — the batch driver uses this so one broken scheme
        cannot sink a whole grid.  Returns ``(spmd, reason)`` where
        ``reason`` is ``None`` on the normal path and a one-line
        description of the original failure when degraded.  ``BASE``
        compiles (no fallback left) and non-exception conditions
        propagate unchanged.
        """
        try:
            return self.compile(prog, scheme, nprocs, **kw), None
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            if scheme is Scheme.BASE:
                raise
            reason = f"{type(exc).__name__}: {exc}"
            obs.inc("pipeline.degraded")
            obs.event("pipeline.degraded", cat="pipeline",
                      program=prog.name, scheme=scheme.value,
                      nprocs=nprocs, error=reason)
            kw.pop("decomp", None)
            spmd = self.compile(prog, Scheme.BASE, nprocs, **kw)
            return spmd, reason

    def compile_all(self, prog: Program, nprocs: int,
                    max_dims: Optional[int] = None) -> "CompiledProgram":
        """All three Section-6 configurations of one program, sharing
        one restructure and one decomposition."""
        from repro.compiler import CompiledProgram

        prog.validate()
        md = self.max_dims if max_dims is None else max_dims
        with obs.span("compiler.compile_all", cat="compiler",
                      program=prog.name, nprocs=nprocs):
            spmds: Dict[Scheme, SpmdProgram] = {}
            decomp: Optional[Decomposition] = None
            for scheme in (Scheme.BASE, Scheme.COMP_DECOMP,
                           Scheme.COMP_DECOMP_DATA):
                ctx = self._context(
                    prog, scheme=scheme, nprocs=nprocs,
                    decomp_nprocs=nprocs,
                )
                ctx.max_dims = md
                spmds[scheme] = self._compile_ctx(ctx, None)
                self.last_provenance = ctx.provenance
                if scheme is not Scheme.BASE and decomp is None:
                    decomp = ctx.artifacts[ART_DECOMPOSITION]
            return CompiledProgram(
                base=spmds[Scheme.BASE],
                comp_decomp=spmds[Scheme.COMP_DECOMP],
                comp_decomp_data=spmds[Scheme.COMP_DECOMP_DATA],
                decomposition=decomp,
            )

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Pass run/hit counts plus cache counters (JSON-ready)."""
        out: Dict[str, object] = dict(self.manager.counts())
        out["cache"] = (
            self.cache.stats.as_dict() if self.cache is not None else None
        )
        return out


# -- process-wide default session -------------------------------------------

_lock = threading.Lock()
_session: Optional[CompileSession] = None


def get_session() -> CompileSession:
    """The process-wide default session (created on first use)."""
    global _session
    if _session is None:
        with _lock:
            if _session is None:
                _session = CompileSession()
    return _session


def set_session(session: Optional[CompileSession]) -> None:
    """Replace the default session (``None`` → recreate lazily)."""
    global _session
    with _lock:
        _session = session


def reset_session() -> CompileSession:
    """Install and return a fresh default session (used by tests and
    cold-profile paths to guarantee real pass executions)."""
    session = CompileSession()
    set_session(session)
    return session
