"""The shared grid-execution engine.

Every surface that sweeps ``(app, scheme, nprocs)`` coordinates —
``repro batch``, the benchmark harness (:mod:`repro.obs.bench`), the
verifier and hotspot sweeps in the CLI — used to carry its own copy of
the enumerate/compile/simulate loop.  This module is the single
implementation they all consume:

* :class:`GridSpec` enumerates a cartesian grid into
  :class:`GridPoint` coordinates (one ``(app, scheme, nprocs)`` plus
  problem-size/machine knobs);
* :func:`point_program` / :func:`point_machine` / :func:`point_key`
  are the one true mapping from a coordinate to the program it builds,
  the machine it simulates, and the content-addressed key its result
  is stored under;
* :func:`execute_grid` is the hardened wave-based executor (per-point
  error isolation, timeouts, retries with exponential backoff, broken
  pool respawn, BASE-scheme degradation, per-point telemetry
  snapshots) moved verbatim from the old batch driver;
* :func:`run_grid` layers the persistent
  :class:`~repro.pipeline.store.ResultStore` on top: with
  ``incremental=True`` it serves every point whose
  program x scheme x procs x machine x model-version key is already
  stored, executes only the rest, and writes fresh results back — so a
  rerun after editing one app re-executes exactly that app's points.

Execution hardening (the driver survives hostile conditions without
losing grid points):

* **timeouts** — ``timeout`` bounds each point's wall time; a stalled
  worker is detected, its pool is torn down, and the point is retried
  or failed (``batch.timeouts``);
* **retries** — any failed point is re-attempted up to ``retries``
  times with exponential backoff (``batch.retries``), and every
  result records how many ``attempts`` it took;
* **respawn** — a crashed worker breaks its whole
  ``ProcessPoolExecutor``; the driver kills the broken pool, spawns a
  fresh one, and resubmits everything still pending
  (``batch.respawns`` / ``batch.worker_lost``);
* **degradation** — with ``degrade=True`` a point whose
  decomposition-scheme compile fails falls back to the sequential
  ``BASE`` layout (see ``CompileSession.compile_degradable``) and is
  reported ``ok`` but ``degraded`` with the original failure attached.

Simulation is deterministic, so the parallel path produces results
identical to the serial one point-for-point, and a store-served point
is bit-identical to re-executing it.

Telemetry (``collect_telemetry=True``): each worker records every
point under its own fresh collector (one ``batch.point`` root span)
and ships the frozen snapshot back inside the point's
:class:`GridResult`; the driver merges the snapshots into a single
skew-corrected multi-lane trace via :mod:`repro.obs.agg`.

:mod:`repro.pipeline.batch` re-exports all of this under its
historical names (``BatchPoint``/``BatchResult``/``run_batch``).
"""

from __future__ import annotations

import contextlib
import itertools
import signal as _signal
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import faults, obs
from repro.codegen.spmd import parse_scheme, scheme_short_name
from repro.errors import ReproError, SimulationError
from repro.pipeline.fingerprint import fingerprint_program
from repro.pipeline.store import ResultStore, result_key

__all__ = [
    "GracefulShutdown",
    "GridPoint",
    "GridResult",
    "GridSpec",
    "execute_grid",
    "make_grid",
    "merged_trace",
    "point_key",
    "point_machine",
    "point_program",
    "result_from_dict",
    "run_grid",
    "run_point",
    "summarize",
]

MAX_BACKOFF_SECONDS = 30.0

# How long a graceful shutdown waits for the in-flight wave before
# abandoning it (resume re-executes whatever was abandoned).
DEFAULT_DRAIN_SECONDS = 30.0


@dataclass(frozen=True)
class GridPoint:
    """One grid coordinate.

    ``scheme`` accepts any spelling from
    :data:`repro.codegen.spmd.SCHEME_ALIASES` and is normalized to the
    canonical short name.  ``decomp_procs`` optionally pins the
    processor count the decomposition's folding is chosen for (sweeps
    pass their maximum so all points share one decomposition, matching
    the serial ``speedup_curve`` convention).
    """

    app: str
    scheme: str
    nprocs: int
    n: Optional[int] = None
    time_steps: Optional[int] = None
    scale: int = 16
    decomp_procs: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(
            self, "scheme", scheme_short_name(parse_scheme(self.scheme))
        )

    def label(self) -> str:
        size = f" n={self.n}" if self.n is not None else ""
        return f"{self.app}/{self.scheme} P={self.nprocs}{size}"

    def coord(self) -> str:
        """The full coordinate string (every knob that shapes the
        result), used by the result store's invalidation index."""
        return (
            f"{self.app}/{self.scheme}/P{self.nprocs}"
            f"/n={self.n}/t={self.time_steps}/s={self.scale}"
            f"/d={self.decomp_procs}"
        )


@dataclass
class GridResult:
    """Outcome of one point (simulation scalars + cache effectiveness).

    ``attempts`` counts how many executions this point took (1 on the
    happy path); ``degraded`` marks a point whose requested scheme
    failed to compile and which ran under the ``BASE`` fallback
    instead, with the original failure in ``degrade_reason``.
    ``store_hit`` marks a point served from the persistent result
    store without executing anything (its ``pass_runs`` are then empty
    — no pass ran in *this* process).
    """

    point: GridPoint
    ok: bool
    total_time: float = 0.0
    n_accesses: int = 0
    miss_breakdown: Dict[str, int] = field(default_factory=dict)
    pass_runs: Dict[str, int] = field(default_factory=dict)
    pass_hits: Dict[str, int] = field(default_factory=dict)
    elapsed: float = 0.0
    error: str = ""
    attempts: int = 1
    degraded: bool = False
    degrade_reason: str = ""
    # Decision records (as dicts) of the compile that produced this
    # point, for `repro diff` root-cause attribution on batch outputs.
    provenance: List[Dict[str, object]] = field(default_factory=list)
    # Locality analytics (reuse/pressure/heatmap) of the simulated
    # stream, filled when the batch ran with ``locality=True``.
    locality: Dict[str, object] = field(default_factory=dict)
    # Served from the persistent result store (and under which key).
    store_hit: bool = False
    store_key: str = ""
    # Frozen obs snapshot (repro.obs.agg.snapshot) of the attempt that
    # produced this result, when the batch collected telemetry.
    telemetry: Optional[Dict[str, object]] = None

    def as_dict(self) -> Dict[str, object]:
        out = asdict(self)
        # The raw telemetry snapshot is bulky and has its own exporters
        # (repro.obs.agg); JSON result dumps carry the aggregate only.
        out.pop("telemetry", None)
        out["point"] = asdict(self.point)
        return out


def result_from_dict(d: Dict[str, object]) -> GridResult:
    """Rehydrate :meth:`GridResult.as_dict` output (journal ``done``
    records, ``batch --json`` rows) back into a result — the exact
    inverse, so a served record is bit-identical to the original."""
    d = dict(d)
    d.pop("telemetry", None)
    point = GridPoint(**d.pop("point"))
    return GridResult(point=point, **d)


class GracefulShutdown:
    """Cooperative SIGINT/SIGTERM handling for the grid driver.

    On the first signal the executor *stops dispatching* new points
    and *drains* the in-flight work for up to ``drain_seconds``;
    whatever finishes in that window is recorded (and journaled)
    normally, the rest is abandoned for ``--resume`` to re-execute.  A
    second signal expires the drain immediately.  The driver then
    flushes partial outputs and exits 130 with a resume hint — see
    ``repro batch``.
    """

    def __init__(self, drain_seconds: float = DEFAULT_DRAIN_SECONDS):
        self.drain_seconds = drain_seconds
        self.triggered = False
        self.signum: Optional[int] = None
        self._deadline: Optional[float] = None

    def trigger(self, signum: Optional[int] = None, frame=None) -> None:
        """Signal-handler entry (also callable directly from tests)."""
        if self.triggered:
            # Second signal: the user means now — expire the drain.
            self._deadline = time.monotonic()
            return
        self.triggered = True
        self.signum = signum
        self._deadline = time.monotonic() + self.drain_seconds
        obs.inc("batch.shutdowns")
        obs.event("batch.shutdown", cat="batch", signum=signum,
                  drain_seconds=self.drain_seconds)

    def drain_expired(self) -> bool:
        return (self.triggered and self._deadline is not None
                and time.monotonic() >= self._deadline)

    @contextlib.contextmanager
    def install(self, signals: Sequence[int] = (_signal.SIGINT,
                                                _signal.SIGTERM)):
        """Install :meth:`trigger` as the handler for ``signals``
        (main thread only), restoring the previous handlers on exit."""
        previous = {}
        for s in signals:
            previous[s] = _signal.signal(s, self.trigger)
        try:
            yield self
        finally:
            for s, handler in previous.items():
                _signal.signal(s, handler)


class _DrainExpired(Exception):
    """Internal: the shutdown drain deadline passed while waiting."""


@dataclass(frozen=True)
class GridSpec:
    """A cartesian ``apps x schemes x procs`` grid, declaratively.

    ``pin_decomp`` fixes every point's decomposition at ``max(procs)``
    so the whole sweep shares one decomposition (the serial
    ``speedup_curve`` convention).
    """

    apps: Tuple[str, ...]
    schemes: Tuple[str, ...]
    procs: Tuple[int, ...]
    n: Optional[int] = None
    time_steps: Optional[int] = None
    scale: int = 16
    pin_decomp: bool = False

    def points(self) -> List[GridPoint]:
        dp = max(self.procs) if self.pin_decomp and self.procs else None
        return [
            GridPoint(app=a, scheme=s, nprocs=p, n=self.n,
                      time_steps=self.time_steps, scale=self.scale,
                      decomp_procs=dp)
            for a, s, p in itertools.product(
                self.apps, self.schemes, self.procs)
        ]


def make_grid(
    apps: Sequence[str],
    schemes: Sequence[str],
    procs: Sequence[int],
    n: Optional[int] = None,
    time_steps: Optional[int] = None,
    scale: int = 16,
    pin_decomp: bool = False,
) -> List[GridPoint]:
    """The cartesian ``apps x schemes x procs`` grid.  ``pin_decomp``
    fixes every point's decomposition at ``max(procs)``."""
    return GridSpec(
        apps=tuple(apps), schemes=tuple(schemes), procs=tuple(procs),
        n=n, time_steps=time_steps, scale=scale, pin_decomp=pin_decomp,
    ).points()


# -- coordinate -> program / machine / key -----------------------------------

def point_program(point: GridPoint):
    """Build the app program a point compiles (the one true mapping
    from coordinate knobs to builder kwargs)."""
    from repro.apps import build_app

    kwargs = {}
    if point.n is not None:
        kwargs["n"] = point.n
    if point.time_steps is not None:
        kwargs["time_steps"] = point.time_steps
    return build_app(point.app, **kwargs)


def point_machine(point: GridPoint, prog=None):
    """The scaled DASH instance a point simulates on (word size follows
    the program's smallest element, as everywhere else)."""
    from repro.machine import scaled_dash

    if prog is None:
        prog = point_program(point)
    return scaled_dash(
        point.nprocs, scale=point.scale,
        word_bytes=min(d.element_size for d in prog.arrays.values()),
    )


def point_key(point: GridPoint, kind: str = "sim", prog=None,
              **extras) -> str:
    """The persistent-store key of a point's result: SHA-256 over
    program fingerprint x scheme x procs x machine fingerprint x model
    version (plus the ``kind`` namespace and any payload-shaping
    flags)."""
    if prog is None:
        prog = point_program(point)
    machine = point_machine(point, prog)
    return result_key(
        fingerprint_program(prog), point.scheme, point.nprocs,
        machine.fingerprint(), kind=kind,
        decomp=point.decomp_procs, **extras,
    )


def _point_session(point: GridPoint, session, degrade: bool = False,
                   locality: bool = False) -> GridResult:
    """Compile + simulate one point on the session (may raise)."""
    from repro.codegen.spmd import parse_scheme
    from repro.machine.simulate import simulate

    prog = point_program(point)
    machine = point_machine(point, prog)
    before = session.manager.counts()
    t0 = time.perf_counter()
    degrade_reason: Optional[str] = None
    if degrade:
        spmd, degrade_reason = session.compile_degradable(
            prog, parse_scheme(point.scheme), point.nprocs,
            decomp_nprocs=point.decomp_procs,
        )
    else:
        spmd = session.compile(
            prog, parse_scheme(point.scheme), point.nprocs,
            decomp_nprocs=point.decomp_procs,
        )
    try:
        res = simulate(spmd, machine, locality=locality)
    except (ReproError, KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:
        raise SimulationError(
            f"{type(exc).__name__}: {exc}",
            app=point.app, scheme=point.scheme, nprocs=point.nprocs,
        ) from exc
    elapsed = time.perf_counter() - t0
    after = session.manager.counts()

    def _delta(kind: str) -> Dict[str, int]:
        prev = before[kind]
        return {
            name: count - prev.get(name, 0)
            for name, count in after[kind].items()
            if count - prev.get(name, 0)
        }

    return GridResult(
        point=point,
        ok=True,
        total_time=res.total_time,
        n_accesses=res.n_accesses,
        miss_breakdown=dict(res.miss_breakdown),
        pass_runs=_delta("runs"),
        pass_hits=_delta("hits"),
        elapsed=elapsed,
        degraded=degrade_reason is not None,
        degrade_reason=degrade_reason or "",
        provenance=[r.as_dict() for r in session.last_provenance],
        locality=dict(res.locality),
    )


def run_point(point: GridPoint, session, degrade: bool = False,
              locality: bool = False) -> GridResult:
    """Run one point with error isolation (never raises)."""
    with obs.span("batch.point", cat="batch", app=point.app,
                  scheme=point.scheme, nprocs=point.nprocs):
        try:
            return _point_session(point, session, degrade=degrade,
                                  locality=locality)
        except BaseException as exc:  # isolate even SystemExit
            if isinstance(exc, KeyboardInterrupt):
                raise
            return GridResult(
                point=point, ok=False,
                error=traceback.format_exc(limit=20),
            )


# -- worker-process plumbing -------------------------------------------------

_worker_session = None
_worker_config: Optional[Tuple[Optional[str], bool]] = None


def _make_session(disk_dir: Optional[str], cache: bool):
    from repro.pipeline.cache import ArtifactCache
    from repro.pipeline.session import CompileSession

    if not cache:
        return CompileSession(cache=None)
    return CompileSession(cache=ArtifactCache(disk_dir=disk_dir))


def _worker_run(payload) -> GridResult:
    global _worker_session, _worker_config
    point_dict, disk_dir, cache, degrade, collect, locality = payload
    # Injected process-level faults (crash/stall) fire only here, in
    # worker processes — never in the driver.
    faults.maybe_worker_faults()
    config = (disk_dir, cache)
    if _worker_session is None or _worker_config != config:
        _worker_session = _make_session(disk_dir, cache)
        _worker_config = config
    if not collect:
        return run_point(GridPoint(**point_dict), _worker_session,
                         degrade=degrade, locality=locality)
    # One fresh collector per point: the snapshot shipped back with the
    # result then holds exactly this point's spans/events/metrics.
    from repro.obs import agg

    obs.enable(reset=True)
    try:
        result = run_point(GridPoint(**point_dict), _worker_session,
                           degrade=degrade, locality=locality)
        result.telemetry = agg.snapshot()
    finally:
        obs.disable()
        obs.reset()
    return result


# -- the executor ------------------------------------------------------------

def _backoff_delay(backoff: float, attempt: int) -> float:
    """Exponential backoff before re-attempt ``attempt`` (>= 2)."""
    return min(backoff * (2.0 ** max(attempt - 2, 0)), MAX_BACKOFF_SECONDS)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear down a broken/stalled pool without waiting on its workers."""
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover - very old interpreters
        pool.shutdown(wait=False)


def execute_grid(
    points: Iterable[GridPoint],
    jobs: int = 1,
    cache: bool = True,
    disk_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.5,
    degrade: bool = True,
    collect_telemetry: bool = False,
    locality: bool = False,
    on_result: Optional[Callable[[int, GridResult], None]] = None,
    on_start: Optional[Callable[[int], None]] = None,
    on_wave: Optional[Callable[[int, int], None]] = None,
    shutdown: Optional[GracefulShutdown] = None,
    monitor=None,
) -> List[GridResult]:
    """Execute every point; results come back in input order.

    ``on_result(i, result)`` fires in the *driver* the moment point
    ``i`` (input order) reaches its terminal result — the hook the
    incremental layer uses to persist store entries and journal
    records while the grid is still running, so a crash loses at most
    the in-flight points.  ``on_start(i)`` fires at dispatch and
    ``on_wave(wave, pending)`` at the top of each parallel wave.

    ``shutdown`` makes the executor cooperate with SIGINT/SIGTERM: no
    new dispatch after the trigger, the in-flight wave drains until
    the deadline, abandoned points are simply absent from the returned
    list (and ``on_result`` never fires for them).

    ``jobs <= 1`` runs serially in-process on one shared session;
    ``jobs > 1`` fans out over a process pool (``disk_dir`` makes the
    artifact cache shared across workers and across batch runs).

    ``timeout`` bounds each point's wall-clock seconds (parallel mode
    only; a stalled worker pool is killed and respawned).  ``retries``
    re-attempts failed points with exponential ``backoff``.
    ``degrade`` enables the BASE-scheme compile fallback per point.

    ``collect_telemetry`` makes every parallel worker record its point
    under a fresh obs collector and attach the frozen snapshot to the
    result (``GridResult.telemetry``) for an :mod:`repro.obs.agg`
    merge.  The serial path records straight into the caller's own
    collector instead (enable obs before calling), so its results carry
    no per-point snapshots.

    ``locality`` attaches the deterministic reuse-distance /
    set-pressure / heatmap analytics to every point
    (``GridResult.locality``) at the cost of one extra analytics pass
    over each point's address stream.

    ``monitor`` (a :class:`repro.obs.runstate.RunMonitor`, duck-typed)
    is only *pumped* here — its rate-limited ``tick()`` is called
    between serial points and once per wait slice while parallel
    futures are pending, so heartbeats keep flowing during a long
    point.  Progress notifications (dispatch/finish/wave) go through
    the ``on_*`` hooks, which carry the caller's own point indices.
    """
    points = list(points)
    if jobs <= 1:
        return _run_serial(points, cache, disk_dir, retries, backoff,
                           degrade, locality, on_result, on_start,
                           shutdown, monitor)
    return _run_parallel(points, jobs, cache, disk_dir, timeout,
                         retries, backoff, degrade, collect_telemetry,
                         locality, on_result, on_start, on_wave,
                         shutdown, monitor)


def _run_serial(points, cache, disk_dir, retries, backoff,
                degrade, locality=False, on_result=None, on_start=None,
                shutdown=None, monitor=None) -> List[GridResult]:
    session = _make_session(disk_dir, cache)
    out: List[GridResult] = []
    for i, point in enumerate(points):
        if shutdown is not None and shutdown.triggered:
            break
        if monitor is not None:
            monitor.tick()
        if on_start is not None:
            on_start(i)
        attempt = 1
        result = run_point(point, session, degrade=degrade,
                           locality=locality)
        abandoned = False
        while not result.ok and attempt <= retries:
            if shutdown is not None and shutdown.triggered:
                # Mid-retry shutdown: abandon rather than record a
                # failure the remaining retries might have fixed —
                # resume re-executes the point with its full budget.
                abandoned = True
                break
            obs.inc("batch.retries")
            time.sleep(_backoff_delay(backoff, attempt + 1))
            attempt += 1
            result = run_point(point, session, degrade=degrade,
                               locality=locality)
        if abandoned:
            break
        result.attempts = attempt
        out.append(result)
        if on_result is not None:
            on_result(i, result)
    return out


def _run_parallel(points, jobs, cache, disk_dir, timeout, retries,
                  backoff, degrade, collect_telemetry=False,
                  locality=False, on_result=None, on_start=None,
                  on_wave=None, shutdown=None,
                  monitor=None) -> List[GridResult]:
    """Wave-based execution: each wave gets a fresh pool for whatever
    is still pending.

    Attempt accounting is attributable: a point is charged an attempt
    only for an outcome of its *own* (a result, its own timeout, a
    distinct executor error).  A crashed worker breaks the whole
    ``ProcessPoolExecutor``, taking innocent in-flight points with it —
    those collateral points are requeued for free, *except* when a
    wave completes nothing at all (then everyone is charged, which
    bounds the total number of waves even under a 100% crash rate).
    """
    payloads = [(asdict(p), disk_dir, cache, degrade, collect_telemetry,
                 locality)
                for p in points]
    results: List[Optional[GridResult]] = [None] * len(points)
    attempts = [0] * len(points)
    pending: List[int] = list(range(len(points)))
    wave = 0

    def _finish(i: int, result: GridResult) -> None:
        results[i] = result
        if on_result is not None:
            on_result(i, result)

    while pending:
        if shutdown is not None and shutdown.triggered:
            # Stop dispatching: whatever is still pending stays unrun
            # (absent from the results) for --resume to pick up.
            break
        wave += 1
        if wave > 1:
            time.sleep(_backoff_delay(backoff, wave))
        if on_wave is not None:
            on_wave(wave, len(pending))
        next_pending: List[int] = []

        def _retry_or_fail(i: int, error: str) -> None:
            if attempts[i] <= retries:
                obs.inc("batch.retries")
                next_pending.append(i)
            else:
                _finish(i, GridResult(
                    point=points[i], ok=False, error=error,
                    attempts=attempts[i],
                ))

        pool = ProcessPoolExecutor(max_workers=jobs)
        broken = False
        aborted = False
        progressed = False
        futures = []
        collateral: List[int] = []
        try:
            for i in pending:
                if on_start is not None:
                    on_start(i)
                futures.append(
                    (pool.submit(_worker_run, payloads[i]), i))
        except BrokenProcessPool:
            broken = True
            submitted = {i for _, i in futures}
            collateral.extend(i for i in pending if i not in submitted)
        for fut, i in futures:
            if aborted or (broken and not fut.done()):
                # The pool is already dead (or the drain deadline
                # passed); this point never got a chance — requeue it
                # without waiting (or charging), unless we are
                # shutting down, in which case it is simply abandoned.
                fut.cancel()
                if not aborted:
                    collateral.append(i)
                continue
            try:
                result = _await_result(fut, timeout, shutdown, monitor)
                attempts[i] += 1
                result.attempts = attempts[i]
                _finish(i, result)
                progressed = True
            except _DrainExpired:
                aborted = True
                fut.cancel()
            except FuturesTimeoutError:
                broken = True
                attempts[i] += 1
                obs.inc("batch.timeouts")
                obs.event("batch.timeout", cat="batch",
                          point=points[i].label(), timeout=timeout)
                _retry_or_fail(
                    i, f"point exceeded timeout of {timeout}s")
            except BrokenProcessPool:
                if not broken:
                    broken = True
                    obs.inc("batch.worker_lost")
                    obs.event("batch.worker_lost", cat="batch",
                              point=points[i].label())
                collateral.append(i)
            except (KeyboardInterrupt, SystemExit):
                _kill_pool(pool)
                raise
            except Exception:
                # Unexpected executor-side failure for this future
                # only; the pool itself may still be healthy.
                attempts[i] += 1
                _retry_or_fail(i, traceback.format_exc(limit=5))
        if not aborted:
            for i in collateral:
                if not progressed:
                    attempts[i] += 1
                _retry_or_fail(
                    i, "worker process died (pool broken) before this "
                       "point completed")
        if broken or aborted:
            obs.inc("batch.respawns")
            _kill_pool(pool)
        else:
            pool.shutdown(wait=True)
        if aborted:
            break
        pending = next_pending
    return [r for r in results if r is not None]


def _await_result(fut, timeout, shutdown, monitor=None) -> GridResult:
    """``fut.result`` that honours both the per-point timeout and a
    graceful shutdown's drain deadline (polling in short slices so the
    signal handler's flag is observed promptly).  A run monitor is
    pumped once per slice, so heartbeats keep a live-run status honest
    even while every worker is deep inside one long point."""
    if shutdown is None and monitor is None:
        return fut.result(timeout=timeout)
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        if shutdown is not None and shutdown.drain_expired():
            raise _DrainExpired()
        if monitor is not None:
            monitor.tick()
        slice_s = 0.2
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise FuturesTimeoutError()
            slice_s = min(slice_s, remaining)
        try:
            return fut.result(timeout=slice_s)
        except FuturesTimeoutError:
            continue


# -- the incremental layer ---------------------------------------------------

_PAYLOAD_FIELDS = (
    "total_time", "n_accesses", "miss_breakdown", "elapsed",
    "provenance", "locality",
)


def _result_payload(result: GridResult) -> Dict[str, object]:
    """The store payload of an executed result: the simulation outcome
    only — never pass counters or telemetry, which describe one
    process's run, not the point."""
    out = result.as_dict()
    return {k: out[k] for k in _PAYLOAD_FIELDS}


def _result_from_payload(point: GridPoint, key: str,
                         payload: Dict[str, object]) -> GridResult:
    """Rehydrate a stored payload as a served (not executed) result."""
    return GridResult(
        point=point,
        ok=True,
        total_time=float(payload.get("total_time", 0.0)),
        n_accesses=int(payload.get("n_accesses", 0)),
        miss_breakdown=dict(payload.get("miss_breakdown", {})),
        elapsed=0.0,
        provenance=list(payload.get("provenance", [])),
        locality=dict(payload.get("locality", {})),
        store_hit=True,
        store_key=key,
    )


def run_grid(
    points: Iterable[GridPoint],
    jobs: int = 1,
    cache: bool = True,
    disk_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.5,
    degrade: bool = True,
    collect_telemetry: bool = False,
    locality: bool = False,
    store: Optional[ResultStore] = None,
    incremental: bool = False,
    journal=None,
    shutdown: Optional[GracefulShutdown] = None,
    preset: Optional[Dict[int, GridResult]] = None,
    monitor=None,
) -> List[GridResult]:
    """Run every point, optionally against a persistent result store.

    Without a ``store``, ``journal``, ``shutdown`` or ``preset`` this
    is exactly :func:`execute_grid`.  With a store, every executed
    ok/non-degraded result is written back under its
    :func:`point_key`; with ``incremental=True`` the store is
    consulted first and matching points are *served* instead of
    executed (``GridResult.store_hit``), so only points whose program,
    machine, or model version changed do any compile/simulate work.

    The store is touched only on the driver side — before dispatch and
    per completed point — so workers stay store-free; cross-process
    safety comes from the store's own advisory file lock.  Simulation
    is deterministic: a served result is bit-identical to what
    re-executing the point would produce.

    ``journal`` is a :class:`repro.pipeline.journal.JournalWriter`
    (duck-typed to avoid the circular import): each point's terminal
    result is appended the moment it lands, including store-served
    points, so a killed driver can be resumed from the journal alone.

    ``preset`` maps global point index -> already-finished
    :class:`GridResult` (a ``--resume`` replays the journal into this);
    preset points are served verbatim — never re-executed, never
    re-journaled (their records are already in the reopened journal).

    ``shutdown`` (a :class:`GracefulShutdown`) makes the run stop
    dispatching on SIGINT/SIGTERM and drain in-flight work; abandoned
    points are absent from the returned list.

    ``monitor`` (a :class:`repro.obs.runstate.RunMonitor`, duck-typed
    like the journal) is told about every dispatch, finish (including
    store-served points) and wave in grid-global indices, and is
    pumped while the executor waits — driving heartbeat records and
    time-series samples for ``repro status`` / ``watch``.
    """
    points = list(points)
    if (store is None and journal is None and shutdown is None
            and monitor is None and not preset):
        return execute_grid(
            points, jobs=jobs, cache=cache, disk_dir=disk_dir,
            timeout=timeout, retries=retries, backoff=backoff,
            degrade=degrade, collect_telemetry=collect_telemetry,
            locality=locality,
        )
    preset = dict(preset or {})
    results: List[Optional[GridResult]] = [None] * len(points)
    for i, r in preset.items():
        if 0 <= i < len(points):
            results[i] = r
    # One key per point.  Programs repeat across schemes/procs, so the
    # build is memoized on the coordinate knobs that shape it.  A point
    # whose program cannot even be built gets no key — it still goes to
    # the executor, which isolates the failure per point exactly as a
    # store-less run would.  Preset points skip the build entirely.
    keys: List[Optional[str]] = [None] * len(points)
    if store is not None:
        progs: Dict[Tuple, object] = {}
        for i, p in enumerate(points):
            if results[i] is not None:
                continue
            pk = (p.app, p.n, p.time_steps)
            try:
                if pk not in progs:
                    progs[pk] = point_program(p)
                prog = progs[pk]
                keys[i] = (
                    None if prog is None
                    else point_key(p, prog=prog, locality=locality))
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception:
                progs[pk] = None
                keys[i] = None
    to_run: List[int] = []
    for i, (p, k) in enumerate(zip(points, keys)):
        if results[i] is not None:
            continue
        payload = None
        if incremental and store is not None and k is not None:
            payload = store.get(k)
        if payload is not None:
            served = _result_from_payload(p, k, payload)
            results[i] = served
            if journal is not None:
                journal.point_done(i, served)
            if monitor is not None:
                monitor.point_finished(i, served)
        else:
            to_run.append(i)
    if to_run:
        # execute_grid sees a compacted point list; translate its local
        # indices back to grid-global ones for the store/journal.
        index = {j: i for j, i in enumerate(to_run)}

        def _record(j: int, r: GridResult) -> None:
            i = index[j]
            if keys[i] is not None:
                r.store_key = keys[i]
            results[i] = r
            # Degraded results ran the wrong scheme and failures carry
            # no result — neither is evidence worth persisting in the
            # store (the journal records them all so resume does not
            # re-run a point that already failed terminally).
            if (store is not None and keys[i] is not None
                    and r.ok and not r.degraded):
                store.put(keys[i], _result_payload(r),
                          coord=f"sim:{points[i].coord()}"
                                f"/loc={locality}")
            if journal is not None:
                journal.point_done(i, r)
            if monitor is not None:
                monitor.point_finished(i, r)
            faults.maybe_driver_kill()

        def _started(j: int) -> None:
            i = index[j]
            if journal is not None:
                journal.point_started(i, points[i])
            if monitor is not None:
                monitor.point_dispatched(i)

        def _wave(wave: int, pending: int) -> None:
            if journal is not None:
                journal.wave(wave, pending)
            if monitor is not None:
                monitor.wave_started(wave, pending)

        execute_grid(
            [points[i] for i in to_run], jobs=jobs, cache=cache,
            disk_dir=disk_dir, timeout=timeout, retries=retries,
            backoff=backoff, degrade=degrade,
            collect_telemetry=collect_telemetry, locality=locality,
            on_result=_record, on_start=_started, on_wave=_wave,
            shutdown=shutdown, monitor=monitor,
        )
    return [r for r in results if r is not None]


def merged_trace(results: Sequence[GridResult], parent=None):
    """Merge the per-point worker snapshots into one multi-lane trace.

    Each snapshot's root span (the worker's ``batch.point``) is tagged
    with the final hardening verdict for its point — ``attempts``,
    ``retried``, ``degraded``, ``ok`` and the count of faults injected
    during the surviving attempt — so a chaos run reads back out of a
    single trace file.  ``parent`` is an optional pre-frozen driver
    snapshot (defaults to the live collector, which in serial runs
    already holds every point's spans).
    """
    from repro.obs import agg

    trace = agg.MergedTrace(parent=parent)
    for r in results:
        if r.telemetry is None:
            continue
        counters = r.telemetry["metrics"]["counters"]
        faults_fired = sum(
            v for k, v in counters.items() if k.startswith("faults.")
        )
        tags = {
            "attempts": r.attempts,
            "retried": r.attempts > 1,
            "ok": r.ok,
        }
        if r.degraded:
            tags["degraded"] = True
        if faults_fired:
            tags["faults_injected"] = faults_fired
        trace.add_worker(r.telemetry, tags=tags)
    return trace


def summarize(results: Sequence[GridResult]) -> Dict[str, object]:
    """Aggregate counters over a batch; ``fully_cached`` is True when
    no pass executed anywhere (every artifact came from the cache) and
    ``executed`` counts the points that actually ran (everything not
    served from the result store)."""
    runs: Dict[str, int] = {}
    hits: Dict[str, int] = {}
    for r in results:
        for name, c in r.pass_runs.items():
            runs[name] = runs.get(name, 0) + c
        for name, c in r.pass_hits.items():
            hits[name] = hits.get(name, 0) + c
    total_runs = sum(runs.values())
    errors = [r for r in results if not r.ok]
    degraded = [r for r in results if r.degraded]
    retried = [r for r in results if r.attempts > 1]
    served = [r for r in results if r.store_hit]
    return {
        "points": len(results),
        "ok": len(results) - len(errors),
        "errors": len(errors),
        "degraded": len(degraded),
        "retried": len(retried),
        "store_hits": len(served),
        "executed": len(results) - len(served),
        "pass_runs": runs,
        "pass_hits": hits,
        "total_pass_runs": total_runs,
        "fully_cached": bool(results) and total_runs == 0,
    }
