"""Typed compiler passes with declared inputs/outputs and cache keys.

The paper's compiler is a staged pipeline; each stage is a
:class:`Pass` here:

========================  =======================  ====================
pass                      inputs                   output artifact
========================  =======================  ====================
:class:`RestructurePass`  ``program``              ``program.restructured``
:class:`DecomposePass`    ``program.restructured`` ``decomposition``
:class:`LayoutPass`       restructured + decomp    ``layout``
:class:`SpmdCodegenPass`  all of the above         ``spmd``
========================  =======================  ====================

Each pass carries a ``version`` string that participates in its cache
key, so changing a pass implementation invalidates exactly its own (and
downstream) cached artifacts.  Keys are content-addressed: they start
from the fingerprint of the *source* program handed to the session, so
any two structurally identical programs share artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro import obs
from repro.obs.provenance import ProvenanceLog
from repro.codegen.spmd import Scheme, derive_program_layout, generate_spmd
from repro.decomp.folding import grid_shape
from repro.decomp.greedy import decompose_program
from repro.ir.program import Program
from repro.pipeline.fingerprint import make_key

__all__ = [
    "ART_PROGRAM",
    "ART_RESTRUCTURED",
    "ART_DECOMPOSITION",
    "ART_LAYOUT",
    "ART_SPMD",
    "ART_VERIFY",
    "PassContext",
    "Pass",
    "RestructurePass",
    "DecomposePass",
    "LayoutPass",
    "SpmdCodegenPass",
    "VerifyPass",
    "ALL_PASSES",
]

# Artifact kind names (the vocabulary of Pass.inputs / Pass.output).
ART_PROGRAM = "program"
ART_RESTRUCTURED = "program.restructured"
ART_DECOMPOSITION = "decomposition"
ART_LAYOUT = "layout"
ART_SPMD = "spmd"
ART_VERIFY = "verify.report"


@dataclass
class PassContext:
    """Everything one compile point's passes can see.

    ``decomp_token`` distinguishes the provenance of the decomposition
    for downstream keys: ``"auto"`` when the pipeline derives it (then
    ``program_fp + decomp_nprocs + max_dims`` pin it down) or the
    fingerprint of an externally supplied one (e.g. HPF directives).
    """

    program: Program
    program_fp: str
    scheme: Optional[Scheme] = None
    nprocs: int = 1
    decomp_nprocs: int = 1
    max_dims: int = 2
    line_pad_elements: Optional[int] = None
    decomp_token: str = "auto"
    artifacts: Dict[str, Any] = field(default_factory=dict)
    # Decision records accumulated across this point's passes, in pass
    # order; cache hits replay the original run's records (see
    # repro.obs.provenance).  Not part of any cache key.
    provenance: ProvenanceLog = field(default_factory=ProvenanceLog)

    def require(self, kind: str) -> Any:
        try:
            return self.artifacts[kind]
        except KeyError:
            raise KeyError(
                f"pass input artifact {kind!r} not present; ran passes "
                f"out of order?"
            ) from None


class Pass:
    """One pipeline stage.

    Subclasses declare ``name``/``version``/``inputs``/``output`` and
    implement :meth:`run`; :meth:`cache_key` derives the
    content-addressed key (``None`` opts the pass out of caching).
    """

    name: str = "pass"
    version: str = "1"
    inputs: Tuple[str, ...] = ()
    output: str = ""

    def cache_key(self, ctx: PassContext) -> Optional[str]:
        raise NotImplementedError

    def run(self, ctx: PassContext) -> Any:
        raise NotImplementedError


class RestructurePass(Pass):
    """Section 3.2 preprocessing: unimodularly restructure every nest to
    expose the largest outermost parallel band.  Scheme-independent."""

    name = "restructure"
    version = "1"
    inputs = (ART_PROGRAM,)
    output = ART_RESTRUCTURED

    def cache_key(self, ctx: PassContext) -> str:
        return make_key(("pass", self.name, self.version, ctx.program_fp))

    def run(self, ctx: PassContext) -> Program:
        from repro.analysis.unimodular import expose_outer_parallelism

        prog = ctx.program
        nests = []
        with obs.span("compiler.restructure", cat="compiler",
                      program=prog.name):
            for nest in prog.nests:
                with obs.span("unimodular.nest", cat="compiler",
                              nest=nest.name) as sp:
                    res = expose_outer_parallelism(nest, prog.params)
                    sp.set(
                        transformed=res.nest is not nest,
                        outer_parallel=res.outer_parallel_count,
                    )
                    nests.append(res.nest)
        return Program(
            name=prog.name,
            arrays=dict(prog.arrays),
            nests=nests,
            params=dict(prog.params),
            time_steps=prog.time_steps,
        )


class DecomposePass(Pass):
    """Section 3's global computation/data decomposition (greedy
    algorithm).  Keyed on ``decomp_nprocs`` — the folding choice is the
    only processor-count-dependent part — so a sweep that pins the
    decomposition at one processor count shares a single artifact."""

    name = "decompose"
    version = "1"
    inputs = (ART_RESTRUCTURED,)
    output = ART_DECOMPOSITION

    def cache_key(self, ctx: PassContext) -> str:
        return make_key((
            "pass", self.name, self.version, ctx.program_fp,
            str(ctx.decomp_nprocs), str(ctx.max_dims),
        ))

    def run(self, ctx: PassContext):
        rprog = ctx.require(ART_RESTRUCTURED)
        return decompose_program(rprog, ctx.decomp_nprocs,
                                 max_dims=ctx.max_dims)


class LayoutPass(Pass):
    """Section 4's data transformation: derive each distributed array's
    (possibly strip-mined + permuted) layout.  Only meaningful for the
    decomposition schemes; BASE keeps identity layouts."""

    name = "layout"
    version = "1"
    inputs = (ART_RESTRUCTURED, ART_DECOMPOSITION)
    output = ART_LAYOUT

    def cache_key(self, ctx: PassContext) -> str:
        restructure = ctx.scheme is Scheme.COMP_DECOMP_DATA
        return make_key((
            "pass", self.name, self.version, ctx.program_fp,
            str(ctx.nprocs), ctx.decomp_token, str(ctx.decomp_nprocs),
            str(ctx.max_dims), str(restructure),
            str(ctx.line_pad_elements),
        ))

    def run(self, ctx: PassContext):
        rprog = ctx.require(ART_RESTRUCTURED)
        decomp = ctx.require(ART_DECOMPOSITION)
        restructure = ctx.scheme is Scheme.COMP_DECOMP_DATA
        grid = grid_shape(ctx.nprocs, decomp.rank)
        return derive_program_layout(
            rprog, decomp, grid,
            restructure=restructure,
            line_pad_elements=(
                ctx.line_pad_elements if restructure else None
            ),
        )


class SpmdCodegenPass(Pass):
    """SPMD plan generation for one (scheme, nprocs) point."""

    name = "spmd"
    version = "1"
    inputs = (ART_RESTRUCTURED, ART_DECOMPOSITION, ART_LAYOUT)
    output = ART_SPMD

    def cache_key(self, ctx: PassContext) -> str:
        return make_key((
            "pass", self.name, self.version, ctx.program_fp,
            ctx.scheme.value, str(ctx.nprocs), ctx.decomp_token,
            str(ctx.decomp_nprocs), str(ctx.max_dims),
            str(ctx.line_pad_elements),
        ))

    def run(self, ctx: PassContext):
        rprog = ctx.require(ART_RESTRUCTURED)
        if ctx.scheme is Scheme.BASE:
            return generate_spmd(rprog, Scheme.BASE, ctx.nprocs)
        return generate_spmd(
            rprog, ctx.scheme, ctx.nprocs,
            decomp=ctx.require(ART_DECOMPOSITION),
            transformed=ctx.artifacts.get(ART_LAYOUT),
            line_pad_elements=ctx.line_pad_elements,
        )


class VerifyPass(Pass):
    """Optional semantic oracle stage: executes the SPMD plan and the
    untransformed source program in lockstep and raises
    :class:`~repro.errors.VerifyError` on the first diverging element.
    Never cached — when enabled it must actually run, even on a
    fully-cached compile, because *it* is the guardrail."""

    name = "verify"
    version = "1"
    inputs = (ART_PROGRAM, ART_SPMD)
    output = ART_VERIFY

    def cache_key(self, ctx: PassContext) -> Optional[str]:
        return None

    def run(self, ctx: PassContext):
        from repro.verify import verify_spmd

        result = verify_spmd(ctx.require(ART_SPMD), ctx.program)
        return result.raise_on_failure()


ALL_PASSES = (RestructurePass, DecomposePass, LayoutPass, SpmdCodegenPass,
              VerifyPass)
