"""Stable content fingerprints for pipeline artifacts.

The artifact cache is content-addressed: a pass result is keyed by a
SHA-256 digest of everything that determines it — the canonical
serialization of the input :class:`~repro.ir.program.Program`, the
scheme, the processor count, and the pass's own version string.  Two
structurally identical programs built independently (same arrays, same
nests, same affine expressions, same compute bytecode) therefore map to
the same key, while any change to the IR, the configuration, or the
pass implementation produces a different one.

Statement ``compute`` callables are part of program semantics (the
executor applies them), so they participate in the fingerprint via
their code objects — bytecode, constants, names, defaults and closure
values — which is stable across repeated builds of the same source.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional

from repro.decomp.model import Decomposition
from repro.ir.arrays import ArrayRef
from repro.ir.expr import AffineExpr
from repro.ir.loops import LoopNest, Statement
from repro.ir.program import Program

__all__ = [
    "fingerprint_program",
    "fingerprint_decomposition",
    "make_key",
]

_SEP = b"\x1f"  # unit separator: cannot appear in the ascii tokens below


def _feed(h, *tokens: str) -> None:
    for t in tokens:
        h.update(t.encode("utf-8", "backslashreplace"))
        h.update(_SEP)


def _feed_expr(h, e: AffineExpr) -> None:
    _feed(h, "expr", str(e.const))
    for v, c in e.coeffs:
        _feed(h, v, str(c))


def _feed_code(h, code) -> None:
    _feed(h, "code", str(code.co_argcount), str(code.co_flags))
    h.update(code.co_code)
    h.update(_SEP)
    _feed(h, *code.co_names)
    _feed(h, *code.co_varnames)
    for const in code.co_consts:
        if hasattr(const, "co_code"):
            _feed_code(h, const)
        else:
            _feed(h, repr(const))


def _feed_callable(h, fn) -> None:
    if fn is None:
        _feed(h, "compute:none")
        return
    code = getattr(fn, "__code__", None)
    if code is None:
        # Builtins / callables without bytecode: fall back to their
        # qualified name, which is as stable as such objects get.
        _feed(h, "compute:named", getattr(fn, "__qualname__", repr(fn)))
        return
    _feed(h, "compute:code")
    _feed_code(h, code)
    for d in fn.__defaults__ or ():
        _feed(h, repr(d))
    for cell in fn.__closure__ or ():
        _feed(h, repr(cell.cell_contents))


def _feed_ref(h, ref: ArrayRef) -> None:
    _feed(h, "ref", ref.array.name)
    for e in ref.index_exprs:
        _feed_expr(h, e)


def _feed_statement(h, st: Statement) -> None:
    _feed(h, "stmt", st.label, str(st.depth))
    _feed_ref(h, st.write)
    for r in st.reads:
        _feed_ref(h, r)
    _feed_callable(h, st.compute)


def _feed_nest(h, nest: LoopNest) -> None:
    _feed(h, "nest", nest.name, str(nest.frequency))
    _feed(h, *map(str, nest.parallel_levels))
    _feed(h, *map(str, nest.pipeline_levels))
    for loop in nest.loops:
        _feed(h, "loop", loop.var)
        _feed_expr(h, loop.lower)
        _feed_expr(h, loop.upper)
    for st in nest.body:
        _feed_statement(h, st)


def fingerprint_program(prog: Program) -> str:
    """SHA-256 hex digest of a program's canonical content."""
    h = hashlib.sha256()
    _feed(h, "program", prog.name, str(prog.time_steps))
    for k in sorted(prog.params):
        _feed(h, k, str(prog.params[k]))
    for name in sorted(prog.arrays):
        decl = prog.arrays[name]
        _feed(h, "array", decl.name, str(decl.element_size))
        _feed(h, *map(str, decl.dims))
    for nest in prog.nests:
        _feed_nest(h, nest)
    return h.hexdigest()


def fingerprint_decomposition(decomp: Optional[Decomposition]) -> str:
    """SHA-256 hex digest of a decomposition's content (``"auto"``-less
    callers use this when a decomposition is supplied externally, e.g.
    from HPF directives, so it contributes to downstream pass keys)."""
    if decomp is None:
        return "none"
    h = hashlib.sha256()
    _feed(h, "decomp", str(decomp.rank))
    for (nest, stmt) in sorted(decomp.comp):
        cd = decomp.comp[(nest, stmt)]
        _feed(h, "comp", nest, str(stmt))
        for row in cd.matrix:
            _feed(h, *map(str, row))
        _feed(h, *map(str, cd.offset))
    for name in sorted(decomp.data):
        dd = decomp.data[name]
        _feed(h, "data", name, str(int(dd.replicated)))
        for row in dd.matrix:
            _feed(h, *map(str, row))
        _feed(h, *map(str, dd.offset))
    for f in decomp.foldings:
        _feed(h, "fold", f.kind.value, str(f.block))
    _feed(h, "pipelined", *decomp.pipelined_nests)
    _feed(h, "excluded", *decomp.excluded_nests)
    return h.hexdigest()


def make_key(components: Iterable[str]) -> str:
    """Collapse key components (pass name, version, fingerprints,
    configuration scalars as strings) into one cache key."""
    h = hashlib.sha256()
    _feed(h, *components)
    return h.hexdigest()
