"""Crash-consistent run journal: every grid run is resumable.

A long incremental grid run dies for boring reasons — SIGTERM from CI,
a driver crash, a full disk, Ctrl-C.  The journal makes the run's
progress itself durable data, in the same "computation is just data"
spirit as the artifact cache and result store: one append-only JSONL
file per run under ``<store-root>/journal/``, every record fsync'd, so
whatever survives a crash is a complete prefix of the run's history
(modulo one possibly-torn final line, which the reader skips).

Record stream (``type`` field)::

    header     run_id, schema, created, the full grid *spec* (every
               point coordinate plus the result-shaping knobs) and its
               SHA-256 fingerprint — the resume contract
    resume     appended when ``--resume`` reopens the journal
    wave       the executor started wave N with M points pending
    start      point i was dispatched (carries a wall-clock ``t`` so a
               reader can see how long it has been in flight)
    done       point i reached a terminal state; carries the full
               :class:`~repro.pipeline.grid.GridResult` dict (minus
               telemetry), so a resumed run can serve the point
               bit-identically without touching the store
    heartbeat  periodic liveness: driver pid, current wave, progress
               counters, the in-flight point indices, rss.  Appended
               flushed-but-not-fsync'd — heartbeats are monitoring
               data, not resume state, so they never pay the fsync
    end        the run finished ("complete") or was interrupted
               ("interrupted") — a journal with no ``end`` record
               means the driver died mid-run

``repro batch --resume <run-id|latest>`` replays this: it rebuilds the
point list from the header, refuses to run if the recorded spec
fingerprint does not match (the journal describes a *different* grid),
rehydrates every ``done`` point, and executes only the rest —
appending to the same journal so a twice-interrupted run resumes
again.  Summaries are bit-identical to an uninterrupted run because
``done`` records are served verbatim and execution is deterministic
(share a ``--cache-dir`` across the interrupted and resuming processes
to also keep the per-point pass counters identical — see DESIGN.md).

Fault injection: journal appends honour ``disk.enospc`` (the append is
dropped and counted — losing a record only costs a re-execution on
resume, never correctness) and ``disk.torn_write`` (a prefix of the
line lands, unsynced — exercising the reader's torn-tail skip).

Concurrency: a journal file has exactly one writer (the run id embeds
the pid and a serial), so appends need no lock; only the shared
``latest`` pointer update takes the journal directory's file lock.
Lock order: store lock before journal lock, never both ways.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Set, Tuple

from repro import faults, obs
from repro.errors import JournalError
from repro.pipeline.fingerprint import make_key
from repro.pipeline.grid import GridPoint, GridResult, result_from_dict
from repro.util.atomicio import write_atomic
from repro.util.locking import FileLock

__all__ = [
    "JOURNAL_SCHEMA",
    "JournalState",
    "JournalWriter",
    "journal_dir",
    "list_runs",
    "read_records",
    "resolve_run_id",
    "spec_fingerprint",
]

JOURNAL_SCHEMA = 1
_LATEST = "latest"
_LOCK_NAME = ".lock"


def journal_dir(store_root: os.PathLike) -> Path:
    """Where a store's run journals live."""
    return Path(store_root).expanduser() / "journal"


def spec_fingerprint(spec: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON of a grid spec (the point list
    plus every result-shaping knob).  ``--resume`` refuses a journal
    whose recorded fingerprint does not match its recorded spec, and
    the fingerprint pins what the resumed run will execute."""
    text = json.dumps(spec, sort_keys=True, separators=(",", ":"),
                      default=str)
    return make_key(["journal-spec", text])


def _utcnow() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def new_run_id(jdir: Path) -> str:
    """A unique, human-sortable run id: UTC stamp + pid (+ serial)."""
    stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")
    base = f"RUN_{stamp}-{os.getpid()}"
    run_id, serial = base, 0
    while (jdir / f"{run_id}.jsonl").exists():
        serial += 1
        run_id = f"{base}-{serial}"
    return run_id


def list_runs(jdir: os.PathLike) -> List[str]:
    """Run ids with a journal file, newest-stamp first."""
    try:
        names = [p.stem for p in Path(jdir).glob("RUN_*.jsonl")]
    except OSError:
        return []
    return sorted(names, reverse=True)


def resolve_run_id(jdir: os.PathLike, token: str) -> str:
    """Resolve a ``--resume`` argument: a literal run id, or
    ``latest`` (the pointer file, falling back to the newest journal
    on disk).  Raises :class:`JournalError` when nothing matches."""
    jdir = Path(jdir)
    if token != _LATEST:
        if (jdir / f"{token}.jsonl").exists():
            return token
        raise JournalError(f"no journal for run id {token!r}",
                           journal_dir=str(jdir))
    try:
        run_id = (jdir / _LATEST).read_text().strip()
    except OSError:
        run_id = ""
    if run_id and (jdir / f"{run_id}.jsonl").exists():
        return run_id
    runs = list_runs(jdir)
    if runs:
        return runs[0]
    raise JournalError("no journaled runs to resume",
                       journal_dir=str(jdir))


class JournalWriter:
    """Single-writer append side of one run's journal.

    Appends are fsync'd by default (``fsync=False`` trades durability
    for speed).  Append failures are counted (``journal.errors``) and
    swallowed: a lost record re-executes one point on resume, which is
    always safe.
    """

    def __init__(self, jdir: Path, run_id: str, fh: IO[str],
                 fsync: bool = True):
        self.jdir = jdir
        self.run_id = run_id
        self.fsync = fsync
        self.appends = 0
        self.errors = 0
        self._fh: Optional[IO[str]] = fh

    # -- construction ------------------------------------------------------

    @classmethod
    def create(cls, jdir: os.PathLike, spec: Dict[str, Any],
               fsync: bool = True,
               run_id: Optional[str] = None) -> "JournalWriter":
        """Start a fresh journal: write the header record and move the
        ``latest`` pointer (under the journal directory's lock)."""
        jdir = Path(jdir).expanduser()
        jdir.mkdir(parents=True, exist_ok=True)
        if run_id is None:
            run_id = new_run_id(jdir)
        fh = open(jdir / f"{run_id}.jsonl", "a")
        writer = cls(jdir, run_id, fh, fsync=fsync)
        writer._append({
            "type": "header",
            "schema": JOURNAL_SCHEMA,
            "run_id": run_id,
            "created": _utcnow(),
            "pid": os.getpid(),
            "total": len(spec.get("points", [])),
            "fingerprint": spec_fingerprint(spec),
            "spec": spec,
        })
        writer._point_latest()
        obs.event("journal.created", cat="journal", run_id=run_id)
        return writer

    @classmethod
    def reopen(cls, jdir: os.PathLike, run_id: str,
               fsync: bool = True) -> "JournalWriter":
        """Reopen an interrupted run's journal for a resume: appends a
        ``resume`` record and points ``latest`` back at this run."""
        jdir = Path(jdir).expanduser()
        path = jdir / f"{run_id}.jsonl"
        if not path.exists():
            raise JournalError(f"no journal for run id {run_id!r}",
                               journal_dir=str(jdir))
        fh = open(path, "a")
        writer = cls(jdir, run_id, fh, fsync=fsync)
        writer._append({
            "type": "resume",
            "created": _utcnow(),
            "pid": os.getpid(),
        })
        writer._point_latest()
        obs.event("journal.resumed", cat="journal", run_id=run_id)
        return writer

    def _point_latest(self) -> None:
        """Move the ``latest`` pointer to this run (journal-dir lock)."""
        try:
            with FileLock(self.jdir / _LOCK_NAME, timeout=10.0):
                write_atomic(self.jdir / _LATEST, self.run_id + "\n",
                             fsync=self.fsync)
        except Exception:
            self.errors += 1
            obs.inc("journal.errors")

    # -- the append path ---------------------------------------------------

    def _append(self, record: Dict[str, Any],
                durable: bool = True) -> None:
        if self._fh is None:
            return
        try:
            line = json.dumps(record, sort_keys=True, default=str) + "\n"
            if faults.should_fire("disk.enospc"):
                raise OSError("no space left on device (injected fault)")
            if faults.should_fire("disk.torn_write"):
                # A torn append: a prefix lands, nothing is synced.
                self._fh.write(line[: max(len(line) // 2, 1)])
                self._fh.flush()
                self.appends += 1
                obs.inc("journal.appends")
                return
            self._fh.write(line)
            self._fh.flush()
            if self.fsync and durable:
                os.fsync(self._fh.fileno())
                obs.inc("journal.fsyncs")
        except (OSError, ValueError, TypeError):
            self.errors += 1
            obs.inc("journal.errors")
            return
        self.appends += 1
        obs.inc("journal.appends")

    # -- state transitions -------------------------------------------------

    def wave(self, wave: int, pending: int) -> None:
        self._append({"type": "wave", "wave": wave, "pending": pending,
                      "t": round(time.time(), 3)})

    def point_started(self, index: int, point: GridPoint) -> None:
        self._append({"type": "start", "i": index,
                      "label": point.label(),
                      "t": round(time.time(), 3)})

    def point_done(self, index: int, result: GridResult) -> None:
        """The commit record: once this line is durable, a resume will
        serve the point instead of re-executing it."""
        self._append({"type": "done", "i": index,
                      "ok": result.ok,
                      "t": round(time.time(), 3),
                      "result": result.as_dict()})
        obs.inc("journal.points_journaled")

    def heartbeat(self, **fields: Any) -> None:
        """Periodic liveness record.  Flushed but never fsync'd: a lost
        heartbeat costs a stale status display, not resume state."""
        self._append({"type": "heartbeat",
                      "t": round(time.time(), 3), **fields},
                     durable=False)
        obs.inc("journal.heartbeats")

    def end(self, status: str, executed: int) -> None:
        self._append({"type": "end", "status": status,
                      "executed": executed, "created": _utcnow()})

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_records(path: os.PathLike) -> Tuple[List[Dict[str, Any]], int, bool]:
    """Lenient raw record reader: ``(records, bad_lines, torn_tail)``.

    The one parsing path for everything that consumes a journal —
    :meth:`JournalState.load` for resume, the run-state monitor for
    ``repro status``, and the report builder for the timeline.  A torn
    final line (the crash window) is skipped and flagged; a garbled
    interior line loses only itself."""
    records: List[Dict[str, Any]] = []
    bad_lines, torn_tail = 0, False
    try:
        with open(path) as fh:
            lines = fh.readlines()
    except OSError as exc:
        raise JournalError(f"cannot read journal: {exc}",
                           journal=str(path)) from exc
    for lineno, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            if lineno == len(lines) - 1:
                torn_tail = True
                obs.inc("journal.torn_tail")
            else:
                bad_lines += 1
                obs.inc("journal.bad_lines")
    return records, bad_lines, torn_tail


@dataclass
class JournalState:
    """Parsed read side of one run's journal."""

    path: Path
    header: Optional[Dict[str, Any]] = None
    finished: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    started: int = 0
    started_indices: Set[int] = field(default_factory=set)
    waves: int = 0
    resumes: int = 0
    ended: Optional[str] = None
    bad_lines: int = 0
    torn_tail: bool = False
    heartbeats: int = 0
    last_heartbeat: Optional[Dict[str, Any]] = None
    pid: Optional[int] = None

    @classmethod
    def load(cls, path: os.PathLike) -> "JournalState":
        """Parse a journal leniently: a torn final line (the crash
        window) is skipped and counted; a garbled interior line (a torn
        append that later appends ran into) loses at most the records
        on that line — their points simply re-execute."""
        path = Path(path)
        state = cls(path=path)
        records, state.bad_lines, state.torn_tail = read_records(path)
        for record in records:
            state._apply(record)
        if state.header is None:
            raise JournalError(
                "journal has no readable header record",
                journal=str(path))
        return state

    def _apply(self, record: Dict[str, Any]) -> None:
        rtype = record.get("type")
        if rtype == "header" and self.header is None:
            self.header = record
            if record.get("pid") is not None:
                self.pid = record["pid"]
        elif rtype == "resume":
            self.resumes += 1
            if record.get("pid") is not None:
                self.pid = record["pid"]
        elif rtype == "wave":
            self.waves += 1
        elif rtype == "start":
            self.started += 1
            try:
                self.started_indices.add(int(record["i"]))
            except (KeyError, TypeError, ValueError):
                self.bad_lines += 1
                obs.inc("journal.bad_lines")
        elif rtype == "done":
            try:
                self.finished[int(record["i"])] = record["result"]
            except (KeyError, TypeError, ValueError):
                self.bad_lines += 1
                obs.inc("journal.bad_lines")
        elif rtype == "heartbeat":
            self.heartbeats += 1
            self.last_heartbeat = record
            if record.get("pid") is not None:
                self.pid = record["pid"]
        elif rtype == "end":
            self.ended = str(record.get("status"))

    # -- the resume contract -----------------------------------------------

    @property
    def run_id(self) -> str:
        return str(self.header.get("run_id", self.path.stem))

    @property
    def spec(self) -> Dict[str, Any]:
        return dict(self.header.get("spec") or {})

    @property
    def complete(self) -> bool:
        return self.ended == "complete"

    @property
    def in_flight(self) -> List[int]:
        """Points with a ``start`` record but no ``done`` — mid-flight
        when the journal was written (or, for a dead run, when the
        driver died).  Sorted for stable display."""
        return sorted(self.started_indices - set(self.finished))

    def validate(self) -> None:
        """Refuse to resume from a journal whose spec does not hash to
        its recorded fingerprint (damaged header, or hand-edited)."""
        spec = self.header.get("spec")
        recorded = self.header.get("fingerprint")
        if not spec or not recorded:
            raise JournalError(
                "journal header carries no spec/fingerprint",
                journal=str(self.path))
        actual = spec_fingerprint(spec)
        if actual != recorded:
            raise JournalError(
                "spec fingerprint mismatch: journal records "
                f"{recorded[:12]}… but its spec hashes to "
                f"{actual[:12]}… — refusing to resume a damaged or "
                "edited journal",
                journal=str(self.path))

    def points(self) -> List[GridPoint]:
        """The full grid the journaled run was executing."""
        try:
            return [GridPoint(**p) for p in self.spec["points"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(
                f"journal spec does not describe a point list: {exc}",
                journal=str(self.path)) from exc

    def finished_results(self) -> Dict[int, GridResult]:
        """Rehydrated terminal results, index → GridResult, served
        verbatim by a resumed run."""
        out: Dict[int, GridResult] = {}
        for i, d in sorted(self.finished.items()):
            try:
                out[i] = result_from_dict(d)
            except (KeyError, TypeError, ValueError):
                self.bad_lines += 1
                obs.inc("journal.bad_lines")
        return out
