"""The pass manager: runs passes, consults the cache, records telemetry.

Every pass execution or cache hit is visible two ways:

* **obs metrics** (when observability is enabled):
  ``pipeline.pass.<name>.runs`` / ``pipeline.pass.<name>.cache_hits``
  counters plus a ``pass.<name>`` span around each real execution —
  this is what the warm-cache tests assert against;
* **manager counters** (always on, cheap dicts): ``runs``/``hits`` per
  pass, snapshotable, used by the batch driver to report per-point
  cache effectiveness without requiring obs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro import faults, obs
from repro.errors import CompileError, ReproError
from repro.obs import provenance
from repro.pipeline.cache import MISS, ArtifactCache
from repro.pipeline.passes import Pass, PassContext

__all__ = ["PassManager"]


class PassManager:
    """Runs :class:`Pass` objects against an :class:`ArtifactCache`.

    ``cache=None`` disables artifact reuse entirely (every pass always
    executes) — the CLI's ``--no-cache`` path.
    """

    def __init__(self, cache: Optional[ArtifactCache]):
        self.cache = cache
        self.runs: Dict[str, int] = {}
        self.hits: Dict[str, int] = {}

    def execute(self, pass_: Pass, ctx: PassContext) -> Any:
        """Produce the pass's output artifact (cache or run), register
        it in ``ctx.artifacts``, and return it."""
        key = pass_.cache_key(ctx) if self.cache is not None else None
        if key is not None:
            cached = self.cache.get(key)
            if cached is not MISS:
                value, records = provenance.unwrap(cached)
                self.hits[pass_.name] = self.hits.get(pass_.name, 0) + 1
                obs.inc(f"pipeline.pass.{pass_.name}.cache_hits")
                obs.event("pipeline.cache_hit", cat="pipeline",
                          pass_name=pass_.name, key=key[:12])
                if records:
                    ctx.provenance.extend(records)
                ctx.artifacts[pass_.output] = value
                return value
        with obs.span(f"pass.{pass_.name}", cat="pipeline",
                      program=ctx.program.name,
                      scheme=ctx.scheme.value if ctx.scheme else None,
                      nprocs=ctx.nprocs):
            try:
                # The stall fires inside the pass span so the injected
                # delay is booked against this pass in the wall-time
                # ledger (the perf CI job's attribution target).
                faults.maybe_pass_stall(pass_.name)
                faults.check(
                    "pass",
                    pass_name=pass_.name,
                    app=ctx.program.name,
                    scheme=ctx.scheme.value if ctx.scheme else None,
                    nprocs=ctx.nprocs,
                )
                with provenance.capture() as records:
                    value = pass_.run(ctx)
            except ReproError:
                raise  # already typed, context attached at the source
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                raise CompileError(
                    f"pass {pass_.name!r} failed: "
                    f"{type(exc).__name__}: {exc}",
                    pass_name=pass_.name,
                    app=ctx.program.name,
                    scheme=ctx.scheme.value if ctx.scheme else None,
                    nprocs=ctx.nprocs,
                ) from exc
        ctx.provenance.extend(records)
        self.runs[pass_.name] = self.runs.get(pass_.name, 0) + 1
        obs.inc(f"pipeline.pass.{pass_.name}.runs")
        if key is not None:
            # Records travel with the artifact so cache hits (memory or
            # disk) replay the exact decision log of the original run.
            # Bare values are stored when no decision fired, keeping
            # cache contents for decision-free passes unchanged.
            if records:
                self.cache.put(key, provenance.ArtifactEnvelope(value, list(records)))
            else:
                self.cache.put(key, value)
        ctx.artifacts[pass_.output] = value
        return value

    def seed(self, key: Optional[str], value: Any) -> None:
        """Install an artifact under an explicit key (e.g. marking a
        restructured program as its own fixed point)."""
        if key is not None and self.cache is not None:
            self.cache.put(key, value)

    def counts(self) -> Dict[str, Dict[str, int]]:
        """Snapshot of per-pass execution/hit counts."""
        return {"runs": dict(self.runs), "hits": dict(self.hits)}

    def total_runs(self) -> int:
        return sum(self.runs.values())
