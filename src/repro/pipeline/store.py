"""Persistent result store: simulation results as content-addressed data.

The compiler side of the repo already treats computation as data —
pass artifacts are keyed by SHA-256 content fingerprints and replayed
from the cache.  This module extends the same model to *results*: a
:class:`ResultStore` persists one JSON document per executed grid
point, keyed by a SHA-256 digest over everything that determines the
outcome —

* the **program fingerprint** (IR content, including statement
  bytecode — editing an app changes it);
* the **scheme** and **processor count**;
* the **machine fingerprint** (:meth:`repro.machine.dash.DashConfig.fingerprint`
  — full cache/L2/NUMA/cost geometry);
* the **model version** (:data:`MODEL_VERSION`, bumped whenever the
  simulator's semantics change);
* a ``kind`` namespace (``sim`` results, ``verify`` verdicts, ``bench``
  detail blocks) plus any extra flags that shape the payload.

A warm lookup therefore means "nothing that could change this result
has changed" — the grid engine (:mod:`repro.pipeline.grid`) serves the
stored result instead of re-executing the point, which is what makes
``repro batch --incremental`` re-run only the rows of a grid whose
program, machine, or model actually changed.

Invalidation is tracked per *coordinate*: every entry records the
human-readable grid coordinate it answers (``app/scheme/P4/n=16``…),
and a small ``coords.json`` index maps each coordinate to its current
key.  Storing a new key for a known coordinate deletes the stale entry
and counts an **invalidation** — the observable difference between "new
point" and "this app changed".

Durability mirrors :mod:`repro.pipeline.cache`, hardened further:

* every write goes through :func:`repro.util.atomicio.write_atomic`
  (temp file + fsync + rename + directory fsync), so a reader only
  ever sees a complete entry or none;
* every entry carries a SHA-256 **payload checksum**; reads verify it,
  and a corrupt entry (torn write, bit rot, key mismatch) is moved to
  the store's ``quarantine/`` directory — capped like the disk cache's
  :data:`~repro.pipeline.cache.QUARANTINE_KEEP` — counted
  (``store.quarantined``) and reported as a miss, never raised;
* mutations (``put``, eviction) run under an advisory cross-process
  :class:`~repro.util.locking.FileLock` on ``<root>/.lock`` and reload
  the coordinate index from disk inside the critical section, so two
  drivers sharing one ``--store-dir`` cannot lose index updates or
  race the eviction scan.  Reads stay lock-free (atomic writes plus
  checksums make them safe).  A lock-acquisition timeout degrades the
  write (counted ``store.lock_timeouts``) instead of failing the run.

``repro fsck`` (:mod:`repro.pipeline.integrity`) audits all of the
above offline and repairs/quarantines what it finds.  Counters flow
both into :class:`StoreStats` (always on) and ``repro.obs``
(``store.*``).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Optional

from repro import obs
from repro.errors import LockError
from repro.pipeline.fingerprint import make_key
from repro.util.atomicio import write_atomic
from repro.util.locking import FileLock

__all__ = [
    "MODEL_VERSION",
    "QUARANTINE_KEEP",
    "SCHEMA_VERSION",
    "ResultStore",
    "StoreStats",
    "canonical_payload",
    "payload_checksum",
    "resolve_store_dir",
    "result_key",
]

SCHEMA_VERSION = 1

# Version of the simulated-machine model the stored results were
# produced by.  Bump on any semantic change to the simulator (miss
# classification, cost model, trace generation): every stored result is
# then unreachable and the next run repopulates the store.
MODEL_VERSION = "sim-v1"

# Entry-count cap (oldest evicted first), in the spirit of
# repro.pipeline.cache.QUARANTINE_KEEP: bound the on-disk footprint,
# keep the most recently useful evidence.
DEFAULT_KEEP = 4096

# Quarantined (corrupt) entries kept for post-mortem, newest first —
# same policy and cap as the disk cache's quarantine.
QUARANTINE_KEEP = 32

ENV_DIR = "REPRO_STORE_DIR"
_INDEX_NAME = "coords.json"
_LOCK_NAME = ".lock"
DEFAULT_LOCK_TIMEOUT = 30.0


def canonical_payload(payload: Any) -> str:
    """The canonical JSON text a payload checksum is computed over.

    Idempotent across a JSON round trip (``dumps(loads(dumps(x)))`` is
    the same text), so a checksum written at ``put`` time can be
    verified against the parsed-back payload at read/fsck time.
    """
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":"), default=str)


def payload_checksum(payload: Any) -> str:
    """SHA-256 hex digest of the canonical payload text."""
    return hashlib.sha256(canonical_payload(payload).encode()).hexdigest()


def resolve_store_dir(explicit: Optional[str] = None) -> Path:
    """The result-store directory: an explicit path, ``$REPRO_STORE_DIR``,
    or the default ``~/.cache/repro/results``."""
    if explicit:
        return Path(explicit).expanduser()
    env_dir = os.environ.get(ENV_DIR)
    if env_dir:
        return Path(env_dir).expanduser()
    return Path("~/.cache/repro/results").expanduser()


def result_key(
    program_fp: str,
    scheme: str,
    nprocs: int,
    machine_fp: str,
    model_version: str = MODEL_VERSION,
    kind: str = "sim",
    **extras: Any,
) -> str:
    """The SHA-256 store key of one grid point's result."""
    parts = [
        "result", kind, model_version, program_fp, scheme, str(nprocs),
        machine_fp,
    ]
    for name in sorted(extras):
        parts.append(f"{name}={extras[name]}")
    return make_key(parts)


@dataclass
class StoreStats:
    """Counters for one store instance (always on, like CacheStats)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0
    evictions: int = 0
    corrupt: int = 0
    quarantined: int = 0
    lock_timeouts: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
            "lock_timeouts": self.lock_timeouts,
            "errors": self.errors,
        }


class ResultStore:
    """Atomic on-disk JSON store of grid-point results.

    The store is driver-side only (workers never touch it), but two
    *drivers* may share one directory: mutations take the store's
    cross-process file lock and re-read the coordinate index inside
    the critical section, so concurrent drivers interleave safely.
    """

    def __init__(self, root: os.PathLike, keep: int = DEFAULT_KEEP,
                 lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
                 fsync: bool = True):
        if keep <= 0:
            raise ValueError("store keep cap must be positive")
        self.root = Path(root).expanduser()
        self.keep = keep
        self.lock_timeout = lock_timeout
        self.fsync = fsync
        self.stats = StoreStats()
        self._index: Optional[Dict[str, str]] = None

    # -- paths -------------------------------------------------------------

    @property
    def _dir(self) -> Path:
        return self.root / f"v{SCHEMA_VERSION}"

    def _path(self, key: str) -> Path:
        return self._dir / key[:2] / f"{key}.json"

    def _index_path(self) -> Path:
        return self._dir / _INDEX_NAME

    def _quarantine_dir(self) -> Path:
        return self._dir / "quarantine"

    def _lock(self) -> FileLock:
        return FileLock(self.root / _LOCK_NAME, timeout=self.lock_timeout)

    # -- coordinate index --------------------------------------------------

    def _load_index(self, refresh: bool = False) -> Dict[str, str]:
        """The coordinate index.  ``refresh`` re-reads it from disk —
        mandatory inside locked sections, where another process may
        have written a newer version since we last looked."""
        if self._index is not None and not refresh:
            return self._index
        try:
            with open(self._index_path()) as fh:
                data = json.load(fh)
            self._index = {str(k): str(v) for k, v in data.items()}
        except (OSError, ValueError):
            self._index = {}
        return self._index

    def _save_index(self) -> None:
        if self._index is None:
            return
        try:
            write_atomic(
                self._index_path(),
                json.dumps(self._index, indent=0, sort_keys=True),
                fsync=self.fsync,
            )
        except OSError:
            self.stats.errors += 1
            obs.inc("store.errors")

    # -- lookup ------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` on a miss.

        A corrupt entry (truncated, garbage, checksum or key mismatch)
        is *quarantined* — moved into the store's ``quarantine/``
        directory for post-mortem, never silently deleted — counted,
        and reported as a miss.  A read never raises.
        """
        path = self._path(key)
        try:
            with open(path) as fh:
                entry = json.load(fh)
            if entry.get("key") != key:
                raise ValueError("key mismatch")
            payload = entry["payload"]
            recorded = entry.get("sha256")
            if recorded is not None \
                    and recorded != payload_checksum(payload):
                raise ValueError("payload checksum mismatch")
        except OSError:
            self.stats.misses += 1
            obs.inc("store.misses")
            return None
        except Exception as exc:
            self.stats.corrupt += 1
            self.stats.misses += 1
            obs.inc("store.corrupt")
            obs.inc("store.misses")
            obs.event("store.corrupt", cat="store", key=key,
                      error=str(exc))
            self.quarantine(path)
            return None
        self.stats.hits += 1
        obs.inc("store.hits")
        return payload

    def quarantine(self, path: Path) -> None:
        """Move a corrupt entry into ``quarantine/`` (best effort — on
        failure the file is deleted; on *that* failing, ignored), and
        prune the quarantine to the newest :data:`QUARANTINE_KEEP`."""
        try:
            qdir = self._quarantine_dir()
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                return
        self.stats.quarantined += 1
        obs.inc("store.quarantined")
        self._prune_quarantine()

    def _prune_quarantine(self) -> None:
        try:
            entries = sorted(
                (p for p in self._quarantine_dir().iterdir()
                 if p.is_file()),
                key=lambda p: p.stat().st_mtime,
                reverse=True,
            )
        except OSError:
            return
        for stale in entries[QUARANTINE_KEEP:]:
            try:
                os.unlink(stale)
            except OSError:
                continue
            obs.inc("store.quarantine.evicted")

    def put(self, key: str, payload: Dict[str, Any],
            coord: Optional[str] = None) -> None:
        """Store ``payload`` under ``key`` (atomic, fsync'd, checksummed;
        failures counted, never raised).

        ``coord`` is the grid coordinate this entry answers; when the
        coordinate previously mapped to a *different* key, the stale
        entry is deleted and counted as an invalidation.  The whole
        mutation runs under the store's cross-process lock, with the
        index re-read inside the critical section, so concurrent
        drivers cannot lose each other's updates.
        """
        try:
            lock = self._lock().acquire()
        except LockError:
            self.stats.lock_timeouts += 1
            self.stats.errors += 1
            obs.inc("store.lock_timeouts")
            obs.event("store.error", cat="store", op="put", key=key,
                      error="LockError")
            return
        try:
            self._put_locked(key, payload, coord)
        finally:
            lock.release()

    def _put_locked(self, key: str, payload: Dict[str, Any],
                    coord: Optional[str]) -> None:
        path = self._path(key)
        entry = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "coord": coord,
            "sha256": payload_checksum(payload),
            "payload": payload,
        }
        try:
            write_atomic(
                path, json.dumps(entry, sort_keys=True, default=str),
                fsync=self.fsync,
            )
        except Exception as exc:
            self.stats.errors += 1
            obs.inc("store.errors")
            obs.event("store.error", cat="store", op="put", key=key,
                      error=type(exc).__name__)
            return
        self.stats.stores += 1
        obs.inc("store.stores")
        if coord is not None:
            index = self._load_index(refresh=True)
            stale = index.get(coord)
            if stale is not None and stale != key:
                self.stats.invalidations += 1
                obs.inc("store.invalidations")
                obs.event("store.invalidated", cat="store", coord=coord,
                          old=stale, new=key)
                try:
                    os.unlink(self._path(stale))
                except OSError:
                    pass
            if stale != key:
                index[coord] = key
                self._save_index()
        self._evict()
        obs.gauge("store.bytes").set(self.bytes())

    # -- maintenance -------------------------------------------------------

    def _entries(self) -> Iterable[Path]:
        try:
            return [p for p in self._dir.glob("??/*.json") if p.is_file()]
        except OSError:
            return []

    def _evict(self) -> None:
        """Drop oldest entries (by mtime) beyond the ``keep`` cap.
        Caller holds the store lock (this mutates the index)."""
        entries = list(self._entries())
        if len(entries) <= self.keep:
            return
        entries.sort(key=lambda p: p.stat().st_mtime, reverse=True)
        index = self._load_index()
        by_key = {v: k for k, v in index.items()}
        changed = False
        for stale in entries[self.keep:]:
            try:
                os.unlink(stale)
            except OSError:
                continue
            self.stats.evictions += 1
            obs.inc("store.evictions")
            coord = by_key.get(stale.stem)
            if coord is not None:
                index.pop(coord, None)
                changed = True
        if changed:
            self._save_index()

    def __len__(self) -> int:
        return len(list(self._entries()))

    def bytes(self) -> int:
        """Total on-disk size of stored entries (excluding the index)."""
        total = 0
        for p in self._entries():
            try:
                total += p.stat().st_size
            except OSError:
                continue
        return total

    def stats_dict(self) -> Dict[str, int]:
        """JSON-ready statistics including the current footprint."""
        out = self.stats.as_dict()
        out["entries"] = len(self)
        out["bytes"] = self.bytes()
        return out
