"""Persistent result store: simulation results as content-addressed data.

The compiler side of the repo already treats computation as data —
pass artifacts are keyed by SHA-256 content fingerprints and replayed
from the cache.  This module extends the same model to *results*: a
:class:`ResultStore` persists one JSON document per executed grid
point, keyed by a SHA-256 digest over everything that determines the
outcome —

* the **program fingerprint** (IR content, including statement
  bytecode — editing an app changes it);
* the **scheme** and **processor count**;
* the **machine fingerprint** (:meth:`repro.machine.dash.DashConfig.fingerprint`
  — full cache/L2/NUMA/cost geometry);
* the **model version** (:data:`MODEL_VERSION`, bumped whenever the
  simulator's semantics change);
* a ``kind`` namespace (``sim`` results, ``verify`` verdicts, ``bench``
  detail blocks) plus any extra flags that shape the payload.

A warm lookup therefore means "nothing that could change this result
has changed" — the grid engine (:mod:`repro.pipeline.grid`) serves the
stored result instead of re-executing the point, which is what makes
``repro batch --incremental`` re-run only the rows of a grid whose
program, machine, or model actually changed.

Invalidation is tracked per *coordinate*: every entry records the
human-readable grid coordinate it answers (``app/scheme/P4/n=16``…),
and a small ``coords.json`` index maps each coordinate to its current
key.  Storing a new key for a known coordinate deletes the stale entry
and counts an **invalidation** — the observable difference between "new
point" and "this app changed".

Durability mirrors :mod:`repro.pipeline.cache`: atomic writes (temp
file + rename), corrupt entries treated as misses and deleted, never an
exception out of a read, and an entry-count cap with oldest-first
eviction (like the quarantine cap).  Counters flow both into
:class:`StoreStats` (always on) and ``repro.obs`` (``store.*``).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Optional

from repro import obs
from repro.pipeline.fingerprint import make_key

__all__ = [
    "MODEL_VERSION",
    "SCHEMA_VERSION",
    "ResultStore",
    "StoreStats",
    "resolve_store_dir",
    "result_key",
]

SCHEMA_VERSION = 1

# Version of the simulated-machine model the stored results were
# produced by.  Bump on any semantic change to the simulator (miss
# classification, cost model, trace generation): every stored result is
# then unreachable and the next run repopulates the store.
MODEL_VERSION = "sim-v1"

# Entry-count cap (oldest evicted first), in the spirit of
# repro.pipeline.cache.QUARANTINE_KEEP: bound the on-disk footprint,
# keep the most recently useful evidence.
DEFAULT_KEEP = 4096

ENV_DIR = "REPRO_STORE_DIR"
_INDEX_NAME = "coords.json"


def resolve_store_dir(explicit: Optional[str] = None) -> Path:
    """The result-store directory: an explicit path, ``$REPRO_STORE_DIR``,
    or the default ``~/.cache/repro/results``."""
    if explicit:
        return Path(explicit).expanduser()
    env_dir = os.environ.get(ENV_DIR)
    if env_dir:
        return Path(env_dir).expanduser()
    return Path("~/.cache/repro/results").expanduser()


def result_key(
    program_fp: str,
    scheme: str,
    nprocs: int,
    machine_fp: str,
    model_version: str = MODEL_VERSION,
    kind: str = "sim",
    **extras: Any,
) -> str:
    """The SHA-256 store key of one grid point's result."""
    parts = [
        "result", kind, model_version, program_fp, scheme, str(nprocs),
        machine_fp,
    ]
    for name in sorted(extras):
        parts.append(f"{name}={extras[name]}")
    return make_key(parts)


@dataclass
class StoreStats:
    """Counters for one store instance (always on, like CacheStats)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0
    evictions: int = 0
    corrupt: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "errors": self.errors,
        }


class ResultStore:
    """Atomic on-disk JSON store of grid-point results.

    The store is driver-side only: the grid engine consults it before
    dispatching points and writes results back after execution, so
    worker processes never touch it and no cross-process locking is
    needed.
    """

    def __init__(self, root: os.PathLike, keep: int = DEFAULT_KEEP):
        if keep <= 0:
            raise ValueError("store keep cap must be positive")
        self.root = Path(root).expanduser()
        self.keep = keep
        self.stats = StoreStats()
        self._index: Optional[Dict[str, str]] = None

    # -- paths -------------------------------------------------------------

    @property
    def _dir(self) -> Path:
        return self.root / f"v{SCHEMA_VERSION}"

    def _path(self, key: str) -> Path:
        return self._dir / key[:2] / f"{key}.json"

    def _index_path(self) -> Path:
        return self._dir / _INDEX_NAME

    # -- coordinate index --------------------------------------------------

    def _load_index(self) -> Dict[str, str]:
        if self._index is not None:
            return self._index
        try:
            with open(self._index_path()) as fh:
                data = json.load(fh)
            self._index = {str(k): str(v) for k, v in data.items()}
        except (OSError, ValueError):
            self._index = {}
        return self._index

    def _save_index(self) -> None:
        if self._index is None:
            return
        try:
            self._dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(self._dir), suffix=".tmp")
            with os.fdopen(fd, "w") as fh:
                json.dump(self._index, fh, indent=0, sort_keys=True)
            os.replace(tmp, self._index_path())
        except OSError:
            self.stats.errors += 1
            obs.inc("store.errors")

    # -- lookup ------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` on a miss.

        A corrupt entry (truncated, garbage) is deleted, counted, and
        reported as a miss — a read never raises.
        """
        path = self._path(key)
        try:
            with open(path) as fh:
                entry = json.load(fh)
            if entry.get("key") != key:
                raise ValueError("key mismatch")
            payload = entry["payload"]
        except OSError:
            self.stats.misses += 1
            obs.inc("store.misses")
            return None
        except Exception:
            self.stats.corrupt += 1
            self.stats.misses += 1
            obs.inc("store.corrupt")
            obs.inc("store.misses")
            obs.event("store.corrupt", cat="store", key=key)
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        obs.inc("store.hits")
        return payload

    def put(self, key: str, payload: Dict[str, Any],
            coord: Optional[str] = None) -> None:
        """Store ``payload`` under ``key`` (atomic; failures counted,
        never raised).

        ``coord`` is the grid coordinate this entry answers; when the
        coordinate previously mapped to a *different* key, the stale
        entry is deleted and counted as an invalidation.
        """
        path = self._path(key)
        entry = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "coord": coord,
            "payload": payload,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(entry, fh, sort_keys=True, default=str)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception as exc:
            self.stats.errors += 1
            obs.inc("store.errors")
            obs.event("store.error", cat="store", op="put", key=key,
                      error=type(exc).__name__)
            return
        self.stats.stores += 1
        obs.inc("store.stores")
        if coord is not None:
            index = self._load_index()
            stale = index.get(coord)
            if stale is not None and stale != key:
                self.stats.invalidations += 1
                obs.inc("store.invalidations")
                obs.event("store.invalidated", cat="store", coord=coord,
                          old=stale, new=key)
                try:
                    os.unlink(self._path(stale))
                except OSError:
                    pass
            if stale != key:
                index[coord] = key
                self._save_index()
        self._evict()
        obs.gauge("store.bytes").set(self.bytes())

    # -- maintenance -------------------------------------------------------

    def _entries(self) -> Iterable[Path]:
        try:
            return [p for p in self._dir.glob("??/*.json") if p.is_file()]
        except OSError:
            return []

    def _evict(self) -> None:
        """Drop oldest entries (by mtime) beyond the ``keep`` cap."""
        entries = list(self._entries())
        if len(entries) <= self.keep:
            return
        entries.sort(key=lambda p: p.stat().st_mtime, reverse=True)
        index = self._load_index()
        by_key = {v: k for k, v in index.items()}
        changed = False
        for stale in entries[self.keep:]:
            try:
                os.unlink(stale)
            except OSError:
                continue
            self.stats.evictions += 1
            obs.inc("store.evictions")
            coord = by_key.get(stale.stem)
            if coord is not None:
                index.pop(coord, None)
                changed = True
        if changed:
            self._save_index()

    def __len__(self) -> int:
        return len(list(self._entries()))

    def bytes(self) -> int:
        """Total on-disk size of stored entries (excluding the index)."""
        total = 0
        for p in self._entries():
            try:
                total += p.stat().st_size
            except OSError:
                continue
        return total

    def stats_dict(self) -> Dict[str, int]:
        """JSON-ready statistics including the current footprint."""
        out = self.stats.as_dict()
        out["entries"] = len(self)
        out["bytes"] = self.bytes()
        return out
