"""Offline result-store audit — the engine behind ``repro fsck``.

The store's read path already defends itself (checksums, quarantine on
corruption), but only for entries it happens to read.  ``fsck`` walks
*every* entry and the coordinate index and classifies each into:

* **ok** — parses, key matches its filename and shard, checksum
  verifies;
* **repairable** — a legacy entry with no recorded checksum: rewritten
  in place with one (``repaired``);
* **corrupt** — unparseable JSON, a key that disagrees with the
  filename/shard, a missing payload, or a checksum mismatch: moved to
  ``quarantine/`` via the store's normal quarantine path
  (``quarantined``), never silently deleted;
* **index damage** — a coordinate pointing at a key with no entry file
  (dropped), an entry whose coordinate is missing from the index
  (added), or two entries claiming one coordinate (newest wins).

The whole audit runs under the store's cross-process file lock — it
mutates entries and the index, so a concurrently running driver must
not interleave.  A lock timeout raises
:class:`repro.errors.IntegrityError` rather than auditing a moving
target.

``repro fsck --strict`` exits nonzero when the report is not
:attr:`~FsckReport.clean` — any quarantine, repair, or index fix is
damage worth failing CI over.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

from repro import obs
from repro.errors import IntegrityError, LockError
from repro.pipeline.store import (
    ResultStore,
    SCHEMA_VERSION,
    payload_checksum,
)

__all__ = ["FsckReport", "fsck_store"]


@dataclass
class FsckReport:
    """What one fsck pass found (and, unless ``repair=False``, fixed)."""

    scanned: int = 0
    ok: int = 0
    repaired: int = 0
    quarantined: int = 0
    unparseable: int = 0
    key_mismatch: int = 0
    checksum_mismatch: int = 0
    missing_payload: int = 0
    missing_checksum: int = 0
    index_dropped: int = 0
    index_added: int = 0
    index_duplicates: int = 0
    problems: List[str] = field(default_factory=list)

    @property
    def damage(self) -> int:
        """Count of findings that mean the store was not clean."""
        return (self.quarantined + self.repaired + self.missing_checksum
                + self.index_dropped + self.index_added
                + self.index_duplicates)

    @property
    def clean(self) -> bool:
        return self.damage == 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "scanned": self.scanned,
            "ok": self.ok,
            "repaired": self.repaired,
            "quarantined": self.quarantined,
            "unparseable": self.unparseable,
            "key_mismatch": self.key_mismatch,
            "checksum_mismatch": self.checksum_mismatch,
            "missing_payload": self.missing_payload,
            "missing_checksum": self.missing_checksum,
            "index_dropped": self.index_dropped,
            "index_added": self.index_added,
            "index_duplicates": self.index_duplicates,
            "clean": self.clean,
            "problems": list(self.problems),
        }


def fsck_store(store: ResultStore, repair: bool = True) -> FsckReport:
    """Audit every entry and the coordinate index of ``store``.

    With ``repair=True`` (the default) damage is fixed as it is found:
    corrupt entries are quarantined, checksum-less legacy entries are
    rewritten with one, and the index is reconciled with the entries
    actually on disk.  With ``repair=False`` the pass only reports.

    Runs under the store's cross-process lock; raises
    :class:`IntegrityError` if the lock cannot be acquired.
    """
    report = FsckReport()
    try:
        lock = store._lock().acquire()
    except LockError as exc:
        raise IntegrityError(
            "store is locked by another process; fsck refuses to audit "
            "a moving target", root=str(store.root)) from exc
    try:
        coords = _scan_entries(store, report, repair)
        _audit_index(store, coords, report, repair)
    finally:
        lock.release()
    obs.inc("fsck.runs")
    obs.inc("fsck.scanned", report.scanned)
    obs.inc("fsck.repaired", report.repaired)
    obs.inc("fsck.quarantined", report.quarantined)
    obs.inc("fsck.index_fixed",
            report.index_dropped + report.index_added
            + report.index_duplicates)
    obs.event("fsck.done", cat="store", root=str(store.root),
              **{k: v for k, v in report.as_dict().items()
                 if k != "problems"})
    return report


def _scan_entries(store: ResultStore, report: FsckReport,
                  repair: bool) -> Dict[str, List[Path]]:
    """Walk ``v<schema>/??/*.json``; returns coord -> entry paths that
    survived (for the index audit)."""
    coords: Dict[str, List[Path]] = {}
    for path in sorted(store._entries()):
        report.scanned += 1

        def _bad(counter: str, reason: str) -> None:
            setattr(report, counter, getattr(report, counter) + 1)
            report.problems.append(f"{path.name}: {reason}")
            if repair:
                store.quarantine(path)
                report.quarantined += 1

        try:
            with open(path) as fh:
                entry = json.load(fh)
            if not isinstance(entry, dict):
                raise ValueError("not an object")
        except (OSError, ValueError):
            _bad("unparseable", "unparseable entry")
            continue
        key = entry.get("key")
        if key != path.stem or path.parent.name != path.stem[:2]:
            _bad("key_mismatch",
                 f"recorded key {str(key)[:12]}… does not match "
                 "filename/shard")
            continue
        payload = entry.get("payload")
        if not isinstance(payload, dict):
            _bad("missing_payload", "entry has no payload object")
            continue
        recorded = entry.get("sha256")
        actual = payload_checksum(payload)
        if recorded is None:
            report.missing_checksum += 1
            report.problems.append(
                f"{path.name}: legacy entry without checksum")
            if repair:
                entry["sha256"] = actual
                entry.setdefault("schema", SCHEMA_VERSION)
                from repro.util.atomicio import write_atomic
                write_atomic(
                    path,
                    json.dumps(entry, sort_keys=True, default=str),
                    fsync=store.fsync,
                )
                report.repaired += 1
        elif recorded != actual:
            _bad("checksum_mismatch", "payload checksum mismatch")
            continue
        report.ok += 1
        coord = entry.get("coord")
        if isinstance(coord, str):
            coords.setdefault(coord, []).append(path)
    return coords


def _audit_index(store: ResultStore, coords: Dict[str, List[Path]],
                 report: FsckReport, repair: bool) -> None:
    """Reconcile ``coords.json`` with the entries actually on disk."""
    index = store._load_index(refresh=True)
    fixed = dict(index)
    # Dangling: coordinate points at a key with no (surviving) entry.
    alive = {p.stem for paths in coords.values() for p in paths}
    for coord, key in index.items():
        if key not in alive:
            report.index_dropped += 1
            report.problems.append(
                f"index: {coord} -> {key[:12]}… has no entry")
            fixed.pop(coord, None)
    # Duplicates: several entries claim one coordinate — newest wins
    # (matching put()'s invalidation policy); missing: an entry's
    # coordinate the index never learned.
    for coord, paths in coords.items():
        if len(paths) > 1:
            report.index_duplicates += 1
            report.problems.append(
                f"index: {len(paths)} entries claim {coord}")
            paths = sorted(paths, key=lambda p: p.stat().st_mtime)
        winner = paths[-1].stem
        if fixed.get(coord) != winner:
            if coord not in index:
                report.index_added += 1
                report.problems.append(
                    f"index: {coord} missing (-> {winner[:12]}…)")
            fixed[coord] = winner
    if repair and fixed != index:
        store._index = fixed
        store._save_index()
