"""Parallel batch driver: fan a compile+simulate grid across processes.

A batch is a list of :class:`BatchPoint` — one ``(app, scheme, nprocs)``
coordinate plus problem-size/machine knobs.  :func:`run_batch` executes
every point with per-point error isolation (a failing point yields a
``BatchResult`` carrying its traceback; the rest of the grid is
unaffected) either serially in-process (``jobs <= 1``, one shared
session so artifacts are reused across points) or across a
``ProcessPoolExecutor``.  Workers keep one session per process; give
the batch a disk cache directory to share artifacts *between*
processes and *across* runs — a warm second run then reports
``fully_cached`` (zero pass executions), which CI asserts.

Simulation is deterministic, so the parallel path produces results
identical to the serial one point-for-point.
"""

from __future__ import annotations

import itertools
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.codegen.spmd import parse_scheme, scheme_short_name

__all__ = [
    "BatchPoint",
    "BatchResult",
    "make_grid",
    "run_batch",
    "run_point",
    "summarize",
]


@dataclass(frozen=True)
class BatchPoint:
    """One grid coordinate.

    ``scheme`` accepts any spelling from
    :data:`repro.codegen.spmd.SCHEME_ALIASES` and is normalized to the
    canonical short name.  ``decomp_procs`` optionally pins the
    processor count the decomposition's folding is chosen for (sweeps
    pass their maximum so all points share one decomposition, matching
    the serial ``speedup_curve`` convention).
    """

    app: str
    scheme: str
    nprocs: int
    n: Optional[int] = None
    time_steps: Optional[int] = None
    scale: int = 16
    decomp_procs: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(
            self, "scheme", scheme_short_name(parse_scheme(self.scheme))
        )

    def label(self) -> str:
        size = f" n={self.n}" if self.n is not None else ""
        return f"{self.app}/{self.scheme} P={self.nprocs}{size}"


@dataclass
class BatchResult:
    """Outcome of one point (simulation scalars + cache effectiveness)."""

    point: BatchPoint
    ok: bool
    total_time: float = 0.0
    n_accesses: int = 0
    miss_breakdown: Dict[str, int] = field(default_factory=dict)
    pass_runs: Dict[str, int] = field(default_factory=dict)
    pass_hits: Dict[str, int] = field(default_factory=dict)
    elapsed: float = 0.0
    error: str = ""

    def as_dict(self) -> Dict[str, object]:
        out = asdict(self)
        out["point"] = asdict(self.point)
        return out


def make_grid(
    apps: Sequence[str],
    schemes: Sequence[str],
    procs: Sequence[int],
    n: Optional[int] = None,
    time_steps: Optional[int] = None,
    scale: int = 16,
    pin_decomp: bool = False,
) -> List[BatchPoint]:
    """The cartesian ``apps x schemes x procs`` grid.  ``pin_decomp``
    fixes every point's decomposition at ``max(procs)``."""
    dp = max(procs) if pin_decomp and procs else None
    return [
        BatchPoint(app=a, scheme=s, nprocs=p, n=n, time_steps=time_steps,
                   scale=scale, decomp_procs=dp)
        for a, s, p in itertools.product(apps, schemes, procs)
    ]


def _point_session(point: BatchPoint, session):
    """Compile + simulate one point on the session (may raise)."""
    from repro.apps import build_app
    from repro.codegen.spmd import parse_scheme
    from repro.machine import scaled_dash
    from repro.machine.simulate import simulate

    kwargs = {}
    if point.n is not None:
        kwargs["n"] = point.n
    if point.time_steps is not None:
        kwargs["time_steps"] = point.time_steps
    prog = build_app(point.app, **kwargs)
    machine = scaled_dash(
        point.nprocs, scale=point.scale,
        word_bytes=min(d.element_size for d in prog.arrays.values()),
    )
    before = session.manager.counts()
    t0 = time.perf_counter()
    spmd = session.compile(
        prog, parse_scheme(point.scheme), point.nprocs,
        decomp_nprocs=point.decomp_procs,
    )
    res = simulate(spmd, machine)
    elapsed = time.perf_counter() - t0
    after = session.manager.counts()

    def _delta(kind: str) -> Dict[str, int]:
        prev = before[kind]
        return {
            name: count - prev.get(name, 0)
            for name, count in after[kind].items()
            if count - prev.get(name, 0)
        }

    return BatchResult(
        point=point,
        ok=True,
        total_time=res.total_time,
        n_accesses=res.n_accesses,
        miss_breakdown=dict(res.miss_breakdown),
        pass_runs=_delta("runs"),
        pass_hits=_delta("hits"),
        elapsed=elapsed,
    )


def run_point(point: BatchPoint, session) -> BatchResult:
    """Run one point with error isolation (never raises)."""
    try:
        return _point_session(point, session)
    except BaseException as exc:  # isolate even SystemExit from a point
        if isinstance(exc, KeyboardInterrupt):
            raise
        return BatchResult(
            point=point, ok=False,
            error=traceback.format_exc(limit=20),
        )


# -- worker-process plumbing -------------------------------------------------

_worker_session = None
_worker_config: Optional[Tuple[Optional[str], bool]] = None


def _make_session(disk_dir: Optional[str], cache: bool):
    from repro.pipeline.cache import ArtifactCache
    from repro.pipeline.session import CompileSession

    if not cache:
        return CompileSession(cache=None)
    return CompileSession(cache=ArtifactCache(disk_dir=disk_dir))


def _worker_run(payload) -> BatchResult:
    global _worker_session, _worker_config
    point_dict, disk_dir, cache = payload
    config = (disk_dir, cache)
    if _worker_session is None or _worker_config != config:
        _worker_session = _make_session(disk_dir, cache)
        _worker_config = config
    return run_point(BatchPoint(**point_dict), _worker_session)


# -- the driver --------------------------------------------------------------

def run_batch(
    points: Iterable[BatchPoint],
    jobs: int = 1,
    cache: bool = True,
    disk_dir: Optional[str] = None,
) -> List[BatchResult]:
    """Run every point; results come back in input order.

    ``jobs <= 1`` runs serially in-process on one shared session;
    ``jobs > 1`` fans out over a process pool (``disk_dir`` makes the
    artifact cache shared across workers and across batch runs).
    """
    points = list(points)
    if jobs <= 1:
        session = _make_session(disk_dir, cache)
        return [run_point(p, session) for p in points]

    payloads = [(asdict(p), disk_dir, cache) for p in points]
    results: List[Optional[BatchResult]] = [None] * len(points)
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {
            pool.submit(_worker_run, payload): i
            for i, payload in enumerate(payloads)
        }
        for fut, i in futures.items():
            try:
                results[i] = fut.result()
            except Exception:
                # The worker process itself died (not a point failure,
                # which run_point already isolates).
                results[i] = BatchResult(
                    point=points[i], ok=False,
                    error=traceback.format_exc(limit=5),
                )
    return [r for r in results if r is not None]


def summarize(results: Sequence[BatchResult]) -> Dict[str, object]:
    """Aggregate counters over a batch; ``fully_cached`` is True when
    no pass executed anywhere (every artifact came from the cache)."""
    runs: Dict[str, int] = {}
    hits: Dict[str, int] = {}
    for r in results:
        for name, c in r.pass_runs.items():
            runs[name] = runs.get(name, 0) + c
        for name, c in r.pass_hits.items():
            hits[name] = hits.get(name, 0) + c
    total_runs = sum(runs.values())
    errors = [r for r in results if not r.ok]
    return {
        "points": len(results),
        "ok": len(results) - len(errors),
        "errors": len(errors),
        "pass_runs": runs,
        "pass_hits": hits,
        "total_pass_runs": total_runs,
        "fully_cached": bool(results) and total_runs == 0,
    }
