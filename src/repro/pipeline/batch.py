"""Batch driver facade over the shared grid engine.

Historically this module carried the whole enumerate/compile/simulate
loop; that implementation now lives in :mod:`repro.pipeline.grid`
(one engine shared by ``repro batch``, the benchmark harness, and the
verifier) with the persistent result store in
:mod:`repro.pipeline.store`.  This module keeps the stable batch
vocabulary — ``BatchPoint``/``BatchResult``/``run_batch`` — as thin
aliases so existing callers and tests are untouched.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.pipeline.grid import (
    MAX_BACKOFF_SECONDS,
    GridPoint,
    GridResult,
    GridSpec,
    execute_grid,
    make_grid,
    merged_trace,
    point_key,
    point_machine,
    point_program,
    run_grid,
    run_point,
    summarize,
)
from repro.pipeline.store import ResultStore

__all__ = [
    "BatchPoint",
    "BatchResult",
    "GridSpec",
    "make_grid",
    "merged_trace",
    "run_batch",
    "run_point",
    "summarize",
]

# The batch-era names, kept importable forever.
BatchPoint = GridPoint
BatchResult = GridResult


def run_batch(
    points: Iterable[BatchPoint],
    jobs: int = 1,
    cache: bool = True,
    disk_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.5,
    degrade: bool = True,
    collect_telemetry: bool = False,
    locality: bool = False,
    store: Optional[ResultStore] = None,
    incremental: bool = False,
    journal=None,
    shutdown=None,
    preset=None,
    monitor=None,
) -> List[BatchResult]:
    """Run every point; results come back in input order.

    See :func:`repro.pipeline.grid.run_grid` (this is it, under the
    historical name): ``store``/``incremental`` add the persistent
    result store on top of the hardened wave executor,
    ``journal``/``shutdown``/``preset`` add the crash-safe run journal,
    graceful SIGINT/SIGTERM drain, and ``--resume`` replay, and
    ``monitor`` adds live heartbeats / time-series sampling for
    ``repro status`` and ``repro watch``.
    """
    return run_grid(
        points, jobs=jobs, cache=cache, disk_dir=disk_dir,
        timeout=timeout, retries=retries, backoff=backoff,
        degrade=degrade, collect_telemetry=collect_telemetry,
        locality=locality, store=store, incremental=incremental,
        journal=journal, shutdown=shutdown, preset=preset,
        monitor=monitor,
    )
