"""The pass-pipeline compiler core.

The compile-and-simulate path is organized as an explicit pipeline of
typed passes (restructure → decompose → layout → spmd-codegen) run by a
:class:`~repro.pipeline.manager.PassManager` against a
content-addressed :class:`~repro.pipeline.cache.ArtifactCache`
(in-memory LRU plus an optional on-disk store shared across processes
and runs).  A :class:`~repro.pipeline.session.CompileSession` fronts the
pipeline; :mod:`repro.compiler` keeps the historical
``compile_program`` / ``compile_all`` / ``restructure_program``
signatures as thin wrappers over the process-wide default session.

:mod:`repro.pipeline.batch` fans grids of ``(app, scheme, nprocs)``
points across a process pool with per-point error isolation.
"""

from repro.pipeline.cache import MISS, ArtifactCache, CacheStats, resolve_disk_dir
from repro.pipeline.fingerprint import (
    fingerprint_decomposition,
    fingerprint_program,
    make_key,
)
from repro.pipeline.manager import PassManager
from repro.pipeline.passes import (
    ALL_PASSES,
    ART_DECOMPOSITION,
    ART_LAYOUT,
    ART_PROGRAM,
    ART_RESTRUCTURED,
    ART_SPMD,
    ART_VERIFY,
    DecomposePass,
    LayoutPass,
    Pass,
    PassContext,
    RestructurePass,
    SpmdCodegenPass,
    VerifyPass,
)
from repro.pipeline.session import (
    CompileSession,
    get_session,
    reset_session,
    set_session,
)

__all__ = [
    "MISS",
    "ArtifactCache",
    "CacheStats",
    "resolve_disk_dir",
    "fingerprint_program",
    "fingerprint_decomposition",
    "make_key",
    "PassManager",
    "Pass",
    "PassContext",
    "RestructurePass",
    "DecomposePass",
    "LayoutPass",
    "SpmdCodegenPass",
    "VerifyPass",
    "ALL_PASSES",
    "ART_PROGRAM",
    "ART_RESTRUCTURED",
    "ART_DECOMPOSITION",
    "ART_LAYOUT",
    "ART_SPMD",
    "ART_VERIFY",
    "CompileSession",
    "get_session",
    "set_session",
    "reset_session",
]
