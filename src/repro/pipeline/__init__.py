"""The pass-pipeline compiler core.

The compile-and-simulate path is organized as an explicit pipeline of
typed passes (restructure → decompose → layout → spmd-codegen) run by a
:class:`~repro.pipeline.manager.PassManager` against a
content-addressed :class:`~repro.pipeline.cache.ArtifactCache`
(in-memory LRU plus an optional on-disk store shared across processes
and runs).  A :class:`~repro.pipeline.session.CompileSession` fronts the
pipeline; :mod:`repro.compiler` keeps the historical
``compile_program`` / ``compile_all`` / ``restructure_program``
signatures as thin wrappers over the process-wide default session.

:mod:`repro.pipeline.grid` is the shared grid engine — one
enumeration (:class:`~repro.pipeline.grid.GridSpec`) and one hardened
wave executor fanning ``(app, scheme, nprocs)`` points across a
process pool with per-point error isolation — consumed by ``repro
batch`` (via the :mod:`repro.pipeline.batch` facade), the benchmark
harness, and the verifier.  :mod:`repro.pipeline.store` persists each
point's result under a content-addressed key (program x scheme x
procs x machine x model version) so incremental reruns execute only
what changed.
"""

from repro.pipeline.cache import MISS, ArtifactCache, CacheStats, resolve_disk_dir
from repro.pipeline.fingerprint import (
    fingerprint_decomposition,
    fingerprint_program,
    make_key,
)
from repro.pipeline.grid import (
    GridPoint,
    GridResult,
    GridSpec,
    execute_grid,
    make_grid,
    point_key,
    point_machine,
    point_program,
    run_grid,
)
from repro.pipeline.manager import PassManager
from repro.pipeline.store import (
    MODEL_VERSION,
    ResultStore,
    StoreStats,
    resolve_store_dir,
)
from repro.pipeline.passes import (
    ALL_PASSES,
    ART_DECOMPOSITION,
    ART_LAYOUT,
    ART_PROGRAM,
    ART_RESTRUCTURED,
    ART_SPMD,
    ART_VERIFY,
    DecomposePass,
    LayoutPass,
    Pass,
    PassContext,
    RestructurePass,
    SpmdCodegenPass,
    VerifyPass,
)
from repro.pipeline.session import (
    CompileSession,
    get_session,
    reset_session,
    set_session,
)

__all__ = [
    "MISS",
    "ArtifactCache",
    "CacheStats",
    "resolve_disk_dir",
    "fingerprint_program",
    "fingerprint_decomposition",
    "make_key",
    "GridPoint",
    "GridResult",
    "GridSpec",
    "execute_grid",
    "make_grid",
    "point_key",
    "point_machine",
    "point_program",
    "run_grid",
    "MODEL_VERSION",
    "ResultStore",
    "StoreStats",
    "resolve_store_dir",
    "PassManager",
    "Pass",
    "PassContext",
    "RestructurePass",
    "DecomposePass",
    "LayoutPass",
    "SpmdCodegenPass",
    "VerifyPass",
    "ALL_PASSES",
    "ART_PROGRAM",
    "ART_RESTRUCTURED",
    "ART_DECOMPOSITION",
    "ART_LAYOUT",
    "ART_SPMD",
    "ART_VERIFY",
    "CompileSession",
    "get_session",
    "set_session",
    "reset_session",
]
