"""Typed error hierarchy for the compile/simulate pipeline.

Every failure the pipeline can surface derives from :class:`ReproError`
and carries the coordinates of the failing work item (app/program,
scheme, processor count, pass name) so batch drivers and CLI layers can
report *where* something broke without parsing tracebacks:

========================  =================================================
class                     raised by
========================  =================================================
:class:`CompileError`     a pipeline pass failing (wraps the original)
:class:`LegalityError`    a transformation that breaks semantics
                          (e.g. a non-bijective data layout)
:class:`CacheError`       the artifact cache (injected write faults;
                          genuine cache corruption is *never* raised —
                          corrupt entries are quarantined and recomputed)
:class:`SimulationError`  the machine model failing on a compiled plan
:class:`VerifyError`      the semantic oracle finding a divergence
:class:`FaultInjected`    :mod:`repro.faults` firing at an injection site
:class:`LockError`        cross-process file locking (acquisition
                          timeout, unusable lock file)
:class:`JournalError`     the durable run journal (unreadable journal,
                          spec-fingerprint mismatch on ``--resume``)
:class:`IntegrityError`   ``repro fsck`` finding store damage under
                          ``--strict``
========================  =================================================

This module must stay import-light (no repro imports) — it sits below
everything else in the dependency order.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "ReproError",
    "CompileError",
    "LegalityError",
    "CacheError",
    "SimulationError",
    "VerifyError",
    "FaultInjected",
    "LockError",
    "JournalError",
    "IntegrityError",
]


class ReproError(Exception):
    """Base class; carries optional pipeline context for diagnostics."""

    def __init__(
        self,
        message: str = "",
        *,
        app: Optional[str] = None,
        scheme: Optional[str] = None,
        nprocs: Optional[int] = None,
        pass_name: Optional[str] = None,
        **extra: Any,
    ):
        super().__init__(message)
        self.app = app
        self.scheme = scheme
        self.nprocs = nprocs
        self.pass_name = pass_name
        self.extra = extra

    def context(self) -> Dict[str, Any]:
        """The non-empty context fields, JSON-ready."""
        out: Dict[str, Any] = {}
        for k in ("app", "scheme", "nprocs", "pass_name"):
            v = getattr(self, k)
            if v is not None:
                out[k] = v
        out.update(self.extra)
        return out

    def __str__(self) -> str:
        base = super().__str__()
        ctx = self.context()
        if not ctx:
            return base
        tail = " ".join(f"{k}={v}" for k, v in sorted(ctx.items()))
        return f"{base} [{tail}]" if base else f"[{tail}]"


class CompileError(ReproError):
    """A pipeline pass failed; the original exception is chained."""


class LegalityError(CompileError):
    """A transformation violated a semantic invariant (e.g. a layout
    that maps two distinct elements to one address)."""


class CacheError(ReproError):
    """An artifact-cache operation failed (only ever raised *into* the
    cache's own error handling — cache failures never escape it)."""


class SimulationError(ReproError):
    """The machine model failed while replaying a compiled plan."""


class VerifyError(ReproError):
    """The semantic verification oracle found a divergence."""


class FaultInjected(ReproError):
    """An injected fault (see :mod:`repro.faults`) fired at this site."""


class LockError(ReproError):
    """A cross-process file lock could not be acquired or used."""


class JournalError(ReproError):
    """The durable run journal is unreadable, incomplete in a way that
    prevents resuming, or records a different grid than requested."""


class IntegrityError(ReproError):
    """A store integrity check (``repro fsck``) found damage and was
    asked to treat it as fatal (``--strict``)."""
