"""The semantic verification oracle.

Executes a compiled :class:`~repro.codegen.spmd.SpmdProgram` the way the
generated SPMD code would run — every statement instance performed
exactly once by its owning processor, all reads and writes addressed
through the (possibly strip-mined + permuted + padded) transformed
layouts' div/mod linearization, replicated arrays held as per-processor
copies — and compares array contents element-wise against a sequential
interpretation of the *untransformed* source program, in lockstep after
every phase.

What a divergence means:

* at ``phase="init"`` — the layout scatter already lost information:
  two elements collided on one address (the legality invariant
  :meth:`~repro.datatrans.layout.Layout.is_bijective` is also probed
  directly and reported as such);
* at a real phase — the restructured nest, the ownership plan, or the
  transformed addressing changed the values the program computes
  (e.g. a stale replicated copy, a wrong unimodular transformation, or
  an address-collision only exercised by that nest's reference
  pattern).

The oracle interprets both sides in sequential program order, so it
verifies the *data* semantics of the compilation (addressing, coverage,
replication); interleaving legality of the synchronization placement is
the dependence framework's responsibility and is tested separately.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro import obs
from repro.codegen.executor import default_init
from repro.codegen.spmd import SpmdProgram
from repro.errors import VerifyError
from repro.ir.loops import LoopNest
from repro.ir.program import Program

__all__ = ["Divergence", "VerifyResult", "verify_spmd"]


@dataclass
class Divergence:
    """First point where the SPMD execution left the reference."""

    array: str
    index: Tuple[int, ...]
    expected: float
    actual: float
    proc: Optional[int]  # data owner of the element (None: undistributed)
    copy: Optional[int]  # replicated copy that diverged (None otherwise)
    phase: str  # nest name, or "init"/"layout"
    phase_index: int
    step: int

    def describe(self) -> str:
        where = f"{self.array}{list(self.index)}"
        own = f" owner=P{self.proc}" if self.proc is not None else ""
        cp = f" copy=P{self.copy}" if self.copy is not None else ""
        return (
            f"first divergence at {where}: expected {self.expected!r}, "
            f"got {self.actual!r} (phase={self.phase!r} "
            f"#{self.phase_index}, step={self.step}{own}{cp})"
        )


@dataclass
class VerifyResult:
    """Outcome of one oracle run."""

    program: str
    scheme: str
    nprocs: int
    ok: bool
    phases_checked: int = 0
    elements_checked: int = 0
    elapsed: float = 0.0
    divergence: Optional[Divergence] = None
    reason: str = ""

    def summary(self) -> str:
        head = (
            f"{self.program}/{self.scheme} P={self.nprocs}: "
            f"{'ok' if self.ok else 'FAIL'}"
        )
        if self.ok:
            return (
                f"{head} ({self.phases_checked} phase checks, "
                f"{self.elements_checked} element compares)"
            )
        detail = self.reason or (
            self.divergence.describe() if self.divergence else "?"
        )
        return f"{head} — {detail}"

    def raise_on_failure(self) -> "VerifyResult":
        if not self.ok:
            raise VerifyError(
                self.reason
                or (self.divergence.describe() if self.divergence else
                    "verification failed"),
                app=self.program,
                scheme=self.scheme,
                nprocs=self.nprocs,
            )
        return self


# -- transformed-storage bookkeeping ----------------------------------------

class _SpmdStore:
    """Flat transformed-layout storage for every array.

    Non-replicated arrays live once (shared memory); replicated arrays
    keep one copy per processor, written broadcast-style (the SPMD code
    for replicated data executes redundantly on every processor)."""

    def __init__(self, spmd: SpmdProgram, init: Mapping[str, np.ndarray]):
        self.nprocs = spmd.nprocs
        self.lin: Dict[str, np.ndarray] = {}
        self.owner_pid: Dict[str, Optional[np.ndarray]] = {}
        self.flat: Dict[str, np.ndarray] = {}
        self.replicated: Dict[str, bool] = {}
        for name, ta in spmd.transformed.items():
            dims = ta.decl.dims
            coords = [g.reshape(-1) for g in np.indices(dims)]
            lin = np.asarray(
                ta.layout.linearize_vec(coords), dtype=np.int64
            ).reshape(dims)
            self.lin[name] = lin
            self.owner_pid[name] = _data_owner_map(ta, spmd.grid)
            self.replicated[name] = bool(ta.replicated)
            size = ta.layout.size
            flat = np.zeros(size, dtype=np.float64)
            flat.reshape(-1)[lin.reshape(-1)] = np.asarray(
                init[name], dtype=np.float64
            ).reshape(-1)
            if ta.replicated:
                flat = np.tile(flat, (self.nprocs, 1))
            self.flat[name] = flat

    def read(self, name: str, index: Tuple[int, ...], proc: int) -> float:
        addr = self.lin[name][index]
        if self.replicated[name]:
            return self.flat[name][proc, addr]
        return self.flat[name][addr]

    def write(self, name: str, index: Tuple[int, ...], value: float) -> None:
        addr = self.lin[name][index]
        if self.replicated[name]:
            self.flat[name][:, addr] = value
        else:
            self.flat[name][addr] = value

    def gather(self, name: str, copy: int = 0) -> np.ndarray:
        """Array contents seen through the original index space."""
        lin = self.lin[name]
        flat = self.flat[name]
        if self.replicated[name]:
            flat = flat[copy]
        return flat[lin]


def _data_owner_map(ta, grid) -> Optional[np.ndarray]:
    """Owning-processor id of every element (None if undistributed)."""
    if not ta.owner_specs:
        return None
    grids = np.indices(ta.decl.dims)
    specs = {s.proc_dim: s for s in ta.owner_specs}
    pid = np.zeros(ta.decl.dims, dtype=np.int64)
    for dim in range(len(grid) - 1, -1, -1):
        g = grid[dim] if dim < len(grid) else 1
        s = specs.get(dim)
        coord = s.owner_vec(grids[s.src]) if s is not None else 0
        pid = pid * g + coord
    return pid


# -- interpreters ------------------------------------------------------------

def _run_reference_nest(
    nest: LoopNest, storage: Dict[str, np.ndarray], params: Mapping[str, int]
) -> None:
    """Sequential interpretation of one *original* nest (the twin of
    :func:`repro.codegen.executor._run_nest`, kept local so the oracle
    controls phase boundaries)."""
    depth = nest.depth
    stmts_by_level: Dict[int, list] = {}
    for st in nest.body:
        d = st.depth if st.depth is not None else depth
        stmts_by_level.setdefault(d, []).append(st)
    env = dict(params)

    def exec_level(level: int) -> None:
        for st in stmts_by_level.get(level, ()):
            vals = [storage[r.array.name][r.index_at(env)] for r in st.reads]
            result = (
                st.compute(*vals) if st.compute is not None
                else float(sum(vals))
            )
            storage[st.write.array.name][st.write.index_at(env)] = result
        if level == depth:
            return
        loop = nest.loops[level]
        lo = loop.lower.eval(env)
        hi = loop.upper.eval(env)
        for v in range(lo, hi + 1):
            env[loop.var] = v
            exec_level(level + 1)
        env.pop(loop.var, None)

    exec_level(0)


def _run_spmd_phase(spmd: SpmdProgram, phase_idx: int,
                    store: _SpmdStore) -> None:
    """Execute one phase the SPMD way: each statement instance runs once,
    on its owning processor, addressed through the transformed layouts."""
    phase = spmd.phases[phase_idx]
    nest = phase.nest
    params = spmd.program.params
    depth = nest.depth
    stmts_by_level: Dict[int, List[Tuple[int, object]]] = {}
    for s, st in enumerate(nest.body):
        d = st.depth if st.depth is not None else depth
        stmts_by_level.setdefault(d, []).append((s, st))
    env = dict(params)

    def exec_level(level: int) -> None:
        for s, st in stmts_by_level.get(level, ()):
            proc = phase.owners[s].owner_at(
                env, nest, params, spmd.nprocs, spmd.grid
            )
            vals = [
                store.read(r.array.name, r.index_at(env), proc)
                for r in st.reads
            ]
            result = (
                st.compute(*vals) if st.compute is not None
                else float(sum(vals))
            )
            store.write(st.write.array.name, st.write.index_at(env), result)
        if level == depth:
            return
        loop = nest.loops[level]
        lo = loop.lower.eval(env)
        hi = loop.upper.eval(env)
        for v in range(lo, hi + 1):
            env[loop.var] = v
            exec_level(level + 1)
        env.pop(loop.var, None)

    exec_level(0)


# -- comparison --------------------------------------------------------------

def _first_divergence(
    ref: Dict[str, np.ndarray],
    store: _SpmdStore,
    phase: str,
    phase_index: int,
    step: int,
) -> Tuple[Optional[Divergence], int]:
    """Element-wise compare (bit-identical, NaN==NaN) of every array;
    returns (divergence-or-None, elements compared)."""
    checked = 0
    for name in sorted(ref):
        expect = ref[name]
        copies = range(store.nprocs) if store.replicated[name] else (0,)
        for copy in copies:
            got = store.gather(name, copy)
            checked += expect.size
            eq = (got == expect) | (np.isnan(got) & np.isnan(expect))
            if bool(eq.all()):
                continue
            idx = tuple(int(i) for i in np.argwhere(~eq)[0])
            owners = store.owner_pid[name]
            return (
                Divergence(
                    array=name,
                    index=idx,
                    expected=float(expect[idx]),
                    actual=float(got[idx]),
                    proc=int(owners[idx]) if owners is not None else None,
                    copy=copy if store.replicated[name] else None,
                    phase=phase,
                    phase_index=phase_index,
                    step=step,
                ),
                checked,
            )
    return None, checked


# -- entry point -------------------------------------------------------------

def verify_spmd(
    spmd: SpmdProgram,
    reference: Program,
    init: Optional[Mapping[str, np.ndarray]] = None,
    seed: int = 12345,
) -> VerifyResult:
    """Verify one compiled plan against its untransformed source.

    ``reference`` must be the *original* program handed to the compiler
    (``spmd.program`` is its restructured form); both are interpreted in
    lockstep and compared after every phase of every time step.
    """
    t0 = time.perf_counter()
    result = VerifyResult(
        program=reference.name,
        scheme=spmd.scheme.value,
        nprocs=spmd.nprocs,
        ok=False,
    )
    with obs.span("verify.oracle", cat="verify", program=reference.name,
                  scheme=spmd.scheme.value, nprocs=spmd.nprocs) as sp:
        _verify_impl(spmd, reference, init, seed, result)
        result.elapsed = time.perf_counter() - t0
        sp.set(ok=result.ok, phases=result.phases_checked,
               elements=result.elements_checked)
        obs.inc("verify.ok" if result.ok else "verify.divergence")
        if not result.ok:
            obs.event("verify.divergence", cat="verify",
                      program=reference.name, scheme=spmd.scheme.value,
                      nprocs=spmd.nprocs,
                      detail=result.reason or
                      (result.divergence.describe()
                       if result.divergence else "?"))
    return result


def _verify_impl(spmd, reference, init, seed, result: VerifyResult) -> None:
    if len(spmd.phases) != len(reference.nests):
        result.reason = (
            f"phase/nest count mismatch: {len(spmd.phases)} phases vs "
            f"{len(reference.nests)} source nests"
        )
        return

    # Legality pre-check: every transformed layout must be a bijection
    # on the original index space.
    for name, ta in sorted(spmd.transformed.items()):
        if not ta.layout.is_bijective():
            result.reason = (
                f"layout of {name} is not bijective: {ta.layout!r} "
                f"(distinct elements share an address)"
            )
            return

    base = init if init is not None else default_init(reference, seed=seed)
    ref: Dict[str, np.ndarray] = {
        name: np.array(base[name], dtype=np.float64)
        for name in reference.arrays
    }
    store = _SpmdStore(spmd, ref)

    # The scatter/gather round trip must already be exact.
    div, checked = _first_divergence(ref, store, "init", -1, -1)
    result.elements_checked += checked
    result.phases_checked += 1
    if div is not None:
        result.divergence = div
        return

    steps = max(1, reference.time_steps)
    for step in range(steps):
        for k, nest in enumerate(reference.nests):
            reps = max(1, nest.frequency)
            for _ in range(reps):
                _run_reference_nest(nest, ref, reference.params)
                _run_spmd_phase(spmd, k, store)
            div, checked = _first_divergence(
                ref, store, nest.name, k, step
            )
            result.elements_checked += checked
            result.phases_checked += 1
            if div is not None:
                result.divergence = div
                return
    result.ok = True
