"""Grid driver for the verification oracle.

Verifies ``app × scheme × nprocs`` coordinates at a small problem size:
the grid is enumerated by the shared
:class:`~repro.pipeline.grid.GridSpec` engine, each point builds the
app, compiles it through a
:class:`~repro.pipeline.session.CompileSession` (so artifacts are shared
across the grid exactly like a real run) and hands the plan to
:func:`~repro.verify.oracle.verify_spmd`.  A point that fails to
*compile* is reported as a failed point rather than aborting the grid.

Give :func:`verify_grid` a persistent
:class:`~repro.pipeline.store.ResultStore` and previously-verified
points are served from it under their content-addressed ``verify`` key
(program x scheme x procs x machine x model version): a warm
``repro verify --incremental`` rerun executes no oracle work at all.
Only *ok* verdicts are stored — a failure always re-runs live so its
divergence trace is fresh.
"""

from __future__ import annotations

import traceback
from typing import List, Optional, Sequence

from repro.verify.oracle import VerifyResult, verify_spmd

__all__ = [
    "DEFAULT_VERIFY_N",
    "DEFAULT_VERIFY_PROCS",
    "verify_point",
    "verify_grid",
    "grid_ok",
    "format_verify_table",
]

DEFAULT_VERIFY_N = 8
DEFAULT_VERIFY_PROCS = (1, 2, 4)


def verify_point(
    app: str,
    scheme,
    nprocs: int,
    n: Optional[int] = DEFAULT_VERIFY_N,
    time_steps: Optional[int] = None,
    session=None,
) -> VerifyResult:
    """Compile one (app, scheme, nprocs) point at a small size and run
    the oracle on it.  Compile failures become failed results."""
    from repro.apps import build_app
    from repro.codegen.spmd import parse_scheme
    from repro.pipeline.session import CompileSession

    scheme = parse_scheme(scheme)
    try:
        prog = build_app(app, n=n, time_steps=time_steps)
        session = session or CompileSession()
        spmd = session.compile(prog, scheme, nprocs)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception:
        return VerifyResult(
            program=app,
            scheme=scheme.value,
            nprocs=nprocs,
            ok=False,
            reason="compile failed: "
            + traceback.format_exc(limit=5).strip().splitlines()[-1],
        )
    return verify_spmd(spmd, prog)


def verify_grid(
    apps: Sequence[str],
    schemes: Sequence,
    procs: Sequence[int] = DEFAULT_VERIFY_PROCS,
    n: Optional[int] = DEFAULT_VERIFY_N,
    time_steps: Optional[int] = None,
    session=None,
    store=None,
) -> List[VerifyResult]:
    """Run the oracle over the full cartesian grid, sharing one compile
    session so restructure/decompose artifacts are reused.

    With a ``store``, each point's verdict is looked up under its
    ``verify`` key first and ok verdicts are written back — verified
    points whose program/machine/model key is unchanged are served
    without re-running the oracle.
    """
    from repro.codegen.spmd import parse_scheme
    from repro.pipeline.grid import GridSpec, point_key
    from repro.pipeline.session import CompileSession

    session = session or CompileSession()
    spec = GridSpec(
        apps=tuple(apps),
        schemes=tuple(getattr(s, "value", s) for s in schemes),
        procs=tuple(procs),
        n=n, time_steps=time_steps,
    )
    results: List[VerifyResult] = []
    for point in spec.points():
        scheme_name = parse_scheme(point.scheme).value
        key = None
        if store is not None:
            try:
                key = point_key(point, kind="verify")
            except Exception:
                # An unbuildable point cannot be keyed; verify_point
                # below reports the compile failure as a failed result.
                key = None
        if key is not None:
            payload = store.get(key)
            if payload is not None:
                results.append(VerifyResult(
                    program=point.app,
                    scheme=scheme_name,
                    nprocs=point.nprocs,
                    ok=True,
                    phases_checked=int(payload.get("phases_checked", 0)),
                    elements_checked=int(
                        payload.get("elements_checked", 0)),
                ))
                continue
        result = verify_point(point.app, point.scheme, point.nprocs,
                              n=point.n, time_steps=point.time_steps,
                              session=session)
        if key is not None and result.ok:
            store.put(key, {
                "phases_checked": result.phases_checked,
                "elements_checked": result.elements_checked,
            }, coord=f"verify:{point.coord()}")
        results.append(result)
    return results


def grid_ok(results: Sequence[VerifyResult]) -> bool:
    return bool(results) and all(r.ok for r in results)


def format_verify_table(results: Sequence[VerifyResult],
                        title: str = "semantic verification") -> str:
    """Fixed-width report, one line per grid point."""
    lines = [title]
    lines.append(
        f"{'app':12s} {'scheme':28s} {'P':>3s} {'phases':>7s} "
        f"{'elements':>9s}  status"
    )
    for r in results:
        status = "ok" if r.ok else "FAIL — " + (
            r.reason or (r.divergence.describe() if r.divergence else "?")
        )
        lines.append(
            f"{r.program:12s} {r.scheme:28s} {r.nprocs:3d} "
            f"{r.phases_checked:7d} {r.elements_checked:9d}  {status}"
        )
    nfail = sum(1 for r in results if not r.ok)
    lines.append(
        f"{len(results)} points, {len(results) - nfail} ok, {nfail} failed"
    )
    return "\n".join(lines)
