"""Grid driver for the verification oracle.

Verifies ``app × scheme × nprocs`` coordinates at a small problem size:
each point builds the app, compiles it through a
:class:`~repro.pipeline.session.CompileSession` (so artifacts are shared
across the grid exactly like a real run) and hands the plan to
:func:`~repro.verify.oracle.verify_spmd`.  A point that fails to
*compile* is reported as a failed point rather than aborting the grid.
"""

from __future__ import annotations

import itertools
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.verify.oracle import VerifyResult, verify_spmd

__all__ = [
    "DEFAULT_VERIFY_N",
    "DEFAULT_VERIFY_PROCS",
    "verify_point",
    "verify_grid",
    "grid_ok",
    "format_verify_table",
]

DEFAULT_VERIFY_N = 8
DEFAULT_VERIFY_PROCS = (1, 2, 4)


def verify_point(
    app: str,
    scheme,
    nprocs: int,
    n: Optional[int] = DEFAULT_VERIFY_N,
    time_steps: Optional[int] = None,
    session=None,
) -> VerifyResult:
    """Compile one (app, scheme, nprocs) point at a small size and run
    the oracle on it.  Compile failures become failed results."""
    from repro.apps import build_app
    from repro.codegen.spmd import parse_scheme
    from repro.pipeline.session import CompileSession

    scheme = parse_scheme(scheme)
    try:
        prog = build_app(app, n=n, time_steps=time_steps)
        session = session or CompileSession()
        spmd = session.compile(prog, scheme, nprocs)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception:
        return VerifyResult(
            program=app,
            scheme=scheme.value,
            nprocs=nprocs,
            ok=False,
            reason="compile failed: "
            + traceback.format_exc(limit=5).strip().splitlines()[-1],
        )
    return verify_spmd(spmd, prog)


def verify_grid(
    apps: Sequence[str],
    schemes: Sequence,
    procs: Sequence[int] = DEFAULT_VERIFY_PROCS,
    n: Optional[int] = DEFAULT_VERIFY_N,
    time_steps: Optional[int] = None,
    session=None,
) -> List[VerifyResult]:
    """Run the oracle over the full cartesian grid, sharing one compile
    session so restructure/decompose artifacts are reused."""
    from repro.pipeline.session import CompileSession

    session = session or CompileSession()
    return [
        verify_point(a, s, p, n=n, time_steps=time_steps, session=session)
        for a, s, p in itertools.product(apps, schemes, procs)
    ]


def grid_ok(results: Sequence[VerifyResult]) -> bool:
    return bool(results) and all(r.ok for r in results)


def format_verify_table(results: Sequence[VerifyResult],
                        title: str = "semantic verification") -> str:
    """Fixed-width report, one line per grid point."""
    lines = [title]
    lines.append(
        f"{'app':12s} {'scheme':28s} {'P':>3s} {'phases':>7s} "
        f"{'elements':>9s}  status"
    )
    for r in results:
        status = "ok" if r.ok else "FAIL — " + (
            r.reason or (r.divergence.describe() if r.divergence else "?")
        )
        lines.append(
            f"{r.program:12s} {r.scheme:28s} {r.nprocs:3d} "
            f"{r.phases_checked:7d} {r.elements_checked:9d}  {status}"
        )
    nfail = sum(1 for r in results if not r.ok)
    lines.append(
        f"{len(results)} points, {len(results) - nfail} ok, {nfail} failed"
    )
    return "\n".join(lines)
