"""repro.verify — the semantic verification oracle.

The paper's contract is that the compiler transforms *where* data live
and *who* computes, never *what* is computed.  This package checks that
contract end to end: :func:`verify_spmd` executes a compiled SPMD plan
(all processors, transformed layouts, div/mod addressing, replicated
copies) in lockstep with a sequential interpretation of the
untransformed source and compares array contents bit-for-bit after
every phase, reporting first-divergence diagnostics (array, index,
owning processor, phase, time step).

Entry points:

* :func:`verify_spmd` — oracle for one compiled plan;
* :func:`verify_point` / :func:`verify_grid` — compile-and-verify
  drivers over ``app × scheme × nprocs`` coordinates (the
  ``python -m repro verify`` command and the ``--verify`` flags);
* :class:`~repro.pipeline.passes.VerifyPass` — the same oracle as an
  optional pipeline pass (``CompileSession(verify=True)`` or
  ``REPRO_VERIFY=1``).
"""

from repro.verify.oracle import Divergence, VerifyResult, verify_spmd
from repro.verify.runner import (
    DEFAULT_VERIFY_N,
    DEFAULT_VERIFY_PROCS,
    format_verify_table,
    grid_ok,
    verify_grid,
    verify_point,
)

__all__ = [
    "Divergence",
    "VerifyResult",
    "verify_spmd",
    "DEFAULT_VERIFY_N",
    "DEFAULT_VERIFY_PROCS",
    "format_verify_table",
    "grid_ok",
    "verify_grid",
    "verify_point",
]
