"""The two data-transformation primitives (Section 4.1).

``strip_mine`` and ``permute`` operate on :class:`Layout` values and
compose freely; Section 4.1's observation is that every layout the
compiler needs (blocked, cyclic, block-cyclic, and their combinations
with transposition) is a product of these two.

As the paper notes, strip-mining *on its own does not change the layout
of data in memory* — the identity ``(i mod b) + b * (i div b) = i``
keeps linear addresses fixed — so it must be combined with permutation
to have an effect.  ``strip_mine`` therefore inserts the two new
dimensions adjacently (inner first), preserving addresses, and
``permute`` does the actual reordering.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.datatrans.layout import DimAtom, Layout
from repro.obs import provenance


def strip_mine(layout: Layout, atom_index: int, strip: int) -> Layout:
    """Strip-mine the ``atom_index``-th dimension with strip size
    ``strip``: the dimension of extent ``d`` becomes an inner dimension
    of extent ``strip`` and an adjacent outer dimension of extent
    ``ceil(d / strip)``.

    Addresses are unchanged (strip-mining alone is a no-op on memory);
    the resulting array may be padded: total extent ``strip * ceil(d /
    strip) < d + strip`` (Section 4.3).
    """
    if strip <= 0:
        raise ValueError("strip size must be positive")
    atoms = list(layout.atoms)
    a = atoms[atom_index]
    if a.mod is not None and a.mod % strip != 0:
        provenance.record(
            "datatrans.primitives", stage="layout",
            subject=f"atom{atom_index}", chosen="reject",
            alternatives=["strip-mine", "reject"],
            reason="legality rejection",
            detail=f"strip {strip} does not divide modulus {a.mod}",
        )
        raise ValueError(
            f"cannot strip-mine atom {a!r} by {strip}: strip must divide "
            "the existing modulus"
        )
    provenance.record(
        "datatrans.primitives", stage="layout",
        subject=f"atom{atom_index}", chosen=f"strip-mine by {strip}",
        alternatives=["strip-mine", "keep"],
        reason="strip factor from fold kind and grid extent",
        extent=a.extent, strip=strip,
    )
    outer_extent = -(-a.extent // strip)  # ceil
    inner = DimAtom(src=a.src, extent=strip, div=a.div, mod=strip)
    if a.mod is None:
        outer = DimAtom(
            src=a.src, extent=outer_extent, div=a.div * strip, mod=None
        )
    else:
        outer = DimAtom(
            src=a.src, extent=outer_extent, div=a.div * strip,
            mod=a.mod // strip,
        )
    atoms[atom_index : atom_index + 1] = [inner, outer]
    return Layout(orig_dims=layout.orig_dims, atoms=tuple(atoms))


def permute(layout: Layout, order: Sequence[int]) -> Layout:
    """Reorder dimensions: ``order[k]`` is the current position of the
    atom that becomes the new k-th (fastest-varying) dimension."""
    if sorted(order) != list(range(layout.rank)):
        provenance.record(
            "datatrans.primitives", stage="layout", subject="permute",
            chosen="reject", alternatives=["permute", "reject"],
            reason="legality rejection",
            detail=f"{order!r} is not a permutation of rank {layout.rank}",
        )
        raise ValueError(f"{order!r} is not a permutation of the dimensions")
    provenance.record(
        "datatrans.primitives", stage="layout", subject="permute",
        chosen=f"order {list(order)}",
        alternatives=["identity order", f"order {list(order)}"],
        reason="processor dims moved rightmost",
    )
    return Layout(
        orig_dims=layout.orig_dims,
        atoms=tuple(layout.atoms[p] for p in order),
    )


def transpose(layout: Layout) -> Layout:
    """Reverse the dimension order (the 2-D case is the familiar array
    transpose of Section 4.1.2)."""
    return permute(layout, list(range(layout.rank))[::-1])


def index_table(
    layout: Layout,
) -> List[Tuple[Tuple[int, ...], Tuple[int, ...], int]]:
    """Reproduce the Figure 2/3 style tables: for every original element
    (enumerated in original column-major order, dimension 0 fastest)
    give (original index, new index, new linear address)."""
    out: List[Tuple[Tuple[int, ...], Tuple[int, ...], int]] = []
    n = len(layout.orig_dims)
    idx = [0] * n

    def walk(pos: int):
        if pos < 0:
            t = tuple(idx)
            out.append((t, layout.map_index(t), layout.linearize(t)))
            return
        for v in range(layout.orig_dims[pos]):
            idx[pos] = v
            walk(pos - 1)

    walk(n - 1)
    return out
