"""Data transformation framework (the paper's Section 4).

Array layouts are rebuilt from two primitives with direct analogues in
loop-transformation theory:

* **strip-mining** — re-organize one dimension as a two-dimensional
  (within-strip, strip-number) structure;
* **permutation** — reorder dimensions (a transpose generalizes to any
  dimension permutation).

Given the data decompositions from the first phase,
:func:`derive_layout` applies the Section 4.2 recipe per distributed
dimension (BLOCK / CYCLIC / BLOCK-CYCLIC) and moves the
processor-identifying dimensions to the slowest-varying positions,
making each processor's partition contiguous in the shared address
space.
"""

from repro.datatrans.layout import DimAtom, Layout
from repro.datatrans.primitives import strip_mine, permute, transpose
from repro.datatrans.transform import TransformedArray, derive_layout
from repro.datatrans.legality import (
    LegalityError,
    check_transformable,
)

__all__ = [
    "DimAtom",
    "Layout",
    "strip_mine",
    "permute",
    "transpose",
    "TransformedArray",
    "derive_layout",
    "LegalityError",
    "check_transformable",
]
