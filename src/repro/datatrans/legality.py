"""Legality checks for data transformations (Section 4.1.3).

Unlike loop transforms, data transforms carry no ordering constraints —
but they are global: every access to the array, program-wide, must be
rewritten to the new layout.  The paper lists the language features that
defeat this (FORTRAN COMMON-block re-use as differently-shaped data, C
pointer arithmetic and casts).  Our IR cannot express those, so the
checks here verify the conditions the rest of the pipeline relies on:

* every reference uses the declared rank (no linearized or reshaped
  accesses),
* the decomposition maps at most one array dimension per processor
  dimension (the paper's Section 4.2 implementation restriction),
* the derived layout is a bijection on the original index space.
"""

from __future__ import annotations

from typing import List, Optional

from repro.datatrans.layout import Layout
from repro.decomp.model import DataDecomp
from repro.ir.program import Program


class LegalityError(Exception):
    """A data transformation cannot be applied soundly."""


def check_transformable(
    prog: Program, array: str, decomp: Optional[DataDecomp] = None
) -> List[str]:
    """Return a list of diagnostics (empty = transformable)."""
    problems: List[str] = []
    decl = prog.arrays.get(array)
    if decl is None:
        return [f"array {array} is not declared"]
    for nest in prog.nests:
        for st in nest.body:
            for ref in st.all_refs():
                if ref.array.name != array:
                    continue
                if len(ref.index_exprs) != decl.rank:
                    problems.append(
                        f"{nest.name}: reference {ref!r} reshapes {array}"
                    )
    if decomp is not None and not decomp.replicated and decomp.matrix:
        try:
            decomp.distributed_dims()
        except ValueError as e:
            problems.append(str(e))
    return problems


def assert_bijective(layout: Layout, array: str) -> None:
    """Raise LegalityError unless the layout maps distinct elements to
    distinct addresses."""
    if not layout.is_bijective():
        raise LegalityError(
            f"{array}: derived layout is not a bijection on the index space"
        )
