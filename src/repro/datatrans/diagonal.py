"""Diagonal (45-degree unimodular) layouts — the Section 4.1.2 extension.

The paper generalizes its permutation primitive: "rotating a
two-dimensional array by 45 degrees makes data along a diagonal
contiguous, which may be useful if a loop accesses the diagonal in
consecutive iterations.  There are two plausible ways of laying the
data out in memory":

* **boxed** — embed the rotated parallelogram in the smallest enclosing
  rectilinear space (simpler address calculation, padded storage);
* **packed** — place the diagonals consecutively, one after the other
  (compact storage, table-driven addressing).

The paper does not expect non-permutation unimodular transforms to
matter in practice (and none of the benchmarks need one), but the
framework supports them; this module implements both embeddings with
the same mapping protocol as :class:`repro.datatrans.layout.Layout`.

The rotation used is the unimodular map ``(i, j) -> (i + j, j)``:
anti-diagonal ``d = i + j`` becomes the slow coordinate, and the
position along the diagonal the fast one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class DiagonalLayout:
    """Layout of a 2-D array with anti-diagonals contiguous.

    ``packed=False`` (boxed): diagonal ``d`` starts at address
    ``d * min(d1, d2)`` — every diagonal gets a full-length slot.

    ``packed=True``: diagonal ``d`` starts at the sum of the lengths of
    diagonals ``0..d-1`` (no padding).
    """

    dims: Tuple[int, int]
    packed: bool = False
    _starts: Tuple[int, ...] = field(default=(), repr=False)

    def __post_init__(self):
        d1, d2 = self.dims
        if d1 <= 0 or d2 <= 0:
            raise ValueError("dims must be positive")
        starts: List[int] = []
        pos = 0
        for d in range(d1 + d2 - 1):
            starts.append(pos)
            pos += self.diagonal_length(d) if self.packed else min(d1, d2)
        object.__setattr__(self, "_starts", tuple(starts))

    # -- geometry -----------------------------------------------------------

    @property
    def ndiagonals(self) -> int:
        return self.dims[0] + self.dims[1] - 1

    def diagonal_length(self, d: int) -> int:
        """Number of elements on anti-diagonal ``d = i + j``."""
        d1, d2 = self.dims
        if not (0 <= d < d1 + d2 - 1):
            raise IndexError(f"diagonal {d} out of range")
        return min(d, d1 - 1, d2 - 1, d1 + d2 - 2 - d) + 1

    @property
    def size(self) -> int:
        if self.packed:
            return self.dims[0] * self.dims[1]
        return self.ndiagonals * min(self.dims)

    # -- mapping -----------------------------------------------------------

    def diagonal_of(self, index: Sequence[int]) -> Tuple[int, int]:
        """(diagonal id, position along the diagonal) of an element.

        Position counts from the smallest feasible ``j`` on the
        diagonal, so consecutive positions are consecutive elements of
        the diagonal.
        """
        i, j = index
        d1, d2 = self.dims
        if not (0 <= i < d1 and 0 <= j < d2):
            raise IndexError(f"index {tuple(index)} out of {self.dims}")
        d = i + j
        jmin = max(0, d - (d1 - 1))
        return d, j - jmin

    def linearize(self, index: Sequence[int]) -> int:
        d, k = self.diagonal_of(index)
        return self._starts[d] + k

    def linearize_vec(self, index_cols: Sequence[np.ndarray]) -> np.ndarray:
        i = np.asarray(index_cols[0])
        j = np.asarray(index_cols[1])
        d = i + j
        jmin = np.maximum(0, d - (self.dims[0] - 1))
        starts = np.asarray(self._starts)
        return starts[d] + (j - jmin)

    def unmap(self, addr: int) -> Tuple[int, int]:
        """Original (i, j) of a linear address (packed layout is dense;
        boxed layout raises on padding slots)."""
        starts = self._starts
        # Find the diagonal by binary search on starts.
        import bisect

        d = bisect.bisect_right(starts, addr) - 1
        k = addr - starts[d]
        if k >= self.diagonal_length(d):
            raise IndexError(f"address {addr} is padding")
        jmin = max(0, d - (self.dims[0] - 1))
        j = jmin + k
        return d - j, j

    def is_bijective(self) -> bool:
        seen = set()
        for i in range(self.dims[0]):
            for j in range(self.dims[1]):
                a = self.linearize((i, j))
                if a in seen:
                    return False
                seen.add(a)
        return True


def diagonal_layout(dims: Tuple[int, int], packed: bool = False) -> DiagonalLayout:
    """Convenience constructor mirroring the paper's two embeddings."""
    return DiagonalLayout(dims=tuple(dims), packed=packed)
