"""The Section 4.2 layout-derivation algorithm.

For each distributed dimension of an array:

* BLOCK — strip-mine with strip ``ceil(d / P)``; the *second* (outer)
  strip dimension identifies the processor;
* CYCLIC — strip-mine with strip ``P``; the *first* (inner) dimension
  identifies the processor;
* BLOCK-CYCLIC(b) — strip-mine by ``b`` then strip-mine the outer part
  by ``P``; the *middle* dimension identifies the processor;

then permute every processor-identifying dimension to the rightmost
(slowest-varying) positions, leaving all other dimensions in their
original relative order.  Local optimization: when the array's highest
dimension is BLOCK-distributed, its processor dimension is already
rightmost, so neither strip-mining nor permutation is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.obs import provenance
from repro.datatrans.layout import DimAtom, Layout
from repro.decomp.model import DataDecomp, Folding, FoldKind
from repro.ir.arrays import ArrayDecl


@dataclass(frozen=True)
class OwnerSpec:
    """How to compute the owning processor (along one grid dimension)
    from an original array index: ``((x[src] // div) % mod)``, clamped
    to the grid size for padded BLOCK strips."""

    proc_dim: int
    src: int
    div: int
    mod: Optional[int]
    nproc: int

    def owner(self, x: int) -> int:
        v = x // self.div
        if self.mod is not None:
            v %= self.mod
        return min(v, self.nproc - 1)

    def owner_vec(self, x):
        import numpy as np

        v = np.asarray(x) // self.div
        if self.mod is not None:
            v = v % self.mod
        return np.minimum(v, self.nproc - 1)


@dataclass
class TransformedArray:
    """An array together with its (possibly restructured) layout."""

    decl: ArrayDecl
    layout: Layout
    owner_specs: Tuple[OwnerSpec, ...]
    restructured: bool
    replicated: bool = False

    @property
    def size(self) -> int:
        return self.layout.size

    @property
    def nbytes(self) -> int:
        return self.layout.size * self.decl.element_size

    def owner_coords(self, index: Sequence[int]) -> Tuple[int, ...]:
        """Grid coordinates (ordered by processor dimension) owning an
        element; empty for replicated/undistributed arrays."""
        return tuple(s.owner(index[s.src]) for s in self.owner_specs)

    def address(self, index: Sequence[int]) -> int:
        """Element offset of an original index in the new layout."""
        return self.layout.linearize(index)


def identity_transform(decl: ArrayDecl) -> TransformedArray:
    """The no-op transform: original column-major layout, no owners."""
    return TransformedArray(
        decl=decl,
        layout=Layout.identity(decl.dims),
        owner_specs=(),
        restructured=False,
    )


def derive_layout(
    decl: ArrayDecl,
    decomp: Optional[DataDecomp],
    foldings: Sequence[Folding],
    grid: Sequence[int],
    restructure: bool = True,
    line_pad_elements: Optional[int] = None,
) -> TransformedArray:
    """Apply the Section 4.2 algorithm to one array.

    ``restructure=False`` computes the owner information only (this is
    what the COMP-DECOMP-only configuration uses: decompositions chosen,
    layouts left in FORTRAN order).

    ``line_pad_elements`` optionally pads each processor's contiguous
    partition to a multiple of that many elements (one cache line),
    eliminating residual false sharing at partition boundaries — the
    padding technique of Jeremiassen & Eggers discussed in the paper's
    related work, offered here as an extension.
    """
    out = _derive_impl(
        decl, decomp, foldings, grid, restructure, line_pad_elements
    )
    if provenance.active():
        if decomp is None or not decomp.matrix:
            chosen, reason = "identity", "undistributed"
        elif decomp.replicated:
            chosen, reason = "identity", "replicated"
        elif not restructure:
            chosen, reason = "identity", "comp-decomp only"
        elif out.restructured:
            chosen, reason = "strip-mine+permute", "strip-mine + permute"
        elif all(
            (grid[p] if p < len(grid) else 1) <= 1
            for p, _ in decomp.distributed_dims()
        ):
            chosen, reason = "identity", "single processor along mapped dims"
        else:
            chosen, reason = "identity", "local optimization"
        provenance.record(
            "datatrans.layout", stage="layout", subject=decl.name,
            chosen=chosen, alternatives=["identity", "strip-mine+permute"],
            reason=reason, grid=list(grid), dims=list(decl.dims),
            atoms=[
                f"x{a.src}//{a.div}"
                + (f"%{a.mod}" if a.mod is not None else "")
                + f":{a.extent}"
                for a in out.layout.atoms
            ],
            strips=[
                f"dim{s.src}->P{s.proc_dim} div={s.div} mod={s.mod}"
                for s in out.owner_specs
            ],
            line_pad_elements=line_pad_elements,
        )
    if obs.enabled():
        obs.event(
            "datatrans.layout", cat="datatrans", array=decl.name,
            restructured=out.restructured, replicated=out.replicated,
            atoms=len(out.layout.atoms), rank=decl.rank,
            size=out.layout.size,
            strip_mined=len(out.layout.atoms) > decl.rank,
            permuted=out.restructured,
        )
        obs.inc(
            "datatrans.restructured" if out.restructured
            else "datatrans.identity"
        )
    return out


def _derive_impl(
    decl: ArrayDecl,
    decomp: Optional[DataDecomp],
    foldings: Sequence[Folding],
    grid: Sequence[int],
    restructure: bool = True,
    line_pad_elements: Optional[int] = None,
) -> TransformedArray:
    if decomp is None or decomp.replicated or not decomp.matrix:
        out = identity_transform(decl)
        out.replicated = bool(decomp and decomp.replicated)
        return out

    dd = decomp.distributed_dims()  # (proc_dim, array_dim) pairs
    owner_specs: List[OwnerSpec] = []
    # (atom, role): role None = data, else the processor grid dimension.
    atoms_roles: List[Tuple[DimAtom, Optional[int]]] = [
        (DimAtom(src=k, extent=d), None) for k, d in enumerate(decl.dims)
    ]
    any_restructured = False

    for p, k in sorted(dd, key=lambda t: t[1]):
        nproc = grid[p] if p < len(grid) else 1
        fold = foldings[p] if p < len(foldings) else Folding(FoldKind.BLOCK)
        d = decl.dims[k]
        if fold.kind is FoldKind.BLOCK:
            b = -(-d // nproc)
            owner_specs.append(OwnerSpec(p, k, div=b, mod=None, nproc=nproc))
        elif fold.kind is FoldKind.CYCLIC:
            owner_specs.append(OwnerSpec(p, k, div=1, mod=nproc, nproc=nproc))
        else:
            owner_specs.append(
                OwnerSpec(p, k, div=fold.block, mod=nproc, nproc=nproc)
            )
        if not restructure or nproc <= 1:
            continue
        # Local optimization: highest dimension distributed BLOCK is
        # already rightmost — no strip-mine, no permutation.
        if fold.kind is FoldKind.BLOCK and k == decl.rank - 1:
            continue
        # Locate the original atom for dimension k.
        pos = next(
            i for i, (a, _) in enumerate(atoms_roles) if a.src == k
        )
        if fold.kind is FoldKind.BLOCK:
            b = -(-d // nproc)
            inner = DimAtom(src=k, extent=b, div=1, mod=b)
            outer = DimAtom(src=k, extent=-(-d // b), div=b, mod=None)
            atoms_roles[pos : pos + 1] = [(inner, None), (outer, p)]
        elif fold.kind is FoldKind.CYCLIC:
            inner = DimAtom(src=k, extent=nproc, div=1, mod=nproc)
            outer = DimAtom(src=k, extent=-(-d // nproc), div=nproc, mod=None)
            atoms_roles[pos : pos + 1] = [(inner, p), (outer, None)]
        else:
            b = fold.block
            first = DimAtom(src=k, extent=b, div=1, mod=b)
            mid = DimAtom(src=k, extent=nproc, div=b, mod=nproc)
            outer = DimAtom(
                src=k, extent=-(-d // (b * nproc)), div=b * nproc, mod=None
            )
            atoms_roles[pos : pos + 1] = [(first, None), (mid, p), (outer, None)]
        any_restructured = True

    if any_restructured:
        data_atoms = [a for a, r in atoms_roles if r is None]
        proc_atoms = sorted(
            ((a, r) for a, r in atoms_roles if r is not None),
            key=lambda t: t[1],
        )
        if line_pad_elements and line_pad_elements > 1 and data_atoms:
            # Pad the slowest data atom so the per-processor partition
            # (the product of data-atom extents) is line-aligned.
            part = 1
            for a in data_atoms:
                part *= a.extent
            inner = part // data_atoms[-1].extent
            ext = data_atoms[-1].extent
            while (inner * ext) % line_pad_elements:
                ext += 1
            if ext != data_atoms[-1].extent:
                old = data_atoms[-1]
                data_atoms[-1] = DimAtom(
                    src=old.src, extent=ext, div=old.div, mod=old.mod
                )
                any_restructured = True
        atoms = tuple(data_atoms + [a for a, _ in proc_atoms])
    else:
        atoms = tuple(a for a, _ in atoms_roles)

    layout = Layout(orig_dims=decl.dims, atoms=atoms)
    owner_specs.sort(key=lambda s: s.proc_dim)
    return TransformedArray(
        decl=decl,
        layout=layout,
        owner_specs=tuple(owner_specs),
        restructured=any_restructured,
    )
