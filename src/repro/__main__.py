"""Command-line interface.

Usage examples::

    python -m repro list
    python -m repro decompose lu --n 32 --procs 8
    python -m repro run stencil5 --n 64 --procs 16 --scale 32
    python -m repro emit simple --scheme data --n 16 --procs 4
    python -m repro profile simple --scheme comp_decomp_data -o trace.json
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import ALL_APPS
from repro.compiler import (
    Scheme,
    compile_program,
    emit_c_program,
    restructure_program,
)

SCHEME_NAMES = {
    "base": Scheme.BASE,
    "comp": Scheme.COMP_DECOMP,
    "data": Scheme.COMP_DECOMP_DATA,
}

# The profile subcommand also accepts the spelled-out scheme names.
PROFILE_SCHEMES = {
    **SCHEME_NAMES,
    "comp_decomp": Scheme.COMP_DECOMP,
    "comp_decomp_data": Scheme.COMP_DECOMP_DATA,
}


def _build(name: str, n: int):
    if name not in ALL_APPS:
        raise SystemExit(
            f"unknown app {name!r}; available: {', '.join(sorted(ALL_APPS))}"
        )
    mod = ALL_APPS[name]
    import inspect

    sig = inspect.signature(mod.build)
    kwargs = {"n": n}
    return mod.build(**kwargs)


def cmd_list(args) -> int:
    print("benchmark programs (repro.apps):")
    for name, mod in sorted(ALL_APPS.items()):
        doc = (mod.__doc__ or "").strip().splitlines()
        head = doc[0] if doc else ""
        print(f"  {name:12s} {head}")
    return 0


def cmd_decompose(args) -> int:
    prog = _build(args.app, args.n)
    from repro.decomp.greedy import decompose_program

    decomp = decompose_program(restructure_program(prog), args.procs)
    print(decomp.summary())
    if args.verbose:
        for (nest, stmt), cd in sorted(decomp.comp.items()):
            print(f"  C[{nest}#{stmt}] = {cd.matrix}")
    return 0


def cmd_emit(args) -> int:
    prog = _build(args.app, args.n)
    spmd = compile_program(prog, SCHEME_NAMES[args.scheme], args.procs)
    print(emit_c_program(spmd))
    return 0


def cmd_run(args) -> int:
    from repro.machine import scaled_dash
    from repro.machine.simulate import speedup_curve
    from repro.report import format_speedup_table

    prog = _build(args.app, args.n)
    schemes = (
        [SCHEME_NAMES[args.scheme]]
        if args.scheme != "all"
        else list(SCHEME_NAMES.values())
    )
    factory = lambda p: scaled_dash(
        p, scale=args.scale,
        word_bytes=min(d.element_size for d in prog.arrays.values()),
    )
    procs = [int(x) for x in args.procs_list.split(",")]
    curves = speedup_curve(prog, schemes, factory, procs)
    print(format_speedup_table(
        curves, title=f"{args.app} N={args.n}, scaled DASH /{args.scale}"
    ))
    return 0


def cmd_profile(args) -> int:
    from repro import obs
    from repro.machine import scaled_dash
    from repro.machine.simulate import simulate
    from repro.obs.export import summary, write_chrome_trace, write_json
    from repro.report import format_profile_table

    obs.enable(reset=True)
    prog = _build(args.app, args.n)
    scheme = PROFILE_SCHEMES[args.scheme]
    machine = scaled_dash(
        args.procs, scale=args.scale,
        word_bytes=min(d.element_size for d in prog.arrays.values()),
    )
    with obs.span("profile", cat="cli", app=args.app,
                  scheme=scheme.value, nprocs=args.procs):
        spmd = compile_program(prog, scheme, args.procs)
        res = simulate(spmd, machine, detail=True)

    print(summary())
    print()
    print(format_profile_table(res))
    if args.output:
        if args.format == "chrome":
            write_chrome_trace(args.output)
            print(f"\nwrote Chrome trace to {args.output} "
                  "(load in chrome://tracing or https://ui.perfetto.dev)")
        else:
            write_json(args.output)
            print(f"\nwrote JSON telemetry dump to {args.output}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Anderson/Amarasinghe/Lam PPoPP'95 reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark programs")

    p = sub.add_parser("decompose", help="show a program's decomposition")
    p.add_argument("app")
    p.add_argument("--n", type=int, default=32)
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--verbose", action="store_true")

    p = sub.add_parser("emit", help="emit the SPMD C source")
    p.add_argument("app")
    p.add_argument("--n", type=int, default=16)
    p.add_argument("--procs", type=int, default=4)
    p.add_argument("--scheme", choices=sorted(SCHEME_NAMES), default="data")

    p = sub.add_parser("run", help="simulate and print speedups")
    p.add_argument("app")
    p.add_argument("--n", type=int, default=48)
    p.add_argument("--procs-list", default="1,2,4,8,16,32")
    p.add_argument("--scale", type=int, default=16)
    p.add_argument("--scheme", choices=sorted(SCHEME_NAMES) + ["all"],
                   default="all")

    p = sub.add_parser(
        "profile",
        help="compile + simulate with observability on; dump the trace",
    )
    p.add_argument("app")
    p.add_argument("--n", type=int, default=32)
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--scale", type=int, default=16)
    p.add_argument("--scheme", choices=sorted(PROFILE_SCHEMES),
                   default="comp_decomp_data")
    p.add_argument("-o", "--output", default=None,
                   help="trace output path (Chrome trace-event JSON)")
    p.add_argument("--format", choices=["chrome", "json"], default="chrome",
                   help="output format: Chrome trace events or full dump")

    args = parser.parse_args(argv)
    return {
        "list": cmd_list,
        "decompose": cmd_decompose,
        "emit": cmd_emit,
        "run": cmd_run,
        "profile": cmd_profile,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
