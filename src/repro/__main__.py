"""Command-line interface.

Usage examples::

    python -m repro list
    python -m repro decompose lu --n 32 --procs 8
    python -m repro run stencil5 --n 64 --procs 16 --scale 32
    python -m repro emit simple --scheme data --n 16 --procs 4
    python -m repro profile simple --scheme comp_decomp_data -o trace.json
    python -m repro batch --apps simple,lu --schemes base,comp,data \\
        --procs-list 1,4 --jobs 4 --cache-dir /tmp/repro-cache

Caching: every command accepts ``--no-cache`` (run every compiler pass,
reuse nothing) and ``--cache`` (persist artifacts to a disk store —
``--cache-dir``, ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``).  The
default is an in-process memory cache (plus the disk store when
``$REPRO_CACHE_DIR``/``$REPRO_CACHE`` is set).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.apps import ALL_APPS, build_app
from repro.codegen.spmd import (
    SCHEME_ALIASES,
    SCHEME_NAMES,
    parse_scheme,
)
from repro.compiler import (
    Scheme,
    compile_program,
    emit_c_program,
    restructure_program,
)


def _build(name: str, n=None, time_steps=None):
    try:
        return build_app(name, n=n, time_steps=time_steps)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _split_csv(text: str):
    return [t.strip() for t in text.split(",") if t.strip()]


# -- argument validation (one-line errors, applied by argparse) --------------

def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonneg_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {text!r}")
    if not value > 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _nonneg_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _procs_csv(text: str):
    """A non-empty comma-separated list of processor counts (each >= 1).
    Used as an argparse ``type`` so string defaults are parsed too."""
    items = _split_csv(text)
    if not items:
        raise argparse.ArgumentTypeError(
            "expected a non-empty comma-separated list of processor "
            "counts")
    return [_positive_int(t) for t in items]


def _apply_session_args(args):
    """Install a fresh default session configured per the cache flags;
    returns it.  (Each CLI command starts cold — in particular
    ``profile`` traces real pass work — and warms up from the disk
    store when one is configured.)"""
    from repro import pipeline

    no_cache = getattr(args, "no_cache", False)
    cache_dir = getattr(args, "cache_dir", None)
    want_disk = bool(getattr(args, "cache", False) or cache_dir)
    if no_cache:
        session = pipeline.CompileSession(cache=None)
    elif want_disk:
        disk = pipeline.resolve_disk_dir(cache_dir)
        if disk is None:
            disk = Path("~/.cache/repro").expanduser()
        session = pipeline.CompileSession(
            cache=pipeline.ArtifactCache(disk_dir=disk)
        )
    else:
        session = pipeline.CompileSession()
    pipeline.set_session(session)
    return session


def _add_cache_flags(p: argparse.ArgumentParser) -> None:
    g = p.add_mutually_exclusive_group()
    g.add_argument("--cache", action="store_true",
                   help="persist compiler artifacts to the disk cache")
    g.add_argument("--no-cache", action="store_true",
                   help="disable artifact caching entirely")
    p.add_argument("--cache-dir", default=None,
                   help="disk cache directory (implies --cache)")


def _add_store_flags(p: argparse.ArgumentParser,
                     expect: bool = False) -> None:
    p.add_argument("--incremental", action="store_true",
                   help="serve points whose program/machine/model key "
                        "is unchanged from the persistent result store; "
                        "execute (and store) only the rest")
    p.add_argument("--store-dir", default=None, metavar="DIR",
                   help="result-store directory (default: "
                        "$REPRO_STORE_DIR or ~/.cache/repro/results; "
                        "enables store write-back)")
    if expect:
        p.add_argument("--expect-incremental", type=_nonneg_int,
                       default=None, metavar="N",
                       help="exit nonzero unless exactly N points "
                            "executed, the rest served from the store "
                            "(implies --incremental; CI guard)")


def _result_store(args):
    """The (store, incremental) pair selected by the store flags;
    ``(None, False)`` when no store surface was requested."""
    from repro.pipeline.store import ResultStore, resolve_store_dir

    incremental = bool(
        getattr(args, "incremental", False)
        or getattr(args, "expect_incremental", None) is not None
    )
    store_dir = getattr(args, "store_dir", None)
    if not (incremental or store_dir):
        return None, False
    return ResultStore(resolve_store_dir(store_dir)), incremental


def cmd_list(args) -> int:
    print("benchmark programs (repro.apps):")
    for name, mod in sorted(ALL_APPS.items()):
        doc = (mod.__doc__ or "").strip().splitlines()
        head = doc[0] if doc else ""
        print(f"  {name:12s} {head}")
    return 0


def cmd_decompose(args) -> int:
    _apply_session_args(args)
    prog = _build(args.app, args.n, args.time_steps)
    from repro.decomp.greedy import decompose_program

    decomp = decompose_program(restructure_program(prog), args.procs)
    print(decomp.summary())
    if args.verbose:
        for (nest, stmt), cd in sorted(decomp.comp.items()):
            print(f"  C[{nest}#{stmt}] = {cd.matrix}")
    return 0


def cmd_emit(args) -> int:
    _apply_session_args(args)
    prog = _build(args.app, args.n, args.time_steps)
    spmd = compile_program(prog, parse_scheme(args.scheme), args.procs)
    print(emit_c_program(spmd))
    return 0


def cmd_run(args) -> int:
    from repro.report import format_speedup_table

    session = _apply_session_args(args)
    prog = _build(args.app, args.n, args.time_steps)
    schemes = (
        [parse_scheme(args.scheme)]
        if args.scheme != "all"
        else list(SCHEME_NAMES.values())
    )
    procs = args.procs_list
    if args.jobs > 1:
        curves = _parallel_speedup_curves(args, schemes, procs)
    else:
        from repro.machine import scaled_dash
        from repro.machine.simulate import speedup_curve

        factory = lambda p: scaled_dash(
            p, scale=args.scale,
            word_bytes=min(d.element_size for d in prog.arrays.values()),
        )
        curves = speedup_curve(prog, schemes, factory, procs,
                               session=session)
    print(format_speedup_table(
        curves, title=f"{args.app} N={args.n}, scaled DASH /{args.scale}"
    ))
    if args.verify:
        return _post_run_verify([args.app], schemes, procs,
                                args.verify_n, args.time_steps, session)
    return 0


def _post_run_verify(apps, schemes, procs, verify_n, time_steps,
                     session=None) -> int:
    """Run the semantic oracle over the unique grid coordinates of a
    finished run/batch, at a small capped problem size."""
    from repro.verify import format_verify_table, grid_ok, verify_grid

    results = verify_grid(apps, schemes, sorted(set(procs)),
                          n=verify_n, time_steps=time_steps,
                          session=session)
    print()
    print(format_verify_table(
        results, title=f"semantic verification (n={verify_n})"))
    return 0 if grid_ok(results) else 1


def _parallel_speedup_curves(args, schemes, procs):
    """The speedup sweep via the batch driver (identical math to the
    serial path: one decomposition pinned at max(procs), speedups over
    BASE on one processor)."""
    from repro import obs
    from repro.pipeline.batch import BatchPoint, run_batch

    maxp = max(procs)
    coords = [(Scheme.BASE, 1)]
    for scheme in schemes:
        for p in procs:
            if (scheme, p) not in coords:
                coords.append((scheme, p))
    points = [
        BatchPoint(
            app=args.app, scheme=scheme.value, nprocs=p, n=args.n,
            time_steps=args.time_steps, scale=args.scale,
            decomp_procs=None if scheme is Scheme.BASE else maxp,
        )
        for scheme, p in coords
    ]
    results = run_batch(
        points, jobs=args.jobs,
        cache=not args.no_cache,
        disk_dir=args.cache_dir,
    )
    for r in results:
        if not r.ok:
            raise SystemExit(
                f"point {r.point.label()} failed:\n{r.error}"
            )
    by_coord = {c: r for c, r in zip(coords, results)}
    seq_time = by_coord[(Scheme.BASE, 1)].total_time
    curves = {}
    for scheme in schemes:
        series = []
        for p in procs:
            t = by_coord[(scheme, p)].total_time
            if t > 0.0:
                s = seq_time / t
            else:
                s = 1.0
                obs.event("sim.zero_time", cat="machine",
                          scheme=scheme.value, nprocs=p,
                          seq_time=seq_time)
            series.append((p, s))
        curves[scheme.value] = series
    return curves


def cmd_profile(args) -> int:
    from repro import obs
    from repro.machine import scaled_dash
    from repro.machine.simulate import simulate
    from repro.obs.export import summary, write_chrome_trace, write_json
    from repro.report import format_profile_table

    _apply_session_args(args)
    obs.enable(reset=True)
    prog = _build(args.app, args.n, args.time_steps)
    scheme = parse_scheme(args.scheme)
    machine = scaled_dash(
        args.procs, scale=args.scale,
        word_bytes=min(d.element_size for d in prog.arrays.values()),
    )
    with obs.span("profile", cat="cli", app=args.app,
                  scheme=scheme.value, nprocs=args.procs):
        spmd = compile_program(prog, scheme, args.procs)
        res = simulate(spmd, machine, detail=True, locality=True)

    print(summary())
    print()
    print(format_profile_table(res))
    if args.json:
        from repro.report import profile_as_dict

        text = json.dumps(profile_as_dict(res), indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            _write_text(args.json, text + "\n", "profile JSON")
    if args.output:
        if args.format == "chrome":
            try:
                write_chrome_trace(args.output)
            except OSError as exc:
                raise SystemExit(f"cannot write {args.output}: {exc}")
            print(f"\nwrote Chrome trace to {args.output} "
                  "(load in chrome://tracing or https://ui.perfetto.dev)")
        else:
            try:
                write_json(args.output)
            except OSError as exc:
                raise SystemExit(f"cannot write {args.output}: {exc}")
            print(f"\nwrote JSON telemetry dump to {args.output}")
    return 0


def _write_text(path: str, text: str, what: str) -> None:
    """Write a CLI artifact, turning I/O failures (missing directory,
    permissions) into one-line errors instead of tracebacks."""
    try:
        with open(path, "w") as fh:
            fh.write(text)
    except OSError as exc:
        raise SystemExit(f"cannot write {what} to {path}: {exc}")
    print(f"\nwrote {what} to {path}")


def _grid_args(args):
    """Validated (apps, schemes) of a grid command (batch/bench-style
    --apps/--schemes flags)."""
    apps = _split_csv(args.apps)
    if not apps:
        raise SystemExit("no apps selected")
    for a in apps:
        if a not in ALL_APPS:
            raise SystemExit(
                f"unknown app {a!r}; available: "
                f"{', '.join(sorted(ALL_APPS))}"
            )
    try:
        schemes = [parse_scheme(s) for s in _split_csv(args.schemes)]
    except ValueError as exc:
        raise SystemExit(str(exc))
    if not schemes:
        raise SystemExit("no schemes selected")
    return apps, schemes


def cmd_hotspots(args) -> int:
    """``python -m repro hotspots``: sample the compile+simulate hot
    path over a grid and report self/cumulative time per function plus
    the locality analytics of every point."""
    from repro.machine.simulate import simulate
    from repro.obs.hotspot import HotspotProfiler
    from repro.pipeline.grid import GridSpec, point_machine, point_program
    from repro.report import (
        format_hotspot_table,
        format_locality_table,
        hotspots_html,
    )

    apps, schemes = _grid_args(args)
    _apply_session_args(args)

    # One enumeration shared with batch/bench/verify; programs repeat
    # across a grid's schemes/procs, so builds are memoized per app.
    spec = GridSpec(
        apps=tuple(apps), schemes=tuple(s.value for s in schemes),
        procs=tuple(args.procs_list), n=args.n,
        time_steps=args.time_steps, scale=args.scale,
    )
    progs = {}
    points = []
    # Collapsed stacks are only accumulated when a flamegraph was
    # asked for; the default sampling path stays unchanged.
    profiler = HotspotProfiler(interval=args.interval,
                               collect_stacks=bool(args.flame))
    profiler.start()
    try:
        for point in spec.points():
            if point.app not in progs:
                try:
                    progs[point.app] = point_program(point)
                except ValueError as exc:
                    raise SystemExit(str(exc))
            prog = progs[point.app]
            machine = point_machine(point, prog)
            spmd = compile_program(prog, parse_scheme(point.scheme),
                                   point.nprocs)
            for _ in range(args.repeats):
                res = simulate(spmd, machine)
            points.append((point, spmd, machine, res))
    finally:
        report = profiler.stop()

    # Locality analytics run *outside* the profiling window: they are
    # O(n log n) Python-side work that would otherwise drown out the
    # production hot path they are meant to explain.
    out_points = []
    for point, spmd, machine, res in points:
        loc = simulate(spmd, machine, locality=True).locality
        out_points.append({
            "app": point.app,
            "scheme": parse_scheme(point.scheme).value,
            "nprocs": point.nprocs,
            "total_time": res.total_time,
            "n_accesses": res.n_accesses,
            "locality": loc,
        })

    payload = {
        "config": {
            "apps": apps,
            "schemes": [s.value for s in schemes],
            "procs": args.procs_list,
            "n": args.n,
            "time_steps": args.time_steps,
            "scale": args.scale,
            "repeats": args.repeats,
            "interval": args.interval,
        },
        "hotspots": report.as_dict(),
        "points": out_points,
    }

    print(format_hotspot_table(payload["hotspots"], top=args.top))
    for point in out_points:
        print()
        print(f"point: {point['app']} {point['scheme']} "
              f"P={point['nprocs']}")
        print(format_locality_table(point["locality"]))

    if args.json:
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            _write_text(args.json, text + "\n", "hotspots JSON")
    if args.html:
        _write_text(args.html, hotspots_html(payload), "hotspots HTML")
    if args.flame:
        from repro.obs.flame import flamegraph_svg

        _write_text(args.flame,
                    flamegraph_svg(report.stacks or {},
                                   title="repro hotspots"),
                    "flamegraph SVG")

    if args.expect_hot:
        ranked_fns = [f.key for f in report.top(5, include_external=False)]
        modules = sorted(report.by_module().items(),
                         key=lambda kv: (-kv[1], kv[0]))
        ranked_mods = [m for m, _ in modules[:5]]
        hit = any(args.expect_hot in k for k in ranked_fns + ranked_mods)
        if not hit:
            print(f"error: --expect-hot {args.expect_hot!r} not in the "
                  f"top-5 self-time ranking (functions: {ranked_fns}; "
                  f"modules: {ranked_mods})", file=sys.stderr)
            return 1
        print(f"\nexpect-hot OK: {args.expect_hot!r} is in the top-5 "
              "self-time ranking")
    return 0


def cmd_verify(args) -> int:
    """``python -m repro verify``: the semantic oracle over a grid."""
    from repro.verify import format_verify_table, grid_ok, verify_grid

    session = _apply_session_args(args)
    apps = (
        sorted(ALL_APPS)
        if args.apps.strip() == "all"
        else _split_csv(args.apps)
    )
    if not apps:
        raise SystemExit("no apps selected")
    for a in apps:
        if a not in ALL_APPS:
            raise SystemExit(
                f"unknown app {a!r}; available: "
                f"{', '.join(sorted(ALL_APPS))}"
            )
    try:
        schemes = [parse_scheme(s) for s in _split_csv(args.schemes)]
    except ValueError as exc:
        raise SystemExit(str(exc))
    if not schemes:
        raise SystemExit("no schemes selected")

    store, _ = _result_store(args)
    results = verify_grid(apps, schemes, args.procs_list,
                          n=args.n, time_steps=args.time_steps,
                          session=session, store=store)
    print(format_verify_table(
        results,
        title=f"semantic verification (n={args.n}, "
              f"procs={','.join(str(p) for p in args.procs_list)})",
    ))
    if store is not None:
        st = store.stats_dict()
        print(f"result store: {st['hits']} verdicts served, "
              f"{st['misses']} verified live "
              f"({st['entries']} entries, {st['bytes']} bytes)")
    if grid_ok(results):
        print("ALL OK")
        return 0
    return 1


def cmd_batch(args) -> int:
    import os
    from dataclasses import asdict

    from repro import faults, obs
    from repro.errors import JournalError
    from repro.pipeline import journal as journal_mod
    from repro.pipeline.batch import (
        make_grid,
        merged_trace,
        run_batch,
        summarize,
    )
    from repro.pipeline.grid import GracefulShutdown
    from repro.pipeline.store import resolve_store_dir

    store, incremental = _result_store(args)
    if args.resume is not None and args.no_journal:
        raise SystemExit("--resume needs the journal; drop --no-journal")
    want_journal = (not args.no_journal
                    and (store is not None or args.resume is not None))
    jdir = (journal_mod.journal_dir(resolve_store_dir(args.store_dir))
            if want_journal else None)

    degrade = not args.no_degrade
    locality = bool(args.json)
    journal = None
    preset = None
    if args.resume is not None:
        # The grid comes from the journal, not the CLI flags: a resume
        # must execute exactly the run it is resuming.
        try:
            run_id = journal_mod.resolve_run_id(jdir, args.resume)
            state = journal_mod.JournalState.load(
                jdir / f"{run_id}.jsonl")
            state.validate()
            points = state.points()
        except JournalError as exc:
            raise SystemExit(f"batch --resume: {exc}")
        spec = state.spec
        degrade = bool(spec.get("degrade", degrade))
        locality = bool(spec.get("locality", locality))
        preset = state.finished_results()
        if state.complete:
            print(f"note: run {run_id} already completed; serving all "
                  f"{len(preset)} journaled points")
        else:
            print(f"resuming {run_id}: {len(preset)}/{len(points)} "
                  f"points already journaled")
            mid_flight = state.in_flight
            if mid_flight:
                labels = ", ".join(points[i].label()
                                   for i in mid_flight[:6]
                                   if 0 <= i < len(points))
                more = (f", +{len(mid_flight) - 6} more"
                        if len(mid_flight) > 6 else "")
                print(f"  {len(mid_flight)} points were mid-flight "
                      f"when the previous driver stopped "
                      f"({labels}{more}); they re-execute with a "
                      f"full retry budget")
        journal = journal_mod.JournalWriter.reopen(jdir, run_id)
        apps = sorted({p.app for p in points})
        schemes = sorted({parse_scheme(p.scheme) for p in points},
                         key=lambda s: s.value)
        procs = sorted({p.nprocs for p in points})
    else:
        apps, schemes = _grid_args(args)
        procs = args.procs_list
        points = make_grid(
            apps, [s.value for s in schemes], procs,
            n=args.n, time_steps=args.time_steps, scale=args.scale,
            pin_decomp=args.pin_decomp,
        )
        if want_journal:
            spec = {
                "points": [asdict(p) for p in points],
                "degrade": degrade,
                "locality": locality,
            }
            journal = journal_mod.JournalWriter.create(jdir, spec)
    preset_ids = {id(r) for r in (preset or {}).values()}
    shutdown = GracefulShutdown(drain_seconds=args.drain)

    # Live monitoring rides on the journal: heartbeats interleave with
    # the run's own records and a TS_<run_id>.jsonl series lands next
    # to it, so `repro status/watch/report` work from the store dir
    # alone.  --heartbeat 0 turns the whole layer off.
    monitor = None
    if journal is not None and args.heartbeat > 0:
        from repro.obs.runstate import RunMonitor
        from repro.obs.timeseries import TimeseriesSink, ts_path

        sink = TimeseriesSink(ts_path(jdir, journal.run_id),
                              journal.run_id)
        monitor = RunMonitor(total=len(points), journal=journal,
                             sink=sink, interval=args.heartbeat,
                             jobs=args.jobs)
        if preset:
            # Journal-served points are finished work: count them so a
            # resumed run's progress bar starts where the last one died.
            monitor.dispatched = monitor.finished = len(preset)

    disk_dir = None
    if not args.no_cache:
        from repro.pipeline import resolve_disk_dir

        disk = resolve_disk_dir(args.cache_dir)
        if disk is None and args.cache:
            disk = Path("~/.cache/repro").expanduser()
        disk_dir = str(disk) if disk is not None else None

    saved_faults = os.environ.get(faults.ENV_FLAG)
    if args.inject_faults is not None:
        try:
            spec = faults.FaultPlan.parse(args.inject_faults).spec()
        except ValueError as exc:
            raise SystemExit(str(exc))
        # Configure the driver process and export the spec so spawned
        # workers inherit the same deterministic plan.
        faults.configure(spec)
        os.environ[faults.ENV_FLAG] = spec
    # --trace-out / --json both need telemetry: the driver records its
    # own spans (retry/respawn accounting; in serial mode every point)
    # and parallel workers ship per-point snapshots back for the merge.
    collect = bool(args.trace_out or args.json)
    if collect:
        obs.enable(reset=True)
    try:
        with shutdown.install():
            results = run_batch(
                points, jobs=args.jobs,
                cache=not args.no_cache, disk_dir=disk_dir,
                timeout=args.timeout, retries=args.retries,
                backoff=args.backoff, degrade=degrade,
                collect_telemetry=collect,
                locality=locality,
                store=store, incremental=incremental,
                journal=journal, shutdown=shutdown, preset=preset,
                monitor=monitor,
            )
    finally:
        if args.inject_faults is not None:
            faults.configure(None)
            if saved_faults is None:
                os.environ.pop(faults.ENV_FLAG, None)
            else:
                os.environ[faults.ENV_FLAG] = saved_faults
    # Points executed by *this* process: not store-served, and not one
    # of the journaled results a --resume rehydrated.
    live_executed = sum(
        1 for r in results
        if not r.store_hit and id(r) not in preset_ids)
    if monitor is not None:
        # Final heartbeat (terminal counts) before the end record.
        monitor.close()
    if journal is not None:
        journal.end(
            "interrupted" if shutdown.triggered else "complete",
            executed=live_executed)
        journal.close()
    merged = None
    if collect:
        merged = merged_trace(results)
        obs.disable()

    print(f"{'app':12s} {'scheme':6s} {'P':>3s} {'time':>12s} "
          f"{'accesses':>10s} {'runs':>5s} {'hits':>5s} {'try':>3s}"
          f"  status")
    for r in results:
        p = r.point
        if r.ok:
            status = "ok (store)" if r.store_hit else "ok"
            if id(r) in preset_ids:
                status = "ok (journal)"
            if r.degraded:
                first = (r.degrade_reason or "?").strip().splitlines()[0]
                status = f"ok (degraded to base: {first})"
            print(f"{p.app:12s} {p.scheme:6s} {p.nprocs:3d} "
                  f"{r.total_time:12.4e} {r.n_accesses:10d} "
                  f"{sum(r.pass_runs.values()):5d} "
                  f"{sum(r.pass_hits.values()):5d} {r.attempts:3d}"
                  f"  {status}")
        else:
            first = r.error.strip().splitlines()[-1] if r.error else "?"
            print(f"{p.app:12s} {p.scheme:6s} {p.nprocs:3d} "
                  f"{'-':>12s} {'-':>10s} {'-':>5s} {'-':>5s} "
                  f"{r.attempts:3d}  ERROR: {first}")
    agg = summarize(results)
    runs = ", ".join(f"{k}={v}" for k, v in sorted(agg["pass_runs"].items()))
    hits = ", ".join(f"{k}={v}" for k, v in sorted(agg["pass_hits"].items()))
    print(f"\npoints: {agg['points']}  ok: {agg['ok']}  "
          f"errors: {agg['errors']}  degraded: {agg['degraded']}  "
          f"retried: {agg['retried']}")
    print(f"pass executions: {runs or 'none'} "
          f"(total {agg['total_pass_runs']})")
    print(f"cache hits: {hits or 'none'}")
    print(f"fully cached: {'yes' if agg['fully_cached'] else 'no'}")
    if store is not None:
        st = store.stats_dict()
        print(f"result store: {agg['store_hits']} served, "
              f"{agg['executed']} executed "
              f"(hits {st['hits']}, misses {st['misses']}, "
              f"invalidations {st['invalidations']}, "
              f"evictions {st['evictions']}, "
              f"{st['entries']} entries, {st['bytes']} bytes)")
    if journal is not None:
        print(f"journal: {journal.run_id} "
              f"({journal.appends} appends, {journal.errors} errors, "
              f"{len(preset_ids)} served from journal, "
              f"{live_executed} executed live)")

    if args.trace_out and merged is not None:
        merged.write(args.trace_out)
        pids = ", ".join(str(p) for p in merged.worker_pids())
        print(f"wrote merged Chrome trace to {args.trace_out} "
              f"(worker pids: {pids or 'none — serial run'}; load in "
              "chrome://tracing or https://ui.perfetto.dev)")

    if args.json:
        payload = {"summary": agg,
                   "results": [r.as_dict() for r in results]}
        if store is not None:
            payload["store"] = store.stats_dict()
        if journal is not None:
            payload["journal"] = {
                "run_id": journal.run_id,
                "appends": journal.appends,
                "errors": journal.errors,
                "resumed": bool(preset),
                "served_from_journal": len(preset_ids),
                "executed_live": live_executed,
                "interrupted": shutdown.triggered,
            }
        if merged is not None:
            payload["telemetry"] = _batch_telemetry(merged, agg)
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)
        print(f"wrote JSON results to {args.json}")

    rc = 1 if agg["errors"] else 0
    if args.expect_cached and not agg["fully_cached"]:
        print("error: --expect-cached but passes executed",
              file=sys.stderr)
        rc = 1
    if args.expect_incremental is not None \
            and agg["executed"] != args.expect_incremental:
        print(f"error: --expect-incremental {args.expect_incremental} "
              f"but {agg['executed']} points executed "
              f"({agg['store_hits']} served from the store)",
              file=sys.stderr)
        rc = 1
    if args.expect_executed is not None \
            and live_executed != args.expect_executed:
        print(f"error: --expect-executed {args.expect_executed} but "
              f"{live_executed} points executed live "
              f"({len(preset_ids)} served from the journal, "
              f"{agg['store_hits']} from the store)",
              file=sys.stderr)
        rc = 1
    if args.verify:
        verify_rc = _post_run_verify(
            apps, schemes, procs, args.verify_n, args.time_steps)
        rc = rc or verify_rc
    if shutdown.triggered:
        hint = ""
        if journal is not None:
            hint = (f"; resume with: python -m repro batch --resume "
                    f"{journal.run_id}")
            if args.store_dir:
                hint += f" --store-dir {args.store_dir}"
        print(f"interrupted (signal {shutdown.signum}) — "
              f"{len(results)}/{len(points)} points finished{hint}",
              file=sys.stderr)
        rc = 130
    return rc


def _batch_telemetry(merged, agg) -> dict:
    """The ``--json`` telemetry block: batch-level health counters
    aggregated across the driver and every worker lane, with the full
    per-lane counter provenance alongside."""
    metrics = merged.merged_metrics()
    counters = metrics["counters"]

    def total(name: str) -> int:
        entry = counters.get(name)
        return entry["total"] if entry else 0

    def prefixed(prefix: str) -> dict:
        return {
            name: entry["total"]
            for name, entry in sorted(counters.items())
            if name.startswith(prefix)
        }

    return {
        "workers": len(merged.worker_pids()),
        "pass_runs": agg["pass_runs"],
        "pass_hits": agg["pass_hits"],
        "total_pass_runs": agg["total_pass_runs"],
        "fully_cached": agg["fully_cached"],
        "retries": total("batch.retries"),
        "timeouts": total("batch.timeouts"),
        "respawns": total("batch.respawns"),
        "worker_lost": total("batch.worker_lost"),
        "degraded": total("pipeline.degraded"),
        "faults": prefixed("faults."),
        "cache": prefixed("pipeline.cache."),
        "store": prefixed("store."),
        "journal": prefixed("journal."),
        "locks": prefixed("lock."),
        "shutdowns": total("batch.shutdowns"),
        "quarantine_evicted": total("cache.quarantine.evicted"),
        "counters": counters,
    }


def cmd_fsck(args) -> int:
    """``python -m repro fsck``: audit (and repair) the result store."""
    from repro.errors import IntegrityError
    from repro.pipeline.integrity import fsck_store
    from repro.pipeline.store import ResultStore, resolve_store_dir

    root = resolve_store_dir(args.store_dir)
    store = ResultStore(root)
    try:
        report = fsck_store(store, repair=not args.no_repair)
    except IntegrityError as exc:
        raise SystemExit(f"fsck: {exc}")

    print(f"fsck {root}")
    print(f"  entries scanned:    {report.scanned}")
    print(f"  ok:                 {report.ok}")
    print(f"  repaired:           {report.repaired}")
    print(f"  quarantined:        {report.quarantined}")
    if report.unparseable:
        print(f"    unparseable:      {report.unparseable}")
    if report.key_mismatch:
        print(f"    key mismatch:     {report.key_mismatch}")
    if report.checksum_mismatch:
        print(f"    bad checksum:     {report.checksum_mismatch}")
    if report.missing_payload:
        print(f"    missing payload:  {report.missing_payload}")
    if report.missing_checksum:
        print(f"  legacy (no sha256): {report.missing_checksum}")
    print(f"  index fixes:        "
          f"{report.index_dropped} dropped, "
          f"{report.index_added} added, "
          f"{report.index_duplicates} duplicates")
    for problem in report.problems[:20]:
        print(f"  - {problem}")
    if len(report.problems) > 20:
        print(f"  … and {len(report.problems) - 20} more")
    print("store is clean" if report.clean
          else f"store had damage ({report.damage} findings"
               + ("" if args.no_repair else ", now repaired") + ")")

    if args.json:
        text = json.dumps(report.as_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            _write_text(args.json, text + "\n", "fsck report JSON")
    if args.strict and not report.clean:
        return 1
    return 0


def cmd_bench(args) -> int:
    from repro.obs.bench import (
        append_bench_series,
        compare_snapshots,
        load_snapshot,
        run_bench,
        save_snapshot,
    )
    from repro.report import format_bench_table, format_regression_table

    apps, schemes = _grid_args(args)

    # Resolve the baseline before saving: --compare against the
    # pointer file must mean "the previous run", not the snapshot this
    # run is about to write.
    baseline = None
    if args.compare:
        try:
            baseline = load_snapshot(args.compare)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot load baseline: {exc}")

    snap = run_bench(
        apps=apps, schemes=schemes, procs=args.procs_list,
        n=args.n, time_steps=args.time_steps, scale=args.scale,
        repeats=args.repeats,
    )
    print(format_bench_table(snap))

    if not args.no_save:
        path, latest = save_snapshot(snap, out_dir=args.out_dir,
                                     latest=args.latest)
        print(f"\nwrote snapshot to {path}"
              + (f" (pointer: {latest})" if latest else ""))
        spath = append_bench_series(snap)
        print(f"appended per-point digest to {spath} "
              f"(render trends with `python -m repro series`)")

    rc = 0
    if baseline is not None:
        cmp = compare_snapshots(baseline, snap, wall_tol=args.wall_tol,
                                wall_abs_floor=args.wall_abs_floor)
        print()
        print(format_regression_table(
            cmp, title=f"bench comparison vs {args.compare}",
            show_ok=args.show_ok,
        ))
        if not cmp.ok:
            rc = 1
            # Name the culprit: attribute the regression to the first
            # diverging compiler decision between baseline and this run.
            try:
                from repro.obs import provenance
                from repro.report import format_diff_table

                print()
                print(format_diff_table(
                    provenance.diff_runs(baseline, snap),
                    title="root-cause diff vs baseline",
                ))
            except Exception as exc:  # never mask the regression exit
                print(f"(root-cause diff unavailable: {exc})")
            # When the wall gate (or a ledger row) tripped, also rank
            # the ledger rows whose self time moved — the differential
            # attribution that names the pass/phase responsible.
            wall_trip = any(
                r.failing and (r.metric.startswith("wall.")
                               or r.metric.endswith(".self_s"))
                for r in cmp.rows)
            if wall_trip:
                try:
                    from repro.obs.perf import perf_diff
                    from repro.report import format_perf_diff_table

                    print()
                    print(format_perf_diff_table(
                        perf_diff(baseline, snap,
                                  wall_tol=args.wall_tol,
                                  wall_abs_floor=args.wall_abs_floor),
                        title="perf culprits vs baseline",
                    ))
                except Exception as exc:
                    print(f"(perf culprit table unavailable: {exc})")
    return rc


def _load_run_status(args):
    """Shared status/watch/report front door: resolve the store dir and
    snapshot the run, mapping a missing/unreadable journal to the dead-
    run exit contract (2 = no such run, 3 = run is dead)."""
    from repro.obs.runstate import load_status
    from repro.pipeline.store import resolve_store_dir

    root = resolve_store_dir(args.store_dir)
    return load_status(root, args.run, stale_after=args.stale_after)


def _status_rc(state: str) -> int:
    """Exit code contract shared by status/watch: 0 while a run is
    alive or finished cleanly, 3 when it is dead (interrupted/stale)."""
    return 3 if state in ("interrupted", "stale") else 0


def cmd_status(args) -> int:
    """``python -m repro status``: cross-process snapshot of one
    journaled run — progress, state, ETA — from the journal alone."""
    from repro.errors import JournalError
    from repro.report import format_status_text

    try:
        status = _load_run_status(args)
    except JournalError as exc:
        print(f"status: {exc}", file=sys.stderr)
        return 2
    if args.json:
        text = json.dumps(status.as_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            _write_text(args.json, text + "\n", "run status JSON")
    else:
        print(format_status_text(status.as_dict()))
    return _status_rc(status.state)


def cmd_watch(args) -> int:
    """``python -m repro watch``: a refreshing terminal view tailing
    the journal of a run owned by another process.  Exits on its own
    when the run reaches a terminal state (finished/interrupted/stale),
    with the status exit-code contract."""
    import time as _time

    from repro.errors import JournalError
    from repro.report import format_status_text

    clear = sys.stdout.isatty() and not args.once and not args.json
    while True:
        try:
            status = _load_run_status(args)
        except JournalError as exc:
            print(f"watch: {exc}", file=sys.stderr)
            return 2
        if args.json:
            # One compact JSON object per refresh: a tail-able stream.
            print(json.dumps(status.as_dict(), sort_keys=True),
                  flush=True)
        else:
            if clear:
                print("\x1b[2J\x1b[H", end="")
            print(format_status_text(status.as_dict()), flush=True)
        if args.once or status.state in ("finished", "interrupted",
                                         "stale"):
            return _status_rc(status.state)
        if not clear and not args.json:
            print()
        _time.sleep(args.interval)


def cmd_report(args) -> int:
    """``python -m repro report``: one self-contained artifact per run,
    stitched from the journal and time series alone."""
    from repro.errors import JournalError
    from repro.obs.runstate import build_report
    from repro.pipeline.store import resolve_store_dir
    from repro.report import format_status_text, run_report_html

    root = resolve_store_dir(args.store_dir)
    try:
        payload = build_report(root, args.run,
                               stale_after=args.stale_after)
    except JournalError as exc:
        print(f"report: {exc}", file=sys.stderr)
        return 2
    wrote = False
    if args.html:
        _write_text(args.html, run_report_html(payload),
                    "HTML run report")
        wrote = True
    if args.json:
        text = json.dumps(payload, indent=2, sort_keys=True,
                          default=str)
        if args.json == "-":
            print(text)
        else:
            _write_text(args.json, text + "\n", "run report JSON")
        wrote = True
    if not wrote:
        print(format_status_text(payload["status"]))
        series = payload["series"]
        print(f"\nreport sections: {len(payload['points'])} point rows, "
              f"{len(payload['timeline'])} timeline events, "
              f"{series['samples']} time-series samples, "
              f"{len(payload['degraded'])} degraded, "
              f"{len(payload['failures'])} failures "
              f"(write the full artifact with --html/--json)")
    return 0


def cmd_series(args) -> int:
    """``python -m repro series``: the benchmark history as per-metric
    trend rows with regression highlighting — the read side of the
    previously write-only ``series.jsonl``."""
    from repro.obs.bench import (
        load_series_lines,
        series_path,
        series_trends,
    )
    from repro.report import format_series_table

    path = args.file or series_path()
    lines = load_series_lines(path)
    rows = series_trends(lines, wall_tol=args.wall_tol,
                         wall_abs_floor=args.wall_abs_floor)
    if args.json:
        text = json.dumps(
            {"path": str(path), "samples": len(lines), "rows": rows},
            indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            _write_text(args.json, text + "\n", "series trends JSON")
    else:
        print(f"benchmark series: {path} ({len(lines)} samples)")
        print(format_series_table(rows, limit=args.limit))
    flagged = [r for r in rows
               if r["status"] in ("regressed", "changed")]
    if flagged and not args.json:
        print(f"\n{len(flagged)} metric(s) flagged "
              f"(regressed or counter drift)")
    return 1 if flagged and args.strict else 0


def cmd_explain(args) -> int:
    """``python -m repro explain``: the decision-provenance tree for
    one compiled grid point."""
    from repro.obs import provenance
    from repro.report import format_explain_tree

    session = _apply_session_args(args)
    try:
        scheme = parse_scheme(args.scheme)
    except ValueError as exc:
        raise SystemExit(str(exc))
    prog = _build(args.app, args.n, args.time_steps)
    label = f"{args.app}/{scheme.value}/P{args.procs}"
    try:
        _, log = provenance.collect_point(session, prog, scheme,
                                          args.procs)
    except Exception as exc:
        raise SystemExit(f"explain: cannot compile {label}: {exc}")
    if args.json:
        print(log.to_json(app=args.app, scheme=scheme.value,
                          nprocs=args.procs, n=args.n))
    else:
        print(format_explain_tree(log, title=label))
    return 0


def cmd_diff(args) -> int:
    """``python -m repro diff``: root-cause diff of two run files."""
    from repro.obs import provenance
    from repro.report import format_diff_table

    try:
        run_a = provenance.load_run(args.run_a)
        run_b = provenance.load_run(args.run_b)
    except (OSError, ValueError) as exc:
        print(f"diff: {exc}", file=sys.stderr)
        return 2
    diff = provenance.diff_runs(run_a, run_b)
    if args.json:
        print(json.dumps(diff.as_dict(), indent=2, sort_keys=True))
    else:
        print(format_diff_table(
            diff, title=f"{args.run_a} vs {args.run_b}"))
    return 1 if diff.significant else 0


def cmd_perf(args) -> int:
    """``python -m repro perf``: differential performance attribution
    (record a wall-time ledger, or diff two runs' ledgers)."""
    return {"record": _cmd_perf_record,
            "diff": _cmd_perf_diff}[args.perf_command](args)


def _cmd_perf_record(args) -> int:
    from repro.obs.flame import flamegraph_svg
    from repro.obs.perf import record_point
    from repro.report import format_ledger_table

    if args.app not in ALL_APPS:
        raise SystemExit(
            f"unknown app {args.app!r}; available: "
            f"{', '.join(sorted(ALL_APPS))}"
        )
    try:
        scheme = parse_scheme(args.scheme)
        payload = record_point(
            args.app, scheme, args.procs, n=args.n,
            time_steps=args.time_steps, scale=args.scale,
            interval=args.interval,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    point = payload["points"][0]
    label = f"{point['app']}/{point['scheme']}/P{point['nprocs']}"
    print(format_ledger_table(
        point["perf"]["ledger"],
        title=f"wall-time ledger: {label}", top=args.top,
    ))
    if args.json:
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            _write_text(args.json, text + "\n", "perf record JSON")
    if args.stacks:
        from repro.obs.export import write_collapsed

        try:
            write_collapsed(args.stacks, point["perf"]["stacks"])
        except OSError as exc:
            raise SystemExit(
                f"cannot write collapsed stacks to {args.stacks}: {exc}")
        print(f"\nwrote collapsed stacks to {args.stacks}")
    if args.flame:
        _write_text(
            args.flame,
            flamegraph_svg(point["perf"]["stacks"],
                           title=f"repro perf: {label}"),
            "flamegraph SVG",
        )
    return 0


def _cmd_perf_diff(args) -> int:
    from repro.obs import provenance
    from repro.obs.perf import perf_diff
    from repro.report import format_perf_diff_table

    try:
        run_a = provenance.load_run(args.run_a)
        run_b = provenance.load_run(args.run_b)
    except (OSError, ValueError) as exc:
        print(f"perf diff: {exc}", file=sys.stderr)
        return 2
    pd = perf_diff(run_a, run_b, wall_tol=args.wall_tol,
                   wall_abs_floor=args.wall_abs_floor)
    if args.json:
        print(json.dumps(pd.as_dict(), indent=2, sort_keys=True))
    else:
        print(format_perf_diff_table(
            pd, title=f"perf diff: {args.run_a} vs {args.run_b}",
            top=args.top))
    return 1 if pd.significant else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Anderson/Amarasinghe/Lam PPoPP'95 reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark programs")

    p = sub.add_parser("decompose", help="show a program's decomposition")
    p.add_argument("app")
    p.add_argument("--n", type=_positive_int, default=32)
    p.add_argument("--procs", type=_positive_int, default=8)
    p.add_argument("--time-steps", type=_positive_int, default=None)
    p.add_argument("--verbose", action="store_true")
    _add_cache_flags(p)

    p = sub.add_parser("emit", help="emit the SPMD C source")
    p.add_argument("app")
    p.add_argument("--n", type=_positive_int, default=16)
    p.add_argument("--procs", type=_positive_int, default=4)
    p.add_argument("--time-steps", type=_positive_int, default=None)
    p.add_argument("--scheme", choices=sorted(SCHEME_NAMES), default="data")
    _add_cache_flags(p)

    p = sub.add_parser("run", help="simulate and print speedups")
    p.add_argument("app")
    p.add_argument("--n", type=_positive_int, default=48)
    p.add_argument("--procs-list", type=_procs_csv, default="1,2,4,8,16,32")
    p.add_argument("--scale", type=_positive_int, default=16)
    p.add_argument("--time-steps", type=_positive_int, default=None)
    p.add_argument("--scheme", choices=sorted(SCHEME_NAMES) + ["all"],
                   default="all")
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="run the sweep's points across N processes")
    p.add_argument("--verify", action="store_true",
                   help="after the sweep, run the semantic oracle over "
                        "its (scheme, nprocs) grid at a small size")
    p.add_argument("--verify-n", type=_positive_int, default=8,
                   help="problem size for --verify (default 8)")
    _add_cache_flags(p)

    p = sub.add_parser(
        "profile",
        help="compile + simulate with observability on; dump the trace",
    )
    p.add_argument("app")
    p.add_argument("--n", type=_positive_int, default=32)
    p.add_argument("--procs", type=_positive_int, default=8)
    p.add_argument("--scale", type=_positive_int, default=16)
    p.add_argument("--time-steps", type=_positive_int, default=None)
    p.add_argument("--scheme", choices=sorted(SCHEME_ALIASES),
                   default="comp_decomp_data")
    p.add_argument("-o", "--output", default=None,
                   help="trace output path (Chrome trace-event JSON)")
    p.add_argument("--format", choices=["chrome", "json"], default="chrome",
                   help="output format: Chrome trace events or full dump")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the profile result (phases, arrays, "
                        "NUMA, conflicts) as JSON; '-' for stdout")
    _add_cache_flags(p)

    p = sub.add_parser(
        "hotspots",
        help="sample the compile+simulate hot path over a grid; rank "
             "self-time per function and report locality analytics",
    )
    p.add_argument("--apps", default="simple,stencil5",
                   help="comma-separated app names")
    p.add_argument("--schemes", default="base,comp,data",
                   help="comma-separated scheme names (any alias)")
    p.add_argument("--procs-list", type=_procs_csv, default="1,4",
                   help="comma-separated processor counts")
    p.add_argument("--n", type=_positive_int, default=16,
                   help="problem size per app")
    p.add_argument("--time-steps", type=_positive_int, default=None)
    p.add_argument("--scale", type=_positive_int, default=16)
    p.add_argument("--repeats", type=_positive_int, default=3,
                   help="simulate() repetitions per point while "
                        "sampling (weights the steady-state hot path)")
    p.add_argument("--interval", type=_positive_int, default=7,
                   help="profile events between samples (tick count)")
    p.add_argument("--top", type=_positive_int, default=15,
                   help="ranked functions to print")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the full payload (ranking, modules, "
                        "per-point locality) as JSON; '-' for stdout")
    p.add_argument("--html", default=None, metavar="PATH",
                   help="write a self-contained HTML report with "
                        "phase×array heatmaps")
    p.add_argument("--expect-hot", default=None, metavar="SUBSTR",
                   help="exit nonzero unless SUBSTR appears in the "
                        "top-5 self-time ranking (CI guard)")
    p.add_argument("--flame", default=None, metavar="PATH",
                   help="write a self-contained flamegraph SVG of the "
                        "sampled stacks")
    _add_cache_flags(p)

    p = sub.add_parser(
        "verify",
        help="semantically verify compiled output against the "
             "sequential reference (app x scheme x procs grid)",
    )
    p.add_argument("--apps", default="all",
                   help="comma-separated app names, or 'all'")
    p.add_argument("--schemes", default="base,comp,data",
                   help="comma-separated scheme names (any alias)")
    p.add_argument("--procs-list", type=_procs_csv, default="1,2,4",
                   help="comma-separated processor counts")
    p.add_argument("--n", type=_positive_int, default=8,
                   help="problem size per app (small keeps the oracle "
                        "fast)")
    p.add_argument("--time-steps", type=_positive_int, default=None)
    _add_cache_flags(p)
    _add_store_flags(p)

    p = sub.add_parser(
        "batch",
        help="compile + simulate a grid of (app, scheme, nprocs) points",
    )
    p.add_argument("--apps", default="simple",
                   help="comma-separated app names")
    p.add_argument("--schemes", default="base,comp,data",
                   help="comma-separated scheme names (any alias)")
    p.add_argument("--procs-list", type=_procs_csv, default="1,4",
                   help="comma-separated processor counts")
    p.add_argument("--n", type=_positive_int, default=None,
                   help="problem size forwarded to each app builder")
    p.add_argument("--time-steps", type=_positive_int, default=None)
    p.add_argument("--scale", type=_positive_int, default=16)
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="worker processes (<=1: serial, shared session)")
    p.add_argument("--pin-decomp", action="store_true",
                   help="derive one decomposition at max(procs) per app")
    p.add_argument("--timeout", type=_positive_float, default=None,
                   help="per-point wall-clock limit in seconds "
                        "(parallel mode; stalled workers are killed)")
    p.add_argument("--retries", type=_nonneg_int, default=0,
                   help="re-attempts per failed point (with backoff)")
    p.add_argument("--backoff", type=_nonneg_float, default=0.5,
                   help="base exponential-backoff delay in seconds")
    p.add_argument("--no-degrade", action="store_true",
                   help="disable the BASE-scheme fallback for points "
                        "whose scheme fails to compile")
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="deterministic fault-injection spec, e.g. "
                        "'seed=7,cache.read=0.3,worker.crash=0.2' "
                        "(chaos testing; also honours $REPRO_FAULTS)")
    p.add_argument("--verify", action="store_true",
                   help="after the batch, run the semantic oracle over "
                        "its grid at a small size (faults disabled)")
    p.add_argument("--verify-n", type=_positive_int, default=8,
                   help="problem size for --verify (default 8)")
    p.add_argument("--json", default=None,
                   help="write per-point results + summary + telemetry "
                        "as JSON")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="write a merged Chrome trace with one lane per "
                        "worker process (clock-skew corrected)")
    p.add_argument("--expect-cached", action="store_true",
                   help="exit nonzero unless the whole grid was served "
                        "from the cache (CI warm-run guard)")
    p.add_argument("--resume", default=None, metavar="RUN",
                   help="resume an interrupted journaled run (a RUN_* "
                        "id, or 'latest'); the grid is rebuilt from the "
                        "journal and finished points are served "
                        "verbatim, never re-executed")
    p.add_argument("--drain", type=_nonneg_float, default=30.0,
                   metavar="SECONDS",
                   help="on SIGINT/SIGTERM, seconds to let in-flight "
                        "points finish before abandoning them "
                        "(default 30; a second signal stops at once)")
    p.add_argument("--no-journal", action="store_true",
                   help="disable the crash-recovery run journal that a "
                        "result store otherwise writes")
    p.add_argument("--heartbeat", type=_nonneg_float, default=2.0,
                   metavar="SECONDS",
                   help="interval between journal heartbeats and "
                        "time-series samples for `repro status/watch` "
                        "(default 2.0; 0 disables monitoring; needs "
                        "the journal)")
    p.add_argument("--expect-executed", type=_nonneg_int, default=None,
                   metavar="N",
                   help="exit nonzero unless exactly N points executed "
                        "live in this process — journal- and "
                        "store-served points do not count (CI resume "
                        "guard)")
    _add_cache_flags(p)
    _add_store_flags(p, expect=True)

    p = sub.add_parser(
        "fsck",
        help="audit the persistent result store: verify every entry's "
             "checksum and key, reconcile the coordinate index, "
             "quarantine or repair damage",
    )
    p.add_argument("--store-dir", default=None, metavar="DIR",
                   help="result-store directory (default: "
                        "$REPRO_STORE_DIR or ~/.cache/repro/results)")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero when any damage was found "
                        "(CI guard)")
    p.add_argument("--no-repair", action="store_true",
                   help="report only; quarantine nothing, rewrite "
                        "nothing, leave the index as-is")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the fsck report as JSON; '-' for stdout")

    p = sub.add_parser(
        "bench",
        help="run the pinned perf grid; record a snapshot and/or "
             "compare against a baseline",
    )
    p.add_argument("--apps", default="simple,stencil5",
                   help="comma-separated app names")
    p.add_argument("--schemes", default="base,comp,data",
                   help="comma-separated scheme names (any alias)")
    p.add_argument("--procs-list", type=_procs_csv, default="1,4",
                   help="comma-separated processor counts")
    p.add_argument("--n", type=_positive_int, default=16,
                   help="problem size per app")
    p.add_argument("--time-steps", type=_positive_int, default=None)
    p.add_argument("--scale", type=_positive_int, default=16)
    p.add_argument("--repeats", type=_positive_int, default=3,
                   help="timed simulate() repetitions per point")
    p.add_argument("--out-dir", default="results/bench",
                   help="snapshot directory (BENCH_<timestamp>.json)")
    p.add_argument("--latest", default="BENCH_latest.json",
                   help="repo-root pointer file updated on save")
    p.add_argument("--no-save", action="store_true",
                   help="run and print without writing a snapshot")
    p.add_argument("--compare", default=None, metavar="BASELINE",
                   help="baseline snapshot (or pointer) to gate "
                        "against; exits nonzero on regression")
    p.add_argument("--wall-tol", type=_positive_float, default=0.30,
                   help="relative wall-time tolerance for --compare "
                        "(min-of-N; only gated on the same host)")
    p.add_argument("--wall-abs-floor", type=_nonneg_float, default=0.010,
                   help="absolute wall-time slack in seconds; a "
                        "regression must exceed both thresholds")
    p.add_argument("--show-ok", action="store_true",
                   help="include passing rows in the comparison table")

    def _add_run_flags(p: argparse.ArgumentParser) -> None:
        """Shared flags of the journal-reading commands
        (status/watch/report): which run, where, and the staleness
        threshold for the run-state classification."""
        p.add_argument("run", nargs="?", default="latest",
                       help="a RUN_* id, or 'latest' (default)")
        p.add_argument("--store-dir", default=None, metavar="DIR",
                       help="result-store directory the run journals "
                            "under (default: $REPRO_STORE_DIR or "
                            "~/.cache/repro/results)")
        p.add_argument("--stale-after", type=_positive_float,
                       default=15.0, metavar="SECONDS",
                       help="heartbeat silence before a run with no "
                            "end record and a live pid is classified "
                            "stale (default 15)")

    p = sub.add_parser(
        "status",
        help="cross-process snapshot of a journaled run: progress, "
             "state (running/finished/interrupted/stale), ETA",
    )
    _add_run_flags(p)
    p.add_argument("--json", nargs="?", const="-", default=None,
                   metavar="PATH",
                   help="emit the status as JSON (to PATH, or stdout "
                        "when no path is given)")

    p = sub.add_parser(
        "watch",
        help="refreshing terminal view of a run owned by another "
             "process; exits when the run reaches a terminal state",
    )
    _add_run_flags(p)
    p.add_argument("--interval", type=_positive_float, default=1.0,
                   metavar="SECONDS",
                   help="refresh interval (default 1.0)")
    p.add_argument("--once", action="store_true",
                   help="render a single frame and exit")
    p.add_argument("--json", action="store_true",
                   help="emit one JSON object per refresh instead of "
                        "the terminal view")

    p = sub.add_parser(
        "report",
        help="self-contained run report (HTML/JSON) stitched from the "
             "journal and time series",
    )
    _add_run_flags(p)
    p.add_argument("--html", default=None, metavar="PATH",
                   help="write the self-contained HTML report")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the report payload as JSON; '-' for "
                        "stdout")

    p = sub.add_parser(
        "series",
        help="render the benchmark history (series.jsonl) as trend "
             "rows with regression highlighting",
    )
    p.add_argument("--file", default=None, metavar="PATH",
                   help="series file (default: "
                        "$REPRO_RESULTS_DIR/bench/series.jsonl)")
    p.add_argument("--limit", type=_positive_int, default=40,
                   metavar="N", help="max rows to print (default 40)")
    p.add_argument("--wall-tol", type=_positive_float, default=0.30,
                   help="relative trend tolerance (default 0.30)")
    p.add_argument("--wall-abs-floor", type=_nonneg_float,
                   default=0.010,
                   help="absolute wall-time slack in seconds")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero when any metric regressed or "
                        "drifted (CI guard)")
    p.add_argument("--json", nargs="?", const="-", default=None,
                   metavar="PATH",
                   help="emit the trend rows as JSON (to PATH, or "
                        "stdout when no path is given)")

    p = sub.add_parser(
        "explain",
        help="show every compiler decision (with alternatives and "
             "reasons) behind one compiled point",
    )
    p.add_argument("app")
    p.add_argument("--scheme", default="opt",
                   help="scheme name or alias, case-insensitive "
                        "(e.g. OPT, base, comp, data)")
    p.add_argument("--procs", type=_positive_int, default=8)
    p.add_argument("--n", type=_positive_int, default=32)
    p.add_argument("--time-steps", type=_positive_int, default=None)
    p.add_argument("--json", action="store_true",
                   help="emit the decision log as JSON instead of a tree")
    _add_cache_flags(p)

    p = sub.add_parser(
        "diff",
        help="root-cause diff of two runs (bench snapshots or "
             "'batch --json' files); exits 1 when counters diverge",
    )
    p.add_argument("run_a", help="baseline run file")
    p.add_argument("run_b", help="candidate run file")
    p.add_argument("--json", action="store_true",
                   help="emit the structured diff as JSON")

    p = sub.add_parser(
        "perf",
        help="differential performance attribution: record a "
             "wall-time ledger + flamegraph for one point, or diff "
             "two runs' ledgers",
    )
    psub = p.add_subparsers(dest="perf_command", required=True)
    pp = psub.add_parser(
        "record",
        help="measure one (app, scheme, procs) point: ledger table, "
             "optional flamegraph/collapsed stacks/JSON payload",
    )
    pp.add_argument("app")
    pp.add_argument("--scheme", choices=sorted(SCHEME_ALIASES),
                    default="data")
    pp.add_argument("--procs", type=_positive_int, default=4)
    pp.add_argument("--n", type=_positive_int, default=16)
    pp.add_argument("--time-steps", type=_positive_int, default=None)
    pp.add_argument("--scale", type=_positive_int, default=16)
    pp.add_argument("--interval", type=_positive_int, default=None,
                    help="profile events between stack samples")
    pp.add_argument("--top", type=_positive_int, default=25,
                    help="ledger rows to print")
    pp.add_argument("--json", default=None, metavar="PATH",
                    help="write the run (ledger + stacks) as JSON — "
                         "perf-diffable against bench snapshots; '-' "
                         "for stdout")
    pp.add_argument("--flame", default=None, metavar="PATH",
                    help="write a self-contained flamegraph SVG")
    pp.add_argument("--stacks", default=None, metavar="PATH",
                    help="write the raw collapsed-stack lines "
                         "(flamegraph.pl input)")
    pp = psub.add_parser(
        "diff",
        help="rank the ledger rows whose self time moved between two "
             "runs (bench snapshots or perf records); exits 1 when "
             "significant",
    )
    pp.add_argument("run_a", help="baseline run file")
    pp.add_argument("run_b", help="candidate run file")
    pp.add_argument("--wall-tol", type=_positive_float, default=0.30,
                    help="relative self-time tolerance (same host "
                         "only)")
    pp.add_argument("--wall-abs-floor", type=_nonneg_float,
                    default=0.010,
                    help="absolute self-time slack in seconds; a "
                         "culprit must exceed both thresholds")
    pp.add_argument("--top", type=_positive_int, default=20,
                    help="ranked rows to print")
    pp.add_argument("--json", action="store_true",
                    help="emit the structured diff as JSON")

    args = parser.parse_args(argv)
    try:
        return {
            "list": cmd_list,
            "decompose": cmd_decompose,
            "emit": cmd_emit,
            "run": cmd_run,
            "profile": cmd_profile,
            "hotspots": cmd_hotspots,
            "verify": cmd_verify,
            "batch": cmd_batch,
            "fsck": cmd_fsck,
            "bench": cmd_bench,
            "status": cmd_status,
            "watch": cmd_watch,
            "report": cmd_report,
            "series": cmd_series,
            "explain": cmd_explain,
            "diff": cmd_diff,
            "perf": cmd_perf,
        }[args.command](args)
    except BrokenPipeError:
        # The reader went away (`repro status | head`): the shell
        # convention is 128 + SIGPIPE, not a traceback.  Point stdout
        # at devnull so interpreter shutdown doesn't re-raise on flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
