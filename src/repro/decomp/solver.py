"""Equation-1 constraint solver.

Finds the maximal-rank affine decompositions satisfying

    D_x @ F  =  C_s        (for references F of statement s to array x)
    C_s @ d  =  0          (for dependence directions d carried in s's nest)

over a *group* of statements and arrays.  The unknowns — one candidate
row of every ``D_x`` and every ``C_s`` simultaneously — are stacked into
a single vector; each valid joint row is then an integer nullspace
element of the stacked constraint matrix.  Selecting up to ``max_dims``
of these rows (greedily, by weighted parallelism gain, then read
locality, then a column-major-friendly dimension preference) yields the
virtual processor space.

Offsets are ignored when solving, as the paper does for HPF alignment
offsets: a constant offset mismatch means nearest-neighbour boundary
communication, not a different decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.obs import provenance
from repro.util.intlinalg import (
    integer_nullspace,
    integer_rank,
    rowspace_basis,
)

Matrix = List[List[int]]


@dataclass
class RefConstraint:
    """One affine reference: array name + its F matrix (rank x depth)
    and constant offset vector (parameters already substituted)."""

    array: str
    matrix: Matrix
    is_write: bool
    offset: List[int] = field(default_factory=list)


@dataclass
class StmtEntry:
    """Solver view of one statement.

    ``use_reads`` / ``use_parallel`` implement the greedy algorithm's
    relaxation levels: dropping read-reference constraints means the
    reads may be remote (owner-computes only); dropping the parallelism
    (obstruction) constraints means dependent iterations may land on
    different processors — i.e. the nest executes as a pipeline.
    """

    nest: str
    stmt: int
    depth: int
    refs: List[RefConstraint]
    obstructions: List[List[int]] = field(default_factory=list)
    weight: int = 1
    use_reads: bool = True
    use_parallel: bool = True


@dataclass
class GroupSolution:
    """Selected joint rows, unpacked into per-statement C and per-array D."""

    rows: Matrix  # selected joint rows (each a full unknown vector)
    comp_matrices: Dict[Tuple[str, int], Matrix]
    data_matrices: Dict[str, Matrix]
    entry_ranks: Dict[Tuple[str, int], int]
    replicated: Set[str]
    rank_value: int = 0

    @property
    def rank(self) -> int:
        return self.rank_value

    def min_entry_rank(self) -> int:
        return min(self.entry_ranks.values()) if self.entry_ranks else 0


class _Layout:
    """Position bookkeeping for the stacked unknown vector."""

    def __init__(
        self,
        entries: Sequence[StmtEntry],
        array_ranks: Dict[str, int],
        replicated: Set[str],
    ) -> None:
        self.array_names = sorted(
            {r.array for e in entries for r in e.refs}
            - set(replicated)
        )
        self.array_ranks = array_ranks
        self.entries = list(entries)
        self.offsets: Dict[str, int] = {}
        pos = 0
        for a in self.array_names:
            self.offsets[a] = pos
            pos += array_ranks[a]
        self.entry_offsets: Dict[Tuple[str, int], int] = {}
        for e in self.entries:
            self.entry_offsets[(e.nest, e.stmt)] = pos
            pos += e.depth
        self.total = pos

    def d_slice(self, array: str) -> Tuple[int, int]:
        o = self.offsets[array]
        return o, o + self.array_ranks[array]

    def c_slice(self, entry: StmtEntry) -> Tuple[int, int]:
        o = self.entry_offsets[(entry.nest, entry.stmt)]
        return o, o + entry.depth


def _constraint_rows(
    layout: _Layout, replicated: Set[str]
) -> Matrix:
    """Build the stacked constraint matrix whose nullspace is the space
    of valid joint decomposition rows."""
    rows: Matrix = []
    n = layout.total
    for e in layout.entries:
        c_lo, c_hi = layout.c_slice(e)
        for ref in e.refs:
            if ref.array in replicated:
                continue
            if not ref.is_write and not e.use_reads:
                continue
            d_lo, d_hi = layout.d_slice(ref.array)
            arank = d_hi - d_lo
            # D_x @ F - C_s = 0, one equation per loop column.
            for k in range(e.depth):
                row = [0] * n
                for r in range(arank):
                    row[d_lo + r] = ref.matrix[r][k]
                row[c_lo + k] -= 1
                rows.append(row)
        if e.use_parallel:
            for d in e.obstructions:
                row = [0] * n
                for k in range(min(e.depth, len(d))):
                    row[c_lo + k] = d[k]
                rows.append(row)
    return rows


def _ref_local_under(
    layout: _Layout, e: StmtEntry, ref: RefConstraint,
    rows: Sequence[Sequence[int]],
) -> bool:
    """True when D_x F == C_s holds for this reference under every
    selected joint row (replicated arrays are always local)."""
    if ref.array not in layout.offsets:
        return True
    c_lo, c_hi = layout.c_slice(e)
    d_lo, d_hi = layout.d_slice(ref.array)
    for row in rows:
        c = list(row[c_lo:c_hi])
        d = list(row[d_lo:d_hi])
        df = [
            sum(d[r] * ref.matrix[r][k] for r in range(len(d)))
            for k in range(e.depth)
        ]
        if df != c:
            return False
    return True


def _locality_score(
    layout: _Layout, rows: Sequence[Sequence[int]]
) -> int:
    """Weighted count of read references local under all given rows."""
    score = 0
    for e in layout.entries:
        for ref in e.refs:
            if ref.is_write:
                continue
            if _ref_local_under(layout, e, ref, rows):
                score += e.weight
    return score


def _has_boundary_comm(
    layout: _Layout, rows: Sequence[Sequence[int]]
) -> bool:
    """True when some reference is local in its linear part but carries a
    nonzero offset through D — i.e. a nearest-neighbour boundary
    exchange exists.  Extra processor dimensions pay off exactly then
    (surface-to-volume); with zero communication a 1-D distribution is
    as good and keeps layouts simpler (the paper's Erlebacher case)."""
    for e in layout.entries:
        for ref in e.refs:
            if ref.array not in layout.offsets or not ref.offset:
                continue
            d_lo, d_hi = layout.d_slice(ref.array)
            c_lo, c_hi = layout.c_slice(e)
            for row in rows:
                d = list(row[d_lo:d_hi])
                c = list(row[c_lo:c_hi])
                df = [
                    sum(d[r] * ref.matrix[r][k] for r in range(len(d)))
                    for k in range(e.depth)
                ]
                if df == c and sum(
                    dv * ov for dv, ov in zip(d, ref.offset)
                ) != 0:
                    return True
    return False


def _unit_data_rows(layout: _Layout, row: Sequence[int]) -> bool:
    """The Section 4.2 implementation restriction: each processor
    dimension may map at most ONE dimension of each array, with unit
    coefficient — general affine data decompositions (e.g. diagonals)
    are excluded because their transformed address functions would be
    too complex."""
    for a in layout.array_names:
        d_lo, d_hi = layout.d_slice(a)
        nz = [c for c in row[d_lo:d_hi] if c != 0]
        if len(nz) > 1 or (nz and abs(nz[0]) != 1):
            return False
    return True


def _dim_preference(layout: _Layout, row: Sequence[int]) -> int:
    """Prefer distributing later (slower-varying, column-major) array
    dimensions: their partitions start out closer to contiguous."""
    score = 0
    for a in layout.array_names:
        d_lo, d_hi = layout.d_slice(a)
        for j in range(d_lo, d_hi):
            if row[j] != 0:
                score += j - d_lo
    return score


def achievable_entry_ranks(
    entries: Sequence[StmtEntry],
    array_ranks: Dict[str, int],
    replicated: Optional[Set[str]] = None,
) -> Dict[Tuple[str, int], int]:
    """For each statement, the maximum achievable rank of its C over the
    joint solution space (before row selection), counting only solutions
    that respect the single-dimension data-transform restriction."""
    replicated = set(replicated or ())
    layout = _Layout(entries, array_ranks, replicated)
    basis = integer_nullspace(_constraint_rows(layout, replicated))
    basis = rowspace_basis(basis) if basis else []
    basis = [row for row in basis if _unit_data_rows(layout, row)]
    out: Dict[Tuple[str, int], int] = {}
    for e in entries:
        c_lo, c_hi = layout.c_slice(e)
        c_rows = [list(b[c_lo:c_hi]) for b in basis]
        out[(e.nest, e.stmt)] = integer_rank(c_rows) if c_rows else 0
    return out


def _connected_components(
    entries: Sequence[StmtEntry], replicated: Set[str]
) -> List[List[StmtEntry]]:
    """Partition the statements into components connected through shared
    (non-replicated) arrays.  Independent components impose no mutual
    constraints, so each can be aligned onto the virtual processor space
    separately and their rows summed into joint dimensions — this is how
    e.g. Erlebacher's three sweeps share one 1-D processor space while
    distributing different array dimensions."""
    parent = list(range(len(entries)))

    def find(a):
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    by_array: Dict[str, int] = {}
    for idx, e in enumerate(entries):
        for ref in e.refs:
            if ref.array in replicated:
                continue
            if ref.array in by_array:
                union(idx, by_array[ref.array])
            else:
                by_array[ref.array] = idx
    groups: Dict[int, List[StmtEntry]] = {}
    for idx, e in enumerate(entries):
        groups.setdefault(find(idx), []).append(e)
    return list(groups.values())


def solve_group(
    entries: Sequence[StmtEntry],
    array_ranks: Dict[str, int],
    replicated: Optional[Set[str]] = None,
    max_dims: int = 2,
) -> GroupSolution:
    """Solve the group and select up to ``max_dims`` joint rows.

    Statements connected through shared arrays are solved together;
    independent components are solved separately and their selected rows
    are merged dimension-by-dimension into the shared virtual space.
    """
    with obs.span("decomp.solve_group", cat="decomp",
                  entries=len(entries)) as sp:
        sol = _solve_group(entries, array_ranks, replicated, max_dims)
        sp.set(rank=sol.rank)
        return sol


def _solve_group(
    entries: Sequence[StmtEntry],
    array_ranks: Dict[str, int],
    replicated: Optional[Set[str]] = None,
    max_dims: int = 2,
) -> GroupSolution:
    replicated = set(replicated or ())
    components = _connected_components(entries, replicated)
    if len(components) > 1:
        partials = [
            _solve_connected(comp, array_ranks, replicated, max_dims)
            for comp in components
        ]
        rank = max((p.rank for p in partials), default=0)
        comp_matrices: Dict[Tuple[str, int], Matrix] = {}
        data_matrices: Dict[str, Matrix] = {}
        entry_ranks: Dict[Tuple[str, int], int] = {}
        for p in partials:
            for key, mat in p.comp_matrices.items():
                depth = len(mat[0]) if mat else next(
                    e.depth for e in entries if (e.nest, e.stmt) == key
                )
                padded = [list(r) for r in mat] + [
                    [0] * depth for _ in range(rank - len(mat))
                ]
                comp_matrices[key] = padded
            for a, mat in p.data_matrices.items():
                arank = array_ranks[a]
                padded = [list(r) for r in mat] + [
                    [0] * arank for _ in range(rank - len(mat))
                ]
                data_matrices[a] = padded
            entry_ranks.update(p.entry_ranks)
        return GroupSolution(
            rows=[],  # joint raw rows are not meaningful across components
            comp_matrices=comp_matrices,
            data_matrices=data_matrices,
            entry_ranks=entry_ranks,
            replicated=set(replicated),
            rank_value=rank,
        )
    return _solve_connected(entries, array_ranks, replicated, max_dims)


def _solve_connected(
    entries: Sequence[StmtEntry],
    array_ranks: Dict[str, int],
    replicated: Set[str],
    max_dims: int = 2,
) -> GroupSolution:
    """Solve one connected component."""
    layout = _Layout(entries, array_ranks, replicated)
    constraint = _constraint_rows(layout, replicated)
    basis = integer_nullspace(constraint)
    # Canonicalize: echelonized basis rows give unit-vector D parts in
    # the common cases, which the data-transform restriction requires;
    # rows that still violate the restriction are excluded outright.
    basis = rowspace_basis(basis) if basis else []
    basis = [row for row in basis if _unit_data_rows(layout, row)]

    selected: Matrix = []
    sel_c: Dict[Tuple[str, int], Matrix] = {
        (e.nest, e.stmt): [] for e in entries
    }

    def gain_of(row) -> int:
        g = 0
        for e in entries:
            c_lo, c_hi = layout.c_slice(e)
            cur = sel_c[(e.nest, e.stmt)]
            new_row = list(row[c_lo:c_hi])
            if integer_rank(cur + [new_row]) > integer_rank(cur):
                g += e.weight
        return g

    component = "+".join(layout.array_names) or "(replicated-only)"
    while len(selected) < max_dims:
        base_locality = _locality_score(layout, selected)
        min_rank = (
            min(integer_rank(v) if v else 0 for v in sel_c.values())
            if sel_c
            else 0
        )
        # Beyond the first dimension, only boundary communication
        # justifies a finer partition (communication-to-computation
        # ratio); a communication-free component stays 1-D.
        if (
            selected
            and min_rank >= 1
            and not _has_boundary_comm(layout, selected)
        ):
            provenance.record(
                "decomp.solver", stage="decomposition", subject=component,
                chosen="stop", alternatives=["add dimension", "stop"],
                reason="communication-free stays 1-D",
                rank=len(selected), max_dims=max_dims,
            )
            break
        best = None
        best_key = None
        candidates = 0
        for row in basis:
            if integer_rank(selected + [list(row)]) <= len(selected):
                continue  # dependent joint row
            g = gain_of(row)
            if g <= 0:
                continue
            locality = _locality_score(layout, selected + [list(row)])
            # Extra processor dimensions are only worth taking when they
            # cost no read locality: a dimension that turns local reads
            # into remote ones adds the very communication the first
            # phase exists to avoid.  (When there is no parallelism yet,
            # parallelism always wins over locality.)
            if min_rank >= 1 and locality < base_locality:
                continue
            candidates += 1
            key = (g, locality, _dim_preference(layout, row))
            if best_key is None or key > best_key:
                best, best_key = list(row), key
        if best is None:
            if basis:
                provenance.record(
                    "decomp.solver", stage="decomposition", subject=component,
                    chosen="stop", alternatives=["add dimension", "stop"],
                    reason="no candidate row",
                    rank=len(selected), basis=len(basis), max_dims=max_dims,
                )
            break
        provenance.record(
            "decomp.solver", stage="decomposition", subject=component,
            chosen=f"row {best}",
            alternatives=[str(list(r)) for r in basis[:6]],
            reason="max (gain, locality, dim-preference)",
            dim=len(selected), gain=best_key[0], locality=best_key[1],
            dim_preference=best_key[2], candidates=candidates,
            basis=len(basis),
        )
        selected.append(best)
        for e in entries:
            c_lo, c_hi = layout.c_slice(e)
            sel_c[(e.nest, e.stmt)].append(list(best[c_lo:c_hi]))
    else:
        provenance.record(
            "decomp.solver", stage="decomposition", subject=component,
            chosen="stop", alternatives=["add dimension", "stop"],
            reason="max_dims reached",
            rank=len(selected), max_dims=max_dims,
        )

    data_matrices: Dict[str, Matrix] = {}
    for a in layout.array_names:
        d_lo, d_hi = layout.d_slice(a)
        data_matrices[a] = [list(r[d_lo:d_hi]) for r in selected]
    for a in replicated:
        if a in array_ranks:
            data_matrices[a] = [[0] * array_ranks[a] for _ in selected]
    comp_matrices = {k: v for k, v in sel_c.items()}
    entry_ranks = {k: integer_rank(v) if v else 0 for k, v in sel_c.items()}
    return GroupSolution(
        rows=selected,
        comp_matrices=comp_matrices,
        data_matrices=data_matrices,
        entry_ranks=entry_ranks,
        replicated=set(replicated),
        rank_value=len(selected),
    )
