"""Greedy whole-program decomposition (the paper's Section 3.2).

Nests are processed in decreasing execution-weight order.  For each nest
the driver tries a ladder of progressively weaker constraint sets and
keeps the first rung that preserves parallelism (achievable C-rank >= 1)
for every statement admitted so far:

1. strict — all references local (Equation 1) and dependent iterations
   co-located (zero communication, doall);
2. replicate — as strict, after replicating program-read-only arrays the
   nest reads (the paper: "read-only and seldom-written data can be
   replicated");
3. owner-computes — only write references constrain the decomposition;
   reads may be remote;
4. pipeline — references constrain as in (2) but carried dependences are
   allowed to cross processors; the nest executes as a doacross pipeline
   with point-to-point synchronization;
5. pipeline + owner-computes — both relaxations.

A nest for which even rung 5 yields no parallelism is *excluded*: it
receives its own local decomposition, with (infrequent) communication at
the region boundary — the paper's "different data decompositions for
different parts of the program".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro import obs
from repro.obs import provenance
from repro.analysis.dependence import Dependence, analyze_nest
from repro.analysis.unimodular import _obstruction_rows
from repro.decomp.folding import choose_folding
from repro.decomp.model import (
    CompDecomp,
    DataDecomp,
    Decomposition,
)
from repro.decomp.solver import (
    RefConstraint,
    StmtEntry,
    achievable_entry_ranks,
    solve_group,
)
from repro.ir.loops import LoopNest
from repro.ir.program import Program


@dataclass
class _NestInfo:
    nest: LoopNest
    deps: List[Dependence]
    obstructions: List[List[int]]
    entries: List[StmtEntry]
    weight: int


def _stmt_entries(
    nest: LoopNest, obstructions: List[List[int]], frequency: int,
    params: Mapping[str, int],
) -> List[StmtEntry]:
    out = []
    for s, st in enumerate(nest.body):
        depth = st.depth if st.depth is not None else nest.depth
        loop_vars = nest.loop_vars[:depth]
        partial = LoopNest(name=nest.name, loops=nest.loops[:depth], body=[])
        weight = frequency * max(1, partial.count_iterations(params))
        refs = []
        af = st.write.access_function(loop_vars)
        refs.append(
            RefConstraint(
                st.write.array.name,
                [list(r) for r in af.matrix],
                True,
                offset=[e.eval(params) for e in af.offset],
            )
        )
        for r in st.reads:
            af = r.access_function(loop_vars)
            refs.append(
                RefConstraint(
                    r.array.name,
                    [list(rr) for rr in af.matrix],
                    False,
                    offset=[e.eval(params) for e in af.offset],
                )
            )
        out.append(
            StmtEntry(
                nest=nest.name,
                stmt=s,
                depth=depth,
                refs=refs,
                obstructions=[list(o[:depth]) for o in obstructions],
                weight=weight,
            )
        )
    return out


def _read_only_arrays(prog: Program) -> Set[str]:
    written = set()
    for nest in prog.nests:
        for st in nest.body:
            written.add(st.write.array.name)
    return set(prog.arrays) - written


def _configured(
    entries: Sequence[StmtEntry], use_reads: bool, use_parallel: bool
) -> List[StmtEntry]:
    return [
        StmtEntry(
            nest=e.nest,
            stmt=e.stmt,
            depth=e.depth,
            refs=e.refs,
            obstructions=e.obstructions,
            weight=e.weight,
            use_reads=use_reads,
            use_parallel=use_parallel,
        )
        for e in entries
    ]


def decompose_program(
    prog: Program,
    nprocs: int,
    max_dims: int = 2,
    deps_by_nest: Optional[Mapping[str, List[Dependence]]] = None,
) -> Decomposition:
    """Run the greedy decomposition over a whole program."""
    with obs.span("decomp.greedy", cat="decomp", program=prog.name,
                  nprocs=nprocs, max_dims=max_dims) as sp:
        decomp = _decompose_impl(prog, nprocs, max_dims, deps_by_nest)
        sp.set(rank=decomp.rank,
               pipelined=len(decomp.pipelined_nests),
               excluded=len(decomp.excluded_nests))
        return decomp


def _decompose_impl(
    prog: Program,
    nprocs: int,
    max_dims: int = 2,
    deps_by_nest: Optional[Mapping[str, List[Dependence]]] = None,
) -> Decomposition:
    array_ranks = {n: prog.arrays[n].rank for n in prog.arrays}
    read_only = _read_only_arrays(prog)

    infos: List[_NestInfo] = []
    for nest in prog.nests:
        deps = (
            list(deps_by_nest[nest.name])
            if deps_by_nest and nest.name in deps_by_nest
            else analyze_nest(nest, prog.params)
        )
        obstructions = _obstruction_rows(deps, nest.depth)
        weight = nest.frequency * max(1, nest.count_iterations(prog.params))
        infos.append(
            _NestInfo(
                nest=nest,
                deps=deps,
                obstructions=obstructions,
                entries=_stmt_entries(
                    nest, obstructions, nest.frequency, prog.params
                ),
                weight=weight,
            )
        )

    order = sorted(range(len(infos)), key=lambda k: -infos[k].weight)

    included: List[StmtEntry] = []
    replicated: Set[str] = set()
    pipelined: List[str] = []
    excluded: List[str] = []
    notes: List[str] = []

    # Relaxation ladder: (replicate?, use_reads, use_parallel, label)
    LADDER = [
        (False, True, True, "strict"),
        (True, True, True, "replicate"),
        (False, False, True, "owner-computes"),
        (True, False, True, "replicate+owner-computes"),
        (False, True, False, "pipeline"),
        (True, True, False, "replicate+pipeline"),
        (False, False, False, "pipeline+owner-computes"),
        (True, False, False, "replicate+pipeline+owner-computes"),
    ]

    for k in order:
        info = infos[k]
        accepted = False
        rungs_tried: List[str] = []
        for do_replicate, use_reads, use_parallel, label in LADDER:
            rungs_tried.append(label)
            trial_repl = set(replicated)
            if do_replicate:
                nest_read_only = {
                    a.name for a in info.nest.arrays_read()
                } & read_only
                if not nest_read_only - trial_repl:
                    continue  # nothing new to replicate on this rung
                trial_repl |= nest_read_only
            trial = included + _configured(info.entries, use_reads, use_parallel)
            ranks = achievable_entry_ranks(trial, array_ranks, trial_repl)
            if ranks and min(ranks.values()) >= 1:
                included = trial
                replicated = trial_repl
                if not use_parallel and any(
                    d.level >= 0 for d in info.deps
                ):
                    pipelined.append(info.nest.name)
                if label != "strict":
                    notes.append(f"{info.nest.name}: accepted at rung '{label}'")
                obs.event(
                    "decomp.ladder", cat="decomp", nest=info.nest.name,
                    rung=label, weight=info.weight,
                    replicated=sorted(trial_repl),
                    pipelined=info.nest.name in pipelined,
                )
                obs.inc(f"decomp.rung.{label}")
                provenance.record(
                    "decomp.ladder", stage="decomposition",
                    subject=info.nest.name, chosen=label,
                    alternatives=[l for *_cfg, l in LADDER],
                    reason="first rung preserving parallelism",
                    weight=info.weight, rungs_tried=rungs_tried,
                    min_rank=min(ranks.values()),
                    replicated=sorted(trial_repl),
                    pipelined=info.nest.name in pipelined,
                )
                accepted = True
                break
        if not accepted:
            excluded.append(info.nest.name)
            notes.append(
                f"{info.nest.name}: no joint decomposition with parallelism; "
                "separate region (communication at boundary)"
            )
            obs.event("decomp.excluded", cat="decomp", nest=info.nest.name,
                      weight=info.weight)
            obs.inc("decomp.rung.excluded")
            provenance.record(
                "decomp.ladder", stage="decomposition",
                subject=info.nest.name, chosen="excluded",
                alternatives=[l for *_cfg, l in LADDER] + ["excluded"],
                reason="no rung preserves parallelism",
                weight=info.weight, rungs_tried=rungs_tried,
            )

    solution = solve_group(included, array_ranks, replicated, max_dims=max_dims)

    decomp = Decomposition(rank=solution.rank)
    decomp.pipelined_nests = pipelined
    decomp.excluded_nests = excluded
    decomp.notes = notes
    for (nest_name, stmt), mat in solution.comp_matrices.items():
        decomp.comp[(nest_name, stmt)] = CompDecomp(
            nest=nest_name, stmt=stmt, matrix=mat, offset=[0] * len(mat)
        )
    for array, mat in solution.data_matrices.items():
        decomp.data[array] = DataDecomp(
            array=array,
            matrix=mat,
            offset=[0] * len(mat),
            replicated=array in replicated,
        )
    # Replicated arrays that never entered the solver still need entries.
    for array in replicated:
        if array not in decomp.data:
            decomp.data[array] = DataDecomp(
                array=array,
                matrix=[[0] * array_ranks[array] for _ in range(solution.rank)],
                offset=[0] * solution.rank,
                replicated=True,
            )
    decomp.foldings = choose_folding(prog, decomp, nprocs)
    return decomp
