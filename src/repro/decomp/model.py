"""Decomposition data model.

Decompositions are two-step mappings (Section 3.1): an affine map onto a
virtual processor space, then a folding function (BLOCK / CYCLIC /
BLOCK-CYCLIC) from virtual onto physical processors.  The model is a
superset of HPF's DISTRIBUTE/ALIGN directives; :mod:`repro.decomp.hpf`
renders the common cases in HPF notation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple


class FoldKind(Enum):
    """Virtual-to-physical folding function for one processor dimension."""

    BLOCK = "BLOCK"
    CYCLIC = "CYCLIC"
    BLOCK_CYCLIC = "BLOCK_CYCLIC"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Folding:
    """Folding of one virtual processor dimension.

    ``block`` is only meaningful for BLOCK_CYCLIC (the tile size b of
    DISTRIBUTE(CYCLIC(b))).
    """

    kind: FoldKind
    block: Optional[int] = None

    def __post_init__(self):
        if self.kind is FoldKind.BLOCK_CYCLIC and (
            self.block is None or self.block <= 0
        ):
            raise ValueError("BLOCK_CYCLIC folding needs a positive block size")

    def owner(self, v: int, extent: int, nproc: int) -> int:
        """Physical processor owning virtual processor index ``v`` out of
        ``extent`` virtual positions folded onto ``nproc`` processors."""
        if nproc <= 0:
            raise ValueError("nproc must be positive")
        if self.kind is FoldKind.BLOCK:
            b = -(-extent // nproc)  # ceil
            return min(v // b, nproc - 1)
        if self.kind is FoldKind.CYCLIC:
            return v % nproc
        b = self.block
        return (v // b) % nproc

    def __repr__(self) -> str:
        if self.kind is FoldKind.BLOCK_CYCLIC:
            return f"BLOCK_CYCLIC({self.block})"
        return self.kind.value


@dataclass
class CompDecomp:
    """Computation decomposition of one statement.

    ``matrix`` is p-by-depth: virtual processor coordinates of iteration
    ``i`` are ``matrix @ i + offset`` (p = processor-space rank; depth =
    the statement's nesting depth).
    """

    nest: str
    stmt: int
    matrix: List[List[int]]
    offset: List[int]

    @property
    def rank(self) -> int:
        from repro.util.intlinalg import integer_rank

        return integer_rank(self.matrix) if self.matrix else 0

    def virtual_proc(self, iteration: Sequence[int]) -> Tuple[int, ...]:
        """Virtual processor coordinates of a concrete iteration."""
        from repro.util.intlinalg import mat_vec

        if not self.matrix:
            return ()
        v = mat_vec(self.matrix, list(iteration))
        return tuple(x + o for x, o in zip(v, self.offset))


@dataclass
class DataDecomp:
    """Data decomposition of one array (or replication)."""

    array: str
    matrix: List[List[int]]  # p-by-arrayrank
    offset: List[int]
    replicated: bool = False

    @property
    def rank(self) -> int:
        from repro.util.intlinalg import integer_rank

        return integer_rank(self.matrix) if self.matrix else 0

    def virtual_proc(self, index: Sequence[int]) -> Tuple[int, ...]:
        from repro.util.intlinalg import mat_vec

        if not self.matrix:
            return ()
        v = mat_vec(self.matrix, list(index))
        return tuple(x + o for x, o in zip(v, self.offset))

    def distributed_dims(self) -> List[Tuple[int, int]]:
        """For single-array-dim-per-processor-dim decompositions, the
        (processor_dim, array_dim) pairs.  Raises when a row is not a
        (possibly negated) unit vector, which the paper's data-transform
        restriction excludes (Section 4.2)."""
        out = []
        for p, row in enumerate(self.matrix):
            nz = [j for j, c in enumerate(row) if c != 0]
            if not nz:
                continue  # this processor dim does not constrain the array
            if len(nz) != 1 or abs(row[nz[0]]) != 1:
                raise ValueError(
                    f"{self.array}: general affine decomposition row {row} "
                    "is not supported by the data-transform restriction"
                )
            out.append((p, nz[0]))
        return out


@dataclass
class Decomposition:
    """Full program decomposition: one virtual processor space shared by
    every statement and array, with per-dimension foldings."""

    rank: int  # dimensionality of the virtual processor space
    comp: Dict[Tuple[str, int], CompDecomp] = field(default_factory=dict)
    data: Dict[str, DataDecomp] = field(default_factory=dict)
    foldings: List[Folding] = field(default_factory=list)
    pipelined_nests: List[str] = field(default_factory=list)
    excluded_nests: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def comp_for(self, nest: str, stmt: int) -> Optional[CompDecomp]:
        return self.comp.get((nest, stmt))

    def data_for(self, array: str) -> Optional[DataDecomp]:
        return self.data.get(array)

    def is_pipelined(self, nest: str) -> bool:
        return nest in self.pipelined_nests

    def summary(self) -> str:
        """Human-readable summary (HPF-style), used in reports."""
        from repro.decomp.hpf import distribute_string

        lines = [f"virtual processor rank: {self.rank}"]
        lines.append(
            "foldings: " + ", ".join(repr(f) for f in self.foldings)
        )
        for name in sorted(self.data):
            d = self.data[name]
            if d.replicated:
                lines.append(f"  {name}: REPLICATED")
            else:
                try:
                    lines.append(f"  {name}: {distribute_string(d, self.foldings)}")
                except ValueError:
                    lines.append(f"  {name}: affine {d.matrix}")
        if self.pipelined_nests:
            lines.append("pipelined nests: " + ", ".join(self.pipelined_nests))
        if self.excluded_nests:
            lines.append(
                "nests with separate decomposition: "
                + ", ".join(self.excluded_nests)
            )
        return "\n".join(lines)
