"""Virtual-to-physical folding selection (Section 3.2, step 3).

Default BLOCK.  CYCLIC when the computation per iteration of the
distributed loop grows or shrinks monotonically with the iteration
number — detected structurally as triangular bounds coupling the mapped
loop with another loop of the same nest (as in LU).  BLOCK-CYCLIC is
reserved for pipelined nests where load balance is *also* an issue; the
paper's suite never needs it, but :func:`choose_folding` accepts a
``prefer_block_cyclic`` override so the ablation benches can force it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.obs import provenance
from repro.decomp.model import Decomposition, Folding, FoldKind
from repro.ir.loops import LoopNest
from repro.ir.program import Program


def _triangular_levels(nest: LoopNest) -> set:
    """Levels involved in triangular bound coupling: a level whose bound
    references another loop var, or whose var appears in another loop's
    bound."""
    out = set()
    vars_ = list(nest.loop_vars)
    for k, loop in enumerate(nest.loops):
        for e in (loop.lower, loop.upper):
            for v in e.variables:
                if v in vars_:
                    out.add(k)
                    out.add(vars_.index(v))
    return out


def choose_folding(
    prog: Program,
    decomp: Decomposition,
    nprocs: int,
    prefer_block_cyclic: bool = False,
    block_cyclic_block: int = 4,
) -> List[Folding]:
    """Pick a folding per virtual processor dimension."""
    rank = decomp.rank
    foldings: List[Folding] = []
    for p in range(rank):
        kind = FoldKind.BLOCK
        triggers: List[str] = []
        for nest in prog.nests:
            tri = _triangular_levels(nest)
            for s in range(len(nest.body)):
                cd = decomp.comp_for(nest.name, s)
                if cd is None or p >= len(cd.matrix):
                    continue
                row = cd.matrix[p]
                mapped_levels = {k for k, c in enumerate(row) if c != 0}
                if mapped_levels & tri:
                    triggers.append(nest.name)
                    if prefer_block_cyclic and decomp.is_pipelined(nest.name):
                        kind = FoldKind.BLOCK_CYCLIC
                    else:
                        kind = FoldKind.CYCLIC
        if kind is FoldKind.BLOCK_CYCLIC:
            foldings.append(Folding(kind, block_cyclic_block))
        else:
            foldings.append(Folding(kind))
        if kind is FoldKind.BLOCK_CYCLIC:
            reason = "pipelined nest prefers block-cyclic"
        elif kind is FoldKind.CYCLIC:
            reason = "triangular bounds couple mapped levels"
        else:
            reason = "default block"
        provenance.record(
            "decomp.folding", stage="folding", subject=f"dim{p}",
            chosen=kind.value,
            alternatives=[k.value for k in FoldKind],
            reason=reason, nprocs=nprocs,
            triggers=sorted(set(triggers)),
        )
        obs.event("decomp.folding", cat="decomp", dim=p, kind=kind.value)
        obs.inc(f"folding.{kind.value}")
    return foldings


def grid_shape(nprocs: int, rank: int) -> Tuple[int, ...]:
    """Factor ``nprocs`` into a near-square processor grid of the given
    rank (rank 0 -> empty grid, meaning all work on processor 0)."""
    if rank <= 0:
        return ()
    if rank == 1:
        return (nprocs,)
    if rank == 2:
        best = (1, nprocs)
        for a in range(1, int(nprocs ** 0.5) + 1):
            if nprocs % a == 0:
                best = (nprocs // a, a)
        # Return (larger, smaller): distribute the first virtual dim over
        # more processors, like the paper's P1 x P2 annotations.
        return best
    # rank > 2: peel near-equal factors (not used by the paper's suite).
    out = []
    remaining = nprocs
    for k in range(rank - 1):
        f = max(1, round(remaining ** (1.0 / (rank - k))))
        while remaining % f:
            f -= 1
        out.append(f)
        remaining //= f
    out.append(remaining)
    return tuple(sorted(out, reverse=True))


def fold_owner(
    virtual: Sequence[int],
    extents: Sequence[int],
    foldings: Sequence[Folding],
    grid: Sequence[int],
) -> Tuple[int, ...]:
    """Physical grid coordinates owning a virtual processor point."""
    coords = []
    for v, ext, fold, g in zip(virtual, extents, foldings, grid):
        coords.append(fold.owner(int(v), int(ext), int(g)))
    return tuple(coords)


def linearize_grid(coords: Sequence[int], grid: Sequence[int]) -> int:
    """Flatten grid coordinates into a single processor id.

    Column-major (first coordinate fastest), matching the FORTRAN/SPMD
    convention of numbering the first processor-grid dimension
    consecutively; which grid neighbours share a DASH cluster follows
    from this choice.
    """
    pid = 0
    for c, g in zip(reversed(list(coords)), reversed(list(grid))):
        pid = pid * g + c
    return pid
