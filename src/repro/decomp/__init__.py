"""Computation and data decomposition (the paper's Section 3).

The solver finds affine mappings of loop iterations (``C_j``) and array
elements (``D_x``) onto a common virtual processor space satisfying the
zero-communication condition of Equation 1,

    for every reference F_jx :   D_x(F_jx(i)) = C_j(i),

maximizing the rank of the linear parts (the degree of parallelism).
The greedy driver applies the constraints nest-by-nest in decreasing
execution-frequency order, relaxing (replication, owner-computes-only,
pipelining) only where the strict condition would destroy all
parallelism.  Folding functions then map the virtual processor space
onto physical processors (BLOCK / CYCLIC / BLOCK-CYCLIC).
"""

from repro.decomp.model import (
    CompDecomp,
    DataDecomp,
    Folding,
    FoldKind,
    Decomposition,
)
from repro.decomp.solver import GroupSolution, solve_group, StmtEntry
from repro.decomp.greedy import decompose_program
from repro.decomp.folding import choose_folding, fold_owner, grid_shape
from repro.decomp.hpf import distribute_string, parse_distribute, apply_alignment

__all__ = [
    "CompDecomp",
    "DataDecomp",
    "Folding",
    "FoldKind",
    "Decomposition",
    "GroupSolution",
    "solve_group",
    "StmtEntry",
    "decompose_program",
    "choose_folding",
    "fold_owner",
    "grid_shape",
    "distribute_string",
    "parse_distribute",
    "apply_alignment",
]
