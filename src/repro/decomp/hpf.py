"""HPF-notation front end and rendering.

The paper notes its decomposition model is a superset of HPF and uses
HPF notation throughout ("as the HPF notation is more familiar").  This
module renders :class:`DataDecomp` objects in DISTRIBUTE syntax, parses
DISTRIBUTE strings (so HPF directives can drive the data-transformation
phase directly, per Section 7), and maps distributions through ALIGN
statements (offsets ignored, per Section 4.2).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.decomp.model import DataDecomp, Folding, FoldKind
from repro.util.intlinalg import mat_mul


def distribute_string(
    decomp: DataDecomp, foldings: Sequence[Folding]
) -> str:
    """Render a single-dim-per-processor decomposition as HPF, e.g.
    ``(*, CYCLIC)`` for a column-cyclic 2-D array."""
    if decomp.replicated:
        return "REPLICATED"
    arank = len(decomp.matrix[0]) if decomp.matrix else 0
    slots = ["*"] * arank
    for p, adim in decomp.distributed_dims():
        fold = foldings[p] if p < len(foldings) else Folding(FoldKind.BLOCK)
        if fold.kind is FoldKind.BLOCK_CYCLIC:
            slots[adim] = f"CYCLIC({fold.block})"
        else:
            slots[adim] = fold.kind.value
    return "(" + ", ".join(slots) + ")"


_DIST_RE = re.compile(
    r"^\s*(BLOCK|CYCLIC(\(\s*\d+\s*\))?|\*)\s*$", re.IGNORECASE
)


def parse_distribute(
    text: str, array: str, arank: Optional[int] = None
) -> Tuple[DataDecomp, List[Folding]]:
    """Parse ``"(BLOCK, *)"`` into a :class:`DataDecomp` plus foldings.

    Distributed dimensions become successive virtual processor
    dimensions in array-dimension order.
    """
    body = text.strip()
    if body.startswith("(") and body.endswith(")"):
        body = body[1:-1]
    slots = [s.strip() for s in body.split(",")]
    if arank is not None and len(slots) != arank:
        raise ValueError(
            f"{array}: DISTRIBUTE has {len(slots)} slots, rank is {arank}"
        )
    matrix: List[List[int]] = []
    foldings: List[Folding] = []
    for adim, slot in enumerate(slots):
        m = _DIST_RE.match(slot)
        if not m:
            raise ValueError(f"bad DISTRIBUTE slot: {slot!r}")
        up = slot.upper()
        if up == "*":
            continue
        row = [0] * len(slots)
        row[adim] = 1
        matrix.append(row)
        if up == "BLOCK":
            foldings.append(Folding(FoldKind.BLOCK))
        elif up == "CYCLIC":
            foldings.append(Folding(FoldKind.CYCLIC))
        else:
            b = int(re.search(r"\d+", up).group())
            foldings.append(Folding(FoldKind.BLOCK_CYCLIC, b))
    decomp = DataDecomp(
        array=array, matrix=matrix, offset=[0] * len(matrix)
    )
    return decomp, foldings


def apply_alignment(
    template: DataDecomp,
    align_matrix: Sequence[Sequence[int]],
    array: str,
) -> DataDecomp:
    """Map a template's distribution back to an aligned array.

    ``align_matrix`` (template_rank x array_rank) is the linear part of
    the HPF ALIGN function taking array indices to template indices; the
    array's decomposition is the composition ``D_template @ A``.  Any
    alignment offsets are ignored, as in the paper.
    """
    if template.replicated:
        arank = len(align_matrix[0]) if align_matrix else 0
        return DataDecomp(
            array=array,
            matrix=[[0] * arank for _ in template.matrix],
            offset=list(template.offset),
            replicated=True,
        )
    mat = mat_mul([list(r) for r in template.matrix],
                  [list(r) for r in align_matrix])
    return DataDecomp(
        array=array, matrix=mat, offset=list(template.offset)
    )
