"""Cycle cost model and synchronization.

Converts classified accesses into per-processor cycle counts using the
DASH latency ratios, then assembles phase times:

* a doall phase costs the slowest processor's cycles plus its
  synchronization (barrier cost grows with P; decomposition-proven
  local phases need none; boundary exchanges cost a cheap pairwise
  sync);
* a pipelined (doacross) phase adds the classic fill term
  ``(P-1) * T/K`` for K tiles plus per-tile producer-consumer
  synchronization, modelling the paper's tiled pipelining (Section
  6.2.4) and lock-based LU (Section 6.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro import obs


@dataclass(frozen=True)
class CostParams:
    """Latency parameters, in processor cycles (DASH Section 6.1)."""

    cpu_per_access: float = 2.0  # instruction cost carried per reference
    l1_hit: float = 1.0
    l2_hit: float = 10.0  # DASH: ~10 cycles from the second-level cache
    local_miss: float = 30.0
    remote_miss: float = 100.0
    upgrade: float = 50.0  # write-ownership acquisition on a shared line
    barrier_base: float = 400.0
    barrier_per_proc: float = 20.0
    lock_cost: float = 60.0
    neighbor_sync: float = 120.0
    pipeline_tile: int = 8  # sequential steps folded per pipeline tile

    def barrier_cost(self, nprocs: int) -> float:
        if nprocs <= 1:
            return 0.0
        return self.barrier_base + self.barrier_per_proc * nprocs


@dataclass
class PhaseCost:
    """Cost summary of one phase instance."""

    nest_name: str
    time: float
    compute_max: float
    sync: float
    per_proc_cycles: np.ndarray
    misses: Dict[str, int] = field(default_factory=dict)


def per_proc_cycles(
    proc: np.ndarray,
    hit: np.ndarray,
    miss_local: np.ndarray,
    miss_remote: np.ndarray,
    nprocs: int,
    params: CostParams,
    upgrade: np.ndarray = None,
    l2_hit: np.ndarray = None,
) -> np.ndarray:
    """Cycles accumulated by each processor for a slice of accesses.

    ``l2_hit`` accesses are first-level misses served by the private
    second-level cache; they must be excluded from ``miss_local`` /
    ``miss_remote`` by the caller.
    """
    base = np.bincount(proc, minlength=nprocs).astype(np.float64)
    hits = np.bincount(proc[hit], minlength=nprocs).astype(np.float64)
    loc = np.bincount(proc[miss_local], minlength=nprocs).astype(np.float64)
    rem = np.bincount(proc[miss_remote], minlength=nprocs).astype(np.float64)
    out = (
        base * params.cpu_per_access
        + hits * params.l1_hit
        + loc * params.local_miss
        + rem * params.remote_miss
    )
    if l2_hit is not None:
        l2 = np.bincount(proc[l2_hit], minlength=nprocs).astype(np.float64)
        out += l2 * params.l2_hit
    if upgrade is not None and nprocs > 1:
        upg = np.bincount(proc[upgrade], minlength=nprocs).astype(np.float64)
        out += upg * params.upgrade
    return out


def phase_time(
    nest_name: str,
    cycles: np.ndarray,
    sync_kind: str,
    barriers: int,
    pipelined: bool,
    seq_steps: int,
    nprocs: int,
    params: CostParams,
) -> PhaseCost:
    """Assemble one phase's wall time from per-processor cycles."""
    compute = float(cycles.max()) if len(cycles) else 0.0
    sync = 0.0
    if nprocs > 1:
        if pipelined:
            # Tile the doacross to balance pipeline fill against
            # per-tile synchronization (Section 6.2.4: "loops ... are
            # tiled to increase the granularity of pipelining").  The
            # compiler picks the tile count minimizing
            #   (P-1) * compute / K  +  K * lock_cost.
            k_opt = (
                ((nprocs - 1) * compute / params.lock_cost) ** 0.5
                if params.lock_cost > 0
                else seq_steps
            )
            tiles = int(max(1, min(seq_steps, k_opt)))
            fill = (nprocs - 1) * compute / max(1, tiles)
            sync = fill + tiles * params.lock_cost
            obs.event("sim.pipeline_tile", cat="machine",
                      nest=nest_name, tiles=tiles, fill=fill,
                      lock_overhead=tiles * params.lock_cost)
        elif sync_kind == "barrier":
            sync = barriers * params.barrier_cost(nprocs)
        elif sync_kind == "neighbor":
            sync = params.neighbor_sync
        # sync_kind == "none": decomposition proved locality.
    return PhaseCost(
        nest_name=nest_name,
        time=compute + sync,
        compute_max=compute,
        sync=sync,
        per_proc_cycles=cycles,
    )
