"""Invalidation-based cache coherence.

Two implementations of the same protocol (write-invalidate MSI over
private direct-mapped caches, lockstep global interleaving):

* :func:`classify_accesses` — fully vectorized over the merged global
  stream; used by every benchmark sweep;
* :class:`ExactCoherentSim` — a straightforward event-at-a-time Python
  simulator kept as an executable specification; the test suite checks
  the two agree access-for-access on random traces.

Miss taxonomy (Section 1.1):

* **cold** — processor touches a line for the first time;
* **replacement** — conflict/capacity: the line was displaced from the
  direct-mapped set by another line;
* **true sharing** — the line was invalidated by another processor's
  write *to a word this processor uses*;
* **false sharing** — the line was invalidated by another processor's
  write to a *different* word of the same line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro import obs
from repro.machine.cache import (
    CacheConfig,
    assoc_lru_hits,
    direct_mapped_hits,
    segmented_prev_position,
)


def _last_write_before(group: np.ndarray, write: np.ndarray) -> np.ndarray:
    """For each access i (stream order), the largest stream position
    j < i with ``group[j] == group[i]`` and ``write[j]`` (or -1)."""
    n = len(group)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    pos = np.arange(n, dtype=np.int64)
    order = np.lexsort((pos, group))
    g = group[order]
    w = np.where(write[order], pos[order], np.int64(-1))
    # Segmented running max via per-group bias.
    gid = np.cumsum(np.concatenate(([0], (g[1:] != g[:-1]).astype(np.int64))))
    large = np.int64(n + 2)
    acc = np.maximum.accumulate(w + gid * large)
    prev = np.full(n, -1, dtype=np.int64)
    same = np.zeros(n, dtype=bool)
    same[1:] = g[1:] == g[:-1]
    prev[1:][same[1:]] = acc[:-1][same[1:]] - gid[1:][same[1:]] * large
    out = np.full(n, -1, dtype=np.int64)
    out[order] = np.maximum(prev, -1)
    return out


@dataclass
class AccessClassification:
    """Per-access outcome flags (all in stream order).

    ``upgrade`` marks write hits that must still acquire exclusive
    ownership because another processor touched the line since this
    processor's previous access — the writer-side cost of sharing
    ping-pong (the reader side shows up as sharing misses).
    """

    hit: np.ndarray
    cold: np.ndarray
    replacement: np.ndarray
    true_sharing: np.ndarray
    false_sharing: np.ndarray
    upgrade: np.ndarray = None
    l2_hit: np.ndarray = None
    """True where a first-level miss is satisfied by the (optional)
    private second-level cache; always False when no L2 is modelled."""

    def __post_init__(self):
        if self.upgrade is None:
            self.upgrade = np.zeros(len(self.hit), dtype=bool)
        if self.l2_hit is None:
            self.l2_hit = np.zeros(len(self.hit), dtype=bool)

    @property
    def miss(self) -> np.ndarray:
        return ~self.hit


def classify_accesses(
    proc: np.ndarray,
    addr: np.ndarray,
    write: np.ndarray,
    cfg: CacheConfig,
    word_bytes: int = 8,
    l2: "CacheConfig | None" = None,
) -> AccessClassification:
    """Classify every access of a merged, globally-ordered stream.

    When ``l2`` is given, a private second-level cache (inclusive,
    updated on every reference) filters first-level misses: an L1 miss
    whose line survives in L2 — and was not invalidated by another
    processor's write — is an ``l2_hit``.
    """
    n = len(addr)
    if n == 0:
        z = np.zeros(0, dtype=bool)
        return AccessClassification(z, z, z, z, z)
    line = addr // cfg.line_bytes
    word = addr // word_bytes
    nline = int(line.max()) + 1
    nword = int(word.max()) + 1
    pos = np.arange(n, dtype=np.int64)

    # Direct-mapped is the DASH default and fully vectorized; the LRU
    # set-associative variant (model-sensitivity studies) is exact but
    # event-at-a-time.
    if cfg.assoc == 1:
        tag_hit = direct_mapped_hits(proc, addr, cfg)
    else:
        tag_hit = assoc_lru_hits(proc, addr, cfg)
    prev_line_pos = segmented_prev_position(proc * nline + line, pos)
    lw_any_line = _last_write_before(line, write)
    lw_same_line = _last_write_before(proc * nline + line, write)
    lw_any_word = _last_write_before(word, write)
    lw_same_word = _last_write_before(proc * nword + word, write)

    # Invalidated: the line would have survived in the cache (tag match),
    # but another processor wrote it after this processor's last touch.
    # "Another processor" = the most recent write is not our own.
    invalidated = (
        tag_hit
        & (lw_any_line > lw_same_line)
        & (lw_any_line > prev_line_pos)
    )
    cold = prev_line_pos < 0
    hit = tag_hit & ~invalidated
    miss = ~hit
    true_sharing = (
        invalidated
        & (lw_any_word > lw_same_word)
        & (lw_any_word > prev_line_pos)
    )
    false_sharing = invalidated & ~true_sharing
    replacement = miss & ~cold & ~invalidated
    # Writer-side ownership acquisition: a write hit on a line someone
    # else has touched since our previous access must invalidate their
    # copy before proceeding.
    la_any_line = _last_write_before(line, np.ones(n, dtype=bool))
    upgrade = write & hit & (la_any_line > prev_line_pos)

    l2_hit = np.zeros(n, dtype=bool)
    if l2 is not None:
        if l2.assoc == 1:
            l2_tag = direct_mapped_hits(proc, addr, l2)
        else:
            l2_tag = assoc_lru_hits(proc, addr, l2)
        # Same invalidation predicate, at the L2 tag state: a remote
        # write invalidates both levels.
        inv2 = (
            l2_tag
            & (lw_any_line > lw_same_line)
            & (lw_any_line > prev_line_pos)
        )
        l2_hit = miss & l2_tag & ~inv2
    out = AccessClassification(
        hit=hit,
        cold=cold & miss,
        replacement=replacement,
        true_sharing=true_sharing,
        false_sharing=false_sharing,
        upgrade=upgrade,
        l2_hit=l2_hit,
    )
    if obs.enabled():
        obs.event(
            "sim.classify", cat="machine", accesses=int(n),
            hits=int(out.hit.sum()), cold=int(out.cold.sum()),
            replacement=int(out.replacement.sum()),
            true_sharing=int(out.true_sharing.sum()),
            false_sharing=int(out.false_sharing.sum()),
            upgrade=int(out.upgrade.sum()), l2_hits=int(out.l2_hit.sum()),
        )
    return out


class ExactCoherentSim:
    """Event-at-a-time MSI reference simulator (executable spec).

    Caches are direct-mapped; a write invalidates every other
    processor's copy of the line.  Sharing misses are split true/false
    by whether any invalidating write since this processor's last touch
    hit the word now being accessed.

    ``l2`` optionally models the private second-level cache with the
    same semantics as :func:`classify_accesses`: inclusive, updated on
    every reference, invalidated (both levels) by remote writes; a
    first-level miss whose line survives there is an ``l2_hit``.
    """

    def __init__(self, nprocs: int, cfg: CacheConfig, word_bytes: int = 8,
                 l2: "CacheConfig | None" = None):
        self.nprocs = nprocs
        self.cfg = cfg
        self.word_bytes = word_bytes
        self.l2 = l2

    def run(
        self, proc: np.ndarray, addr: np.ndarray, write: np.ndarray
    ) -> AccessClassification:
        n = len(addr)
        cfg = self.cfg
        # cache[p][set] = line currently cached (or None); valid flag.
        cache: Dict[Tuple[int, int], int] = {}
        valid: Dict[Tuple[int, int], bool] = {}
        touched: set = set()  # (proc, line) ever cached
        # last write position per word / per line by each proc.
        word_writes: Dict[int, list] = {}  # word -> list of (pos, proc)
        line_writes: Dict[int, list] = {}
        last_touch: Dict[Tuple[int, int], int] = {}

        hit = np.zeros(n, dtype=bool)
        cold = np.zeros(n, dtype=bool)
        repl = np.zeros(n, dtype=bool)
        tshare = np.zeros(n, dtype=bool)
        fshare = np.zeros(n, dtype=bool)
        upgrade = np.zeros(n, dtype=bool)
        l2_hit = np.zeros(n, dtype=bool)
        last_touch_any: Dict[int, int] = {}
        # Second-level tag state, mirroring the L1 structures.
        l2cache: Dict[Tuple[int, int], int] = {}
        l2valid: Dict[Tuple[int, int], bool] = {}

        for i in range(n):
            p = int(proc[i])
            a = int(addr[i])
            ln = a // cfg.line_bytes
            st = ln % cfg.nsets
            wd = a // self.word_bytes
            key = (p, st)
            cached = cache.get(key)
            is_valid = valid.get(key, False)
            if cached == ln and is_valid:
                hit[i] = True
                if write[i] and last_touch_any.get(ln, -1) > last_touch.get(
                    (p, ln), -1
                ):
                    upgrade[i] = True
            else:
                if (p, ln) not in touched:
                    cold[i] = True
                elif cached == ln and not is_valid:
                    # Present but invalidated: sharing miss.  True iff an
                    # invalidating write since our last touch was to this
                    # word.
                    since = last_touch.get((p, ln), -1)
                    word_hits = any(
                        q != p and pos > since
                        for pos, q in word_writes.get(wd, ())
                    )
                    if word_hits:
                        tshare[i] = True
                    else:
                        fshare[i] = True
                else:
                    repl[i] = True
                if self.l2 is not None:
                    k2 = (p, ln % self.l2.nsets)
                    if l2cache.get(k2) == ln and l2valid.get(k2, False):
                        l2_hit[i] = True
                cache[key] = ln
                valid[key] = True
            if self.l2 is not None:
                k2 = (p, ln % self.l2.nsets)
                l2cache[k2] = ln
                l2valid[k2] = True
            touched.add((p, ln))
            last_touch[(p, ln)] = i
            last_touch_any[ln] = i
            if write[i]:
                word_writes.setdefault(wd, []).append((i, p))
                line_writes.setdefault(ln, []).append((i, p))
                # Invalidate every other processor's copy.
                for q in range(self.nprocs):
                    if q == p:
                        continue
                    kq = (q, st)
                    if cache.get(kq) == ln and valid.get(kq, False):
                        valid[kq] = False
                    if self.l2 is not None:
                        kq2 = (q, ln % self.l2.nsets)
                        if (l2cache.get(kq2) == ln
                                and l2valid.get(kq2, False)):
                            l2valid[kq2] = False
        return AccessClassification(
            hit=hit,
            cold=cold,
            replacement=repl,
            true_sharing=tshare,
            false_sharing=fshare,
            upgrade=upgrade,
            l2_hit=l2_hit,
        )
