"""Whole-program simulation driver.

Replays an SPMD program's address traces through the private-cache +
coherence + NUMA models and assembles per-phase and total times.  The
phase sequence of one time step is simulated twice back-to-back: the
first round pays the cold misses, the second measures the steady state;
a program with T time steps costs ``round0 + (T-1) * round1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codegen.spmd import Scheme, SpmdProgram, generate_spmd
from repro.machine.coherence import classify_accesses
from repro.machine.cost import CostParams, PhaseCost, per_proc_cycles, phase_time
from repro.machine.dash import DashConfig
from repro.machine.numa import local_miss_mask
from repro.machine.trace import PhaseTrace, program_traces


@dataclass
class SimResult:
    """Outcome of simulating one (program, scheme, machine) triple."""

    scheme: str
    nprocs: int
    total_time: float
    round_times: Tuple[float, float]  # (cold round, steady round)
    time_steps: int
    phase_costs: List[PhaseCost]
    miss_breakdown: Dict[str, int] = field(default_factory=dict)
    n_accesses: int = 0

    def summary(self) -> str:
        mb = self.miss_breakdown
        parts = ", ".join(f"{k}={v}" for k, v in sorted(mb.items()))
        return (
            f"{self.scheme} P={self.nprocs}: time={self.total_time:.3e} "
            f"({parts})"
        )


def simulate(spmd: SpmdProgram, machine: DashConfig) -> SimResult:
    """Simulate one compiled program on one machine."""
    prog = spmd.program
    space, traces = program_traces(spmd, machine.numa.page_bytes)

    # Two rounds of the phase sequence: cold then steady state.
    rounds = 2 if prog.time_steps > 1 else 1
    seq: List[Tuple[int, PhaseTrace, int]] = []  # (round, trace, phase idx)
    for r in range(rounds):
        for k, t in enumerate(traces):
            seq.append((r, t, k))

    if not seq or all(t.n_accesses == 0 for _, t, _ in seq):
        return SimResult(
            scheme=spmd.scheme.value,
            nprocs=spmd.nprocs,
            total_time=0.0,
            round_times=(0.0, 0.0),
            time_steps=prog.time_steps,
            phase_costs=[],
        )

    proc = np.concatenate([t.proc for _, t, _ in seq])
    addr = np.concatenate([t.addr for _, t, _ in seq])
    write = np.concatenate([t.write for _, t, _ in seq])
    slice_id = np.concatenate(
        [
            np.full(t.n_accesses, i, dtype=np.int64)
            for i, (_, t, _) in enumerate(seq)
        ]
    )

    cls = classify_accesses(
        proc, addr, write, machine.cache, word_bytes=machine.word_bytes,
        l2=machine.l2,
    )
    local = local_miss_mask(addr, proc, machine.numa)
    miss = cls.miss & ~cls.l2_hit  # L2-served misses never reach memory
    miss_local = miss & local
    miss_remote = miss & ~local

    params = machine.cost
    nprocs = spmd.nprocs
    phase_costs: List[PhaseCost] = []
    round_time = [0.0, 0.0]
    breakdown = {
        "cold": int(cls.cold.sum()),
        "replacement": int(cls.replacement.sum()),
        "true_sharing": int(cls.true_sharing.sum()),
        "false_sharing": int(cls.false_sharing.sum()),
        "upgrade": int(cls.upgrade.sum()),
        "l2_hits": int(cls.l2_hit.sum()),
        "remote": int(miss_remote.sum()),
        "local_miss": int(miss_local.sum()),
    }

    for i, (r, t, k) in enumerate(seq):
        sl = slice_id == i
        cycles = per_proc_cycles(
            proc[sl], cls.hit[sl], miss_local[sl], miss_remote[sl],
            nprocs, params, upgrade=cls.upgrade[sl], l2_hit=cls.l2_hit[sl],
        )
        pc = phase_time(
            nest_name=t.nest_name,
            cycles=cycles,
            sync_kind=t.sync_after,
            barriers=t.barriers,
            pipelined=t.pipelined,
            seq_steps=spmd.phases[k].seq_steps,
            nprocs=nprocs,
            params=params,
        )
        freq = max(1, spmd.phases[k].nest.frequency)
        round_time[r] += pc.time * freq
        if r == rounds - 1:
            phase_costs.append(pc)

    steps = max(1, prog.time_steps)
    if rounds == 2:
        total = round_time[0] + (steps - 1) * round_time[1]
    else:
        total = round_time[0] * steps
        round_time[1] = round_time[0]
    return SimResult(
        scheme=spmd.scheme.value,
        nprocs=nprocs,
        total_time=total,
        round_times=(round_time[0], round_time[1]),
        time_steps=steps,
        phase_costs=phase_costs,
        miss_breakdown=breakdown,
        n_accesses=int(len(addr)) // rounds,
    )


def simulate_scheme(
    prog,
    scheme: Scheme,
    machine: DashConfig,
    decomp=None,
) -> SimResult:
    """Compile (SPMD-plan) and simulate a program under one scheme."""
    from repro.compiler import compile_program

    spmd = compile_program(prog, scheme, machine.nprocs, decomp=decomp)
    return simulate(spmd, machine)


def speedup_curve(
    prog,
    schemes: Sequence[Scheme],
    machine_factory,
    procs: Sequence[int],
) -> Dict[str, List[Tuple[int, float]]]:
    """Speedups over the best sequential version for each scheme.

    ``machine_factory(nprocs)`` builds the machine; the sequential
    baseline is the BASE scheme on one processor (every access local).

    The decomposition is processor-count independent, so it is computed
    once and reused for every point of the sweep.
    """
    from repro.compiler import compile_program, restructure_program
    from repro.decomp.greedy import decompose_program

    rprog = restructure_program(prog)
    decomp = None
    if any(s is not Scheme.BASE for s in schemes):
        decomp = decompose_program(rprog, max(procs))

    seq_machine = machine_factory(1)
    seq_spmd = compile_program(prog, Scheme.BASE, 1)
    seq = simulate(seq_spmd, seq_machine)
    out: Dict[str, List[Tuple[int, float]]] = {}
    for scheme in schemes:
        series = []
        for p in procs:
            machine = machine_factory(p)
            spmd = compile_program(
                prog, scheme, p,
                decomp=decomp if scheme is not Scheme.BASE else None,
            )
            res = simulate(spmd, machine)
            series.append(
                (p, seq.total_time / res.total_time if res.total_time else 0.0)
            )
        out[scheme.value] = series
    return out
