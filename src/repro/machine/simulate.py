"""Whole-program simulation driver.

Replays an SPMD program's address traces through the private-cache +
coherence + NUMA models and assembles per-phase and total times.  The
phase sequence of one time step is simulated twice back-to-back: the
first round pays the cold misses, the second measures the steady state;
a program with T time steps costs ``round0 + (T-1) * round1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.codegen.spmd import Scheme, SpmdProgram, generate_spmd
from repro.machine.coherence import classify_accesses
from repro.machine.cost import CostParams, PhaseCost, per_proc_cycles, phase_time
from repro.machine.dash import DashConfig
from repro.machine.numa import local_miss_mask
from repro.machine.trace import PhaseTrace, program_traces


@dataclass
class SimResult:
    """Outcome of simulating one (program, scheme, machine) triple.

    ``phase_costs[k].misses`` carries the steady-round miss-class
    breakdown of phase ``k``.  The optional *detail* fields (filled when
    observability is enabled or ``simulate(..., detail=True)``) add a
    per-array miss-class breakdown over the whole simulated stream, a
    NUMA local/remote summary, and the cache-set occupancy of
    replacement (conflict) misses — the raw material of the "why is
    this slow" profile (:func:`repro.report.format_profile_table`).
    """

    scheme: str
    nprocs: int
    total_time: float
    round_times: Tuple[float, float]  # (cold round, steady round)
    time_steps: int
    phase_costs: List[PhaseCost]
    miss_breakdown: Dict[str, int] = field(default_factory=dict)
    n_accesses: int = 0
    array_breakdown: Dict[str, Dict[str, int]] = field(default_factory=dict)
    numa: Dict[str, float] = field(default_factory=dict)
    conflict_sets: Dict[str, object] = field(default_factory=dict)
    # Locality analytics (repro.machine.locality.LocalityReport.as_dict()),
    # filled only on simulate(..., locality=True): reuse-distance
    # histograms per array, set-pressure distribution, phase x array
    # heatmap.  Deterministic, so bench snapshots exact-match it.
    locality: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> str:
        mb = self.miss_breakdown
        parts = ", ".join(f"{k}={v}" for k, v in sorted(mb.items()))
        return (
            f"{self.scheme} P={self.nprocs}: time={self.total_time:.3e} "
            f"({parts})"
        )


_MISS_CLASSES = (
    "hits", "cold", "replacement", "true_sharing", "false_sharing",
    "upgrade", "l2_hits", "remote", "local_miss",
)


def _class_masks(cls, miss_local, miss_remote) -> Dict[str, np.ndarray]:
    return {
        "hits": cls.hit,
        "cold": cls.cold,
        "replacement": cls.replacement,
        "true_sharing": cls.true_sharing,
        "false_sharing": cls.false_sharing,
        "upgrade": cls.upgrade,
        "l2_hits": cls.l2_hit,
        "remote": miss_remote,
        "local_miss": miss_local,
    }


def simulate(
    spmd: SpmdProgram, machine: DashConfig, detail: bool = False,
    locality: bool = False,
) -> SimResult:
    """Simulate one compiled program on one machine.

    ``detail=True`` forces the per-array / NUMA / conflict-set profile
    fields of :class:`SimResult` to be computed even when observability
    is disabled (they are always computed when it is enabled).
    ``locality=True`` additionally runs the reuse-distance / set-pressure
    / heatmap analytics (:mod:`repro.machine.locality`) over one round
    of the address stream and stores them in ``SimResult.locality``;
    they are opt-in only — never implied by observability — because the
    reuse sweep costs O(n log n) Python-side work.
    """
    with obs.span("sim.simulate", cat="machine", scheme=spmd.scheme.value,
                  nprocs=spmd.nprocs) as sp:
        res = _simulate_impl(spmd, machine, detail or obs.enabled(),
                             locality)
        sp.set(total_time=res.total_time, accesses=res.n_accesses)
        for k, v in res.miss_breakdown.items():
            sp.add(k, v)
        return res


def _simulate_impl(
    spmd: SpmdProgram, machine: DashConfig, detail: bool,
    locality: bool = False,
) -> SimResult:
    prog = spmd.program
    space, traces = program_traces(spmd, machine.numa.page_bytes)
    locality_dict: Dict[str, object] = {}
    if locality:
        from repro.machine.locality import collect_locality

        # One round of the phase sequence (one time step) — the same
        # stream the cache model replays per round.
        locality_dict = collect_locality(
            space, traces, machine.cache
        ).as_dict()

    # Two rounds of the phase sequence: cold then steady state.
    rounds = 2 if prog.time_steps > 1 else 1
    seq: List[Tuple[int, PhaseTrace, int]] = []  # (round, trace, phase idx)
    for r in range(rounds):
        for k, t in enumerate(traces):
            seq.append((r, t, k))

    if not seq or all(t.n_accesses == 0 for _, t, _ in seq):
        return SimResult(
            scheme=spmd.scheme.value,
            nprocs=spmd.nprocs,
            total_time=0.0,
            round_times=(0.0, 0.0),
            time_steps=prog.time_steps,
            phase_costs=[],
            locality=locality_dict,
        )

    proc = np.concatenate([t.proc for _, t, _ in seq])
    addr = np.concatenate([t.addr for _, t, _ in seq])
    write = np.concatenate([t.write for _, t, _ in seq])
    slice_id = np.concatenate(
        [
            np.full(t.n_accesses, i, dtype=np.int64)
            for i, (_, t, _) in enumerate(seq)
        ]
    )

    # The classification sweep is its own wall-time ledger anchor: it
    # dominates simulate() for large streams and must be attributable
    # separately from the per-phase cost loop below.
    with obs.span("sim.classify", cat="machine", accesses=int(len(addr))):
        cls = classify_accesses(
            proc, addr, write, machine.cache, word_bytes=machine.word_bytes,
            l2=machine.l2,
        )
        local = local_miss_mask(addr, proc, machine.numa)
    miss = cls.miss & ~cls.l2_hit  # L2-served misses never reach memory
    miss_local = miss & local
    miss_remote = miss & ~local

    params = machine.cost
    nprocs = spmd.nprocs
    phase_costs: List[PhaseCost] = []
    round_time = [0.0, 0.0]
    breakdown = {
        "cold": int(cls.cold.sum()),
        "replacement": int(cls.replacement.sum()),
        "true_sharing": int(cls.true_sharing.sum()),
        "false_sharing": int(cls.false_sharing.sum()),
        "upgrade": int(cls.upgrade.sum()),
        "l2_hits": int(cls.l2_hit.sum()),
        "remote": int(miss_remote.sum()),
        "local_miss": int(miss_local.sum()),
    }
    masks = _class_masks(cls, miss_local, miss_remote)

    for i, (r, t, k) in enumerate(seq):
        steady = r == rounds - 1
        with obs.span("sim.phase", cat="machine", nest=t.nest_name,
                      round="steady" if steady else "cold") as psp:
            sl = slice_id == i
            cycles = per_proc_cycles(
                proc[sl], cls.hit[sl], miss_local[sl], miss_remote[sl],
                nprocs, params, upgrade=cls.upgrade[sl], l2_hit=cls.l2_hit[sl],
            )
            pc = phase_time(
                nest_name=t.nest_name,
                cycles=cycles,
                sync_kind=t.sync_after,
                barriers=t.barriers,
                pipelined=t.pipelined,
                seq_steps=spmd.phases[k].seq_steps,
                nprocs=nprocs,
                params=params,
            )
            freq = max(1, spmd.phases[k].nest.frequency)
            round_time[r] += pc.time * freq
            if steady:
                # Steady-round miss classes become the phase profile.
                pc.misses = {
                    name: int(m[sl].sum()) for name, m in masks.items()
                }
                pc.misses["accesses"] = int(sl.sum())
                phase_costs.append(pc)
                psp.set(time=pc.time, compute=pc.compute_max, sync=pc.sync)
                for name, v in pc.misses.items():
                    psp.add(name, v)

    steps = max(1, prog.time_steps)
    if rounds == 2:
        total = round_time[0] + (steps - 1) * round_time[1]
    else:
        total = round_time[0] * steps
        round_time[1] = round_time[0]

    nmiss = breakdown["remote"] + breakdown["local_miss"]
    numa = {
        "local_misses": breakdown["local_miss"],
        "remote_misses": breakdown["remote"],
        "local_ratio": breakdown["local_miss"] / nmiss if nmiss else 1.0,
    }
    array_breakdown: Dict[str, Dict[str, int]] = {}
    conflict: Dict[str, object] = {}
    if detail:
        # Per-array classes over the whole simulated stream: arrays are
        # laid out contiguously, so the owning array of an address is a
        # binary search over the sorted base addresses.
        names = sorted(space.bases, key=lambda nm: space.bases[nm])
        starts = np.array([space.bases[nm] for nm in names], dtype=np.int64)
        aidx = np.searchsorted(starts, addr, side="right") - 1
        for j, nm in enumerate(names):
            am = aidx == j
            cnt = int(am.sum())
            if not cnt:
                continue
            ab = {name: int((m & am).sum()) for name, m in masks.items()}
            ab["accesses"] = cnt
            array_breakdown[nm] = ab
        # Conflict pressure: which cache sets the replacement misses
        # land on (a skewed occupancy is the power-of-two aliasing
        # signature the paper's data transform removes).
        nsets = machine.cache.nsets
        rsets = (addr[cls.replacement] // machine.cache.line_bytes) % nsets
        occ = np.bincount(rsets, minlength=nsets)
        # Rank by (-count, set index): plain argsort[::-1] orders
        # equal-count sets by *descending* index, which made stored
        # results and snapshots byte-unstable across numpy sort quirks.
        top = np.lexsort((np.arange(len(occ)), -occ))[:8]
        conflict = {
            "nsets": int(nsets),
            "replacement_misses": int(occ.sum()),
            "max_per_set": int(occ.max()) if nsets else 0,
            "mean_per_set": float(occ.mean()) if nsets else 0.0,
            "top_sets": [[int(s), int(occ[s])] for s in top if occ[s] > 0],
        }
        obs.event("sim.numa", cat="machine", **numa)

    return SimResult(
        scheme=spmd.scheme.value,
        nprocs=nprocs,
        total_time=total,
        round_times=(round_time[0], round_time[1]),
        time_steps=steps,
        phase_costs=phase_costs,
        miss_breakdown=breakdown,
        n_accesses=int(len(addr)) // rounds,
        array_breakdown=array_breakdown,
        numa=numa,
        conflict_sets=conflict,
        locality=locality_dict,
    )


def simulate_scheme(
    prog,
    scheme: Scheme,
    machine: DashConfig,
    decomp=None,
    session=None,
) -> SimResult:
    """Compile (SPMD-plan) and simulate a program under one scheme."""
    from repro.pipeline.session import get_session

    session = session or get_session()
    spmd = session.compile(prog, scheme, machine.nprocs, decomp=decomp)
    return simulate(spmd, machine)


def speedup_curve(
    prog,
    schemes: Sequence[Scheme],
    machine_factory,
    procs: Sequence[int],
    session=None,
) -> Dict[str, List[Tuple[int, float]]]:
    """Speedups over the best sequential version for each scheme.

    ``machine_factory(nprocs)`` builds the machine; the sequential
    baseline is the BASE scheme on one processor (every access local).

    The decomposition is processor-count independent, so every point of
    the sweep shares the one derived at ``max(procs)``
    (``decomp_nprocs``); with the session's artifact cache it is
    computed once.  Pass a dedicated
    :class:`~repro.pipeline.session.CompileSession` for isolation; the
    default session is used otherwise.
    """
    from repro.pipeline.session import get_session

    session = session or get_session()
    maxp = max(procs)
    seq_machine = machine_factory(1)
    seq_spmd = session.compile(prog, Scheme.BASE, 1)
    seq = simulate(seq_spmd, seq_machine)
    out: Dict[str, List[Tuple[int, float]]] = {}
    for scheme in schemes:
        series = []
        for p in procs:
            machine = machine_factory(p)
            spmd = session.compile(
                prog, scheme, p,
                decomp_nprocs=maxp if scheme is not Scheme.BASE else None,
            )
            res = simulate(spmd, machine)
            if res.total_time > 0.0:
                s = seq.total_time / res.total_time
            else:
                # A zero simulated time (e.g. an empty trace) must not
                # read as "speedup 0.0" — or worse, divide to inf.
                # Report the neutral 1.0 and log the anomaly.
                s = 1.0
                obs.event("sim.zero_time", cat="machine",
                          scheme=scheme.value, nprocs=p,
                          seq_time=seq.total_time)
            series.append((p, s))
        out[scheme.value] = series
    return out
