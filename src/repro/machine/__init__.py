"""Trace-driven multiprocessor memory-system model (the DASH substitute).

The paper's measurements come from running compiler-generated SPMD C
code on the 32-processor Stanford DASH machine (64KB direct-mapped
first-level caches, 16-byte lines, 4-processor clusters, page-level
first-touch memory homing, access-time ratios 1:10:30:100).  Everything
those measurements depend on — spatial locality, false sharing, conflict
misses, NUMA locality, synchronization cost — is a function of the
per-processor address streams and the machine geometry, so this package
replays exactly that:

* :mod:`trace` turns an SPMD plan into per-processor address streams
  (fully vectorized over NumPy);
* :mod:`cache` simulates the private direct-mapped caches per set;
* :mod:`coherence` overlays invalidation-based coherence, classifying
  cold / replacement (conflict+capacity) / true-sharing / false-sharing
  misses — an exact event-order simulator for tests and a vectorized
  global-order simulator for the benchmark sweeps;
* :mod:`numa` homes pages by first touch and splits misses into local
  and remote;
* :mod:`cost` turns counts into cycles, adds synchronization and
  pipeline models, and computes speedups;
* :mod:`dash` provides the (scaled) DASH machine configurations;
* :mod:`simulate` drives a whole program through the model.
"""

from repro.machine.cache import CacheConfig
from repro.machine.dash import DashConfig, dash_machine, scaled_dash
from repro.machine.simulate import SimResult, simulate, speedup_curve

__all__ = [
    "CacheConfig",
    "DashConfig",
    "dash_machine",
    "scaled_dash",
    "SimResult",
    "simulate",
    "speedup_curve",
]
