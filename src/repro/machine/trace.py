"""Vectorized address-trace generation.

Turns an :class:`SpmdProgram` phase into per-processor streams of
(program-order key, byte address, is-write) triples without any
per-iteration Python dispatch: the iteration space is enumerated level
by level with ``np.repeat`` (triangular bounds supported), owners are
computed by matrix products + folding arithmetic, and addresses by the
layouts' vectorized linearization.

The program-order key is a mixed-radix encoding of the iteration vector
(plus statement and reference positions) that totally orders all
accesses of a phase in sequential program order; the coherence model
uses it as the lockstep interleaving of the processors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.codegen.spmd import OwnerPlan, SpmdPhase, SpmdProgram
from repro.datatrans.transform import TransformedArray
from repro.ir.expr import AffineExpr
from repro.ir.loops import LoopNest


@dataclass
class PhaseTrace:
    """All accesses of one phase, in global program order."""

    nest_name: str
    key: np.ndarray  # int64 program-order key (sorted ascending)
    addr: np.ndarray  # byte addresses
    write: np.ndarray  # bool
    proc: np.ndarray  # owning processor id
    sync_after: str
    pipelined: bool
    barriers: int
    nprocs: int

    @property
    def n_accesses(self) -> int:
        return len(self.addr)


def _eval_affine_vec(
    e: AffineExpr, cols: Mapping[str, np.ndarray], params: Mapping[str, int],
    n: int,
) -> np.ndarray:
    out = np.full(n, e.const, dtype=np.int64)
    for v, c in e.coeffs:
        if v in cols:
            out += c * cols[v]
        elif v in params:
            out += c * params[v]
        else:
            raise ValueError(f"unbound variable {v}")
    return out


def enumerate_iterations(
    nest: LoopNest, params: Mapping[str, int], depth: Optional[int] = None
) -> Tuple[Dict[str, np.ndarray], int]:
    """Enumerate the first ``depth`` loops as coordinate columns in
    sequential order.  Returns (columns, count)."""
    depth = nest.depth if depth is None else depth
    cols: Dict[str, np.ndarray] = {}
    n = 1
    for level in range(depth):
        loop = nest.loops[level]
        lo = _eval_affine_vec(loop.lower, cols, params, n)
        hi = _eval_affine_vec(loop.upper, cols, params, n)
        reps = np.maximum(hi - lo + 1, 0)
        total = int(reps.sum())
        # Repeat every existing column per-row.
        for v in cols:
            cols[v] = np.repeat(cols[v], reps)
        # New column: for each row, lo..hi.
        starts = np.repeat(np.cumsum(reps) - reps, reps)
        base = np.repeat(lo, reps)
        cols[loop.var] = base + (np.arange(total, dtype=np.int64) - starts)
        n = total
    return cols, n


def _owner_ids(
    plan: OwnerPlan,
    nest: LoopNest,
    cols: Mapping[str, np.ndarray],
    n: int,
    params: Mapping[str, int],
    nprocs: int,
    grid: Sequence[int],
) -> np.ndarray:
    if plan.kind == "serial" or nprocs == 1:
        return np.zeros(n, dtype=np.int64)
    if plan.kind == "base":
        loop = nest.loops[plan.level]
        lo = _eval_affine_vec(loop.lower, cols, params, n)
        hi = _eval_affine_vec(loop.upper, cols, params, n)
        span = np.maximum(hi - lo + 1, 1)
        v = cols[loop.var]
        return np.clip((v - lo) * nprocs // span, 0, nprocs - 1)
    # affine plan; pid linearization is column-major (dim 0 fastest),
    # consistent with repro.decomp.folding.linearize_grid.
    loop_vars = nest.loop_vars
    pid = np.zeros(n, dtype=np.int64)
    ndim = len(plan.matrix)
    for dim in range(ndim - 1, -1, -1):
        row = plan.matrix[dim]
        virt = np.zeros(n, dtype=np.int64)
        for c, v in zip(row, loop_vars):
            if c:
                virt += c * cols[v]
        fold = plan.foldings[dim]
        g = grid[dim] if dim < len(grid) else 1
        ext = plan.extents[dim] if dim < len(plan.extents) else 1
        from repro.decomp.model import FoldKind

        if fold.kind is FoldKind.BLOCK:
            b = max(1, -(-ext // g))
            coord = np.minimum(virt // b, g - 1)
        elif fold.kind is FoldKind.CYCLIC:
            coord = virt % g
        else:
            coord = (virt // fold.block) % g
        pid = pid * g + coord
    return pid


@dataclass
class AddressSpace:
    """Byte base addresses of every (transformed) array, page-aligned.

    Replicated arrays get one private copy per processor; their base for
    a given access depends on the accessing processor.
    """

    bases: Dict[str, int]
    replicated_stride: Dict[str, int]
    total_bytes: int

    @staticmethod
    def build(
        transformed: Mapping[str, TransformedArray],
        nprocs: int,
        page_bytes: int = 4096,
    ) -> "AddressSpace":
        bases: Dict[str, int] = {}
        repl: Dict[str, int] = {}
        pos = 0

        def align(x: int) -> int:
            return -(-x // page_bytes) * page_bytes

        for name in sorted(transformed):
            ta = transformed[name]
            bases[name] = pos
            nbytes = ta.nbytes
            if ta.replicated:
                stride = align(nbytes)
                repl[name] = stride
                pos += stride * nprocs
            else:
                pos += align(nbytes)
        return AddressSpace(bases=bases, replicated_stride=repl,
                            total_bytes=pos)


def phase_trace(
    spmd: SpmdProgram,
    phase: SpmdPhase,
    space: AddressSpace,
) -> PhaseTrace:
    """Build the merged, program-ordered access trace of one phase."""
    prog = spmd.program
    params = prog.params
    nest = phase.nest
    nstmt = len(nest.body)

    # Key radices over the nest's global loop spans.
    bounds = nest.numeric_bounds(params)
    spans = [hi - lo + 2 for lo, hi in bounds]  # +1 for the pad digit
    glos = [lo for lo, _ in bounds]
    max_refs = max(1 + len(st.reads) for st in nest.body)

    keys: List[np.ndarray] = []
    addrs: List[np.ndarray] = []
    writes: List[np.ndarray] = []
    procs: List[np.ndarray] = []

    # Cache iteration enumerations per distinct depth.
    enum_cache: Dict[int, Tuple[Dict[str, np.ndarray], int]] = {}

    for s, st in enumerate(nest.body):
        depth = st.depth if st.depth is not None else nest.depth
        if depth not in enum_cache:
            enum_cache[depth] = enumerate_iterations(nest, params, depth)
        cols, n = enum_cache[depth]
        if n == 0:
            continue
        owner = _owner_ids(
            phase.owners[s], nest, cols, n, params, spmd.nprocs, spmd.grid
        )
        # Mixed-radix program-order key of the iteration (+ stmt digit).
        key = np.zeros(n, dtype=np.int64)
        for k in range(nest.depth):
            key *= spans[k]
            if k < depth:
                key += cols[nest.loop_vars[k]] - glos[k] + 1
        key = (key * nstmt + s) * max_refs

        refs = [(r, False) for r in st.reads] + [(st.write, True)]
        for rpos, (ref, is_write) in enumerate(refs):
            ta = spmd.transformed[ref.array.name]
            idx_cols = [
                _eval_affine_vec(e, cols, params, n)
                for e in ref.index_exprs
            ]
            elem = ta.layout.linearize_vec(idx_cols)
            byte = space.bases[ref.array.name] + elem * ta.decl.element_size
            if ref.array.name in space.replicated_stride:
                byte = byte + owner * space.replicated_stride[ref.array.name]
            keys.append(key + rpos)
            addrs.append(byte.astype(np.int64))
            writes.append(np.full(n, is_write))
            procs.append(owner)

    if not keys:
        empty = np.zeros(0, dtype=np.int64)
        return PhaseTrace(
            nest_name=nest.name, key=empty, addr=empty,
            write=np.zeros(0, dtype=bool), proc=empty,
            sync_after=phase.sync_after.value, pipelined=phase.pipelined,
            barriers=phase.barriers_per_execution, nprocs=spmd.nprocs,
        )

    key = np.concatenate(keys)
    addr = np.concatenate(addrs)
    write = np.concatenate(writes)
    proc = np.concatenate(procs)
    order = np.argsort(key, kind="stable")
    return PhaseTrace(
        nest_name=nest.name,
        key=key[order],
        addr=addr[order],
        write=write[order],
        proc=proc[order],
        sync_after=phase.sync_after.value,
        pipelined=phase.pipelined,
        barriers=phase.barriers_per_execution,
        nprocs=spmd.nprocs,
    )


def program_traces(spmd: SpmdProgram, page_bytes: int = 4096) -> Tuple[
    AddressSpace, List[PhaseTrace]
]:
    """Traces for every phase (one time step), in program order."""
    space = AddressSpace.build(spmd.transformed, spmd.nprocs, page_bytes)
    # Nest frequency (inner repetition) is applied by the cost model,
    # not by replicating trace data.
    traces = []
    with obs.span("sim.trace", cat="machine", scheme=spmd.scheme.value,
                  total_bytes=space.total_bytes) as sp:
        for phase in spmd.phases:
            with obs.span("sim.trace.phase", cat="machine",
                          nest=phase.nest.name) as psp:
                t = phase_trace(spmd, phase, space)
                psp.add("accesses", t.n_accesses)
                traces.append(t)
        sp.add("accesses", sum(t.n_accesses for t in traces))
    return space, traces
