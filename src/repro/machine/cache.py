"""Private cache model.

DASH's first-level caches are direct-mapped with 16-byte lines; the
conflict-miss pathologies the paper reports (every 8th/16th column of a
power-of-two array mapping to the same cache location) are artifacts of
exactly this geometry, so the simulator models it faithfully.

The direct-mapped simulation is exact and fully vectorized: within each
set, an access hits iff the previous access to that set (by the same
processor) touched the same line and nothing invalidated it in between
(invalidation is overlaid by :mod:`repro.machine.coherence`).  A small
set-associative LRU variant is provided for model-sensitivity tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one processor's private cache."""

    size_bytes: int
    line_bytes: int = 16
    assoc: int = 1

    def __post_init__(self):
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise ValueError("cache size must be a multiple of line*assoc")
        for v in (self.size_bytes, self.line_bytes, self.assoc):
            if v <= 0:
                raise ValueError("cache parameters must be positive")

    @property
    def nlines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def nsets(self) -> int:
        return self.nlines // self.assoc

    def line_of(self, addr: np.ndarray) -> np.ndarray:
        return addr // self.line_bytes

    def set_of(self, line: np.ndarray) -> np.ndarray:
        return line % self.nsets


def segmented_prev_equal(
    group: np.ndarray, value: np.ndarray
) -> np.ndarray:
    """For each position i (in stream order), True iff the previous
    position with the same ``group`` id had the same ``value``.

    Positions with no predecessor in their group return False.  This is
    the direct-mapped hit test with group=set and value=line.
    """
    n = len(group)
    if n == 0:
        return np.zeros(0, dtype=bool)
    pos = np.arange(n)
    order = np.lexsort((pos, group))
    g = group[order]
    v = value[order]
    same_group = np.zeros(n, dtype=bool)
    same_group[1:] = g[1:] == g[:-1]
    eq = np.zeros(n, dtype=bool)
    eq[1:] = (v[1:] == v[:-1]) & same_group[1:]
    out = np.zeros(n, dtype=bool)
    out[order] = eq
    return out


def segmented_prev_position(
    group: np.ndarray, position: np.ndarray
) -> np.ndarray:
    """For each access, the ``position`` of the previous access with the
    same ``group`` id (or -1)."""
    n = len(group)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    idx = np.arange(n)
    order = np.lexsort((position, group))
    g = group[order]
    p = position[order]
    prev = np.full(n, -1, dtype=np.int64)
    same = np.zeros(n, dtype=bool)
    same[1:] = g[1:] == g[:-1]
    prev[1:][same[1:]] = p[:-1][same[1:]]
    out = np.full(n, -1, dtype=np.int64)
    out[order] = prev
    return out


def direct_mapped_hits(
    proc: np.ndarray, addr: np.ndarray, cfg: CacheConfig
) -> np.ndarray:
    """Tag-match hit flags for every access of a merged multi-processor
    stream (in stream order), ignoring coherence."""
    line = cfg.line_of(addr)
    set_idx = cfg.set_of(line)
    # Group by (proc, set): encode into one id.
    group = proc * cfg.nsets + set_idx
    return segmented_prev_equal(group, line)


def assoc_lru_hits(
    proc: np.ndarray, addr: np.ndarray, cfg: CacheConfig
) -> np.ndarray:
    """Exact LRU set-associative hit flags (Python per (proc,set) group;
    use only on small traces / sensitivity tests)."""
    n = len(addr)
    line = cfg.line_of(addr)
    set_idx = cfg.set_of(line)
    hits = np.zeros(n, dtype=bool)
    state: dict = {}
    for i in range(n):
        key = (int(proc[i]), int(set_idx[i]))
        ways = state.setdefault(key, [])
        ln = int(line[i])
        if ln in ways:
            ways.remove(ln)
            ways.append(ln)
            hits[i] = True
        else:
            ways.append(ln)
            if len(ways) > cfg.assoc:
                ways.pop(0)
    return hits
