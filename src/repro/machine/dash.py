"""DASH machine configurations.

The experiments run on scaled-down problem sizes (the simulator is pure
Python), so the machine is scaled with them: what matters for the
paper's effects is the *ratio* of array size to cache size (conflict
misses), of line size to element size (false sharing/spatial locality),
and of block size to page size (NUMA homing).  :func:`scaled_dash`
keeps those ratios while shrinking absolute sizes; latency ratios stay
at DASH's 1:30:100.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from repro.machine.cache import CacheConfig
from repro.machine.cost import CostParams
from repro.machine.numa import NumaConfig


@dataclass(frozen=True)
class DashConfig:
    """One simulated machine instance.

    ``l2`` optionally adds DASH's private second-level cache (the
    scaled experiment machines run L1-only by default; the L2 ablation
    benchmark shows the shapes persist with it on).
    """

    nprocs: int
    cache: CacheConfig
    numa: NumaConfig
    cost: CostParams = field(default_factory=CostParams)
    word_bytes: int = 8
    l2: Optional[CacheConfig] = None

    def with_procs(self, nprocs: int) -> "DashConfig":
        return replace(self, nprocs=nprocs)

    def fingerprint(self) -> str:
        """Stable SHA-256 over the full machine geometry.

        Covers everything the simulator reads — processor count, cache
        and L2 geometry, NUMA homing parameters, every cost-model
        latency, and the word size — so two configs share a fingerprint
        iff they are behaviourally identical.  The persistent result
        store keys on it, and ``repro diff`` uses it to attribute run
        divergences to machine-config changes.
        """
        payload = asdict(self)
        h = hashlib.sha256()
        h.update(b"dash-config-v1\x1f")
        h.update(json.dumps(payload, sort_keys=True,
                            default=repr).encode("utf-8"))
        return h.hexdigest()

    def with_l2(self, size_bytes: Optional[int] = None) -> "DashConfig":
        """Add a private L2 (default: 4x the L1, DASH's 64KB:256KB
        ratio)."""
        size = size_bytes or 4 * self.cache.size_bytes
        return replace(
            self,
            l2=CacheConfig(size_bytes=size,
                           line_bytes=self.cache.line_bytes),
        )


def dash_machine(nprocs: int = 32) -> DashConfig:
    """The full-size DASH: 64KB direct-mapped L1 + 256KB direct-mapped
    L2, 16B lines, 4KB pages, 4-processor clusters."""
    return DashConfig(
        nprocs=nprocs,
        cache=CacheConfig(size_bytes=64 * 1024, line_bytes=16, assoc=1),
        numa=NumaConfig(page_bytes=4096, cluster_size=4),
        l2=CacheConfig(size_bytes=256 * 1024, line_bytes=16, assoc=1),
    )


def scaled_dash(
    nprocs: int,
    scale: int,
    line_bytes: int = 16,
    word_bytes: int = 8,
    page_bytes: Optional[int] = None,
    cost: Optional[CostParams] = None,
) -> DashConfig:
    """DASH with the cache size divided by ``scale`` (problem sizes in
    the benchmarks are divided by a matching factor, preserving the
    array/cache ratio that drives capacity and conflict behaviour).

    The cache line is *not* scaled: multi-word lines are the mechanism
    behind false sharing and spatial locality, and the benchmarks keep
    real element sizes.  The page size defaults to a proportional
    scaling but can be pinned explicitly — what matters for first-touch
    NUMA effects is the ratio of page size to the per-processor
    partition's contiguous runs, which each experiment documents.
    """
    cache_bytes = max(line_bytes * 16, (64 * 1024) // scale)
    if page_bytes is None:
        page_bytes = max(line_bytes * 4, 4096 // scale)
    return DashConfig(
        nprocs=nprocs,
        cache=CacheConfig(size_bytes=cache_bytes, line_bytes=line_bytes),
        numa=NumaConfig(page_bytes=page_bytes, cluster_size=4),
        cost=cost or CostParams(),
        word_bytes=word_bytes,
    )
