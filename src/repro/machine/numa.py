"""NUMA memory homing (DASH clusters + first-touch pages).

DASH groups 4 processors per cluster; the OS allocates memory to
clusters at page granularity, assigning each page to the cluster that
first touches it (Section 6.1).  A cache miss is *local* when the
missing processor's cluster homes the page, else *remote* — the 30 vs
100-130 cycle distinction that makes data placement matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class NumaConfig:
    page_bytes: int = 4096
    cluster_size: int = 4

    def cluster_of(self, proc: np.ndarray) -> np.ndarray:
        return proc // self.cluster_size


def first_touch_homes(
    addr: np.ndarray, proc: np.ndarray, cfg: NumaConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """First-touch page homing over a globally-ordered stream.

    Returns ``(page_ids, home_cluster_per_access)``: for every access,
    the cluster that homes its page (the cluster of the processor that
    touched the page first).
    """
    if len(addr) == 0:
        e = np.zeros(0, dtype=np.int64)
        return e, e
    page = addr // cfg.page_bytes
    uniq, first_idx, inverse = np.unique(
        page, return_index=True, return_inverse=True
    )
    home = cfg.cluster_of(proc[first_idx])
    return page, home[inverse]


def local_miss_mask(
    addr: np.ndarray, proc: np.ndarray, cfg: NumaConfig
) -> np.ndarray:
    """True where an access's page is homed in the accessor's cluster."""
    _, home = first_touch_homes(addr, proc, cfg)
    return home == cfg.cluster_of(proc)
