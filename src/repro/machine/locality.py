"""Memory-locality analytics over the simulator's address streams.

The paper's argument is entirely about *where* memory time goes: cold
misses are first touches, capacity misses are reuses whose **reuse
distance** (distinct cache lines touched in between) exceeds the cache,
conflict misses are short-distance reuses evicted anyway because too
many lines compete for one direct-mapped set, and remote accesses are
whatever NUMA placement fails to keep local.  This module computes
those signals directly from the vectorized address traces
(:mod:`repro.machine.trace`), independent of the cache model:

* :func:`reuse_distances` — per-processor LRU stack distance over
  cache lines (``-1`` marks a cold first touch), computed in
  O(n log n) with a Fenwick tree over last-occurrence marks;
* :func:`set_pressure` — per ``(processor, cache set)`` count of
  *distinct* lines mapping to that set (the power-of-two aliasing
  signature the paper's data transforms remove shows up as a few sets
  with huge pressure);
* :func:`phase_array_heatmap` — access counts per (phase, array), the
  coarse map of which loop nest touches which data;
* :func:`collect_locality` — all of the above folded into one
  JSON-ready :class:`LocalityReport` with log2-binned histograms and
  exact p50/p95/max summaries.

Every analytic has a brute-force oracle
(:func:`reuse_distances_oracle`, :func:`set_pressure_oracle`) that the
test suite compares bit-exactly on small traces; the oracles are the
executable definitions, the main implementations the fast paths.

All results are deterministic functions of the trace, so they are safe
to exact-match in bench snapshots: they are the locality fingerprint a
simulator rewrite (ROADMAP item 1) must preserve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro import obs
from repro.machine.cache import CacheConfig

__all__ = [
    "COLD",
    "ArrayLocality",
    "LocalityReport",
    "collect_locality",
    "log2_bin_histogram",
    "phase_array_heatmap",
    "reuse_distances",
    "reuse_distances_oracle",
    "set_pressure",
    "set_pressure_oracle",
]

COLD = -1  # reuse-distance marker for a first touch


# -- reuse distance ----------------------------------------------------------

def _stream_reuse(lines: np.ndarray) -> np.ndarray:
    """LRU stack distances of one processor's line stream.

    ``out[i]`` is the number of *distinct* lines touched strictly
    between access ``i`` and the previous access to the same line
    (0 = immediate reuse), or :data:`COLD` for a first touch.

    A Fenwick tree holds one mark per line at its *latest* occurrence
    position; the distinct count over a window is then the number of
    marks inside it.  O(n log n) time, O(n) space.
    """
    n = len(lines)
    out = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return out
    tree = [0] * (n + 1)

    def add(i: int, v: int) -> None:
        i += 1
        while i <= n:
            tree[i] += v
            i += i & -i

    def prefix(i: int) -> int:  # inclusive sum of positions [0, i]
        i += 1
        s = 0
        while i > 0:
            s += tree[i]
            i -= i & -i
        return s

    last: Dict[int, int] = {}
    lines_list = lines.tolist()  # python ints: faster dict keys
    for i, ln in enumerate(lines_list):
        p = last.get(ln)
        if p is not None:
            # Marks in (p, i): each is the latest occurrence of a
            # distinct line touched since position p.
            out[i] = prefix(i - 1) - prefix(p)
            add(p, -1)
        add(i, 1)
        last[ln] = i
    return out


def reuse_distances(
    proc: np.ndarray, addr: np.ndarray, line_bytes: int = 16
) -> np.ndarray:
    """Per-access LRU stack distance over cache lines, computed within
    each processor's own (program-ordered) access stream; ``-1`` marks
    cold first touches.  Input arrays are the merged stream in global
    program order."""
    line = addr // line_bytes
    out = np.full(len(addr), COLD, dtype=np.int64)
    for p in np.unique(proc):
        sel = np.flatnonzero(proc == p)
        out[sel] = _stream_reuse(line[sel])
    return out


def reuse_distances_oracle(
    proc: np.ndarray, addr: np.ndarray, line_bytes: int = 16
) -> np.ndarray:
    """O(n^2) executable definition of :func:`reuse_distances`."""
    line = (addr // line_bytes).tolist()
    procs = proc.tolist()
    out = np.full(len(line), COLD, dtype=np.int64)
    for i in range(len(line)):
        prev = None
        for j in range(i - 1, -1, -1):
            if procs[j] == procs[i] and line[j] == line[i]:
                prev = j
                break
        if prev is None:
            continue
        between = {
            line[j] for j in range(prev + 1, i) if procs[j] == procs[i]
        }
        out[i] = len(between)
    return out


# -- set pressure ------------------------------------------------------------

def set_pressure(
    proc: np.ndarray, addr: np.ndarray, cfg: CacheConfig
) -> np.ndarray:
    """Distinct-line count per (processor, cache set): shape
    ``(nprocs, nsets)`` where ``nprocs = max(proc) + 1`` (0x0 on an
    empty stream).  Cell ``[p, s]`` is how many distinct lines
    processor ``p`` touched that map to set ``s`` — the conflict
    pressure the direct-mapped geometry exposes."""
    nsets = cfg.nsets
    if len(addr) == 0:
        return np.zeros((0, nsets), dtype=np.int64)
    line = addr // cfg.line_bytes
    nprocs = int(proc.max()) + 1
    span = int(line.max()) + 1
    uniq = np.unique(proc.astype(np.int64) * span + line)
    up = uniq // span
    uline = uniq % span
    uset = uline % nsets
    counts = np.bincount(up * nsets + uset, minlength=nprocs * nsets)
    return counts.reshape(nprocs, nsets).astype(np.int64)


def set_pressure_oracle(
    proc: np.ndarray, addr: np.ndarray, cfg: CacheConfig
) -> np.ndarray:
    """Dict-based executable definition of :func:`set_pressure`."""
    if len(addr) == 0:
        return np.zeros((0, cfg.nsets), dtype=np.int64)
    seen: Dict[Tuple[int, int], set] = {}
    for p, a in zip(proc.tolist(), addr.tolist()):
        line = a // cfg.line_bytes
        seen.setdefault((p, line % cfg.nsets), set()).add(line)
    nprocs = int(proc.max()) + 1
    out = np.zeros((nprocs, cfg.nsets), dtype=np.int64)
    for (p, s), lines in seen.items():
        out[p, s] = len(lines)
    return out


# -- phase x array heatmap ---------------------------------------------------

def _array_index(space, addr: np.ndarray) -> Tuple[List[str], np.ndarray]:
    """Map every address onto its owning array (arrays are laid out
    contiguously, so this is a binary search over sorted bases)."""
    names = sorted(space.bases, key=lambda nm: space.bases[nm])
    starts = np.array([space.bases[nm] for nm in names], dtype=np.int64)
    return names, np.searchsorted(starts, addr, side="right") - 1


def phase_array_heatmap(space, traces) -> Dict[str, Any]:
    """Access counts per (phase, array) over one round of phase traces:
    ``{"phases": [...], "arrays": [...], "counts": [[int]]}`` with rows
    in phase order and columns in base-address order."""
    names = sorted(space.bases, key=lambda nm: space.bases[nm])
    rows: List[List[int]] = []
    for t in traces:
        if t.n_accesses:
            _, aidx = _array_index(space, t.addr)
            counts = np.bincount(aidx, minlength=len(names))
        else:
            counts = np.zeros(len(names), dtype=np.int64)
        rows.append([int(c) for c in counts])
    return {
        "phases": [t.nest_name for t in traces],
        "arrays": names,
        "counts": rows,
    }


# -- histograms and the assembled report -------------------------------------

def log2_bin_histogram(values: np.ndarray) -> Dict[str, int]:
    """Histogram of non-negative ints in power-of-two bins, keyed by
    the bin's lower bound: ``"0"``, ``"1"``, ``"2"`` (2-3), ``"4"``
    (4-7), ... — name-ordered numerically in the returned dict."""
    v = values[values >= 0]
    if len(v) == 0:
        return {}
    idx = np.zeros(len(v), dtype=np.int64)
    nz = v > 0
    idx[nz] = np.floor(np.log2(v[nz])).astype(np.int64) + 1
    counts = np.bincount(idx)
    out: Dict[str, int] = {}
    for k, c in enumerate(counts):
        if c:
            out[str(0 if k == 0 else 2 ** (k - 1))] = int(c)
    return out


def _pct(values: np.ndarray, q: float) -> float:
    return float(np.percentile(values, q))


@dataclass
class ArrayLocality:
    """Reuse-distance summary of one array's accesses."""

    name: str
    accesses: int
    cold: int  # first touches (no reuse distance)
    p50: float
    p95: float
    max: int
    hist: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "accesses": self.accesses,
            "cold": self.cold,
            "p50": self.p50,
            "p95": self.p95,
            "max": self.max,
            "hist": dict(self.hist),
        }


@dataclass
class LocalityReport:
    """All locality analytics of one simulated program, JSON-ready."""

    line_bytes: int
    nsets: int
    arrays: Dict[str, ArrayLocality] = field(default_factory=dict)
    set_pressure: Dict[str, Any] = field(default_factory=dict)
    heatmap: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "line_bytes": self.line_bytes,
            "nsets": self.nsets,
            "reuse": {
                name: self.arrays[name].as_dict()
                for name in sorted(self.arrays)
            },
            "set_pressure": dict(self.set_pressure),
            "heatmap": dict(self.heatmap),
        }


def collect_locality(space, traces, cfg: CacheConfig) -> LocalityReport:
    """Fold one round of phase traces into a :class:`LocalityReport`.

    The reuse/pressure analytics run over the concatenated program-order
    stream of all phases (one time step) — the same stream the cache
    model replays — split per array for the reuse histograms.
    """
    with obs.span("sim.locality", cat="machine") as sp:
        live = [t for t in traces if t.n_accesses]
        report = LocalityReport(line_bytes=cfg.line_bytes, nsets=cfg.nsets)
        report.heatmap = phase_array_heatmap(space, traces)
        if not live:
            report.set_pressure = {
                "nsets": int(cfg.nsets), "used": 0, "max": 0,
                "mean": 0.0, "p95": 0.0, "hist": {},
            }
            return report
        addr = np.concatenate([t.addr for t in live])
        proc = np.concatenate([t.proc for t in live])
        sp.add("accesses", len(addr))

        dist = reuse_distances(proc, addr, cfg.line_bytes)
        names, aidx = _array_index(space, addr)
        for j, nm in enumerate(names):
            sel = aidx == j
            cnt = int(sel.sum())
            if not cnt:
                continue
            d = dist[sel]
            warm = d[d >= 0]
            report.arrays[nm] = ArrayLocality(
                name=nm,
                accesses=cnt,
                cold=int((d == COLD).sum()),
                p50=_pct(warm, 50) if len(warm) else 0.0,
                p95=_pct(warm, 95) if len(warm) else 0.0,
                max=int(warm.max()) if len(warm) else 0,
                hist=log2_bin_histogram(d),
            )

        pressure = set_pressure(proc, addr, cfg)
        used = pressure[pressure > 0]
        report.set_pressure = {
            "nsets": int(cfg.nsets),
            "used": int(len(used)),
            "max": int(used.max()) if len(used) else 0,
            "mean": float(used.mean()) if len(used) else 0.0,
            "p95": _pct(used, 95) if len(used) else 0.0,
            "hist": log2_bin_histogram(used),
        }
        return report
